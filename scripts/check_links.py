#!/usr/bin/env python
"""Markdown link checker for the docs tree.

Verifies that every local link target in the given markdown files
exists on disk (relative to the file containing the link).  External
``http(s)``/``mailto`` links are recorded but not fetched (CI must
not depend on the network), and pure in-page anchors are skipped.

Usage::

    python scripts/check_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links [text](target) — excluding images' leading '!' is not
# needed (image targets must exist too).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def iter_links(text: str):
    """Yield (line_number, target) pairs outside fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: Path) -> tuple:
    """Return ``(problems, n_links)``: a list of (lineno, target,
    reason) problems plus the number of links seen (one parse)."""
    problems = []
    n_links = 0
    text = path.read_text(encoding="utf-8")
    for lineno, target in iter_links(text):
        n_links += 1
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            continue  # in-page anchor
        local = target.split("#", 1)[0]
        if not local:
            continue
        resolved = (path.parent / local).resolve()
        if not resolved.exists():
            problems.append((lineno, target, f"missing file {local!r}"))
    return problems, n_links


def main(argv) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    total_links = 0
    failures = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        problems, n_links = check_file(path)
        total_links += n_links
        for lineno, target, reason in problems:
            print(f"{name}:{lineno}: broken link {target!r} ({reason})")
            failures += 1
    print(f"checked {total_links} links in {len(argv)} files: "
          f"{'OK' if failures == 0 else f'{failures} broken'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
