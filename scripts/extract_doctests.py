#!/usr/bin/env python
"""Extract ``>>>`` doctest blocks from markdown code fences.

Pulls every fenced ```python block that contains doctest prompts out
of the given markdown files and prints them as one doctest-able text
document (the CI ``docs`` job pipes this into ``python -m doctest``)::

    python scripts/extract_doctests.py docs/dse.md > dse_doctests.txt
    PYTHONPATH=src python -m doctest dse_doctests.txt

Blocks without ``>>>`` (plain examples, JSON schemas, shell snippets)
are ignored.
"""

from __future__ import annotations

import sys
from pathlib import Path

_OPENERS = ("```python", "```py", "~~~python")


def extract(text: str) -> list:
    """Doctest-bearing python blocks of one markdown document."""
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped in _OPENERS:
            fence = stripped[:3]
            body = []
            i += 1
            while i < len(lines) and lines[i].strip() != fence:
                body.append(lines[i])
                i += 1
            if any(l.lstrip().startswith(">>>") for l in body):
                blocks.append("\n".join(body))
        i += 1
    return blocks


def main(argv) -> int:
    if not argv:
        print("usage: extract_doctests.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    n_blocks = 0
    for name in argv:
        text = Path(name).read_text(encoding="utf-8")
        for block in extract(text):
            print(f"Doctest block {n_blocks + 1} (from {name}):")
            print()
            print(block)
            print()
            n_blocks += 1
    if n_blocks == 0:
        print(f"no doctest blocks found in {', '.join(argv)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
