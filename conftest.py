"""Repo-wide pytest configuration (applies to tests/ and benchmarks/)."""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def isolated_pipeline_cache(tmp_path_factory):
    """Point the pipeline cache at a per-session tmp dir.

    Keeps the suites from reading (or polluting) the developer's
    ``~/.cache/repro`` — a stale entry there must never mask a change
    in the code under test, and benchmarks must measure real work.
    """
    from repro import pipeline

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    pipeline.reset()
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
    pipeline.reset()
