"""Benchmarks of the mixed-precision planning engine: cold vs warm.

Runs the ``memory-budget`` preset — a budget-solver sweep over the
synth zoo (8 budget plans + the 4-step uniform ladder on opt-1.3b) —
against an empty cache and then against the populated one:

* **cold** — every sensitivity probe (one ``layer_mse`` cell per
  layer x ladder candidate), every plan-accuracy cell and every
  design-point record computed and persisted,
* **warm** — pure content-addressed replay: plans re-solve from
  cached probes and the point records stream back as JSON.

The warm rerun must beat the cold sweep, and the resulting
memory-vs-perplexity frontier must be monotone (the ISSUE 5
acceptance bar).  Numbers land in ``BENCH_policy.json`` following the
``BENCH_dse.json`` convention; ``BENCH_QUICK=1`` trims to three
budgets for CI.
"""

import json
import os
import time
from pathlib import Path

from repro.dse.space import get_preset
from repro.dse.sweep import run_sweep
from repro.pipeline import Engine
from repro.pipeline.store import CacheStore

_RESULTS_PATH = Path(__file__).parent / "BENCH_policy.json"
_QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

_results = {"quick_mode": _QUICK}


def _space():
    space = get_preset("memory-budget", quick=True)
    if _QUICK:
        space = space.with_(policies=space.policies[::3])
    return space


def test_budget_sweep_cold_vs_warm(tmp_path):
    space = _space()

    from repro.pipeline.context import clear_context

    clear_context()
    cold_engine = Engine(store=CacheStore(tmp_path), jobs=2)
    t0 = time.perf_counter()
    with cold_engine:
        cold = run_sweep(space, engine=cold_engine)
    cold_s = time.perf_counter() - t0
    assert cold.computed == len(cold.records)
    n_policy = sum(1 for r in cold.records if r["policy"] is not None)
    assert n_policy == len(space.policies)

    # Warm: fresh engine and process context, populated disk store.
    clear_context()
    warm_engine = Engine(store=CacheStore(tmp_path), jobs=2)
    t0 = time.perf_counter()
    with warm_engine:
        warm = run_sweep(space, engine=warm_engine)
    warm_s = time.perf_counter() - t0

    assert warm.records == cold.records
    assert warm.computed == 0
    assert warm_s < cold_s, (
        f"warm budget-sweep replay must beat the cold run "
        f"(cold {cold_s:.2f}s, warm {warm_s:.2f}s)"
    )

    # The acceptance bar: budget plans trace a monotone memory-vs-PPL
    # frontier.
    front = sorted(
        cold.frontier(objectives=("weight_mb", "ppl"), senses=("min", "min")),
        key=lambda r: r["weight_mb"],
    )
    assert len(front) >= 2
    ppls = [r["ppl"] for r in front]
    assert all(a > b for a, b in zip(ppls, ppls[1:])), "frontier not monotone"

    _results["budget_sweep"] = {
        "preset": space.name,
        "points": len(cold.records),
        "policy_points": n_policy,
        "frontier_points": len(front),
        "frontier_ppl_span": [ppls[0], ppls[-1]],
        "frontier_mb_span": [front[0]["weight_mb"], front[-1]["weight_mb"]],
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def test_profile_replay_across_budgets(tmp_path):
    """N budgets share one sensitivity profile: solving a second
    budget against a warm store computes no new probe cells."""
    from repro.models.zoo import get_model_config
    from repro.policy import make_plan, plan_floor_bytes
    from repro.quant.config import QuantConfig

    ladder = [
        QuantConfig(dtype="bitmod_fp3"),
        QuantConfig(dtype="bitmod_fp4"),
        QuantConfig(dtype="int8_sym"),
    ]
    floor_mb = plan_floor_bytes(ladder, get_model_config("opt-1.3b")) / 1e6

    engine = Engine(store=CacheStore(tmp_path))
    t0 = time.perf_counter()
    make_plan("opt-1.3b", "budget", ladder, budget_mb=floor_mb * 1.2, engine=engine)
    first_s = time.perf_counter() - t0
    probes = engine.computed
    assert probes > 0

    t0 = time.perf_counter()
    make_plan("opt-1.3b", "budget", ladder, budget_mb=floor_mb * 1.6, engine=engine)
    second_s = time.perf_counter() - t0
    assert engine.computed == probes, "second budget recomputed probe cells"

    _results["profile_replay"] = {
        "probe_cells": probes,
        "first_plan_s": first_s,
        "second_plan_s": second_s,
    }


def test_zz_write_results():
    """Persist the collected numbers (runs last by name)."""
    assert len(_results) > 1, "no policy benchmarks recorded"
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
