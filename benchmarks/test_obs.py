"""Benchmarks of the observability layer: the disabled path must be free.

Two measurements land in ``BENCH_obs.json``:

* **micro** — nanoseconds per *disabled* span call (the one-branch
  guarantee) and per always-on counter increment / histogram record;
* **overhead** — a cold smoke DSE sweep is timed untraced, then run
  traced in a fresh cache to count how many instrumentation events
  the same workload emits.  The disabled-instrumentation overhead
  estimate — events x per-disabled-call cost / untraced wall time —
  must stay **under 5 %** (the ISSUE 6 acceptance bar; measured it is
  orders of magnitude under).
"""

import json
import os
import time
from pathlib import Path

from repro import obs
from repro.dse.space import get_preset
from repro.dse.sweep import run_sweep
from repro.pipeline import Engine
from repro.pipeline.context import clear_context
from repro.pipeline.store import CacheStore

_RESULTS_PATH = Path(__file__).parent / "BENCH_obs.json"
_QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

_results = {"quick_mode": _QUICK}

_MICRO_N = 50_000 if _QUICK else 200_000


def _ns_per_call(fn, n):
    t0 = time.perf_counter_ns()
    for _ in range(n):
        fn()
    return (time.perf_counter_ns() - t0) / n


def test_disabled_span_cost():
    obs.reset()
    assert not obs.tracing_enabled()
    tracer = obs.get_tracer()

    per_module_span_ns = _ns_per_call(lambda: obs.span("bench.noop"), _MICRO_N)
    per_guard_ns = _ns_per_call(lambda: tracer.enabled, _MICRO_N)

    _results["micro"] = {
        "disabled_span_ns": per_module_span_ns,
        "enabled_guard_ns": per_guard_ns,
        "iterations": _MICRO_N,
    }
    # Generous absolute bound: a disabled span must stay well under a
    # microsecond even on a loaded CI machine.
    assert per_module_span_ns < 5_000
    assert obs.get_tracer().spans() == []


def test_always_on_metric_cost():
    obs.reset()
    c = obs.counter("bench.counter")
    h = obs.histogram("bench.hist", cap=1024)

    per_inc_ns = _ns_per_call(c.inc, _MICRO_N)
    per_record_ns = _ns_per_call(lambda: h.record(0.5), _MICRO_N)

    _results["micro_metrics"] = {
        "counter_inc_ns": per_inc_ns,
        "histogram_record_ns": per_record_ns,
    }
    assert per_inc_ns < 5_000
    assert per_record_ns < 20_000
    obs.reset()


def test_disabled_overhead_under_5_percent(tmp_path):
    space = get_preset("smoke", quick=True)
    per_event_ns = max(
        _results["micro"]["disabled_span_ns"],
        _results["micro_metrics"]["counter_inc_ns"],
    )

    # Untraced cold sweep: the workload as users run it.
    obs.reset()
    clear_context()
    with Engine(store=CacheStore(tmp_path / "untraced")) as engine:
        t0 = time.perf_counter_ns()
        untraced = run_sweep(space, engine=engine)
        untraced_ns = time.perf_counter_ns() - t0
    snap = obs.snapshot()
    counter_events = sum(v for v in snap["counters"].values())
    histogram_events = sum(h["count"] for h in snap["histograms"].values())

    # Traced cold sweep in a fresh cache: count the span events the
    # same workload emits when tracing is on.
    obs.reset()
    obs.set_tracing(True)
    clear_context()
    with Engine(store=CacheStore(tmp_path / "traced")) as engine:
        t0 = time.perf_counter_ns()
        traced = run_sweep(space, engine=engine)
        traced_ns = time.perf_counter_ns() - t0
    n_spans = len(obs.get_tracer().drain())
    obs.reset()

    assert traced.records == untraced.records  # tracing never changes results
    n_events = n_spans + counter_events + histogram_events
    est_overhead = (n_events * per_event_ns) / untraced_ns

    _results["overhead"] = {
        "workload": "dse smoke sweep, cold cache",
        "untraced_wall_s": untraced_ns / 1e9,
        "traced_wall_s": traced_ns / 1e9,
        "span_events": n_spans,
        "counter_events": counter_events,
        "histogram_events": histogram_events,
        "per_event_ns": per_event_ns,
        "estimated_disabled_overhead": est_overhead,
    }
    assert est_overhead < 0.05, (
        f"disabled instrumentation overhead estimate {est_overhead:.2%} "
        f"exceeds the 5% budget ({n_events} events x {per_event_ns:.0f} ns "
        f"on a {untraced_ns / 1e9:.2f}s workload)"
    )


def test_zz_write_results():
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2), encoding="utf-8")
    print(f"\nwrote {_RESULTS_PATH}")
