"""Benchmarks of the design-space exploration engine: cold vs warm.

Runs the flagship ``paper-pareto`` preset (360 design points, >= 200
required) against an empty cache and then against the populated one:

* **cold** — every accuracy cell computed through the pipeline engine
  and every design point simulated and persisted,
* **warm** — pure content-addressed JSON replay of the point records
  (the accuracy cells are never even consulted).

The warm rerun must beat the cold sweep by >= 10x (the ISSUE 4
acceptance bar).  Numbers land in ``BENCH_dse.json`` following the
``BENCH_kernels.json`` convention; ``BENCH_QUICK=1`` switches to the
small ``smoke`` preset for CI.
"""

import json
import os
import time
from pathlib import Path

from repro.dse.pareto import pareto_front
from repro.dse.space import get_preset
from repro.dse.sweep import run_sweep
from repro.pipeline import Engine
from repro.pipeline.store import CacheStore

_RESULTS_PATH = Path(__file__).parent / "BENCH_dse.json"
_QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

_results = {"quick_mode": _QUICK}

_MIN_POINTS = 16 if _QUICK else 200
_PRESET = "smoke" if _QUICK else "paper-pareto"


def test_sweep_cold_vs_warm(tmp_path):
    space = get_preset(_PRESET, quick=True)

    from repro.pipeline.context import clear_context

    clear_context()
    cold_engine = Engine(store=CacheStore(tmp_path), jobs=4)
    t0 = time.perf_counter()
    with cold_engine:
        cold = run_sweep(space, engine=cold_engine)
    cold_s = time.perf_counter() - t0
    assert len(cold.records) >= _MIN_POINTS
    assert cold.computed == len(cold.records)

    # Warm: fresh engine and process context, populated disk store.
    clear_context()
    warm_engine = Engine(store=CacheStore(tmp_path), jobs=4)
    t0 = time.perf_counter()
    with warm_engine:
        warm = run_sweep(space, engine=warm_engine)
    warm_s = time.perf_counter() - t0

    assert warm.records == cold.records
    assert warm.computed == 0
    assert cold_s / warm_s >= 10.0, (
        f"warm DSE replay must be >= 10x faster than the cold sweep "
        f"(cold {cold_s:.2f}s, warm {warm_s:.2f}s)"
    )

    front = pareto_front(cold.records, ("ppl", "edp"), ("min", "min"))
    _results["sweep"] = {
        "preset": _PRESET,
        "points": len(cold.records),
        "skipped": len(cold.skipped),
        "frontier_points": len(front),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "cold_points_per_s": len(cold.records) / cold_s,
        "warm_points_per_s": len(warm.records) / warm_s,
    }


def test_pareto_filter_throughput():
    """Frontier extraction over a synthetic 2k-point cloud."""
    n = 2000
    records = [
        {"ppl": 5.0 + (i * 7919 % 1000) / 100.0, "edp": (i * 104729 % 997) / 10.0}
        for i in range(n)
    ]
    t0 = time.perf_counter()
    front = pareto_front(records, ("ppl", "edp"), ("min", "min"))
    elapsed = time.perf_counter() - t0
    assert 0 < len(front) < n
    _results["pareto_filter"] = {
        "points": n,
        "frontier_points": len(front),
        "seconds": elapsed,
        "points_per_s": n / elapsed,
    }


def test_zz_write_results():
    """Persist the collected numbers (runs last by name)."""
    assert len(_results) > 1, "no DSE benchmarks recorded"
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
