"""Benchmarks of the experiment pipeline: cold vs warm cell throughput.

Measures the engine on a small but real (model × datatype) grid:

* **cold** — empty cache, every cell computed (models built, logits,
  quantization, KL divergence),
* **warm** — same grid against the populated cache: pure content-
  addressed JSON reads,
* **packed cache** — serve-layer artifact packing, cold vs cached.

Numbers are persisted to ``BENCH_pipeline.json`` (the
``BENCH_kernels.json`` convention) so the cold/warm ratio and cache
hit rates are tracked PR over PR.  ``BENCH_QUICK=1`` shrinks the grid.
"""

import json
import os
import time
from pathlib import Path

from repro.models.transformer import CausalLM
from repro.models.zoo import get_model_config
from repro.pipeline import CellGrid, Engine
from repro.pipeline.store import CacheStore
from repro.quant.config import QuantConfig
from repro.serve.artifact import pack_model

_RESULTS_PATH = Path(__file__).parent / "BENCH_pipeline.json"
_QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

_results = {"quick_mode": _QUICK}


def _grid() -> CellGrid:
    dtypes = ("int4_asym", "bitmod_fp4") if _QUICK else (
        "int4_asym", "bitmod_fp4", "bitmod_fp3", "mx_fp4",
    )
    models = ("opt-1.3b",) if _QUICK else ("opt-1.3b", "llama-2-7b")
    return CellGrid(
        rows=tuple((dt, QuantConfig(dtype=dt)) for dt in dtypes),
        models=models,
        datasets=("wikitext",),
    )


def test_cell_grid_cold_vs_warm(tmp_path):
    grid = _grid()
    n_cells = len(grid.specs())

    # Cold: the per-process context is also cold (fresh models).
    from repro.pipeline.context import clear_context

    clear_context()
    cold_engine = Engine(store=CacheStore(tmp_path))
    t0 = time.perf_counter()
    cold = cold_engine.run_grid(grid)
    cold_s = time.perf_counter() - t0
    assert cold_engine.computed == n_cells

    # Warm: fresh engine, fresh process context, populated disk cache.
    clear_context()
    warm_engine = Engine(store=CacheStore(tmp_path))
    t0 = time.perf_counter()
    warm = warm_engine.run_grid(grid)
    warm_s = time.perf_counter() - t0

    assert warm == cold
    assert warm_engine.computed == 0
    assert warm_engine.store.stats()["hit_rate"] == 1.0
    assert warm_s < cold_s, "warm cache replay should beat cold compute"

    _results["cell_grid"] = {
        "cells": n_cells,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "cold_cells_per_s": n_cells / cold_s,
        "warm_cells_per_s": n_cells / warm_s,
        "warm_hit_rate": warm_engine.store.stats()["hit_rate"],
    }


def test_packed_weight_cache(tmp_path):
    model = CausalLM(get_model_config("opt-1.3b"), seed=0)
    cfg = QuantConfig(dtype="bitmod_fp4")
    store = CacheStore(tmp_path)

    t0 = time.perf_counter()
    packed, _ = pack_model(model, cfg, store=store)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    packed2, _ = pack_model(model, cfg, store=store)
    warm_s = time.perf_counter() - t0

    assert store.hits == len(packed)
    assert {n: p.element_data for n, p in packed.items()} == {
        n: p.element_data for n, p in packed2.items()
    }
    _results["packed_weights"] = {
        "tensors": len(packed),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def test_zz_write_results():
    """Persist the collected numbers (runs last by name)."""
    assert len(_results) > 1, "no pipeline benchmarks recorded"
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
