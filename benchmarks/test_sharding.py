"""Sharded-serving benchmarks: the 1 -> 4 shard scaling curve.

Drives the same seeded Poisson trace at a single-device engine and at
2- and 4-shard :class:`~repro.shard.ShardedEngine` meshes, recording
measured throughput, TTFT tails, and the modeled interconnect bill
(collective wire bytes per generated token, per topology) to
``BENCH_sharding.json`` next to this file.  Sharded token streams must
stay byte-identical to single-device — the scaling curve is only
meaningful if every point computes the same thing.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.hw.baselines import make_accelerator
from repro.hw.multichip import simulate_sharded
from repro.load import PoissonArrivals, SharedPrefixChat, Workload, run_load
from repro.models import CausalLM, get_model_config
from repro.models.zoo import get_model_config as _zoo_config
from repro.quant.config import QuantConfig
from repro.serve import InferenceEngine
from repro.serve.artifact import save_artifact
from repro.shard import DeviceMesh, ShardedEngine

_RESULTS_PATH = Path(__file__).parent / "BENCH_sharding.json"
_QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")
_N_REQUESTS = 30 if _QUICK else 120
_SEED = 2025
_SHARD_COUNTS = (1, 2, 4)

_results = {}


def _workload(n_requests=_N_REQUESTS, seed=_SEED):
    return Workload(
        arrivals=PoissonArrivals(400.0),
        traffic=SharedPrefixChat(
            n_prefixes=4,
            prefix_tokens=32,
            suffix_tokens=(4, 10),
            max_new_tokens=(4, 8),
        ),
        n_requests=n_requests,
        seed=seed,
        vocab=2048,
    )


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    cfg = get_model_config("opt-1.3b")
    d = tmp_path_factory.mktemp("bench-shard")
    return save_artifact(
        d / "m.rpro", CausalLM(cfg, seed=0), QuantConfig(dtype="int4_sym")
    )


def _engine(artifact, shards):
    if shards == 1:
        return InferenceEngine.from_artifact(artifact)
    return ShardedEngine.from_artifact(artifact, DeviceMesh(tp=shards))


def test_scaling_curve(artifact):
    """Measured load at 1/2/4 shards; streams byte-identical throughout."""
    workload = _workload()
    curve = {}
    streams = {}
    for shards in _SHARD_COUNTS:
        engine = _engine(artifact, shards)
        t0 = time.perf_counter()
        result = run_load(engine, workload, max_batch_tokens=256)
        wall_s = time.perf_counter() - t0
        summary = result.summary()
        assert summary["lost"] == 0 and summary["errors"] == 0
        streams[shards] = {r.index: r.tokens for r in result.records}

        gen_tokens = max(result.metrics["tokens"]["decode"], 1)
        entry = {
            "completed": summary["completed"],
            "tokens_per_s": summary["tokens_per_s"],
            "ttft_p50_s": summary["ttft"]["p50_s"],
            "ttft_p95_s": summary["ttft"]["p95_s"],
            "latency_p99_s": summary["latency"]["p99_s"],
            "wall_s": wall_s,
        }
        if shards > 1:
            snap = engine.collective_stats()
            entry["collective"] = {
                "topology": snap["topology"],
                "total_wire_bytes": snap["total_wire_bytes"],
                "wire_bytes_per_token": snap["total_wire_bytes"] / gen_tokens,
                "modeled_seconds": snap["total_modeled_seconds"],
                "ops": {
                    op: {
                        "calls": s["calls"],
                        "wire_bytes": s["wire_bytes"],
                    }
                    for op, s in snap["ops"].items()
                },
            }
        curve[str(shards)] = entry

    for shards in _SHARD_COUNTS[1:]:
        assert streams[shards] == streams[1], (
            f"{shards}-shard token streams diverged from single-device"
        )
    _results["scaling"] = {
        "quick": _QUICK,
        "n_requests": _N_REQUESTS,
        "trace_digest": workload.digest(),
        "model": "opt-1.3b",
        "byte_identical_outputs": True,
        "curve": curve,
    }


def test_modeled_interconnect_per_topology():
    """The hw-model side of the bill: all-reduce traffic per topology.

    Full-size llama-2-7b on the BitMoD accelerator, one generative
    request; wire bytes are schedule-optimal (identical across
    topologies) while time favors fully-connected meshes past 2 chips.
    """
    cfg = _zoo_config("llama-2-7b")
    accel = make_accelerator("bitmod")
    gen_len = 64 if _QUICK else 256
    modeled = {}
    for topology in ("ring", "fully_connected"):
        per_shards = {}
        for shards in (2, 4, 8):
            r = simulate_sharded(
                cfg, accel, "generative", 4,
                shards=shards, topology=topology, gen_len=gen_len,
            )
            per_shards[str(shards)] = {
                "interconnect_bytes": r.interconnect_bytes,
                "interconnect_bytes_per_token": r.interconnect_bytes / gen_len,
                "interconnect_time_ms": r.interconnect_cycles / 1e9 * 1e3,
                "time_ms": r.time_ms,
            }
        modeled[topology] = per_shards
    ring4 = modeled["ring"]["4"]
    fc4 = modeled["fully_connected"]["4"]
    assert ring4["interconnect_bytes"] == fc4["interconnect_bytes"]
    assert fc4["interconnect_time_ms"] < ring4["interconnect_time_ms"]
    _results["modeled_interconnect"] = {
        "model": "llama-2-7b",
        "accelerator": "bitmod",
        "weight_bits": 4,
        "gen_len": gen_len,
        "topologies": modeled,
    }


def test_zz_write_results():
    """Persist the collected numbers (runs last by name)."""
    assert _results, "no sharding benchmarks ran"
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
