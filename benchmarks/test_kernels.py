"""Micro-benchmarks of the core kernels.

These time the library's hot paths — Algorithm 1 quantization, the
GPTQ inner loop, Booth/LOD encoding, the bit-accurate PE — giving the
performance baseline a user of the library would care about.
"""

import numpy as np
import pytest

from repro.hw.bitserial import booth_encode, fixed_point_decompose
from repro.hw.pe import BitMoDPE
from repro.methods import GPTQ
from repro.models import CausalLM, get_model_config
from repro.quant import QuantConfig, quantize_tensor


@pytest.fixture(scope="module")
def big_weights():
    rng = np.random.default_rng(0)
    return rng.standard_normal((1024, 4096))


@pytest.mark.parametrize("dtype", ["int4_asym", "bitmod_fp4", "bitmod_fp3", "ant4", "olive4", "mx_fp4"])
def test_quantize_4m_weights(benchmark, big_weights, dtype):
    """Quantize a 4M-element tensor (per-group, G=128)."""
    cfg = QuantConfig(dtype=dtype)
    result = benchmark(quantize_tensor, big_weights, cfg)
    assert result.w_deq.shape == big_weights.shape


def test_model_forward_pass(benchmark):
    model = CausalLM(get_model_config("llama-2-7b"), seed=0)
    tokens = np.arange(128)[None, :] % model.config.sim_vocab
    out = benchmark(model.logits, tokens)
    assert out.shape[-1] == model.config.sim_vocab


def test_gptq_layer(benchmark, run_once):
    model = CausalLM(get_model_config("llama-2-7b"), seed=0)
    rng = np.random.default_rng(0)
    w = model.weights["layers.0.q_proj"]
    x = rng.standard_normal((256, w.shape[1]))
    gptq = GPTQ(QuantConfig(dtype="int3_asym"))
    out = run_once(gptq.quantize_weight, "q", w, x)
    assert out.shape == w.shape


def test_booth_encoding_throughput(benchmark):
    values = list(range(-128, 128))

    def encode_all():
        return [booth_encode(v, 8) for v in values]

    terms = benchmark(encode_all)
    assert len(terms) == 256


def test_lod_encoding_throughput(benchmark):
    values = [0.0, 0.5, -1.5, 2.0, -3.0, 4.0, 6.0, -8.0] * 32

    def encode_all():
        return [fixed_point_decompose(v) for v in values]

    terms = benchmark(encode_all)
    assert len(terms) == 256


def test_pe_group_dot(benchmark):
    rng = np.random.default_rng(0)
    pe = BitMoDPE()
    codes = rng.integers(-31, 32, size=128)
    acts = rng.standard_normal(128).astype(np.float16)
    terms = [booth_encode(int(c), 6) for c in codes]
    res = benchmark(pe.group_dot, terms, acts)
    assert res.cycles == 96


def test_pack_tensor_throughput(benchmark, big_weights):
    """Serialize a 4M-element BitMoD tensor to its DRAM image."""
    from repro.quant.packing import pack_tensor

    packed = benchmark(pack_tensor, big_weights, QuantConfig(dtype="bitmod_fp4"))
    assert packed.bits_per_weight < 4.5


def test_functional_gemm_small(benchmark, run_once):
    """Bit-accurate GEMM through the PE datapath (small, exhaustive)."""
    from repro.hw.functional import FunctionalGemm

    rng = np.random.default_rng(0)
    w = rng.standard_normal((2, 128))
    x = rng.standard_normal((2, 128)).astype(np.float16)
    res = run_once(FunctionalGemm(QuantConfig(dtype="bitmod_fp3")).run, x, w)
    assert res.output.shape == (2, 2)
