"""Micro-benchmarks of the core kernels.

These time the library's hot paths — Algorithm 1 quantization, the
GPTQ inner loop, Booth/LOD encoding, the bit-accurate PE, the
multi-backend functional GEMM and its autotuner — giving the
performance baseline a user of the library would care about.
Measured numbers are persisted to ``BENCH_kernels.json`` (same
convention as ``BENCH_serve.json``) so the performance trajectory is
tracked PR over PR; kernel measurements record the backend name,
thread count and tuned tile that produced them (older records without
those keys still load).

Set ``BENCH_QUICK=1`` to shrink the heavy fixtures (the CI quick-mode
job uses this; numbers are flagged ``quick_mode`` in the JSON).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.hw.bitserial import booth_encode, fixed_point_decompose
from repro.hw.pe import BitMoDPE
from repro.methods import GPTQ
from repro.models import CausalLM, get_model_config
from repro.quant import QuantConfig, quantize_tensor

_RESULTS_PATH = Path(__file__).parent / "BENCH_kernels.json"
_QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

_results = {"quick_mode": _QUICK}


def _record(name, **fields):
    _results[name] = fields


def _timeit(fn, *args, repeat=3):
    """Best-of-N wall time plus the last return value."""
    best = float("inf")
    out = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.fixture(scope="module")
def big_weights():
    rng = np.random.default_rng(0)
    shape = (256, 4096) if _QUICK else (1024, 4096)
    return rng.standard_normal(shape)


@pytest.mark.parametrize("dtype", ["int4_asym", "bitmod_fp4", "bitmod_fp3", "ant4", "olive4", "mx_fp4"])
def test_quantize_4m_weights(benchmark, big_weights, dtype):
    """Quantize a 4M-element tensor (per-group, G=128)."""
    cfg = QuantConfig(dtype=dtype)
    result = benchmark(quantize_tensor, big_weights, cfg)
    assert result.w_deq.shape == big_weights.shape
    _record(
        f"quantize_{dtype}",
        elements=int(big_weights.size),
        mean_s=benchmark.stats.stats.mean,
        elements_per_s=big_weights.size / benchmark.stats.stats.mean,
    )


def test_model_forward_pass(benchmark):
    model = CausalLM(get_model_config("llama-2-7b"), seed=0)
    tokens = np.arange(128)[None, :] % model.config.sim_vocab
    out = benchmark(model.logits, tokens)
    assert out.shape[-1] == model.config.sim_vocab


def test_gptq_layer(benchmark, run_once):
    model = CausalLM(get_model_config("llama-2-7b"), seed=0)
    rng = np.random.default_rng(0)
    w = model.weights["layers.0.q_proj"]
    x = rng.standard_normal((256, w.shape[1]))
    gptq = GPTQ(QuantConfig(dtype="int3_asym"))
    out = run_once(gptq.quantize_weight, "q", w, x)
    assert out.shape == w.shape


def test_booth_encoding_throughput(benchmark):
    values = list(range(-128, 128))

    def encode_all():
        return [booth_encode(v, 8) for v in values]

    terms = benchmark(encode_all)
    assert len(terms) == 256


def test_lod_encoding_throughput(benchmark):
    values = [0.0, 0.5, -1.5, 2.0, -3.0, 4.0, 6.0, -8.0] * 32

    def encode_all():
        return [fixed_point_decompose(v) for v in values]

    terms = benchmark(encode_all)
    assert len(terms) == 256


def test_pe_group_dot(benchmark):
    rng = np.random.default_rng(0)
    pe = BitMoDPE()
    codes = rng.integers(-31, 32, size=128)
    acts = rng.standard_normal(128).astype(np.float16)
    terms = [booth_encode(int(c), 6) for c in codes]
    res = benchmark(pe.group_dot, terms, acts)
    assert res.cycles == 96


def test_pe_group_dot_batch(benchmark):
    """Vectorized PE: an (8, 64) tile of group dot products per call."""
    from repro.hw.termtable import integer_term_table

    rng = np.random.default_rng(0)
    pe = BitMoDPE()
    table = integer_term_table(6)
    codes = rng.integers(0, table.n_codes, size=(64, 128))
    sign, exp, man, bsig = table.lookup(codes)
    acts = rng.standard_normal((8, 128)).astype(np.float16)
    res = benchmark(pe.group_dot_batch, sign, exp, man, bsig, acts)
    assert res.cycles == 96
    assert res.mantissa.shape == (8, 64)
    _record(
        "pe_group_dot_batch",
        tile_outputs=8 * 64,
        mean_s=benchmark.stats.stats.mean,
        group_dots_per_s=8 * 64 / benchmark.stats.stats.mean,
    )


def test_pack_tensor_throughput(benchmark, big_weights):
    """Serialize a 4M-element BitMoD tensor to its DRAM image."""
    from repro.quant.packing import pack_tensor

    packed = benchmark(pack_tensor, big_weights, QuantConfig(dtype="bitmod_fp4"))
    assert packed.bits_per_weight < 4.5
    _record(
        "pack_tensor_bitmod_fp4",
        elements=int(big_weights.size),
        mean_s=benchmark.stats.stats.mean,
        elements_per_s=big_weights.size / benchmark.stats.stats.mean,
    )


def test_functional_gemm_small(benchmark, run_once):
    """Bit-accurate GEMM through the PE datapath (small, exhaustive)."""
    from repro.hw.functional import FunctionalGemm

    rng = np.random.default_rng(0)
    w = rng.standard_normal((2, 128))
    x = rng.standard_normal((2, 128)).astype(np.float16)
    res = run_once(FunctionalGemm(QuantConfig(dtype="bitmod_fp3")).run, x, w)
    assert res.output.shape == (2, 2)


def _acceptance_task(k):
    """The acceptance-criteria GEMM: (8x512) x (k x 512) bitmod_fp4."""
    from repro.hw.functional import FunctionalGemm
    from repro.kernels.base import GemmTask
    from repro.quant.packing import pack_tensor

    rng = np.random.default_rng(0)
    w = rng.standard_normal((k, 512))
    x = rng.standard_normal((8, 512)).astype(np.float16)
    cfg = QuantConfig(dtype="bitmod_fp4")
    gemm = FunctionalGemm(cfg)
    task = GemmTask(
        x=gemm._validated_shapes(x, w.shape),
        packed=pack_tensor(w, cfg),
        dtype=gemm.dtype,
        pe_config=gemm.pe.config,
    )
    return gemm, task, x, w


def test_functional_gemm_tile():
    """The acceptance-criteria GEMM: (8x512) x (512x512) bitmod_fp4.

    Times the dispatched kernel engine on the full tile and the scalar
    reference on a 1/8 column slice (extrapolated x8 — the full scalar
    run is prohibitively slow, which is the point), asserts bit-exact
    agreement on the slice, and requires the >=10x speedup the
    vectorized kernel layer was built for.  The JSON record keeps the
    original keys (``vectorized_s`` is the dispatched engine's time)
    and adds the backend name, thread count and tile that ran.
    """
    from repro.kernels.dispatch import get_dispatcher

    k = 128 if _QUICK else 512
    k_ref = max(k // 8, 16)
    gemm, task, x, w = _acceptance_task(k)
    backend, tile = get_dispatcher().resolve(task)

    vec_s, vec = _timeit(
        gemm.run_packed, x, task.packed, repeat=1 if _QUICK else 2
    )
    scalar_slice_s, scalar_slice = _timeit(gemm.run_scalar, x, w[:k_ref], repeat=1)
    vec_slice = gemm.run(x, w[:k_ref])

    # Bit-exact equivalence on the measured slice.
    np.testing.assert_array_equal(scalar_slice.output, vec_slice.output)
    assert scalar_slice.pe_cycles == vec_slice.pe_cycles
    assert scalar_slice.groups_processed == vec_slice.groups_processed

    scalar_est_s = scalar_slice_s * (k / k_ref)
    speedup = scalar_est_s / vec_s
    _record(
        "functional_gemm_tile",
        m=8, d=512, k=k, dtype="bitmod_fp4",
        vectorized_s=vec_s,
        scalar_slice_k=k_ref,
        scalar_slice_s=scalar_slice_s,
        scalar_estimated_s=scalar_est_s,
        scalar_extrapolated=True,
        speedup=speedup,
        pe_cycles=int(vec.pe_cycles),
        outputs_per_s=8 * k / vec_s,
        backend=backend.name,
        threads=None if tile is None else tile.threads,
        tile=None if tile is None else tile.to_dict(),
    )
    # Quick mode (CI shared runners) records but does not gate on the
    # one-shot wall-clock ratio; the full run asserts the 10x target
    # with a wide margin (~45x measured).
    if not _QUICK:
        assert speedup >= 10.0, f"dispatched GEMM only {speedup:.1f}x faster"


def test_kernel_backend_matrix():
    """Acceptance: every runnable backend on the (8x512)x(512x512)
    bitmod_fp4 GEMM, warm-tuned; all outputs bit-identical; the
    fastest must beat the numpy vectorized backend by >=4x.
    """
    from repro.kernels import Autotuner, TileSpec, available_backends, get_backend

    k = 128 if _QUICK else 512
    _gemm, task, _x, _w = _acceptance_task(k)

    # Warm-tune: one search (memoized in the store), then replayed.
    tuner = Autotuner(repeats=1 if _QUICK else 2)
    rec = tuner.decide(task)

    timings = {}
    reference_out = None
    for name in available_backends():
        backend = get_backend(name)
        if name == "reference" or backend.supports(task) is not None:
            continue
        if rec is not None and rec["backend"] == name:
            tile = TileSpec.from_dict(rec["tile"])
        else:
            tile = backend.default_tile(task)
        backend.run(task, tile)  # warm: per-tensor prep, JIT
        seconds, out = _timeit(
            backend.run, task, tile, repeat=1 if _QUICK else 3
        )
        if reference_out is None:
            reference_out = out
        else:
            np.testing.assert_array_equal(out.output, reference_out.output)
            assert out.pe_cycles == reference_out.pe_cycles
        timings[name] = seconds
        _record(
            f"gemm_backend_{name}",
            m=8, d=512, k=k, dtype="bitmod_fp4",
            backend=name,
            threads=tile.threads,
            tile=tile.to_dict(),
            seconds=seconds,
            outputs_per_s=8 * k / seconds,
        )

    assert "numpy" in timings
    best = min(timings, key=timings.get)
    speedup = timings["numpy"] / timings[best]
    _record(
        "gemm_backend_best",
        backend=best,
        speedup_vs_numpy=speedup,
        tuned_backend=None if rec is None else rec["backend"],
        tuned_tile=None if rec is None else rec["tile"],
    )
    if not _QUICK:
        assert speedup >= 4.0, (
            f"fastest backend {best!r} only {speedup:.1f}x over numpy"
        )


def test_autotune_cold_then_warm(tmp_path):
    """Cold search timings vs the warm memoized path (which must run
    zero trials)."""
    from repro.hw.pe import PEConfig
    from repro.kernels import Autotuner
    from repro.kernels.base import GemmTask
    from repro.pipeline.store import CacheStore
    from repro.quant.packing import pack_tensor

    rng = np.random.default_rng(0)
    cfg = QuantConfig(dtype="bitmod_fp4")
    w = rng.standard_normal((16, 256))
    x = rng.standard_normal((8, 256)).astype(np.float16)
    task = GemmTask(
        x=x, packed=pack_tensor(w, cfg),
        dtype=cfg.resolve_dtype(), pe_config=PEConfig(),
    )
    store = CacheStore(root=tmp_path)

    cold = Autotuner(store=store, repeats=1)
    t0 = time.perf_counter()
    rec = cold.decide(task)
    cold_s = time.perf_counter() - t0
    assert rec is not None and cold.trials_run > 0

    warm = Autotuner(store=store, repeats=1)
    t0 = time.perf_counter()
    warm_rec = warm.decide(task)
    warm_s = time.perf_counter() - t0
    assert warm.trials_run == 0, "warm autotune path must skip the search"
    assert warm_rec["backend"] == rec["backend"]

    _record(
        "autotune_cold_then_warm",
        cold_s=cold_s,
        warm_s=warm_s,
        cold_trials=cold.trials_run,
        warm_trials=warm.trials_run,
        backend=rec["backend"],
        tile=rec["tile"],
        threads=rec["tile"]["threads"],
    )


def test_zz_write_results():
    """Persist the collected numbers (runs last by name)."""
    assert len(_results) > 1, "no kernel benchmarks recorded"
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
