"""Benchmark-suite configuration.

The experiment benchmarks regenerate paper tables; they run each
experiment exactly once (``pedantic`` mode) because the point is the
artifact, not micro-timing stability.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
