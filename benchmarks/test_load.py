"""Load-test benchmarks: trace-driven serving under Poisson traffic.

Drives seeded workloads from :mod:`repro.load` at a live
:class:`~repro.serve.server.ServeServer` and writes the measured tail
latencies, throughput, shed rate, and prefix-cache hit rate to
``BENCH_load.json`` next to this file.  The headline run is the
acceptance bar for the load subsystem: a seeded 1000-request Poisson
trace (``BENCH_QUICK=1`` trims it to 200) must finish with zero lost
requests and a reproducible trace digest.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.load import (
    MixedTraffic,
    PoissonArrivals,
    SharedPrefixChat,
    LongDocSummarization,
    Workload,
    default_policy,
    run_load,
)
from repro.models import CausalLM, get_model_config
from repro.serve import InferenceEngine, PrefixKVCache

_RESULTS_PATH = Path(__file__).parent / "BENCH_load.json"
_QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")
_N_REQUESTS = 200 if _QUICK else 1000
_SEED = 2025

_results = {}


def _workload(n_requests=_N_REQUESTS, seed=_SEED):
    """The reference trace: mostly shared-prefix chat, some long docs."""
    return Workload(
        arrivals=PoissonArrivals(400.0),
        traffic=MixedTraffic(
            [
                (
                    0.8,
                    SharedPrefixChat(
                        n_prefixes=4,
                        prefix_tokens=48,
                        suffix_tokens=(4, 12),
                        max_new_tokens=(4, 8),
                    ),
                ),
                (
                    0.2,
                    LongDocSummarization(
                        doc_tokens=(48, 96), max_new_tokens=(4, 6)
                    ),
                ),
            ]
        ),
        n_requests=n_requests,
        seed=seed,
        vocab=2048,
    )


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(
        CausalLM(get_model_config("opt-1.3b"), seed=0),
        prefix_cache=PrefixKVCache(),
    )


def test_trace_digest_reproducible():
    """Same seed → byte-identical trace, run to run."""
    first = _workload()
    second = _workload()
    assert first.digest() == second.digest()
    assert first.digest() != _workload(seed=_SEED + 1).digest()
    _results["trace"] = {
        "n_requests": _N_REQUESTS,
        "seed": _SEED,
        "digest": first.digest(),
    }


def test_poisson_load_run(engine):
    """The headline load run: zero lost requests at full scale."""
    workload = _workload()
    t0 = time.perf_counter()
    result = run_load(engine, workload, max_batch_tokens=512, poll_every_s=0.25)
    wall_s = time.perf_counter() - t0
    summary = result.summary()

    assert summary["lost"] == 0, "load harness lost requests"
    assert summary["errors"] == 0, "unstructured errors under load"
    assert (
        summary["completed"] + summary["shed"] + summary["expired"]
        == _N_REQUESTS
    )
    assert summary["prefix_cache"]["hits"] > 0

    policy = default_policy(ttft_p95_s=30.0, latency_p99_s=120.0)
    _results["poisson_load"] = {
        "quick": _QUICK,
        "n_requests": _N_REQUESTS,
        "completed": summary["completed"],
        "shed": summary["shed"],
        "expired": summary["expired"],
        "lost": summary["lost"],
        "shed_rate": summary["shed_rate"],
        "wall_s": wall_s,
        "ttft_p50_s": summary["ttft"]["p50_s"],
        "ttft_p95_s": summary["ttft"]["p95_s"],
        "ttft_p99_s": summary["ttft"]["p99_s"],
        "tbt_p50_s": summary["tbt"]["p50_s"],
        "latency_p50_s": summary["latency"]["p50_s"],
        "latency_p99_s": summary["latency"]["p99_s"],
        "tokens_per_s": summary["tokens_per_s"],
        "prefix_cache_hit_rate": summary["prefix_cache"]["hit_rate"],
        "prefix_reused_tokens": result.metrics["tokens"]["prefill_reused"],
        "slo": policy.to_dict(summary),
        "trace_digest": workload.digest(),
    }


def test_prefix_cache_payoff(engine):
    """Shared-prefix traffic with the cache vs a cold engine."""
    n = 50 if _QUICK else 150
    workload = Workload(
        arrivals=PoissonArrivals(400.0),
        traffic=SharedPrefixChat(
            n_prefixes=2,
            prefix_tokens=64,
            suffix_tokens=(4, 8),
            max_new_tokens=(4, 6),
        ),
        n_requests=n,
        seed=_SEED,
        vocab=2048,
    )
    engine.prefix_cache.clear()
    cached = run_load(engine, workload, max_batch_tokens=512)
    plain = run_load(
        InferenceEngine(engine.model), workload, max_batch_tokens=512
    )
    assert cached.completed == n and plain.completed == n
    # Identical decode streams — reuse is invisible to clients.
    assert {r.index: r.tokens for r in cached.records} == {
        r.index: r.tokens for r in plain.records
    }
    stats = cached.prefix_stats
    _results["prefix_payoff"] = {
        "n_requests": n,
        "hit_rate": stats["hit_rate"],
        "reused_tokens": cached.metrics["tokens"]["prefill_reused"],
        "prefill_tokens_cached": cached.metrics["tokens"]["prefill"],
        "prefill_tokens_plain": plain.metrics["tokens"]["prefill"],
        "wall_s_cached": cached.wall_s,
        "wall_s_plain": plain.wall_s,
        "byte_identical_outputs": True,
    }


def test_zz_write_results():
    """Persist the collected numbers (runs last by name)."""
    assert _results, "no load benchmarks ran"
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
