"""Serving-path benchmarks: decode throughput and scheduler capacity.

Times the two claims the serving subsystem makes — incremental
KV-cache decode beats repeated full forwards, and the continuous
batcher sustains multi-request throughput — and writes the measured
numbers to ``BENCH_serve.json`` next to this file.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.models import CausalLM, get_model_config
from repro.quant import QuantConfig
from repro.serve import (
    ContinuousBatcher,
    GenerationConfig,
    InferenceEngine,
    Request,
    hardware_report,
    load_artifact,
    save_artifact,
)

_RESULTS_PATH = Path(__file__).parent / "BENCH_serve.json"
_PROMPT_LEN = 48
_GEN_LEN = 48

_results = {}


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    """An engine over a packed-and-reloaded bitmod_fp4 model."""
    model = CausalLM(get_model_config("opt-1.3b"), seed=0)
    path = tmp_path_factory.mktemp("artifact") / "opt.rsrv"
    save_artifact(path, model, QuantConfig(dtype="bitmod_fp4"))
    return InferenceEngine.from_artifact(load_artifact(path))


def _decode_full_forward(model, prompt, n_tokens):
    """The naive serving loop: recompute the whole sequence per token."""
    tokens = list(prompt)
    for _ in range(n_tokens):
        row = model.logits(np.array(tokens))[0, -1]
        tokens.append(int(np.argmax(row)))
    return tokens[len(prompt):]


def test_incremental_vs_full_forward_decode(run_once, engine):
    """Incremental KV-cache decode must beat per-token full forwards."""
    prompt = np.arange(_PROMPT_LEN) % engine.model.config.sim_vocab
    gen_cfg = GenerationConfig(max_new_tokens=_GEN_LEN)

    t0 = time.perf_counter()
    slow_tokens = _decode_full_forward(engine.model, prompt, _GEN_LEN)
    full_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    seq = run_once(engine.generate, prompt, gen_cfg)
    incr_s = time.perf_counter() - t0

    assert seq.generated == slow_tokens  # same greedy stream
    assert incr_s < full_s, "KV-cache decode slower than full forwards"
    _results["incremental_decode"] = {
        "prompt_len": _PROMPT_LEN,
        "gen_len": _GEN_LEN,
        "full_forward_s": full_s,
        "incremental_s": incr_s,
        "speedup": full_s / incr_s,
        "decode_tokens_per_s": _GEN_LEN / incr_s,
    }


def test_batch_scheduler_throughput(engine):
    """Continuous batching over 16 staggered requests."""
    batcher = ContinuousBatcher(engine, max_batch_tokens=128)
    rng = np.random.default_rng(0)
    n_requests = 16
    t0 = time.perf_counter()
    for rid in range(n_requests):
        batcher.submit(
            Request(
                request_id=rid,
                prompt=rng.integers(0, 2048, size=int(rng.integers(8, 32))),
                generation=GenerationConfig(max_new_tokens=16),
                submitted_at=time.monotonic(),
            )
        )
    batcher.run_until_idle()
    wall_s = time.perf_counter() - t0
    m = batcher.metrics
    assert m.completed == n_requests
    _results["batch_scheduler"] = {
        "n_requests": n_requests,
        "max_batch_tokens": batcher.max_batch_tokens,
        "wall_s": wall_s,
        "generated_tokens": m.decode_tokens,
        "generated_tokens_per_s": m.decode_tokens / wall_s,
        "total_tokens_per_s": m.total_tokens / wall_s,
        "ttft_p95_s": m.ttft.percentile(95),
        "latency_p95_s": m.latency.percentile(95),
    }


def test_modeled_hardware_cost(engine):
    """Accelerator-modeled energy for a reference request mix."""
    from repro.serve import RequestTrace

    traces = [RequestTrace(prompt_len=_PROMPT_LEN, gen_len=_GEN_LEN)] * 8
    report = hardware_report("opt-1.3b", traces, weight_bits=4.125)
    _results["modeled_hardware"] = {
        "accelerator": report.accelerator,
        "weight_bits": report.weight_bits,
        "energy_per_request_uj": report.energy_per_request_uj,
        "time_per_request_ms": report.total_time_ms / report.n_requests,
    }


def test_zz_write_results():
    """Persist the collected numbers (runs last by name)."""
    assert _results, "no serving benchmarks ran"
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
