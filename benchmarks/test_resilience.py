"""Benchmarks of the resilience layer: the clean path must be ~free.

Fault-injection hooks, cache integrity envelopes and run journals all
sit on the hot path of every run, so ``BENCH_resilience.json`` records
what they cost when nothing is failing:

* **micro** — nanoseconds per disabled :func:`faults.enabled` /
  :func:`faults.fire` call, per integrity-envelope digest, and per
  journal append;
* **overhead** — a cold cell grid is timed end-to-end, the number of
  resilience events it triggers (fault-site guards, envelope digests,
  journal appends) is counted, and the estimated clean-path overhead —
  events x per-event cost / wall time — must stay **under 2 %** (the
  ISSUE 7 acceptance bar; measured it is orders of magnitude under).
"""

import json
import os
import time
from pathlib import Path

from repro.pipeline import CellGrid, Engine
from repro.pipeline.context import clear_context
from repro.pipeline.store import CacheStore, _payload_digest
from repro.quant.config import QuantConfig
from repro.resilience import RunJournal, atomic_write_json, faults

_RESULTS_PATH = Path(__file__).parent / "BENCH_resilience.json"
_QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

_results = {"quick_mode": _QUICK}

_MICRO_N = 20_000 if _QUICK else 100_000

#: A representative cell-result payload for digest costing.
_PAYLOAD = json.dumps(
    {"ppl": 14.6252, "fp16_ppl": 14.62, "divergence": 0.0003, "n_items": 128},
    sort_keys=True,
    separators=(",", ":"),
)


def _ns_per_call(fn, n):
    t0 = time.perf_counter_ns()
    for _ in range(n):
        fn()
    return (time.perf_counter_ns() - t0) / n


def test_disabled_fault_hook_cost():
    faults.clear_fault_plan()
    os.environ.pop("REPRO_FAULTS", None)
    assert not faults.enabled()

    per_enabled_ns = _ns_per_call(faults.enabled, _MICRO_N)
    per_fire_ns = _ns_per_call(lambda: faults.fire("bench.site"), _MICRO_N)

    _results["micro"] = {
        "disabled_enabled_ns": per_enabled_ns,
        "disabled_fire_ns": per_fire_ns,
        "iterations": _MICRO_N,
    }
    # A disabled hook is one global load and a None check; it must stay
    # far under a microsecond even on a loaded CI machine.
    assert per_enabled_ns < 5_000
    assert per_fire_ns < 5_000


def test_envelope_and_journal_cost(tmp_path):
    per_digest_ns = _ns_per_call(lambda: _payload_digest(_PAYLOAD), _MICRO_N)

    n_appends = 2_000 if _QUICK else 10_000
    with RunJournal(tmp_path / "journal.jsonl") as j:
        per_append_ns = _ns_per_call(
            lambda: j.append({"event": "cells", "keys": ["k" * 16]}), n_appends
        )

    _results["micro_io"] = {
        "envelope_digest_ns": per_digest_ns,
        "journal_append_ns": per_append_ns,
        "append_iterations": n_appends,
    }
    assert per_digest_ns < 50_000
    # One flushed line per completed work unit; milliseconds would
    # show up on real sweeps, microseconds do not.
    assert per_append_ns < 1_000_000


def test_clean_path_overhead_under_2_percent(tmp_path):
    grid = CellGrid(
        rows=tuple(
            (dt, QuantConfig(dtype=dt)) for dt in ("int4_asym", "bitmod_fp4")
        ),
        models=("opt-1.3b", "phi-2b"),
        datasets=("wikitext",),
        quick=True,
    )
    n_cells = len(grid.specs())

    clear_context()
    journal = RunJournal(tmp_path / "journal.jsonl")
    with Engine(store=CacheStore(tmp_path / "cache"), journal=journal) as engine:
        t0 = time.perf_counter_ns()
        engine.run_grid(grid)
        wall_ns = time.perf_counter_ns() - t0
    journal.close()

    # Resilience events this workload triggered on its clean path:
    # one fault guard per computed cell (pipeline.cell), one guard +
    # digest per cache put (cache.put + envelope), one digest per cache
    # read-back, and the journal appends actually written.
    n_puts = n_cells
    n_journal = len(RunJournal(tmp_path / "journal.jsonl").records())
    guard_ns = _results["micro"]["disabled_fire_ns"]
    digest_ns = _results["micro_io"]["envelope_digest_ns"]
    append_ns = _results["micro_io"]["journal_append_ns"]
    est_ns = (
        (n_cells + n_puts) * guard_ns
        + 2 * n_puts * digest_ns
        + n_journal * append_ns
    )
    est_overhead = est_ns / wall_ns

    _results["overhead"] = {
        "workload": f"cold {n_cells}-cell quick grid, journaled",
        "wall_s": wall_ns / 1e9,
        "fault_guard_events": n_cells + n_puts,
        "digest_events": 2 * n_puts,
        "journal_appends": n_journal,
        "estimated_clean_path_overhead": est_overhead,
    }
    assert est_overhead < 0.02, (
        f"clean-path resilience overhead estimate {est_overhead:.2%} exceeds "
        f"the 2% budget on a {wall_ns / 1e9:.2f}s workload"
    )


def test_zz_write_results():
    atomic_write_json(_RESULTS_PATH, _results, indent=2)
    print(f"\nwrote {_RESULTS_PATH}")
