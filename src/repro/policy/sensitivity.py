"""Layer-sensitivity profiling through cached pipeline cells.

Which layers can afford low precision?  The profiler answers by
scoring every (layer, candidate-config) pair with one of two metrics,
each evaluated as a content-addressed pipeline cell so the expensive
half amortizes through the PR-3 store across budgets, solvers, and
runs:

* ``"dppl"`` — quantize *only* that layer (single-layer
  :class:`~repro.policy.plan.QuantPlan`, everything else FP16) and
  measure the perplexity increase over the FP16 anchor.  The gold
  metric: a real forward pass per cell.
* ``"layer_mse"`` — the calibration-activation output MSE of
  :func:`repro.methods.base.layer_output_mse`: one matmul per cell,
  two orders of magnitude cheaper, and the standard proxy of the
  mixed-precision literature.

Scores are "damage" values: lower is better, and a higher-precision
candidate never needs to score better — solvers only assume the
per-layer orderings the scores actually measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.pipeline.cells import CellSpec
from repro.policy.plan import QuantPlan, layer_names
from repro.quant.config import QuantConfig

__all__ = ["SensitivityProfile", "profile_sensitivity", "SENSITIVITY_METRICS"]

SENSITIVITY_METRICS = ("dppl", "layer_mse")


@dataclass(frozen=True)
class SensitivityProfile:
    """Per-layer damage scores for a candidate-config ladder.

    ``scores[i][j]`` is the damage of quantizing ``layers[i]`` with
    ``candidates[j]`` (all other layers FP16).
    """

    model: str
    dataset: str
    metric: str
    quick: bool
    candidates: Tuple[QuantConfig, ...]
    layers: Tuple[str, ...]
    scores: Tuple[Tuple[float, ...], ...]

    def score(self, layer: str, candidate: int) -> float:
        return self.scores[self.layers.index(layer)][candidate]

    def ranked_layers(self, candidate: int) -> List[str]:
        """Layers most-damaged-first under one candidate config."""
        order = sorted(
            range(len(self.layers)),
            key=lambda i: (-self.scores[i][candidate], self.layers[i]),
        )
        return [self.layers[i] for i in order]

    def cache_key(self) -> str:
        from repro.pipeline.keys import stable_digest

        return stable_digest(
            {
                "model": self.model,
                "dataset": self.dataset,
                "metric": self.metric,
                "quick": self.quick,
                "candidates": [c.cache_key() for c in self.candidates],
                "layers": list(self.layers),
                "scores": [list(row) for row in self.scores],
            }
        )


def _probe_spec(
    model: str, dataset: str, metric: str, layer: str, config: QuantConfig, quick: bool, seed: int
) -> CellSpec:
    plan = QuantPlan.single_layer(layer, config)
    if metric == "dppl":
        return CellSpec(model=model, dataset=dataset, kind="ppl", plan=plan, quick=quick, seed=seed)
    return CellSpec(
        model=model, dataset=dataset, kind="layer_mse", plan=plan, quick=quick, seed=seed
    )


def profile_sensitivity(
    model: str,
    candidates: Sequence[QuantConfig],
    dataset: str = "wikitext",
    metric: str = "dppl",
    layers: Optional[Sequence[str]] = None,
    quick: bool = False,
    seed: int = 0,
    engine=None,
) -> SensitivityProfile:
    """Score every (layer, candidate) pair as cached pipeline cells.

    One cell per pair, deduplicated and fanned out by the engine
    (``--jobs N`` applies), persisted in the content-addressed store —
    a second profiling of the same (model, ladder, metric) is pure
    replay, regardless of which solver or budget asks.
    """
    if metric not in SENSITIVITY_METRICS:
        raise ValueError(
            f"unknown sensitivity metric {metric!r} "
            f"(known: {', '.join(SENSITIVITY_METRICS)})"
        )
    if not candidates:
        raise ValueError("profile_sensitivity needs at least one candidate config")
    if engine is None:
        from repro.pipeline import get_engine

        engine = get_engine()

    from repro.models.zoo import get_model_config

    config = get_model_config(model)
    names = list(layers) if layers is not None else layer_names(config)

    specs = [
        _probe_spec(model, dataset, metric, layer, cand, quick, seed)
        for layer in names
        for cand in candidates
    ]
    cells = engine.run(specs)

    n_cand = len(candidates)
    rows: List[Tuple[float, ...]] = []
    for i, _layer in enumerate(names):
        chunk = cells[i * n_cand : (i + 1) * n_cand]
        if metric == "dppl":
            anchor = engine.fp16_ppl(model, dataset)
            rows.append(tuple(float(c["ppl"] - anchor) for c in chunk))
        else:
            rows.append(tuple(float(c["layer_mse"]) for c in chunk))

    return SensitivityProfile(
        model=model,
        dataset=dataset,
        metric=metric,
        quick=quick,
        candidates=tuple(candidates),
        layers=tuple(names),
        scores=tuple(rows),
    )
