"""Allocation solvers: sensitivity scores -> per-layer precision plans.

Three solvers cover the deployment scenarios of the ROADMAP:

* :func:`uniform_plan` — every layer shares one config; reproduces the
  historical global-``QuantConfig`` behaviour bit-for-bit.
* :func:`threshold_plan` — per layer, the cheapest candidate whose
  measured damage stays under a quality threshold (the per-layer
  generalization of the accelerator policy that
  ``experiments.policy.choose_weight_bits`` applies per model).
* :func:`budget_plan` — greedy knapsack under a full-size
  weight-memory budget: start every layer at the cheapest candidate,
  then repeatedly buy the upgrade with the best damage-reduction per
  extra byte until the next upgrade no longer fits.  The upgrade
  sequence is budget-independent, so a larger budget takes a strict
  superset of upgrades — memory-vs-damage is monotone by construction.

:func:`accelerator_weight_bits` is the engine-backed replacement for
the old ``lru_cache`` memo in ``experiments/policy.py``: the measured
delta-perplexity lives in content-addressed pipeline cells (honouring
``--cache-dir``/``--no-cache`` reconfiguration within a process, which
the module-level memo did not).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.models.config import ModelConfig
from repro.policy.plan import QuantPlan, config_memory_bits, layer_names
from repro.policy.sensitivity import SensitivityProfile, profile_sensitivity
from repro.quant.config import QuantConfig

__all__ = [
    "uniform_plan",
    "threshold_plan",
    "budget_plan",
    "plan_floor_bytes",
    "make_plan",
    "accelerator_weight_bits",
    "QUALITY_THRESHOLD_DPPL",
]

#: Acceptable perplexity increase over FP16 for a "lossy" deployment.
QUALITY_THRESHOLD_DPPL = 1.0


def uniform_plan(
    config: ModelConfig, qconfig: QuantConfig, name: Optional[str] = None
) -> QuantPlan:
    """Every decoder-block linear of ``config`` quantized with ``qconfig``."""
    return QuantPlan.uniform(qconfig, layer_names(config), name=name)


# ----------------------------------------------------------------------
# Shared cost model: full-size bytes attributable to one sim layer.
# ----------------------------------------------------------------------


def _layer_costs(
    profile: SensitivityProfile, config: ModelConfig
) -> Dict[str, List[float]]:
    """Full-size storage bytes per (layer, candidate).

    Each sim layer stands for ``n_layers / sim_layers`` full-size
    instances of its projection, so its byte share is the projection's
    total weight elements divided by ``sim_layers``.
    """
    gemms = {g.name: g for g in config.block_gemms(1)}
    costs: Dict[str, List[float]] = {}
    for layer in profile.layers:
        proj = layer.split(".")[-1]
        gemm = gemms[proj]
        share = gemm.weight_elements / config.sim_layers
        costs[layer] = [
            share * config_memory_bits(c, gemm.k) / 8.0 for c in profile.candidates
        ]
    return costs


def _cost_order(costs: Sequence[float], scores: Sequence[float]) -> List[int]:
    """Candidate indices cheapest-first (ties: lower damage first)."""
    return sorted(range(len(costs)), key=lambda j: (costs[j], scores[j], j))


def plan_floor_bytes(
    candidates: Sequence[QuantConfig], config: ModelConfig
) -> float:
    """Bytes of the all-cheapest assignment — the lowest budget any
    plan over ``candidates`` can meet."""
    total = 0.0
    for gemm in config.block_gemms(1):
        total += gemm.weight_elements * min(
            config_memory_bits(c, gemm.k) for c in candidates
        ) / 8.0
    return total


def threshold_plan(
    profile: SensitivityProfile,
    config: ModelConfig,
    threshold: float,
    name: Optional[str] = None,
) -> QuantPlan:
    """Cheapest candidate per layer whose damage is within ``threshold``.

    Layers where even the most expensive candidate exceeds the
    threshold get that most expensive (least damaging by cost order)
    candidate — the per-layer analogue of ANT/OliVe falling back to
    8-bit when their 4-bit quality is unacceptable.
    """
    costs = _layer_costs(profile, config)
    assignment: Dict[str, QuantConfig] = {}
    for i, layer in enumerate(profile.layers):
        order = _cost_order(costs[layer], profile.scores[i])
        pick = order[-1]
        for j in order:
            if profile.scores[i][j] <= threshold:
                pick = j
                break
        assignment[layer] = profile.candidates[pick]
    return QuantPlan.from_mapping(
        assignment, name=name or f"threshold:{threshold:g}"
    )


def budget_plan(
    profile: SensitivityProfile,
    config: ModelConfig,
    budget_bytes: float,
    name: Optional[str] = None,
) -> QuantPlan:
    """Greedy knapsack under a full-size weight-memory budget.

    Raises :class:`ValueError` when even the all-cheapest assignment
    exceeds ``budget_bytes``.  The greedy upgrade sequence does not
    depend on the budget (it stops at the first upgrade that does not
    fit), so plans for increasing budgets form a chain: more memory
    never increases total measured damage.
    """
    costs = _layer_costs(profile, config)
    orders = {
        layer: _cost_order(costs[layer], profile.scores[i])
        for i, layer in enumerate(profile.layers)
    }
    # Position in each layer's cheapest-first candidate order.
    position = {layer: 0 for layer in profile.layers}
    total = sum(costs[layer][orders[layer][0]] for layer in profile.layers)
    if total > budget_bytes:
        raise ValueError(
            f"budget {budget_bytes / 1e6:.1f} MB is below the floor "
            f"{total / 1e6:.1f} MB of the cheapest candidate assignment"
        )

    def next_upgrade(layer: str) -> Optional[Tuple[float, float, float, int]]:
        """(ratio, gain, extra, target_pos) of the layer's best next step.

        The target is the nearest *strictly improving* rung up the
        layer's cost order — dominated rungs (more bytes, no less
        damage) are jumped over rather than terminating the chain, so
        a cheap candidate that happens to score worse than its
        predecessor never blocks a genuinely better one above it.
        """
        i = profile.layers.index(layer)
        order = orders[layer]
        pos = position[layer]
        cur_score = profile.scores[i][order[pos]]
        cur_cost = costs[layer][order[pos]]
        for target in range(pos + 1, len(order)):
            gain = cur_score - profile.scores[i][order[target]]
            if gain <= 0.0:
                continue
            extra = costs[layer][order[target]] - cur_cost
            ratio = math.inf if extra <= 0.0 else gain / extra
            return (ratio, gain, extra, target)
        return None

    while True:
        best = None
        for layer in profile.layers:
            r = next_upgrade(layer)
            if r is None:
                continue
            key = (r[0], r[1], layer)
            if best is None or key > best[0]:
                best = (key, layer, r[2], r[3])
        if best is None:
            break
        _key, layer, extra, target = best
        if total + extra > budget_bytes:
            break
        position[layer] = target
        total += extra

    assignment = {
        layer: profile.candidates[orders[layer][position[layer]]]
        for layer in profile.layers
    }
    return QuantPlan.from_mapping(
        assignment, name=name or f"budget:{budget_bytes / 1e6:.0f}MB"
    )


# ----------------------------------------------------------------------
# High-level entry point (the DSE policy axis lands here).
# ----------------------------------------------------------------------


def make_plan(
    model: str,
    solver: str,
    candidates: Sequence[QuantConfig],
    budget_mb: Optional[float] = None,
    threshold: Optional[float] = None,
    metric: str = "layer_mse",
    dataset: str = "wikitext",
    quick: bool = False,
    engine=None,
    name: Optional[str] = None,
) -> QuantPlan:
    """Profile ``model`` and solve one plan.

    ``solver`` is ``"budget"`` (needs ``budget_mb``), ``"threshold"``
    (needs ``threshold``) or ``"uniform"`` (single candidate, no
    profiling).  Profiling cells amortize through the pipeline store
    across budgets and solvers.
    """
    from repro.models.zoo import get_model_config

    config = get_model_config(model)
    if solver == "uniform":
        if len(candidates) != 1:
            raise ValueError("uniform solver takes exactly one candidate config")
        return uniform_plan(config, candidates[0], name=name)
    if solver not in ("budget", "threshold"):
        raise ValueError(
            f"unknown plan solver {solver!r} (known: budget, threshold, uniform)"
        )
    profile = profile_sensitivity(
        model,
        candidates,
        dataset=dataset,
        metric=metric,
        quick=quick,
        engine=engine,
    )
    if solver == "budget":
        if budget_mb is None:
            raise ValueError("budget solver needs budget_mb")
        return budget_plan(profile, config, budget_mb * 1e6, name=name)
    if threshold is None:
        raise ValueError("threshold solver needs threshold")
    return threshold_plan(profile, config, threshold, name=name)


# ----------------------------------------------------------------------
# The accelerator weight-precision policy (Fig. 7/8).
# ----------------------------------------------------------------------


def accelerator_weight_bits(
    accel: str,
    model: str,
    task: str,
    lossless: bool = False,
    threshold: float = QUALITY_THRESHOLD_DPPL,
    engine=None,
) -> int:
    """Weight precision an accelerator uses on a model/task.

    * ``fp16`` — always 16.
    * ``bitmod`` lossless — INT6 (near-zero loss per Table II).
    * ``bitmod`` lossy — 4-bit (discriminative) / 3-bit (generative),
      the paper's Section V-C configuration.
    * ``ant`` / ``olive`` — 4-bit when their own per-channel datatype
      stays within ``threshold`` perplexity increase, else 8-bit.

    The measured delta-perplexity is an engine cell: cached in the
    content-addressed store (and the engine's in-process memo), so it
    follows ``--cache-dir``/``--no-cache`` reconfiguration instead of
    living in a module-level memo.
    """
    if accel == "fp16":
        return 16
    if accel == "bitmod":
        if lossless:
            return 6
        return 4 if task == "discriminative" else 3
    if accel in ("ant", "olive"):
        if engine is None:
            from repro.pipeline import get_engine

            engine = get_engine()
        cell = engine.ppl(
            model, "wikitext", QuantConfig(dtype=f"{accel}4", granularity="channel")
        )
        dppl = cell["ppl"] - engine.fp16_ppl(model, "wikitext")
        return 4 if dppl <= threshold else 8
    raise KeyError(f"unknown accelerator {accel!r}")
