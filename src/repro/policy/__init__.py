"""repro.policy — per-layer mixed-precision planning engine.

The subsystem that turns the paper's adaptive-datatype idea into
model-level deployments:

* :mod:`repro.policy.plan` — :class:`QuantPlan`, the frozen
  layer-name -> :class:`~repro.quant.config.QuantConfig` mapping with
  a content-addressed ``cache_key()``, plus the memory/precision
  accounting that bridges plans into the hardware layer;
* :mod:`repro.policy.sensitivity` — per-layer damage profiling
  (delta-PPL or calibration output MSE) as cached pipeline cells;
* :mod:`repro.policy.solvers` — uniform / threshold / greedy-knapsack
  budget allocation, and the engine-backed accelerator precision
  policy behind Fig. 7/8.

Plans thread through every layer above the quantizer: evaluation
cells (``CellSpec.plan``), serve artifacts (per-layer packed dtypes),
the hardware simulator (``simulate_plan``), and the DSE policy axis
(``DesignSpace.policies``).
"""

from repro.policy.plan import (
    QuantPlan,
    config_memory_bits,
    layer_names,
    plan_gemm_bits,
    plan_weight_bytes,
)
from repro.policy.sensitivity import (
    SENSITIVITY_METRICS,
    SensitivityProfile,
    profile_sensitivity,
)
from repro.policy.solvers import (
    QUALITY_THRESHOLD_DPPL,
    accelerator_weight_bits,
    budget_plan,
    make_plan,
    plan_floor_bytes,
    threshold_plan,
    uniform_plan,
)

__all__ = [
    "QuantPlan",
    "layer_names",
    "config_memory_bits",
    "plan_weight_bytes",
    "plan_gemm_bits",
    "SensitivityProfile",
    "profile_sensitivity",
    "SENSITIVITY_METRICS",
    "uniform_plan",
    "threshold_plan",
    "budget_plan",
    "plan_floor_bytes",
    "make_plan",
    "accelerator_weight_bits",
    "QUALITY_THRESHOLD_DPPL",
]

#: Bump when plan-resolution semantics (profiling metrics, solver
#: behaviour) change incompatibly — cached DSE policy records key on it.
POLICY_SCHEMA_VERSION = 1
