"""Per-layer mixed-precision quantization plans.

A :class:`QuantPlan` is the first-class object behind the paper's
adaptive-datatype story at *model* granularity: a frozen mapping from
transformer layer names (the keys of ``CausalLM.named_linears()``,
e.g. ``"layers.0.q_proj"``) to the :class:`~repro.quant.config.QuantConfig`
each layer is quantized with.  Layers absent from a plan stay FP16 —
the convention the single-layer sensitivity probes rely on.

Plans are content-addressed: :meth:`QuantPlan.cache_key` composes the
per-layer ``QuantConfig.cache_key()`` digests, so plans flow through
the PR-3 content-addressed store exactly like uniform configs — a plan
cell, a plan-quantized serve artifact, and a plan design point all key
on the same digest machinery.

The memory-accounting helpers (:func:`config_memory_bits`,
:func:`plan_weight_bytes`, :func:`plan_gemm_bits`) bridge plans into
the hardware layer: storage bits per weight *including group metadata*
for the budget solver and DRAM traffic model, and per-GEMM element
precisions for the bit-serial timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.models.config import ModelConfig
from repro.quant.config import QuantConfig, quantize_tensor

__all__ = [
    "QuantPlan",
    "layer_names",
    "config_memory_bits",
    "plan_weight_bytes",
    "plan_gemm_bits",
]

#: Bits per weight of an unquantized (FP16) layer.
FP16_BITS = 16.0


def layer_names(config: ModelConfig) -> List[str]:
    """The quantizable layer names of ``config``'s sim-scale model.

    Matches ``CausalLM.named_linears()`` without building the model:
    every decoder-block linear, in layer-major order.
    """
    return [
        f"layers.{i}.{proj}"
        for i in range(config.sim_layers)
        for proj in config.sim_shapes()
    ]


def config_memory_bits(config: QuantConfig, row_len: int) -> float:
    """Storage bits per weight of ``config`` on rows of length ``row_len``.

    Includes group metadata (scaling factors, zero points, special-value
    selectors) via ``DataType.memory_bits_per_weight`` — the same
    accounting as ``QuantResult.memory_bits``, computed without
    quantizing anything.
    """
    dtype = config.resolve_dtype()
    group = config.group_size if config.granularity == "group" else row_len
    return dtype.memory_bits_per_weight(group)


@dataclass(frozen=True)
class QuantPlan:
    """A frozen per-layer quantization assignment.

    ``layers`` is a name-sorted tuple of ``(layer_name, QuantConfig)``
    pairs; ``name`` is a display label that does **not** participate in
    the cache key (two plans with equal content but different labels
    share cache entries).
    """

    name: str
    layers: Tuple[Tuple[str, QuantConfig], ...] = ()

    def __post_init__(self):
        names = [n for n, _ in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"plan {self.name!r}: duplicate layers {dupes}")
        if list(names) != sorted(names):
            object.__setattr__(
                self, "layers", tuple(sorted(self.layers, key=lambda kv: kv[0]))
            )

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, QuantConfig], name: str = "plan"
    ) -> "QuantPlan":
        return cls(name=name, layers=tuple(sorted(mapping.items())))

    @classmethod
    def uniform(
        cls,
        config: QuantConfig,
        layers: Iterable[str],
        name: Optional[str] = None,
    ) -> "QuantPlan":
        """Every named layer quantized with the same ``config``.

        A uniform plan reproduces global-``QuantConfig`` behaviour
        exactly: its quantizer output is bit-identical to quantizing
        each layer with ``config`` directly.
        """
        if name is None:
            dt = config.dtype if isinstance(config.dtype, str) else config.resolve_dtype().name
            name = f"uniform:{dt}"
        return cls(name=name, layers=tuple((n, config) for n in sorted(layers)))

    @classmethod
    def single_layer(
        cls, layer: str, config: QuantConfig, name: Optional[str] = None
    ) -> "QuantPlan":
        """One quantized layer, everything else FP16 (sensitivity probe)."""
        return cls(name=name or f"probe:{layer}", layers=((layer, config),))

    # ------------------------------------------------------------------
    # Mapping access.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.layers)

    def __contains__(self, layer: str) -> bool:
        return any(n == layer for n, _ in self.layers)

    def items(self) -> Tuple[Tuple[str, QuantConfig], ...]:
        return self.layers

    def layer_list(self) -> List[str]:
        return [n for n, _ in self.layers]

    def config_for(self, layer: str) -> Optional[QuantConfig]:
        """The config quantizing ``layer``; ``None`` = stays FP16."""
        for n, c in self.layers:
            if n == layer:
                return c
        return None

    def with_layer(self, layer: str, config: QuantConfig) -> "QuantPlan":
        """Functional single-layer update."""
        mapping = dict(self.layers)
        mapping[layer] = config
        return QuantPlan.from_mapping(mapping, name=self.name)

    def uniform_config(self) -> Optional[QuantConfig]:
        """The shared config if the plan is uniform, else ``None``."""
        configs = {c for _n, c in self.layers}
        return next(iter(configs)) if len(configs) == 1 else None

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def as_quantizer(self) -> Callable[[str, np.ndarray], np.ndarray]:
        """The ``(name, w) -> w_deq`` function ``apply_quantizer`` takes.

        Layers outside the plan pass through unquantized (FP16).
        """
        mapping = dict(self.layers)

        def quantize(layer_name: str, w: np.ndarray) -> np.ndarray:
            config = mapping.get(layer_name)
            if config is None:
                return w
            return quantize_tensor(w, config).w_deq

        return quantize

    # ------------------------------------------------------------------
    # Content addressing and serialization.
    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """Stable digest composed from the per-layer config digests.

        The display ``name`` is excluded: plans key by content, so two
        solvers arriving at the same assignment share pipeline cells,
        packed artifacts, and design-point records.
        """
        from repro.pipeline.keys import stable_digest

        return stable_digest(
            {"layers": {n: c.cache_key() for n, c in self.layers}}
        )

    def resolve_names(self) -> "QuantPlan":
        """Normalize every dtype to its registry name (serialization)."""
        return QuantPlan(
            name=self.name,
            layers=tuple(
                (
                    n,
                    c if isinstance(c.dtype, str) else c.with_(dtype=c.resolve_dtype().name),
                )
                for n, c in self.layers
            ),
        )

    def to_dict(self) -> Dict:
        """JSON-able form (the serve-artifact header schema)."""
        return {
            "name": self.name,
            "layers": [
                {
                    "layer": n,
                    "dtype": c.dtype if isinstance(c.dtype, str) else c.resolve_dtype().name,
                    "granularity": c.granularity,
                    "group_size": c.group_size,
                    "scale_bits": c.scale_bits,
                    "clip_ratio": c.clip_ratio,
                }
                for n, c in self.layers
            ],
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "QuantPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=d["name"],
            layers=tuple(
                (
                    e["layer"],
                    QuantConfig(
                        dtype=e["dtype"],
                        granularity=e["granularity"],
                        group_size=e["group_size"],
                        scale_bits=e["scale_bits"],
                        clip_ratio=e["clip_ratio"],
                    ),
                )
                for e in d["layers"]
            ),
        )

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable per-layer assignment table."""
        lines = [f"QuantPlan {self.name!r} ({len(self.layers)} layers)"]
        for n, c in self.layers:
            dt = c.dtype if isinstance(c.dtype, str) else c.resolve_dtype().name
            lines.append(f"  {n:<24} {dt:<14} {c.granularity}/{c.group_size}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Memory accounting and the hardware bridge.
# ----------------------------------------------------------------------


def _proj_bits(
    plan: QuantPlan,
    config: ModelConfig,
    proj: str,
    row_len: int,
    element_only: bool,
) -> float:
    """Mean bits per weight of one projection kind across sim layers.

    The sim-scale plan names ``sim_layers`` instances of each block
    linear; the full-size model repeats the projection ``n_layers``
    times.  Averaging over the sim layers is the faithful aggregate:
    each sim layer stands for an equal share of the full stack.
    """
    bits = []
    for i in range(config.sim_layers):
        c = plan.config_for(f"layers.{i}.{proj}")
        if c is None:
            bits.append(FP16_BITS)
        elif element_only:
            bits.append(float(c.resolve_dtype().bits))
        else:
            bits.append(config_memory_bits(c, row_len))
    return float(np.mean(bits)) if bits else FP16_BITS


def plan_weight_bytes(plan: QuantPlan, config: ModelConfig) -> float:
    """Full-size storage bytes of the decoder-block weights under ``plan``.

    Metadata included (``memory_bits_per_weight``); the embedding, norms
    and LM head stay FP16 and are excluded — this is the quantity the
    memory-budget solver constrains.
    """
    total = 0.0
    for gemm in config.block_gemms(1):
        bits = _proj_bits(plan, config, gemm.name, gemm.k, element_only=False)
        total += gemm.weight_elements * bits / 8.0
    return total


def plan_gemm_bits(plan: QuantPlan, config: ModelConfig) -> Dict[str, float]:
    """Per-GEMM element precisions driving the hardware simulator.

    Maps every block-GEMM name (``q_proj``, ``fc1``, ...) to the mean
    *element* bits of the plan's layers for that projection, plus an
    ``lm_head`` entry at the element-weighted mean of all block
    projections (the LM head streams at the deployment's packed
    precision, the same convention as
    ``serve.bridge.hardware_report``).  A uniform b-bit plan therefore
    maps every GEMM to exactly b and reproduces ``simulate(...,
    weight_bits=b)``.
    """
    bits: Dict[str, float] = {}
    weighted = 0.0
    elements = 0
    for gemm in config.block_gemms(1):
        b = _proj_bits(plan, config, gemm.name, gemm.k, element_only=True)
        bits[gemm.name] = b
        weighted += b * gemm.weight_elements
        elements += gemm.weight_elements
    bits["lm_head"] = weighted / elements if elements else FP16_BITS
    return bits
