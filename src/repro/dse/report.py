"""Sweep reporting: frontier tables and per-point detail.

Renders a :class:`~repro.dse.sweep.SweepResult` as

* an ASCII :class:`~repro.experiments.common.ExperimentResult` table
  (what the CLI prints),
* CSV / JSON / markdown exports of all points or just the frontier,
* a per-point detail dict carrying the full
  :class:`~repro.hw.simulator.SimResult`-shaped timing and
  :class:`~repro.hw.energy.EnergyBreakdown` fields.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from repro.dse.pareto import pareto_front
from repro.dse.sweep import SweepResult
from repro.experiments.common import ExperimentResult

__all__ = [
    "DEFAULT_OBJECTIVES",
    "DEFAULT_SENSES",
    "SUMMARY_COLUMNS",
    "frontier_records",
    "frontier_table",
    "point_detail",
    "to_csv",
    "to_json",
    "to_markdown",
]

#: The Fig. 9 objectives: quality vs energy-delay product.
DEFAULT_OBJECTIVES = ("ppl", "edp")
DEFAULT_SENSES = ("min", "min")

#: Columns of the summary/frontier tables, in print order.
SUMMARY_COLUMNS = [
    "model",
    "task",
    "dtype",
    "bits",
    "weight_mb",
    "pe_lanes",
    "pes_per_tile",
    "n_pes",
    "dram_gbps",
    "wbuf_kb",
    "mesh",
    "area_mm2",
    "time_ms",
    "total_uj",
    "edp",
    "speedup",
    "ppl",
    "dppl",
]


def _summary_row(r: Dict) -> List:
    a = r["arch"]
    ppl = r["ppl"] if r["ppl"] is not None else float("nan")
    dppl = r["dppl"] if r["dppl"] is not None else float("nan")
    # Policy records label themselves by their solver instead of a
    # single datatype name.
    dtype = r.get("policy") or r["dtype"] or "-"
    weight_mb = r.get("weight_mb")
    # Multi-chip points say which mesh they ran on ("4x ring");
    # single-chip records (including pre-v3 ones) print "1x".
    shards = r.get("shards", 1)
    topology = r.get("topology")
    mesh = f"{shards}x {topology}" if topology else f"{shards}x"
    return [
        r["model"],
        r["task"],
        dtype,
        r["bits"],
        float("nan") if weight_mb is None else weight_mb,
        a["pe_lanes"],
        a["pes_per_tile"],
        a["n_pes"],
        a["dram_gbps"],
        a["weight_buffer_kb"],
        mesh,
        r["area_mm2"],
        r["time_ms"],
        r["total_uj"],
        r["edp"],
        r["speedup"],
        ppl,
        dppl,
    ]


def frontier_records(
    result: SweepResult,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    senses: Sequence[str] = DEFAULT_SENSES,
    per_workload: bool = True,
) -> List[Dict]:
    """Non-dominated records of a sweep.

    With ``per_workload=True`` (the default) the frontier is computed
    independently per (model, task) pair — comparing EDP across
    different models would mix incomparable workloads.
    """
    if not per_workload:
        return pareto_front(result.records, objectives, senses)
    groups: Dict[tuple, List[Dict]] = {}
    for r in result.records:
        groups.setdefault((r["model"], r["task"]), []).append(r)
    out: List[Dict] = []
    for key in sorted(groups):
        out.extend(pareto_front(groups[key], objectives, senses))
    return out


def frontier_table(
    result: SweepResult,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    senses: Sequence[str] = DEFAULT_SENSES,
    frontier_only: bool = True,
    records: Optional[Sequence[Dict]] = None,
) -> ExperimentResult:
    """The sweep (or its frontier) as a printable experiment table.

    Pass ``records`` to render an already-computed frontier instead of
    filtering again (the CLI reuses its ``frontier_records`` result).
    """
    if records is None:
        records = (
            frontier_records(result, objectives, senses)
            if frontier_only
            else result.records
        )
    scope = "Pareto frontier" if frontier_only else "all points"
    obj = ", ".join(f"{o}:{s}" for o, s in zip(objectives, senses))
    table = ExperimentResult(
        experiment=f"dse-{result.space.name}",
        title=(
            f"DSE sweep '{result.space.name}': {scope} "
            f"({len(records)}/{len(result.records)} points; objectives {obj})"
        ),
        columns=list(SUMMARY_COLUMNS),
        notes=(
            f"{result.computed} computed / {result.cached} cached / "
            f"{len(result.skipped)} skipped by constraints; "
            f"speedup and edp are vs the iso-area FP16 baseline."
        ),
    )
    for r in records:
        table.add_row(*_summary_row(r))
    return table


def point_detail(record: Dict) -> Dict:
    """Full per-point detail: architecture, timing, energy breakdown."""
    return {
        "point": {
            k: record[k]
            for k in ("space", "model", "task", "dtype", "granularity", "bits")
        },
        "arch": dict(record["arch"]),
        "area_mm2": record["area_mm2"],
        "timing": {
            "cycles": record["cycles"],
            "time_ms": record["time_ms"],
            "speedup_vs_fp16": record["speedup"],
        },
        "energy_uj": {
            "dram": record["dram_uj"],
            "buffer": record["buffer_uj"],
            "core": record["core_uj"],
            "total": record["total_uj"],
        },
        "edp": {"value": record["edp"], "norm_vs_fp16": record["edp_norm"]},
        "accuracy": {
            "ppl": record["ppl"],
            "fp16_ppl": record["fp16_ppl"],
            "dppl": record["dppl"],
        },
    }


def _flat(records: Sequence[Dict]) -> List[Dict]:
    """Flatten the nested ``arch`` dict for tabular exports.

    The nested per-layer ``plan`` dict of policy records is dropped —
    it has no tabular shape; the JSON export carries it in full.
    """
    out = []
    for r in records:
        flat = {k: v for k, v in r.items() if k not in ("arch", "plan")}
        flat.update({f"arch_{k}": v for k, v in r["arch"].items()})
        out.append(flat)
    return out


def to_csv(records: Sequence[Dict]) -> str:
    """Records as CSV text (flattened arch columns)."""
    flat = _flat(records)
    if not flat:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(flat[0]))
    writer.writeheader()
    writer.writerows(flat)
    return buf.getvalue()


def to_json(
    result: SweepResult, records: Optional[Sequence[Dict]] = None
) -> str:
    """Sweep stats + records (default: all) as pretty JSON."""
    payload = {
        "stats": result.stats(),
        "space": result.space.to_dict(),
        "skipped": [
            {"params": params, "reason": reason}
            for params, reason in result.skipped
        ],
        "records": list(records if records is not None else result.records),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def to_markdown(records: Sequence[Dict]) -> str:
    """Records as a GitHub-flavored markdown table."""
    lines = [
        "| " + " | ".join(SUMMARY_COLUMNS) + " |",
        "| " + " | ".join("---" for _ in SUMMARY_COLUMNS) + " |",
    ]
    for r in records:
        cells = []
        for v in _summary_row(r):
            if isinstance(v, float):
                cells.append("-" if v != v else f"{v:.4g}")
            else:
                cells.append(str(v))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
