"""Design spaces: parameter axes, constraints, iso-area normalization.

A :class:`DesignSpace` is the declarative description of an
accelerator sweep: axes over :class:`~repro.hw.arch.ArchConfig`
fields (lanes, tile size, bandwidth, buffers, frequency), a set of
datatype/precision choices, and the workloads (models x tasks) to
evaluate each configuration on.  Expansion is the cartesian product
of all axes, filtered by validity constraints:

* positive frequency / bandwidth / buffer capacities,
* the PE grid must be an integer number of ``pes_per_tile`` tiles,
* a double-buffered weight/input tile must fit its SRAM buffer,
* the datatype precision must be one the bit-serial PE can execute.

Under ``iso_area=True`` (the paper's iso-compute-area constraint) the
PE grid is *derived*, not swept: the per-PE area is scaled from the
published BitMoD tile (``paper_tile_costs()``) by the lane count, the
encoder area by the tile size, and as many tiles as fit the FP16
baseline's area budget are instantiated (the same fitting rule as
:func:`repro.hw.baselines.make_accelerator`).

Spaces serialize to/from plain JSON (``--space FILE.json``); curated
spaces live in :data:`PRESETS`.  See ``docs/dse.md`` for the schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.hw.arch import ArchConfig
from repro.hw.baselines import AREA_BUDGET_UM2, ARRAY_COLS, ISO_AREA_SLACK
from repro.hw.energy import TileCost, bitmod_pe_tile_cost, fp16_pe_tile_cost

__all__ = [
    "DatatypeChoice",
    "DesignPoint",
    "DesignSpace",
    "PolicyChoice",
    "PRESETS",
    "get_preset",
    "load_space",
    "paper_tile_costs",
    "SWEEPABLE_FIELDS",
    "SUPPORTED_BITS",
    "PLAN_SOLVERS",
]

#: ArchConfig fields a space may put an axis on.  ``pe_rows``/
#: ``pe_cols`` are only sweepable with ``iso_area=False`` — under the
#: iso-area constraint the grid is derived from the area budget.
SWEEPABLE_FIELDS = frozenset(
    {
        "pe_rows",
        "pe_cols",
        "pe_lanes",
        "pes_per_tile",
        "frequency_ghz",
        "dram_gbps",
        "weight_buffer_kb",
        "input_buffer_kb",
    }
)

_ISO_DERIVED = frozenset({"pe_rows", "pe_cols"})

#: Weight precisions the bit-serial PE can execute (paper Table III).
SUPPORTED_BITS = frozenset({3, 4, 5, 6, 8})

_FP16_BYTES = 2


def paper_tile_costs() -> Tuple[TileCost, TileCost]:
    """The published Table X tile costs anchoring the DSE area model.

    Returns ``(fp16, bitmod)``: the FP16 baseline tile defines the
    iso-area budget; the BitMoD tile's per-PE and per-encoder figures
    are what lane/tile scaling multiplies.  ``table10_tile_area`` is a
    direct view over these two records.
    """
    return fp16_pe_tile_cost(), bitmod_pe_tile_cost()


@dataclass(frozen=True)
class DatatypeChoice:
    """One datatype/precision point of a sweep.

    ``bits`` drives the hardware model (terms per weight, DRAM
    traffic); ``dtype``/``granularity`` name the quantization the
    accuracy cell evaluates (a :mod:`repro.dtypes` registry name).
    """

    bits: int
    dtype: str
    granularity: str = "group"


#: Plan solvers a :class:`PolicyChoice` may name (see
#: :func:`repro.policy.solvers.make_plan`).
PLAN_SOLVERS = ("budget", "threshold")


@dataclass(frozen=True)
class PolicyChoice:
    """One mixed-precision policy point of a sweep.

    Instead of running one uniform datatype, the point solves a
    per-layer :class:`~repro.policy.plan.QuantPlan` over the
    ``ladder`` of candidate datatypes — ``"budget"`` allocates under a
    full-size weight-memory budget (``budget_mb``), ``"threshold"``
    caps each layer's measured damage (``threshold``).  ``metric``
    names the sensitivity probe (``"layer_mse"`` or ``"dppl"``).
    The ladder is filled from the space's ``datatypes`` at expansion
    time when left empty.
    """

    solver: str
    budget_mb: Optional[float] = None
    threshold: Optional[float] = None
    metric: str = "layer_mse"
    ladder: Tuple[DatatypeChoice, ...] = ()

    def __post_init__(self):
        if self.solver not in PLAN_SOLVERS:
            raise ValueError(
                f"unknown plan solver {self.solver!r} "
                f"(known: {', '.join(PLAN_SOLVERS)})"
            )
        if self.solver == "budget" and self.budget_mb is None:
            raise ValueError("budget policies need budget_mb")
        if self.solver == "threshold" and self.threshold is None:
            raise ValueError("threshold policies need threshold")
        if self.metric not in ("layer_mse", "dppl"):
            raise ValueError(
                f"unknown sensitivity metric {self.metric!r} "
                "(known: layer_mse, dppl)"
            )

    @property
    def label(self) -> str:
        if self.solver == "budget":
            return f"budget:{self.budget_mb:g}MB"
        return f"threshold:{self.threshold:g}"


@dataclass(frozen=True)
class DesignPoint:
    """One fully-resolved design point: architecture x datatype x workload.

    ``arch`` is the concrete (already iso-area-normalized)
    :class:`~repro.hw.arch.ArchConfig`; ``dtype`` is ``None`` for
    simulation-only points (no accuracy axis — e.g. the fixed paper
    accelerators behind Fig. 7/8).  The point is a plain dataclass of
    dataclasses, so :func:`repro.pipeline.keys.stable_digest` gives it
    a content address directly.
    """

    space: str
    arch: ArchConfig
    model: str
    task: str
    weight_bits: int
    dtype: Optional[DatatypeChoice] = None
    kv_bits: int = 8
    macs_per_cycle: float = 1.0
    group_size: int = 128
    quick: bool = False
    #: Mixed-precision policy point: the plan is solved at evaluation
    #: time (``dtype`` is ``None``, ``weight_bits`` is 0 — the real
    #: per-layer precisions come out of the solver).
    policy: Optional[PolicyChoice] = None
    #: Tensor-parallel degree: > 1 evaluates the point on a multi-chip
    #: mesh via :func:`repro.hw.multichip.simulate_sharded`, charging
    #: interconnect collectives per ``topology``.
    shards: int = 1
    topology: str = "ring"


@dataclass(frozen=True)
class DesignSpace:
    """A declarative accelerator design space (see module docstring).

    ``arch_axes`` is an ordered tuple of ``(field, values)`` pairs
    over :data:`SWEEPABLE_FIELDS`; ``datatypes``/``models``/``tasks``
    are the non-architectural axes.  ``quick`` keys the accuracy
    cells into the quick-mode cache namespace, shared with the
    experiments' ``--quick`` cells (the evaluation itself is
    identical — the flag partitions cache entries).
    """

    name: str
    arch_axes: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    datatypes: Tuple[DatatypeChoice, ...] = ()
    models: Tuple[str, ...] = ()
    tasks: Tuple[str, ...] = ("generative",)
    iso_area: bool = True
    quick: bool = False
    group_size: int = 128
    #: Mixed-precision policy axis: each entry adds one plan-solved
    #: point per (arch combo x model x task), alongside the uniform
    #: ``datatypes`` points.  Policies with an empty ladder inherit
    #: the space's ``datatypes`` as their candidate ladder.
    policies: Tuple[PolicyChoice, ...] = ()
    #: Multi-chip axis: tensor-parallel shard counts to evaluate each
    #: point at, and the interconnect topologies to price them with.
    #: Single-chip points (``shards == 1``) ignore the topology axis.
    shards: Tuple[int, ...] = (1,)
    topologies: Tuple[str, ...] = ("ring",)

    def __post_init__(self):
        for fname, values in self.arch_axes:
            if fname not in SWEEPABLE_FIELDS:
                raise ValueError(
                    f"design space {self.name!r}: {fname!r} is not a "
                    f"sweepable ArchConfig field (sweepable: "
                    f"{', '.join(sorted(SWEEPABLE_FIELDS))})"
                )
            if self.iso_area and fname in _ISO_DERIVED:
                raise ValueError(
                    f"design space {self.name!r}: {fname!r} is derived by "
                    "the iso-area fit and cannot be swept while "
                    "iso_area=True"
                )
            if not values:
                raise ValueError(
                    f"design space {self.name!r}: axis {fname!r} has no values"
                )
        if not self.datatypes:
            raise ValueError(f"design space {self.name!r}: no datatypes")
        if not self.models:
            raise ValueError(f"design space {self.name!r}: no models")
        for t in self.tasks:
            if t not in ("discriminative", "generative"):
                raise ValueError(
                    f"design space {self.name!r}: unknown task {t!r}"
                )
        if not self.shards or any(int(s) < 1 for s in self.shards):
            raise ValueError(
                f"design space {self.name!r}: shard counts must be >= 1, "
                f"got {self.shards}"
            )
        from repro.hw.multichip import TOPOLOGIES

        if not self.topologies:
            raise ValueError(f"design space {self.name!r}: no topologies")
        for topo in self.topologies:
            if topo not in TOPOLOGIES:
                raise ValueError(
                    f"design space {self.name!r}: unknown topology "
                    f"{topo!r} (known: {', '.join(TOPOLOGIES)})"
                )

    # ------------------------------------------------------------------
    def arch_combos(self) -> List[Dict[str, float]]:
        """Cartesian product of the architecture axes, as field dicts."""
        combos: List[Dict[str, float]] = [{}]
        for fname, values in self.arch_axes:
            combos = [
                {**c, fname: v} for c in combos for v in values
            ]
        return combos

    def mesh_combos(self) -> List[Tuple[int, str]]:
        """The ``(shards, topology)`` pairs of the multi-chip axis.

        Single-chip entries collapse the topology axis (there is no
        interconnect to price), so ``shards=(1, 4)`` with two
        topologies yields three combos, not four.
        """
        combos: List[Tuple[int, str]] = []
        for s in self.shards:
            s = int(s)
            if s == 1:
                combos.append((1, self.topologies[0]))
            else:
                combos.extend((s, topo) for topo in self.topologies)
        return combos

    def n_candidates(self) -> int:
        """Size of the raw product (before validity filtering)."""
        n = (len(self.datatypes) + len(self.policies)) * len(self.models) * len(
            self.tasks
        )
        n *= len(self.mesh_combos())
        for _f, values in self.arch_axes:
            n *= len(values)
        return n

    # ------------------------------------------------------------------
    def resolve_arch(self, params: Dict[str, float]) -> ArchConfig:
        """Build the concrete :class:`ArchConfig` for one axis combo.

        With ``iso_area=True`` the PE grid is fitted to the FP16
        baseline's area budget: per-PE area scales with
        ``pe_lanes / 4`` relative to the published BitMoD PE (the
        datapath lanes dominate a bit-serial PE), the encoder with
        ``pes_per_tile / 64`` (one term generator per tile), and
        ``floor(slack * budget / tile_area)`` tiles are instantiated
        on a 32-column grid.
        """
        bm = bitmod_pe_tile_cost()
        lanes = int(params.get("pe_lanes", 4))
        ppt = int(params.get("pes_per_tile", 64))
        if lanes <= 0 or ppt <= 0:
            raise ValueError(
                f"design space {self.name!r}: pe_lanes and pes_per_tile "
                f"must be positive, got {lanes} / {ppt}"
            )
        lane_scale = lanes / 4.0
        tile_scale = ppt / 64.0
        pe_area = bm.pe_array_area / bm.n_pes * lane_scale
        pe_power = bm.pe_array_power / bm.n_pes * lane_scale
        enc_area = bm.encoder_area * tile_scale
        enc_power = bm.encoder_power * tile_scale

        fields = dict(
            name=f"{self.name}:{'/'.join(f'{k}={params[k]}' for k in sorted(params))}",
            pe_lanes=lanes,
            bit_serial=True,
            frequency_ghz=float(params.get("frequency_ghz", 1.0)),
            weight_buffer_kb=int(params.get("weight_buffer_kb", 512)),
            input_buffer_kb=int(params.get("input_buffer_kb", 512)),
            dram_gbps=float(params.get("dram_gbps", 25.6)),
            pe_area_um2=pe_area,
            pe_power_mw=pe_power,
            encoder_area_um2=enc_area,
            encoder_power_mw=enc_power,
            pes_per_tile=ppt,
        )
        if self.iso_area:
            tile_area = ppt * pe_area + enc_area
            n_tiles = int((ISO_AREA_SLACK * AREA_BUDGET_UM2) // tile_area)
            # The array keeps 32 columns; trim tiles until the PE count
            # lands on a whole number of columns (and hence of tiles).
            while n_tiles > 0 and (n_tiles * ppt) % ARRAY_COLS != 0:
                n_tiles -= 1
            if n_tiles < 1:
                raise ValueError(
                    f"design space {self.name!r}: one "
                    f"{ppt}-PE/{lanes}-lane tile ({tile_area:.0f} um^2) "
                    "exceeds the iso-area budget"
                )
            n_pes = n_tiles * ppt
            fields["pe_cols"] = ARRAY_COLS
            fields["pe_rows"] = n_pes // ARRAY_COLS
        else:
            fields["pe_rows"] = int(params.get("pe_rows", 32))
            fields["pe_cols"] = int(params.get("pe_cols", 32))
        return ArchConfig(**fields)

    def check_point(self, arch: ArchConfig, dt: DatatypeChoice) -> Optional[str]:
        """Validity of one (arch, datatype) pairing; a reason or None.

        Beyond the :class:`ArchConfig` invariants (positive capacities,
        tile divisibility — enforced at construction), this checks that
        a double-buffered streaming tile fits on chip and that the PE
        supports the precision.
        """
        if dt.bits not in SUPPORTED_BITS:
            return (
                f"{dt.bits}-bit weights are outside the bit-serial PE's "
                f"supported precisions {sorted(SUPPORTED_BITS)}"
            )
        # Double-buffered weight tile: pe_cols output columns x one
        # scale group of weights at the swept precision.
        w_tile = 2 * arch.pe_cols * self.group_size * dt.bits / 8.0
        if w_tile > arch.weight_buffer_kb * 1024:
            return (
                f"weight buffer ({arch.weight_buffer_kb} KB) cannot "
                f"double-buffer a {arch.pe_cols}x{self.group_size} weight "
                f"tile at {dt.bits} bits ({w_tile / 1024:.1f} KB)"
            )
        a_tile = 2 * arch.pe_rows * self.group_size * _FP16_BYTES
        if a_tile > arch.input_buffer_kb * 1024:
            return (
                f"input buffer ({arch.input_buffer_kb} KB) cannot "
                f"double-buffer a {arch.pe_rows}x{self.group_size} FP16 "
                f"activation tile ({a_tile / 1024:.1f} KB)"
            )
        return None

    def _policy_reason(
        self, arch: ArchConfig, pc: PolicyChoice, model: str
    ) -> Optional[str]:
        """Validity of one (arch, policy, model) triple; reason or None.

        Every ladder datatype must itself be executable on the arch
        (the plan may assign any of them), and a budget policy must sit
        at or above the floor of its cheapest candidate assignment.
        """
        for dt in pc.ladder:
            reason = self.check_point(arch, dt)
            if reason is not None:
                return f"ladder datatype {dt.dtype}: {reason}"
        if pc.solver == "budget":
            from repro.models.zoo import get_model_config
            from repro.policy import plan_floor_bytes
            from repro.quant.config import QuantConfig

            candidates = [
                QuantConfig(
                    dtype=dt.dtype,
                    granularity=dt.granularity,
                    group_size=self.group_size,
                )
                for dt in pc.ladder
            ]
            floor = plan_floor_bytes(candidates, get_model_config(model))
            if pc.budget_mb * 1e6 < floor:
                return (
                    f"budget {pc.budget_mb:g} MB is below the "
                    f"{floor / 1e6:.0f} MB floor of the cheapest ladder "
                    f"assignment on {model}"
                )
        return None

    def _shard_reason(self, model: str, shards: int) -> Optional[str]:
        """Validity of one (model, shard count) pairing; reason or None.

        Mirrors the divisibility constraints of
        :func:`repro.hw.multichip.simulate_sharded` so invalid meshes
        are filtered (with a reason) at expansion, not mid-sweep.
        """
        if shards == 1:
            return None
        from repro.models.zoo import get_model_config

        cfg = get_model_config(model)
        if cfg.n_heads % shards or cfg.n_kv_heads % shards:
            return (
                f"{model}: {cfg.n_heads} heads / {cfg.n_kv_heads} KV heads "
                f"not divisible by {shards} shards"
            )
        if cfg.intermediate % shards or cfg.vocab % shards:
            return (
                f"{model}: intermediate {cfg.intermediate} / vocab "
                f"{cfg.vocab} not divisible by {shards} shards"
            )
        return None

    # ------------------------------------------------------------------
    def points(self) -> Tuple[List[DesignPoint], List[Tuple[Dict, str]]]:
        """Expand to ``(valid_points, skipped)``.

        ``skipped`` pairs each rejected axis combination with its
        human-readable constraint-violation reason.
        """
        points: List[DesignPoint] = []
        skipped: List[Tuple[Dict, str]] = []
        policies = tuple(
            pc if pc.ladder else replace(pc, ladder=self.datatypes)
            for pc in self.policies
        )
        for params in self.arch_combos():
            try:
                arch = self.resolve_arch(params)
            except ValueError as e:
                for dt in self.datatypes:
                    skipped.append(({**params, "bits": dt.bits}, str(e)))
                for pc in policies:
                    skipped.append(({**params, "policy": pc.label}, str(e)))
                continue
            meshes = self.mesh_combos()
            for dt in self.datatypes:
                reason = self.check_point(arch, dt)
                if reason is not None:
                    skipped.append(({**params, "bits": dt.bits}, reason))
                    continue
                for model in self.models:
                    for n_shards, topo in meshes:
                        reason = self._shard_reason(model, n_shards)
                        if reason is not None:
                            skipped.append(
                                (
                                    {**params, "bits": dt.bits, "shards": n_shards},
                                    reason,
                                )
                            )
                            continue
                        for task in self.tasks:
                            points.append(
                                DesignPoint(
                                    space=self.name,
                                    arch=arch,
                                    model=model,
                                    task=task,
                                    weight_bits=dt.bits,
                                    dtype=dt,
                                    group_size=self.group_size,
                                    quick=self.quick,
                                    shards=n_shards,
                                    topology=topo,
                                )
                            )
            for pc in policies:
                for model in self.models:
                    reason = self._policy_reason(arch, pc, model)
                    if reason is not None:
                        skipped.append(
                            ({**params, "policy": pc.label, "model": model}, reason)
                        )
                        continue
                    for n_shards, topo in meshes:
                        reason = self._shard_reason(model, n_shards)
                        if reason is not None:
                            skipped.append(
                                (
                                    {
                                        **params,
                                        "policy": pc.label,
                                        "model": model,
                                        "shards": n_shards,
                                    },
                                    reason,
                                )
                            )
                            continue
                        for task in self.tasks:
                            points.append(
                                DesignPoint(
                                    space=self.name,
                                    arch=arch,
                                    model=model,
                                    task=task,
                                    weight_bits=0,
                                    dtype=None,
                                    group_size=self.group_size,
                                    quick=self.quick,
                                    policy=pc,
                                    shards=n_shards,
                                    topology=topo,
                                )
                            )
        return points, skipped

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-able form (the ``--space FILE.json`` schema)."""
        out = {
            "name": self.name,
            "arch_axes": {f: list(v) for f, v in self.arch_axes},
            "datatypes": [
                {"bits": d.bits, "dtype": d.dtype, "granularity": d.granularity}
                for d in self.datatypes
            ],
            "models": list(self.models),
            "tasks": list(self.tasks),
            "iso_area": self.iso_area,
            "quick": self.quick,
            "group_size": self.group_size,
            "shards": [int(s) for s in self.shards],
            "topologies": list(self.topologies),
        }
        if self.policies:
            out["policies"] = [
                {
                    "solver": p.solver,
                    "budget_mb": p.budget_mb,
                    "threshold": p.threshold,
                    "metric": p.metric,
                    "ladder": [
                        {"bits": d.bits, "dtype": d.dtype, "granularity": d.granularity}
                        for d in p.ladder
                    ],
                }
                for p in self.policies
            ]
        return out

    @classmethod
    def from_dict(cls, d: Dict) -> "DesignSpace":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {
            "name",
            "arch_axes",
            "datatypes",
            "models",
            "tasks",
            "iso_area",
            "quick",
            "group_size",
            "policies",
            "shards",
            "topologies",
        }
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown design-space keys: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(
            name=d["name"],
            arch_axes=tuple(
                (f, tuple(v)) for f, v in dict(d.get("arch_axes", {})).items()
            ),
            datatypes=tuple(
                DatatypeChoice(**dt) for dt in d.get("datatypes", ())
            ),
            models=tuple(d.get("models", ())),
            tasks=tuple(d.get("tasks", ("generative",))),
            iso_area=bool(d.get("iso_area", True)),
            quick=bool(d.get("quick", False)),
            group_size=int(d.get("group_size", 128)),
            policies=tuple(
                PolicyChoice(
                    solver=p["solver"],
                    budget_mb=p.get("budget_mb"),
                    threshold=p.get("threshold"),
                    metric=p.get("metric", "layer_mse"),
                    ladder=tuple(
                        DatatypeChoice(**dt) for dt in p.get("ladder", ())
                    ),
                )
                for p in d.get("policies", ())
            ),
            shards=tuple(int(s) for s in d.get("shards", (1,))),
            topologies=tuple(d.get("topologies", ("ring",))),
        )

    def with_(self, **kwargs) -> "DesignSpace":
        """Functional update helper (mirrors ``QuantConfig.with_``)."""
        return replace(self, **kwargs)


def load_space(path: Union[str, Path]) -> DesignSpace:
    """Load a space from a ``--space FILE.json`` file."""
    return DesignSpace.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# Curated presets.
# ----------------------------------------------------------------------

#: BitMoD's Fig. 9 precision ladder: the datatype the accelerator
#: executes at each supported weight precision.
_BITMOD_LADDER = (
    DatatypeChoice(3, "bitmod_fp3"),
    DatatypeChoice(4, "bitmod_fp4"),
    DatatypeChoice(5, "int5_asym"),
    DatatypeChoice(6, "int6_sym"),
    DatatypeChoice(8, "int8_sym"),
)

PRESETS: Dict[str, DesignSpace] = {
    # The flagship sweep: lanes x tile size x bandwidth x weight buffer
    # x the 5-precision BitMoD ladder x two models = 360 design points
    # around the paper's fixed configuration.
    "paper-pareto": DesignSpace(
        name="paper-pareto",
        arch_axes=(
            ("pe_lanes", (2, 4, 8)),
            ("pes_per_tile", (32, 64, 128)),
            ("dram_gbps", (25.6, 51.2)),
            ("weight_buffer_kb", (256, 512)),
        ),
        datatypes=_BITMOD_LADDER,
        models=("phi-2b", "llama-2-7b"),
        tasks=("generative",),
    ),
    # Small and fast: the CI / smoke-test space (16 points, 2 cells).
    "smoke": DesignSpace(
        name="smoke",
        arch_axes=(
            ("pe_lanes", (4, 8)),
            ("dram_gbps", (25.6, 51.2)),
            ("weight_buffer_kb", (256, 512)),
        ),
        datatypes=(
            DatatypeChoice(4, "bitmod_fp4"),
            DatatypeChoice(6, "int6_sym"),
        ),
        models=("opt-1.3b",),
        tasks=("generative",),
    ),
    # Mixed-precision deployments under a weight-memory cap: the
    # budget solver sweeps budgets from just above the 3-bit floor to
    # the 8-bit ceiling, against the uniform ladder as baselines.
    # Frontier of interest: --objectives weight_mb:min,ppl:min.
    "memory-budget": DesignSpace(
        name="memory-budget",
        arch_axes=(),
        datatypes=(
            DatatypeChoice(3, "bitmod_fp3"),
            DatatypeChoice(4, "bitmod_fp4"),
            DatatypeChoice(6, "int6_sym"),
            DatatypeChoice(8, "int8_sym"),
        ),
        models=("opt-1.3b",),
        tasks=("generative",),
        policies=tuple(
            PolicyChoice(solver="budget", budget_mb=mb)
            for mb in (500.0, 550.0, 625.0, 700.0, 800.0, 900.0, 1000.0, 1100.0)
        ),
    ),
    # Scaling out: how many chips (and which interconnect) does each
    # precision justify?  Frontier of interest:
    # --objectives time_ms:min,total_uj:min keyed by (shards, topology).
    "sharding": DesignSpace(
        name="sharding",
        arch_axes=(),
        datatypes=(
            DatatypeChoice(4, "bitmod_fp4"),
            DatatypeChoice(8, "int8_sym"),
        ),
        models=("llama-2-7b",),
        tasks=("generative",),
        shards=(1, 2, 4, 8),
        topologies=("ring", "fully_connected"),
    ),
    # How far does memory bandwidth alone carry each precision?
    "bandwidth": DesignSpace(
        name="bandwidth",
        arch_axes=(("dram_gbps", (12.8, 25.6, 51.2, 102.4)),),
        datatypes=(
            DatatypeChoice(3, "bitmod_fp3"),
            DatatypeChoice(4, "bitmod_fp4"),
            DatatypeChoice(6, "int6_sym"),
            DatatypeChoice(8, "int8_sym"),
        ),
        models=("llama-2-7b",),
        tasks=("discriminative", "generative"),
    ),
}


def get_preset(name: str, quick: Optional[bool] = None) -> DesignSpace:
    """Fetch a preset by name, optionally overriding its quick flag."""
    try:
        space = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown DSE preset {name!r}; known: {known}") from None
    if quick is not None and quick != space.quick:
        space = space.with_(quick=quick)
    return space
