"""``bitmod-repro dse`` — the design-space exploration CLI.

Usage::

    bitmod-repro dse --preset paper-pareto --jobs 4
    bitmod-repro dse --preset smoke --quick --markdown frontier.md
    bitmod-repro dse --space myspace.json --csv points.csv --json sweep.json
    bitmod-repro dse --preset bandwidth --objectives edp:min,speedup:max
    bitmod-repro dse --preset smoke --trace out/dse.json --metrics out/dse-metrics.json
    bitmod-repro dse --list-presets

The sweep reuses the pipeline cache: accuracy cells and design-point
records are content-addressed under ``--cache-dir`` (default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), so a warm rerun replays
from disk and ``--jobs N`` fans cold accuracy cells over workers.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main"]


def _parse_objectives(text: str):
    """Parse ``ppl:min,edp:min`` into (objectives, senses)."""
    objectives, senses = [], []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            obj, sense = part.rsplit(":", 1)
        else:
            obj, sense = part, "min"
        objectives.append(obj.strip())
        senses.append(sense.strip())
    if not objectives:
        raise ValueError("--objectives must name at least one record field")
    for s in senses:
        if s not in ("min", "max"):
            raise ValueError(
                f"objective sense must be 'min' or 'max', got {s!r}"
            )
    return tuple(objectives), tuple(senses)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bitmod-repro dse",
        description="Sweep accelerator design spaces and report Pareto frontiers.",
    )
    src = parser.add_mutually_exclusive_group()
    src.add_argument(
        "--preset",
        metavar="NAME",
        default=None,
        help="curated design space (see --list-presets)",
    )
    src.add_argument(
        "--space",
        metavar="FILE.json",
        default=None,
        help="design-space description file (schema: docs/dse.md)",
    )
    parser.add_argument(
        "--list-presets", action="store_true", help="list preset names and sizes"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="key accuracy cells in the quick-mode cache namespace, "
        "shared with 'bitmod-repro --quick' experiment cells",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate accuracy cells on N worker processes",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="pipeline cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the cache",
    )
    parser.add_argument(
        "--objectives",
        metavar="OBJ:SENSE,...",
        default="ppl:min,edp:min",
        help="frontier objectives, e.g. 'ppl:min,edp:min' or "
        "'edp:min,speedup:max' (default: ppl:min,edp:min)",
    )
    parser.add_argument(
        "--all-points",
        action="store_true",
        help="print every point instead of only the frontier",
    )
    parser.add_argument(
        "--csv", metavar="FILE", default=None, help="write all points as CSV"
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write stats + space + all records as JSON",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        default=None,
        help="write the frontier as a markdown table",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT",
        default=None,
        help="enable span tracing and write the sweep's trace to OUT "
        "(.json = chrome trace_event for Perfetto, otherwise JSONL)",
    )
    parser.add_argument(
        "--metrics",
        metavar="OUT",
        default=None,
        help="write the sweep's metrics-registry snapshot as JSON",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        help="logging level for the repro.* loggers "
        "(debug/info/warning/error; default: $REPRO_LOG or warning)",
    )
    parser.add_argument(
        "--functional-check",
        action="store_true",
        help="after the sweep, run one small bit-accurate GEMM per swept "
        "(dtype, granularity, group size) through the kernel dispatcher "
        "and report the backend used and max deviation from the ideal "
        "dequantized matmul",
    )
    parser.add_argument(
        "--kernel-backend",
        metavar="NAME",
        default=None,
        help="pin the kernel backend for --functional-check "
        "(reference/numpy/fused/numba; default: dispatcher's choice)",
    )
    parser.add_argument(
        "--run-id",
        metavar="ID",
        default=None,
        help="journal computed design points under this run id so an "
        "interrupted sweep documents its progress",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_ID",
        default=None,
        help="continue a journaled sweep: already-computed points (and "
        "their cells) replay from the content-addressed store",
    )
    args = parser.parse_args(argv)

    from repro import obs
    from repro.dse.space import PRESETS, get_preset, load_space

    try:
        obs.setup_logging(args.log_level)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    obs.reset()
    if args.trace is not None:
        obs.set_tracing(True)

    if args.list_presets:
        for name, space in sorted(PRESETS.items()):
            axes = f"{len(space.datatypes)} datatypes"
            if space.policies:
                axes += f" + {len(space.policies)} policies"
            print(
                f"{name}: {space.n_candidates()} candidate points "
                f"({axes} x {len(space.models)} "
                f"models x {len(space.tasks)} tasks)"
            )
        return 0

    if args.preset is None and args.space is None:
        parser.print_help()
        return 1

    try:
        objectives, senses = _parse_objectives(args.objectives)
        if args.space is not None:
            space = load_space(args.space)
            if args.quick and not space.quick:
                space = space.with_(quick=True)
        else:
            space = get_preset(args.preset, quick=args.quick or None)
    except (KeyError, ValueError, OSError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    from repro.dse.report import (
        frontier_records,
        frontier_table,
        to_csv,
        to_json,
        to_markdown,
    )
    from repro.dse.sweep import run_sweep
    from repro.pipeline import configure
    from repro.resilience import RunJournal

    if args.run_id is not None and args.resume is not None:
        print("error: --run-id and --resume are mutually exclusive", file=sys.stderr)
        return 2
    run_id = args.resume or args.run_id
    journal = None
    if run_id is not None:
        try:
            journal = RunJournal.for_run(run_id)
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        done = len(journal.completed_keys("dse_point"))
        if args.resume is not None and done:
            print(f"resuming run {run_id}: {done} points journaled")
        journal.append(
            {
                "event": "sweep_start",
                "space": space.name,
                "resumed": args.resume is not None,
            }
        )

    engine = configure(
        jobs=args.jobs, cache_dir=args.cache_dir, no_cache=args.no_cache,
        journal=journal,
    )
    try:
        result = run_sweep(space, engine=engine, journal=journal)
    except KeyboardInterrupt:
        # Clean crash-only exit: reap the pool, journal the cut, keep
        # every computed point in the store for --resume.
        print("\ninterrupted — shutting down worker pool", file=sys.stderr)
        engine.close(cancel=True)
        if journal is not None:
            journal.append({"event": "interrupted", "space": space.name})
            journal.close()
            print(f"journal saved; resume with --resume {run_id}", file=sys.stderr)
        if args.trace is not None:
            spans = obs.get_tracer().drain()
            obs.write_trace(args.trace, spans)
        return 130
    finally:
        engine.close()
    if journal is not None:
        journal.append({"event": "sweep_end", "space": space.name})
        journal.close()

    try:
        front = frontier_records(result, objectives, senses)
    except KeyError as e:
        print(f"error: {e.args[0]}", file=sys.stderr)
        return 2
    table = frontier_table(
        result,
        objectives,
        senses,
        frontier_only=not args.all_points,
        records=None if args.all_points else front,
    )
    print(table)
    print()
    s = result.stats()
    cache = engine.stats()
    print(
        f"{s['points']} points ({s['computed']} computed, {s['cached']} "
        f"cached, {s['skipped']} skipped) in {s['wall_seconds']:.1f}s; "
        f"store hit rate {cache['hit_rate']:.0%} (dse records + cells)"
    )

    if args.functional_check:
        from repro.dse.sweep import functional_check

        try:
            checks = functional_check(
                result.points, backend=args.kernel_backend
            )
        except ValueError as e:  # unknown backend name
            print(f"error: {e}", file=sys.stderr)
            return 2
        print()
        print("functional spot-check (bit-accurate kernel layer):")
        for row in checks:
            label = (
                f"  {row['dtype']:<12} {row['granularity']:<8} "
                f"g={row['group_size']:<4}"
            )
            if row["skipped"] is not None:
                print(f"{label} skipped: {row['skipped']}")
            else:
                print(
                    f"{label} backend={row['backend']:<9} "
                    f"max|err|={row['max_abs_err']:.3e}"
                )

    import json as _json

    outputs = [
        (args.csv, lambda: to_csv(result.records)),
        (args.json, lambda: to_json(result)),
        (args.markdown, lambda: to_markdown(front)),
        (args.metrics, lambda: _json.dumps(obs.snapshot(), indent=2)),
    ]
    from repro.resilience import atomic_write_text

    for dest, render in outputs:
        if dest is None:
            continue
        try:
            atomic_write_text(Path(dest), render())
        except OSError as e:
            print(f"error: cannot write {dest!r}: {e}", file=sys.stderr)
            return 2
        print(f"wrote {dest}")
    if args.trace is not None:
        spans = obs.get_tracer().drain()
        obs.write_trace(args.trace, spans)
        print(f"wrote {args.trace} ({len(spans)} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
