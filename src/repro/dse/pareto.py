"""Non-dominated (Pareto) filtering over arbitrary objective tuples.

Generalizes the frontier logic that used to live only in the Fig. 9
evaluation: any number of objectives, each independently minimized or
maximized.  The conventions:

* a point **dominates** another iff it is no worse on *every*
  objective and strictly better on at least one;
* exact ties on all objectives dominate in neither direction, so
  duplicated points are all kept on the frontier;
* a point with a NaN objective is incomparable — it neither dominates
  nor appears on the frontier (``pareto_indices`` drops it).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["dominates", "pareto_indices", "pareto_front"]

_SENSES = ("min", "max")


def _signed(row: Sequence[float], senses: Sequence[str]) -> Tuple[float, ...]:
    """Map a row to all-minimization form (negate ``max`` axes)."""
    return tuple(
        -float(v) if s == "max" else float(v) for v, s in zip(row, senses)
    )


def _check(rows: Sequence[Sequence[float]], senses: Sequence[str]) -> None:
    for s in senses:
        if s not in _SENSES:
            raise ValueError(f"objective sense must be 'min' or 'max', got {s!r}")
    for row in rows:
        if len(row) != len(senses):
            raise ValueError(
                f"objective tuple {tuple(row)!r} has {len(row)} values "
                f"but {len(senses)} senses were given"
            )


def _dominates_signed(sa: Sequence[float], sb: Sequence[float]) -> bool:
    """Dominance in all-minimization form (the one shared predicate)."""
    return all(x <= y for x, y in zip(sa, sb)) and any(
        x < y for x, y in zip(sa, sb)
    )


def dominates(
    a: Sequence[float], b: Sequence[float], senses: Sequence[str]
) -> bool:
    """True iff ``a`` dominates ``b`` under the per-axis ``senses``.

    ``senses`` holds ``"min"`` or ``"max"`` per objective.  Ties on
    every axis (or any NaN on either side) return False.
    """
    _check((a, b), senses)
    sa, sb = _signed(a, senses), _signed(b, senses)
    if any(math.isnan(v) for v in sa + sb):
        return False
    return _dominates_signed(sa, sb)


def pareto_indices(
    rows: Sequence[Sequence[float]], senses: Sequence[str]
) -> List[int]:
    """Indices of the non-dominated rows, in input order.

    Rows containing NaN are excluded from the frontier (they carry no
    usable objective value) but never knock other rows off it.
    """
    _check(rows, senses)
    signed = [_signed(r, senses) for r in rows]
    valid = [i for i, r in enumerate(signed) if not any(math.isnan(v) for v in r)]
    front: List[int] = []
    for i in valid:
        ri = signed[i]
        if not any(
            _dominates_signed(signed[j], ri) for j in valid if j != i
        ):
            front.append(i)
    return front


def pareto_front(
    records: Sequence[dict],
    objectives: Sequence[str],
    senses: Sequence[str],
) -> List[dict]:
    """Non-dominated subset of ``records``, keyed by named objectives.

    ``records`` are dicts (e.g. :mod:`repro.dse.sweep` point records);
    ``objectives`` names the keys to compare and ``senses`` gives
    ``"min"``/``"max"`` per key.  ``None`` values (sim-only points
    carry ``ppl=None``) count as NaN — such records are incomparable
    and never reach the frontier.  An objective key absent from
    *every* record is a :class:`KeyError` (almost certainly a typo),
    not an empty frontier.
    """
    if records:
        known = set()
        for r in records:
            known.update(r)
        unknown = [obj for obj in objectives if obj not in known]
        if unknown:
            raise KeyError(
                f"unknown objective key(s) {', '.join(map(repr, unknown))}; "
                f"record fields: {', '.join(sorted(known))}"
            )
    nan = float("nan")

    def _value(r: dict, obj: str) -> float:
        v = r.get(obj)
        return nan if v is None else float(v)

    rows = [tuple(_value(r, obj) for obj in objectives) for r in records]
    return [records[i] for i in pareto_indices(rows, senses)]
