"""Sweep execution: cached, deduplicated design-point evaluation.

Every :class:`~repro.dse.space.DesignPoint` reduces to a content
address (:func:`point_key`, the same ``stable_digest`` machinery the
pipeline cells use), so sweeps are deduplicated, resumable, and a
warm rerun is pure JSON replay from the
:class:`~repro.pipeline.store.CacheStore` under the ``dse/`` kind.

A point's evaluation has two halves:

* **accuracy** — one :class:`~repro.pipeline.cells.CellSpec` per
  (model, datatype, granularity, quick) through the shared
  :class:`~repro.pipeline.engine.Engine`; many architecture variants
  share one cell, and the engine fans misses over ``--jobs N``
  workers and its own on-disk cache;
* **hardware** — the analytical simulator
  (:func:`repro.hw.simulator.simulate`) on the point's concrete
  :class:`~repro.hw.arch.ArchConfig`, normalized against the FP16
  baseline accelerator on the same workload.

:func:`run_points` is the low-level entry (a plain list of points —
the ported Fig. 7/8 experiments are thin views over it);
:func:`run_sweep` expands a whole :class:`~repro.dse.space.DesignSpace`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.dse.space import DesignPoint, DesignSpace
from repro.hw.baselines import AcceleratorSpec, make_accelerator
from repro.hw.simulator import SimResult, simulate, simulate_plan
from repro.models.zoo import get_model_config
from repro.pipeline.cells import CellSpec, cell_key
from repro.pipeline.keys import stable_digest
from repro.pipeline.store import CacheStore
from repro.policy import (
    POLICY_SCHEMA_VERSION,
    QuantPlan,
    config_memory_bits,
    make_plan,
    plan_gemm_bits,
    plan_weight_bytes,
)
from repro.quant.config import QuantConfig

__all__ = [
    "DSE_KIND",
    "DesignPoint",
    "SweepResult",
    "accelerator_for",
    "functional_check",
    "point_key",
    "resolve_plan",
    "run_points",
    "run_sweep",
]

_log = obs.get_logger(__name__)

#: Store namespace for design-point records.
DSE_KIND = "dse"

#: Bump when the record layout or evaluation semantics change.
#: v2: mixed-precision policy points + weight_mb/mean_bits fields.
#: v3: multi-chip (shards x topology) points + interconnect fields.
DSE_SCHEMA_VERSION = 3


def point_key(point: DesignPoint) -> str:
    """Content address of one design point (every field participates).

    Besides the point itself, the digest covers the full
    :class:`~repro.models.config.ModelConfig` (not just the model
    name), the FP16 baseline accelerator every record is normalized
    against, and the content address of the accuracy cell the point
    joins (``CELL_SCHEMA_VERSION``, evaluator batch/seq/sensitivity,
    dataset) — editing any of them must invalidate cached records,
    exactly as the pipeline cells key on ``ModelConfig.cache_key()``.

    Policy points cannot key on their exact accuracy cell (the plan —
    and hence the cell — is solved at evaluation time from cached
    sensitivity probes), so they key on the policy itself plus
    ``POLICY_SCHEMA_VERSION`` (bumped whenever profiling or solver
    semantics change) plus the key of the workload's FP16 anchor cell,
    which carries every cell-layer invalidator (``CELL_SCHEMA_VERSION``,
    evaluator batch/seq/sensitivity, dataset) the plan cell will share.
    """
    spec = _cell_spec(point)
    if spec is None and point.policy is not None:
        # The anchor cell of the same (model, dataset, quick) regime.
        spec = CellSpec(model=point.model, dataset="wikitext", quick=point.quick)
    return stable_digest(
        {
            "v": DSE_SCHEMA_VERSION,
            "point": point,
            "model_config": get_model_config(point.model).cache_key(),
            "baseline": make_accelerator("fp16"),
            "cell": None if spec is None else cell_key(spec),
            "policy_v": None if point.policy is None else POLICY_SCHEMA_VERSION,
        }
    )


def accelerator_for(point: DesignPoint) -> AcceleratorSpec:
    """The :class:`AcceleratorSpec` a point's simulation runs on."""
    return AcceleratorSpec(
        name=point.arch.name,
        arch=point.arch,
        supported_bits=(point.weight_bits,),
        macs_per_cycle=point.macs_per_cycle,
        kv_bits=point.kv_bits,
    )


@lru_cache(maxsize=None)
def _fp16_baseline(model: str, task: str) -> SimResult:
    """FP16 iso-area baseline run every point normalizes against."""
    return simulate(get_model_config(model), make_accelerator("fp16"), task, 16)


def _cell_spec(
    point: DesignPoint, plan: Optional[QuantPlan] = None
) -> Optional[CellSpec]:
    """The accuracy cell a point needs (None for sim-only points).

    Policy points need their resolved ``plan``; before resolution (at
    keying time) they report no cell.
    """
    if point.policy is not None:
        if plan is None:
            return None
        return CellSpec(model=point.model, dataset="wikitext", plan=plan, quick=point.quick)
    if point.dtype is None:
        return None
    return CellSpec(
        model=point.model,
        dataset="wikitext",
        quant=QuantConfig(
            dtype=point.dtype.dtype,
            granularity=point.dtype.granularity,
            group_size=point.group_size,
        ),
        quick=point.quick,
    )


def resolve_plan(point: DesignPoint, engine=None) -> QuantPlan:
    """Solve the :class:`~repro.policy.plan.QuantPlan` of a policy point.

    Sensitivity probes run as pipeline cells through ``engine`` (and
    its store), so re-solving across budgets, sweeps and processes is
    replay, not recompute.
    """
    pc = point.policy
    if pc is None:
        raise ValueError(f"design point {point} carries no policy")
    candidates = [
        QuantConfig(
            dtype=dt.dtype, granularity=dt.granularity, group_size=point.group_size
        )
        for dt in pc.ladder
    ]
    return make_plan(
        point.model,
        pc.solver,
        candidates,
        budget_mb=pc.budget_mb,
        threshold=pc.threshold,
        metric=pc.metric,
        quick=point.quick,
        engine=engine,
        name=pc.label,
    )


def _weight_mb(point: DesignPoint, plan: Optional[QuantPlan]) -> Optional[float]:
    """Full-size block-weight storage (metadata included) in MB."""
    cfg = get_model_config(point.model)
    if plan is not None:
        return plan_weight_bytes(plan, cfg) / 1e6
    if point.dtype is None:
        return None
    qc = QuantConfig(
        dtype=point.dtype.dtype,
        granularity=point.dtype.granularity,
        group_size=point.group_size,
    )
    total = 0.0
    for gemm in cfg.block_gemms(1):
        total += gemm.weight_elements * config_memory_bits(qc, gemm.k) / 8.0
    return total / 1e6


def _evaluate(
    point: DesignPoint, cell: Optional[dict], plan: Optional[QuantPlan] = None
) -> dict:
    """Compute one point's record (hardware sim + accuracy join).

    Multi-chip points (``shards > 1``) run the mesh simulator
    (:func:`repro.hw.multichip.simulate_sharded`), which layers
    per-topology interconnect time and traffic over the same per-chip
    model; accuracy cells are shared with the single-chip points —
    sharded execution is bit-identical, so the perplexity is too.
    """
    cfg = get_model_config(point.model)
    sharded = point.shards > 1
    if sharded:
        from repro.hw.multichip import simulate_sharded, simulate_sharded_plan

        if plan is not None:
            r = simulate_sharded_plan(
                cfg,
                accelerator_for(point),
                point.task,
                plan_gemm_bits(plan, cfg),
                shards=point.shards,
                topology=point.topology,
                group_size=point.group_size,
            )
        else:
            r = simulate_sharded(
                cfg,
                accelerator_for(point),
                point.task,
                point.weight_bits,
                shards=point.shards,
                topology=point.topology,
                group_size=point.group_size,
            )
    elif plan is not None:
        r = simulate_plan(
            cfg,
            accelerator_for(point),
            point.task,
            plan_gemm_bits(plan, cfg),
            group_size=point.group_size,
        )
    else:
        r = simulate(
            cfg,
            accelerator_for(point),
            point.task,
            point.weight_bits,
            group_size=point.group_size,
        )
    base = _fp16_baseline(point.model, point.task)
    freq = point.arch.frequency_ghz
    time_ms = r.cycles / (freq * 1e9) * 1e3
    edp = r.energy.total_uj * time_ms
    base_edp = base.energy.total_uj * base.time_ms
    arch = point.arch
    record = {
        "space": point.space,
        "model": point.model,
        "task": point.task,
        # Policy points report the element-weighted mean of the plan's
        # per-layer precisions (what the simulator ran at).
        "bits": point.weight_bits if plan is None else r.weight_bits,
        "dtype": (
            "plan"
            if plan is not None
            else None if point.dtype is None else point.dtype.dtype
        ),
        "granularity": None if point.dtype is None else point.dtype.granularity,
        "policy": None if point.policy is None else point.policy.label,
        "plan": None if plan is None else plan.to_dict(),
        "weight_mb": _weight_mb(point, plan),
        "arch": {
            "name": arch.name,
            "pe_rows": arch.pe_rows,
            "pe_cols": arch.pe_cols,
            "n_pes": arch.n_pes,
            "pe_lanes": arch.pe_lanes,
            "pes_per_tile": arch.pes_per_tile,
            "frequency_ghz": arch.frequency_ghz,
            "dram_gbps": arch.dram_gbps,
            "weight_buffer_kb": arch.weight_buffer_kb,
            "input_buffer_kb": arch.input_buffer_kb,
        },
        # Multi-chip points pay silicon per device: tp x pp chips.
        "area_mm2": arch.compute_area_um2() / 1e6 * (point.shards if sharded else 1),
        "shards": point.shards,
        "topology": point.topology if sharded else None,
        "interconnect_bytes": r.interconnect_bytes if sharded else 0.0,
        "interconnect_time_ms": (
            r.interconnect_cycles / (freq * 1e9) * 1e3 if sharded else 0.0
        ),
        "cycles": r.cycles,
        "time_ms": time_ms,
        "dram_uj": r.energy.dram_uj,
        "buffer_uj": r.energy.buffer_uj,
        "core_uj": r.energy.core_uj,
        "total_uj": r.energy.total_uj,
        "edp": edp,
        "speedup": base.time_ms / time_ms,
        "energy_norm": r.energy.total_uj / base.energy.total_uj,
        "edp_norm": edp / base_edp,
        "ppl": None,
        "fp16_ppl": None,
        "dppl": None,
    }
    if cell is not None:
        record["ppl"] = cell["ppl"]
        record["fp16_ppl"] = cell["fp16_ppl"]
        record["dppl"] = cell["ppl"] - cell["fp16_ppl"]
    return record


def functional_check(
    points: Sequence[DesignPoint],
    m: int = 4,
    d: int = 128,
    k: int = 8,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[dict]:
    """Spot-check swept datatypes on the bit-accurate kernel layer.

    The sweep itself is analytic (cycles and energy from the timing
    model) — this runs one small real GEMM per unique ``(dtype,
    granularity, group_size)`` among ``points`` through the kernel
    dispatcher, reporting which backend/tile executed it and the max
    absolute deviation from the ideal dequantized matmul.  Datatypes
    the PE rejects (asymmetric integers) are reported as skipped with
    the rejection reason rather than failing the sweep.
    """
    import numpy as np

    from repro.hw.functional import FunctionalGemm
    from repro.kernels.dispatch import get_dispatcher
    from repro.quant.packing import pack_tensor, unpack_tensor

    combos: Dict[Tuple[str, str, int], DesignPoint] = {}
    for p in points:
        if p.dtype is None:
            continue  # policy/sim-only points carry no single datatype
        combos.setdefault(
            (p.dtype.dtype, p.dtype.granularity, p.group_size), p
        )

    rng = np.random.default_rng(seed)
    out: List[dict] = []
    with obs.span("dse.functional_check", n_combos=len(combos)):
        for (dtype, granularity, group_size), _p in sorted(combos.items()):
            qc = QuantConfig(
                dtype=dtype, granularity=granularity, group_size=group_size
            )
            row = {
                "dtype": dtype,
                "granularity": granularity,
                "group_size": group_size,
                "backend": None,
                "tile": None,
                "max_abs_err": None,
                "skipped": None,
            }
            w = rng.standard_normal((k, d))
            x = rng.standard_normal((m, d)).astype(np.float16)
            gemm = FunctionalGemm(qc, backend=backend)
            try:
                packed = pack_tensor(w, qc)
                chosen, tile = get_dispatcher().resolve(
                    gemm._task(gemm._validated_shapes(x, w.shape), packed),
                    backend=backend,
                )
                res = gemm.run_packed(x, packed)
            except (TypeError, ValueError) as exc:
                row["skipped"] = str(exc)
                out.append(row)
                continue
            ref = x.astype(np.float64) @ unpack_tensor(packed, qc).T
            row["backend"] = chosen.name
            row["tile"] = None if tile is None else tile.to_dict()
            row["max_abs_err"] = float(np.max(np.abs(res.output - ref)))
            out.append(row)
    return out


def run_points(
    points: Sequence[DesignPoint],
    engine=None,
    store: Optional[CacheStore] = None,
    journal=None,
) -> Tuple[List[dict], int]:
    """Evaluate ``points``; returns ``(records, n_computed)``.

    Records align with the input order; duplicate points (same content
    address) are evaluated once.  ``store`` defaults to the engine's
    cache store, so the CLI's ``--cache-dir``/``--no-cache`` apply to
    design-point records and accuracy cells alike.  Accuracy cells run
    through ``engine.run`` and therefore fan out over its ``--jobs N``
    worker pool.

    ``journal`` (a :class:`~repro.resilience.journal.RunJournal`)
    receives one ``dse_point`` event per record as it lands in the
    store, so an interrupted sweep documents exactly how far it got;
    the records themselves resume as store hits on the next run.
    """
    if engine is None:
        from repro.pipeline import get_engine

        engine = get_engine()
    if store is None:
        store = engine.store

    with obs.span("dse.run_points", n_points=len(points)):
        keys = [point_key(p) for p in points]
        unique: Dict[str, DesignPoint] = {}
        for k, p in zip(keys, points):
            unique.setdefault(k, p)

        records: Dict[str, dict] = {}
        missing: List[Tuple[str, DesignPoint]] = []
        for k, p in unique.items():
            cached = store.get_json(DSE_KIND, k)
            if cached is not None:
                records[k] = cached
            else:
                missing.append((k, p))
        obs.counter("dse.points.cached").inc(len(unique) - len(missing))
        obs.counter("dse.points.computed").inc(len(missing))

        if missing:
            traced = obs.tracing_enabled()
            # Policy points first solve their plans — the sensitivity
            # probes are engine cells, deduplicated against the store, so
            # N budgets over one (model, ladder, metric) profile once.
            with obs.span("dse.resolve_plans"):
                plans: Dict[str, QuantPlan] = {
                    k: resolve_plan(p, engine=engine)
                    for k, p in missing
                    if p.policy is not None
                }
            # One engine pass for every accuracy cell the misses need;
            # the engine deduplicates and parallelizes.
            specs = [_cell_spec(p, plans.get(k)) for k, p in missing]
            needed = [s for s in specs if s is not None]
            cells = iter(engine.run(needed)) if needed else iter(())
            for (k, p), spec in zip(missing, specs):
                cell = next(cells) if spec is not None else None
                with (
                    obs.span(
                        "dse.point",
                        space=p.space,
                        model=p.model,
                        arch=p.arch.name,
                    )
                    if traced
                    else obs.NOOP_SPAN
                ):
                    record = _evaluate(p, cell, plans.get(k))
                store.put_json(DSE_KIND, k, record)
                records[k] = record
                if journal is not None:
                    journal.append(
                        {"event": "dse_point", "key": k, "space": p.space}
                    )

        return [records[k] for k in keys], len(missing)


@dataclass
class SweepResult:
    """Everything a finished sweep produced."""

    space: DesignSpace
    points: List[DesignPoint]
    records: List[dict]
    #: Rejected axis combinations with their constraint reasons.
    skipped: List[Tuple[dict, str]] = field(default_factory=list)
    #: Points evaluated this run (the rest replayed from cache).
    computed: int = 0
    wall_seconds: float = 0.0

    @property
    def cached(self) -> int:
        return len(self.records) - self.computed

    def frontier(
        self,
        objectives: Sequence[str] = ("ppl", "edp"),
        senses: Sequence[str] = ("min", "min"),
    ) -> List[dict]:
        """Non-dominated records under the named objectives.

        Computed independently per (model, task) pair — EDP values of
        different workloads are not comparable (see
        :func:`repro.dse.report.frontier_records`).
        """
        from repro.dse.report import frontier_records

        return frontier_records(self, objectives, senses)

    def stats(self) -> dict:
        return {
            "space": self.space.name,
            "points": len(self.records),
            "skipped": len(self.skipped),
            "computed": self.computed,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
        }


def run_sweep(
    space: DesignSpace,
    engine=None,
    store: Optional[CacheStore] = None,
    journal=None,
) -> SweepResult:
    """Expand ``space`` and evaluate every valid design point."""
    t0 = time.perf_counter()
    with obs.span("dse.sweep", space=space.name):
        points, skipped = space.points()
        for _params, reason in skipped:
            obs.counter("dse.skipped", reason=reason).inc()
        records, computed = run_points(
            points, engine=engine, store=store, journal=journal
        )
    _log.info(
        "sweep %s: %d points (%d computed, %d skipped) in %.1fs",
        space.name,
        len(records),
        computed,
        len(skipped),
        time.perf_counter() - t0,
    )
    return SweepResult(
        space=space,
        points=points,
        records=records,
        skipped=skipped,
        computed=computed,
        wall_seconds=time.perf_counter() - t0,
    )
