"""repro.dse — declarative accelerator design-space exploration.

The paper evaluates one fixed accelerator point (16 tiles of 8x8
bit-serial PEs under iso-compute-area); this subsystem sweeps the
whole neighbourhood: parameter axes over :class:`~repro.hw.arch.
ArchConfig` fields x datatype/precision choices x workloads, pushed
through the analytical hardware model and the cached
:mod:`repro.pipeline` accuracy cells, then reduced to Pareto
frontiers over accuracy, latency, energy, EDP and area.

* :mod:`repro.dse.space` — axes, validity constraints, iso-area
  normalization, presets, space-file (de)serialization,
* :mod:`repro.dse.sweep` — expansion into content-addressed design
  points, cached evaluation, ``--jobs N`` cell fan-out,
* :mod:`repro.dse.pareto` — non-dominated filtering over arbitrary
  objective tuples (min/max per axis),
* :mod:`repro.dse.report` — frontier tables (ASCII/CSV/JSON/markdown)
  and per-point detail,
* :mod:`repro.dse.cli` — the ``bitmod-repro dse`` entry point.

See ``docs/dse.md`` for the space-file schema and a worked example.
"""

from repro.dse.pareto import dominates, pareto_front, pareto_indices
from repro.dse.space import (
    PRESETS,
    DatatypeChoice,
    DesignSpace,
    PolicyChoice,
    get_preset,
    paper_tile_costs,
)
from repro.dse.sweep import (
    DesignPoint,
    SweepResult,
    point_key,
    resolve_plan,
    run_points,
    run_sweep,
)

__all__ = [
    "dominates",
    "pareto_front",
    "pareto_indices",
    "DatatypeChoice",
    "DesignSpace",
    "PolicyChoice",
    "PRESETS",
    "get_preset",
    "paper_tile_costs",
    "DesignPoint",
    "SweepResult",
    "point_key",
    "resolve_plan",
    "run_points",
    "run_sweep",
]
