"""Unified bit-serial representation (paper Section IV-A, Fig. 4).

Every weight, whatever its datatype, is decomposed into *bit-serial
terms*

    v_term = (-1)^sign * 2^exp * man * 2^bsig          (Eq. 4)

with a 1-bit mantissa and a small exponent, so the PE multiplies an
FP16 activation by a term using only shifts.

* **INT8 / INT6 / INT5** use radix-4 Booth encoding: ``ceil(b/2)``
  3-bit Booth strings, adjacent strings differing by 2 in
  bit-significance.  A Booth digit of ±2 is expressed with ``exp = 1``
  (Fig. 4's truth table).
* **Extended FP4 / FP3** are first converted to sign-magnitude fixed
  point with 4 integer bits (covering the ±8 special value) and 1
  fraction bit (covering ±0.5 / ±1.5); every representable value then
  has at most two set bits, so a leading-one detector emits at most
  two terms.  The special-value register file is modelled by simply
  decomposing whatever special value the group selected.

The resulting term counts per weight — 4 for INT8, 3 for INT6/INT5,
2 for FP4/FP3 — are the accelerator's throughput lever.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List

import numpy as np

__all__ = [
    "BitSerialTerm",
    "booth_encode",
    "csd_pair",
    "fixed_point_decompose",
    "decompose_value",
    "terms_for_dtype",
    "TERMS_PER_WEIGHT",
]


@dataclass(frozen=True)
class BitSerialTerm:
    """One bit-serial term: sign, exponent, 1-bit mantissa, significance."""

    sign: int
    exp: int
    man: int
    bsig: int

    @property
    def value(self) -> float:
        return ((-1) ** self.sign) * (2**self.exp) * self.man * (2.0**self.bsig)


def booth_encode(value: int, bits: int) -> List[BitSerialTerm]:
    """Radix-4 Booth decomposition of a ``bits``-wide integer.

    Returns ``ceil(bits / 2)`` terms (zero digits included: the
    pipeline is statically scheduled, so null terms still take their
    cycle — the paper's throughput numbers count them).

    The code space is tiny (2**bits patterns), so decompositions are
    memoized; callers receive a fresh list over shared immutable terms.
    """
    return list(_booth_encode_cached(int(value), int(bits)))


@lru_cache(maxsize=None)
def _booth_encode_cached(value: int, bits: int) -> tuple:
    limit = 2 ** (bits - 1)
    if not -limit <= value < limit:
        raise ValueError(f"{value} does not fit in {bits} bits")
    n_digits = (bits + 1) // 2
    # Radix-4 Booth digits: d_i = -2*b_{2i+1} + b_{2i} + b_{2i-1},
    # evaluated on the two's complement bit pattern with sign extension.
    out: List[BitSerialTerm] = []
    u = value & (2**bits - 1)

    def bit(i: int) -> int:
        if i < 0:
            return 0
        if i >= bits:  # sign extension
            return (u >> (bits - 1)) & 1
        return (u >> i) & 1

    for d in range(n_digits):
        digit = -2 * bit(2 * d + 1) + bit(2 * d) + bit(2 * d - 1)
        if digit == 0:
            out.append(BitSerialTerm(sign=0, exp=0, man=0, bsig=2 * d))
        else:
            out.append(
                BitSerialTerm(
                    sign=int(digit < 0),
                    exp=int(abs(digit) == 2),
                    man=1,
                    bsig=2 * d,
                )
            )
    return tuple(out)


#: Fixed-point format of extended FP4/FP3: 4 integer bits + 1 fraction
#: bit, so stored pattern = value * 2.
_FRAC_BITS = 1


def csd_pair(mag: int) -> "tuple | None":
    """Express ``mag`` as ``2**a`` or ``2**a - 2**b`` / ``2**a + 2**b``.

    Returns ``((sign_a, a), (sign_b, b))`` with at most two signed
    power-of-two terms (canonical-signed-digit style), or ``None`` if
    ``mag`` needs more than two.  This implements the decoder
    modification of Section IV-A: e.g. the special value 7 becomes
    ``2**3 - 2**0`` instead of three LOD terms.
    """
    if mag == 0:
        return ((1, 0, 0), (1, 0, 0))  # two null terms
    for a in range(mag.bit_length() + 1):
        if 2**a == mag:
            return ((0, 1, a), (1, 0, 0))
        for b in range(a):
            if 2**a + 2**b == mag:
                return ((0, 1, a), (0, 1, b))
            if 2**a - 2**b == mag:
                return ((0, 1, a), (1, 1, b))
    return None


def fixed_point_decompose(value: float) -> List[BitSerialTerm]:
    """Decompose an extended-FP value into (at most) two 1-bit terms.

    ``value`` must be representable as sign-magnitude fixed point with
    1 fraction bit and at most 4 integer bits, which covers every
    basic FP4/FP3 value and all Table IV special values.  Values whose
    pattern has more than two set bits (e.g. a programmed special
    value of 7) use the signed-digit form of Section IV-A
    (``7 = 2**3 - 2**0``), still two terms.

    Like :func:`booth_encode`, results are memoized over the (tiny)
    representable value space.
    """
    return list(_fixed_point_decompose_cached(float(value)))


@lru_cache(maxsize=None)
def _fixed_point_decompose_cached(value: float) -> tuple:
    scaled = value * 2**_FRAC_BITS
    if scaled != int(scaled):
        raise ValueError(f"{value} is not representable with 1 fraction bit")
    mag = abs(int(scaled))
    if mag >= 2 ** (4 + _FRAC_BITS):
        raise ValueError(f"{value} exceeds the 4-integer-bit fixed-point range")
    sign = int(value < 0)
    pair = csd_pair(mag)
    if pair is None:
        raise ValueError(
            f"{value} is not expressible with two signed power-of-two terms"
        )
    out: List[BitSerialTerm] = []
    for term_sign, man, pos in pair:
        if man == 0:
            out.append(BitSerialTerm(sign=0, exp=0, man=0, bsig=0))
        else:
            out.append(
                BitSerialTerm(
                    sign=sign ^ term_sign, exp=0, man=1, bsig=pos - _FRAC_BITS
                )
            )
    return tuple(out)


def decompose_value(value: float, dtype_kind: str, bits: int = 8) -> List[BitSerialTerm]:
    """Decompose one code-space value for the given datatype kind.

    ``dtype_kind`` is ``"int"`` (Booth path) or ``"fp"`` (LOD path).
    """
    if dtype_kind == "int":
        return booth_encode(int(value), bits)
    if dtype_kind == "fp":
        return fixed_point_decompose(value)
    raise ValueError(f"unknown dtype kind {dtype_kind!r}")


#: Terms (= PE cycles per 4-way dot product step) per supported format.
TERMS_PER_WEIGHT = {
    "int8": 4,
    "int6": 3,
    "int5": 3,
    "int4": 2,
    "fp4": 2,
    "fp3": 2,
}


def terms_for_dtype(name: str) -> int:
    """Bit-serial terms per weight for a registry datatype name."""
    key = None
    if name.startswith("int"):
        key = f"int{int(name[3])}"
    elif "fp4" in name or name in ("olive4", "ant4", "flint4"):
        key = "fp4"
    elif "fp3" in name or name in ("olive3", "ant3", "flint3"):
        key = "fp3"
    if key not in TERMS_PER_WEIGHT:
        raise KeyError(f"no bit-serial term count known for {name!r}")
    return TERMS_PER_WEIGHT[key]
