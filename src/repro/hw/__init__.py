"""BitMoD hardware model: bit-serial PE, timing, energy, simulator."""

from repro.hw.arch import BASELINE_FP16_ARCH, BITMOD_ARCH, ArchConfig
from repro.hw.baselines import (
    ACCELERATORS,
    AREA_BUDGET_UM2,
    AcceleratorSpec,
    make_accelerator,
)
from repro.hw.bitserial import (
    TERMS_PER_WEIGHT,
    BitSerialTerm,
    booth_encode,
    csd_pair,
    decompose_value,
    fixed_point_decompose,
    terms_for_dtype,
)
from repro.hw.dram import Traffic, TrafficModel
from repro.hw.energy import (
    DRAM_ENERGY_PJ_PER_BYTE,
    EnergyBreakdown,
    TileCost,
    bit_parallel_pe_cost,
    bitmod_pe_tile_cost,
    fp16_fp16_pe_cost,
    fp16_pe_tile_cost,
    sram_energy_pj_per_byte,
)
from repro.hw.functional import FunctionalGemm, GemmExecution
from repro.hw.pe import BatchPEResult, BitMoDPE, PEConfig, PEResult
from repro.hw.simulator import SimResult, simulate, simulate_workload
from repro.hw.termtable import (
    TermTable,
    decode_packed_terms,
    grid_term_table,
    integer_term_table,
    term_tables_for_dtype,
)
from repro.hw.timing import GemmTiming, dequant_stalls, gemm_compute_cycles

__all__ = [
    "ArchConfig",
    "BITMOD_ARCH",
    "BASELINE_FP16_ARCH",
    "AcceleratorSpec",
    "make_accelerator",
    "ACCELERATORS",
    "AREA_BUDGET_UM2",
    "BitSerialTerm",
    "booth_encode",
    "csd_pair",
    "fixed_point_decompose",
    "decompose_value",
    "terms_for_dtype",
    "TERMS_PER_WEIGHT",
    "BitMoDPE",
    "PEConfig",
    "PEResult",
    "BatchPEResult",
    "FunctionalGemm",
    "GemmExecution",
    "TermTable",
    "integer_term_table",
    "grid_term_table",
    "term_tables_for_dtype",
    "decode_packed_terms",
    "Traffic",
    "TrafficModel",
    "EnergyBreakdown",
    "TileCost",
    "fp16_pe_tile_cost",
    "bitmod_pe_tile_cost",
    "bit_parallel_pe_cost",
    "fp16_fp16_pe_cost",
    "sram_energy_pj_per_byte",
    "DRAM_ENERGY_PJ_PER_BYTE",
    "GemmTiming",
    "gemm_compute_cycles",
    "dequant_stalls",
    "SimResult",
    "simulate",
    "simulate_workload",
]
