"""Multi-chip extension of the accelerator simulator.

One :class:`~repro.shard.mesh.DeviceMesh` worth of identical chips
runs a tensor/pipeline-parallel partition of the model; this module
charges the *interconnect* side of that arrangement — all-reduce and
all-gather payloads against per-link bandwidth/latency, per topology
— on top of the per-chip compute/memory model of
:mod:`repro.hw.simulator`.

Cost model (``n`` = tensor-parallel degree, ``B`` = logical payload
bytes of the collective, one link of :class:`LinkSpec` bandwidth per
device):

* **ring** — the bandwidth-optimal schedule: an all-reduce moves
  ``2 (n-1)/n * B`` bytes per device over ``2 (n-1)`` latency steps
  (reduce-scatter + all-gather); an all-gather moves ``(n-1)/n * B``
  over ``n-1`` steps.
* **fully_connected** — every device pair has a dedicated link, so
  the same wire bytes transfer in parallel: an all-reduce takes two
  ``B/n`` transfers + two hops, an all-gather one.

Per-device wire bytes are identical across topologies (they are
schedule-optimal either way); what the topology changes is *time* —
latency hops and transfer serialization.  Pipeline ``send`` moves the
full payload point-to-point on both.

Assumptions, stated once: each chip keeps its own DRAM channel (the
per-chip memory-cycle model is unchanged), tensor-parallel peers run
in lockstep (symmetric shards), and pipeline stages of a single
request execute sequentially — pipelining shrinks per-chip weights
and memory cycles, not single-stream depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Mapping, Optional, Tuple

from repro.hw.baselines import AcceleratorSpec
from repro.hw.energy import (
    DRAM_ENERGY_PJ_PER_BYTE,
    EnergyBreakdown,
    sram_energy_pj_per_byte,
)
from repro.hw.timing import gemm_compute_cycles
from repro.models.config import GEMMShape, ModelConfig
from repro.obs.trace import NOOP_SPAN, TRACER

__all__ = [
    "LinkSpec",
    "ShardSimResult",
    "TOPOLOGIES",
    "collective_seconds",
    "simulate_sharded",
    "simulate_sharded_plan",
    "wire_bytes_per_device",
]

#: Interconnect topologies the cost model knows.
TOPOLOGIES = ("ring", "fully_connected")

_FP16_BYTES = 2.0


@dataclass(frozen=True)
class LinkSpec:
    """One chip-to-chip link: bandwidth in GB/s, per-hop latency in us.

    The defaults are a modest serdes link (100 GB/s, 1 us) — far below
    the on-package DRAM bandwidth, which is the point: collectives are
    charged, not free.
    """

    gbps: float = 100.0
    latency_us: float = 1.0

    def __post_init__(self):
        if self.gbps <= 0:
            raise ValueError(f"link bandwidth must be positive, got {self.gbps}")
        if self.latency_us < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency_us}")


def _check(op: str, topology: str) -> None:
    if op not in ("all_reduce", "all_gather", "send"):
        raise ValueError(f"unknown collective op {op!r}")
    if topology not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r} (known: {', '.join(TOPOLOGIES)})"
        )


def wire_bytes_per_device(
    op: str, payload_bytes: float, n: int, topology: str = "ring"
) -> float:
    """Bytes one device puts on the wire for one collective.

    ``payload_bytes`` is the *logical* tensor size (the full reduced /
    gathered tensor); schedule-optimal collectives move a ``(n-1)/n``
    fraction of it per device, twice for all-reduce.
    """
    _check(op, topology)
    if n <= 1:
        return 0.0
    if op == "all_reduce":
        return 2.0 * (n - 1) / n * payload_bytes
    if op == "all_gather":
        return (n - 1) / n * payload_bytes
    return float(payload_bytes)  # send: point-to-point, full payload


def collective_seconds(
    op: str, payload_bytes: float, n: int, link: LinkSpec, topology: str = "ring"
) -> float:
    """Wall-clock seconds one collective takes on ``n`` devices."""
    _check(op, topology)
    if n <= 1 and op != "send":
        return 0.0
    bw = link.gbps * 1e9
    lat = link.latency_us * 1e-6
    chunk = payload_bytes / max(n, 1) / bw
    if op == "send":
        return payload_bytes / bw + lat
    if op == "all_reduce":
        if topology == "ring":
            return 2 * (n - 1) * (chunk + lat)
        return 2 * (chunk + lat)  # fully connected: parallel pairwise links
    # all_gather
    if topology == "ring":
        return (n - 1) * (chunk + lat)
    return chunk + lat


# ----------------------------------------------------------------------
# Sharded workload simulation.
# ----------------------------------------------------------------------


@dataclass
class ShardSimResult:
    """Latency/energy/interconnect of one sharded workload run.

    ``cycles`` is the end-to-end request latency in core cycles
    (pipeline stages sequential, tensor-parallel peers in lockstep,
    collective time converted to cycles at the core frequency);
    ``energy`` sums every chip.  ``interconnect_bytes`` is the total
    wire traffic of the run across all devices,
    ``interconnect_cycles`` the collective time on the request's
    critical path.
    """

    model: str
    accelerator: str
    task: str
    weight_bits: float
    shards: int
    stages: int
    topology: str
    link: LinkSpec
    cycles: float
    energy: EnergyBreakdown
    interconnect_bytes: float = 0.0
    interconnect_cycles: float = 0.0

    @property
    def n_devices(self) -> int:
        return self.shards * self.stages

    @property
    def time_ms(self) -> float:
        """Latency in ms **at 1 GHz** (see :class:`SimResult.time_ms`)."""
        return self.cycles / 1e9 * 1e3

    @property
    def edp(self) -> float:
        return self.energy.total_uj * self.time_ms


def _stage_layer_counts(n_layers: int, pp: int) -> List[int]:
    """Contiguous per-stage layer counts, sizes differing by at most 1."""
    base, extra = divmod(n_layers, pp)
    return [base + (1 if s < extra else 0) for s in range(pp)]


def _sharded_stage_gemms(
    cfg: ModelConfig, tp: int, n_local_layers: int, m: int, last_stage: bool
) -> List[GEMMShape]:
    """Weight GEMMs one chip of a stage executes per pass.

    Column-parallel projections (q/k/v, gate/up/fc1, lm_head) shrink
    their output dimension by ``tp``; row-parallel ones (o, down/fc2)
    shrink their contraction dimension.  Weight elements per chip are
    ``1/tp`` of the full layer either way.
    """
    h = cfg.hidden
    kv = cfg.n_kv_heads * cfg.head_dim
    L = n_local_layers
    gemms = [
        GEMMShape("q_proj", m, h, h // tp, 1, L),
        GEMMShape("k_proj", m, h, kv // tp, 1, L),
        GEMMShape("v_proj", m, h, kv // tp, 1, L),
        GEMMShape("o_proj", m, h // tp, h, 1, L),
    ]
    if cfg.gated_mlp:
        gemms += [
            GEMMShape("gate_proj", m, h, cfg.intermediate // tp, 1, L),
            GEMMShape("up_proj", m, h, cfg.intermediate // tp, 1, L),
            GEMMShape("down_proj", m, cfg.intermediate // tp, h, 1, L),
        ]
    else:
        gemms += [
            GEMMShape("fc1", m, h, cfg.intermediate // tp, 1, L),
            GEMMShape("fc2", m, cfg.intermediate // tp, h, 1, L),
        ]
    if last_stage:
        gemms.append(GEMMShape("lm_head", m, h, cfg.vocab // tp, 1, 1))
    return gemms


def _device_pass(
    cfg: ModelConfig,
    accel: AcceleratorSpec,
    weight_bits: float,
    m: int,
    context: int,
    tp: int,
    n_local_layers: int,
    first_stage: bool,
    last_stage: bool,
    group_size: int,
    gemm_bits: Optional[Mapping[str, float]],
) -> Tuple[float, float, EnergyBreakdown]:
    """(compute_cycles, memory_cycles, energy) of one chip's pass.

    Mirrors :func:`repro.hw.simulator._pass_result` arithmetic on the
    sharded GEMM shapes, so a 1x1 mesh reproduces the single-chip
    model.
    """
    arch = accel.arch
    sram_pj = sram_energy_pj_per_byte(arch.weight_buffer_kb)
    kv_terms = accel.terms_per_weight(accel.kv_bits)

    def bits_of(name: str) -> float:
        if gemm_bits is None:
            return weight_bits
        return gemm_bits.get(name, weight_bits)

    compute_cycles = 0.0
    active_pe_cycles = 0.0
    buffer_pj = 0.0
    weight_dram_bytes = 0.0
    traced = TRACER.enabled
    for gemm in _sharded_stage_gemms(cfg, tp, n_local_layers, m, last_stage):
        with (
            TRACER.span("hw.gemm", name=gemm.name, m=gemm.m, k=gemm.k, n=gemm.n)
            if traced
            else NOOP_SPAN
        ):
            bits = bits_of(gemm.name)
            t = gemm_compute_cycles(
                gemm,
                arch,
                terms_per_weight=accel.terms_per_weight(int(round(bits))),
                macs_per_cycle=accel.macs_per_cycle,
                group_size=group_size,
            )
            compute_cycles += t.compute_cycles
            active_pe_cycles += t.active_pe_cycles
            w_bytes = gemm.weight_elements * bits / 8.0
            a_bytes = gemm.m * gemm.k * gemm.count * gemm.repeat * 2.0
            m_tiles = math.ceil(gemm.m / arch.pe_rows)
            n_tiles = math.ceil(gemm.n / arch.pe_cols)
            buffer_pj += (w_bytes * m_tiles + a_bytes * n_tiles) * sram_pj
            weight_dram_bytes += w_bytes

    hd = cfg.head_dim
    for gemm in (
        GEMMShape("qk", m, hd, context, cfg.n_heads // tp, n_local_layers),
        GEMMShape("pv", m, context, hd, cfg.n_heads // tp, n_local_layers),
    ):
        t = gemm_compute_cycles(
            gemm,
            arch,
            terms_per_weight=kv_terms,
            macs_per_cycle=accel.macs_per_cycle,
            group_size=group_size,
        )
        compute_cycles += t.compute_cycles
        active_pe_cycles += t.active_pe_cycles

    # Per-chip DRAM traffic: the chip's weight shards, its share of the
    # KV cache, boundary activations, and (first stage) the embedding
    # row lookups / (last stage) its slice of the logits.
    kv_dim = cfg.n_kv_heads * cfg.head_dim
    kv_bytes = n_local_layers * 2 * (kv_dim / tp) * (m + context) * accel.kv_bits / 8.0
    act_bytes = n_local_layers * 2 * m * cfg.hidden * _FP16_BYTES
    if last_stage:
        act_bytes += m * (cfg.vocab / tp) * _FP16_BYTES
    dram_bytes = weight_dram_bytes + kv_bytes + act_bytes
    if first_stage:
        dram_bytes += m * cfg.hidden * _FP16_BYTES  # embedding rows

    bytes_per_cycle = arch.dram_gbps / arch.frequency_ghz
    memory_cycles = dram_bytes / bytes_per_cycle

    pe_pj = active_pe_cycles * arch.pe_power_mw
    n_tiles_arr = arch.n_pes / arch.pes_per_tile
    encoder_pj = compute_cycles * n_tiles_arr * arch.encoder_power_mw
    energy = EnergyBreakdown(
        dram_uj=dram_bytes * DRAM_ENERGY_PJ_PER_BYTE / 1e6,
        buffer_uj=buffer_pj / 1e6,
        core_uj=(pe_pj + encoder_pj) / 1e6,
    )
    return compute_cycles, memory_cycles, energy


@dataclass
class _PassTotals:
    cycles: float = 0.0
    interconnect_cycles: float = 0.0
    interconnect_bytes: float = 0.0
    energy: EnergyBreakdown = field(
        default_factory=lambda: EnergyBreakdown(0.0, 0.0, 0.0)
    )


def _sharded_pass(
    cfg: ModelConfig,
    accel: AcceleratorSpec,
    weight_bits: float,
    m: int,
    context: int,
    tp: int,
    pp: int,
    topology: str,
    link: LinkSpec,
    group_size: int,
    gemm_bits: Optional[Mapping[str, float]],
) -> _PassTotals:
    """One forward pass over ``m`` tokens across the whole mesh."""
    arch = accel.arch
    freq_hz = arch.frequency_ghz * 1e9
    out = _PassTotals()
    hidden_payload = m * cfg.hidden * _FP16_BYTES
    logits_payload = m * cfg.vocab * _FP16_BYTES
    counts = _stage_layer_counts(cfg.n_layers, pp)
    for stage, n_local in enumerate(counts):
        first, last = stage == 0, stage == pp - 1
        compute, memory, energy = _device_pass(
            cfg, accel, weight_bits, m, context, tp, n_local,
            first, last, group_size, gemm_bits,
        )
        out.cycles += max(compute, memory)
        # Every chip of the stage runs the same shard shapes in
        # lockstep; energy is per chip x tp chips.
        out.energy = out.energy + EnergyBreakdown(
            dram_uj=tp * energy.dram_uj,
            buffer_uj=tp * energy.buffer_uj,
            core_uj=tp * energy.core_uj,
        )
        if tp > 1:
            # Two tensor-parallel collectives per layer (attention out,
            # MLP out); one logits all-gather on the last stage.
            coll_s = 2 * n_local * collective_seconds(
                "all_reduce", hidden_payload, tp, link, topology
            )
            coll_bytes = 2 * n_local * tp * wire_bytes_per_device(
                "all_reduce", hidden_payload, tp, topology
            )
            if last:
                coll_s += collective_seconds(
                    "all_gather", logits_payload, tp, link, topology
                )
                coll_bytes += tp * wire_bytes_per_device(
                    "all_gather", logits_payload, tp, topology
                )
            out.interconnect_cycles += coll_s * freq_hz
            out.interconnect_bytes += coll_bytes
        if not last:
            send_s = collective_seconds("send", hidden_payload, 1, link, topology)
            out.interconnect_cycles += send_s * freq_hz
            out.interconnect_bytes += hidden_payload
    out.cycles += out.interconnect_cycles
    return out


def simulate_sharded(
    cfg: ModelConfig,
    accel: AcceleratorSpec,
    task: str,
    weight_bits: float,
    shards: int = 1,
    stages: int = 1,
    topology: str = "ring",
    link: LinkSpec = LinkSpec(),
    prompt_len: int = 256,
    gen_len: int = 256,
    group_size: int = 128,
    gemm_bits: Optional[Mapping[str, float]] = None,
) -> ShardSimResult:
    """Simulate one request on a ``shards x stages`` mesh of ``accel`` chips.

    ``shards`` is the tensor-parallel degree (every layer split across
    that many chips), ``stages`` the pipeline depth (contiguous layer
    ranges).  The compute/memory model per chip is the single-chip one
    on the sharded GEMM shapes; collectives are charged per
    ``topology``/``link`` and land on the request's critical path.
    A ``1 x 1`` mesh reproduces :func:`repro.hw.simulator.simulate`.
    """
    if shards < 1 or stages < 1:
        raise ValueError(f"mesh must be at least 1x1, got {shards}x{stages}")
    if topology not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r} (known: {', '.join(TOPOLOGIES)})"
        )
    if cfg.n_heads % shards or cfg.n_kv_heads % shards:
        raise ValueError(
            f"{cfg.name}: {cfg.n_heads} heads / {cfg.n_kv_heads} KV heads "
            f"not divisible by {shards} shards"
        )
    if cfg.intermediate % shards or cfg.vocab % shards:
        raise ValueError(
            f"{cfg.name}: intermediate {cfg.intermediate} / vocab "
            f"{cfg.vocab} not divisible by {shards} shards"
        )
    if stages > cfg.n_layers:
        raise ValueError(
            f"{cfg.name}: cannot pipeline {cfg.n_layers} layers over "
            f"{stages} stages"
        )

    def one_pass(m: int, context: int) -> _PassTotals:
        return _sharded_pass(
            cfg, accel, weight_bits, m, context, shards, stages,
            topology, link, group_size, gemm_bits,
        )

    with (
        TRACER.span(
            "hw.simulate_sharded",
            model=cfg.name,
            accelerator=accel.name,
            task=task,
            shards=shards,
            stages=stages,
            topology=topology,
        )
        if TRACER.enabled
        else NOOP_SPAN
    ):
        if task == "discriminative":
            total = one_pass(prompt_len, prompt_len)
        elif task == "generative":
            total = one_pass(prompt_len, prompt_len)
            avg_ctx = prompt_len + gen_len // 2
            step = one_pass(1, avg_ctx)
            total.cycles += gen_len * step.cycles
            total.interconnect_cycles += gen_len * step.interconnect_cycles
            total.interconnect_bytes += gen_len * step.interconnect_bytes
            total.energy = total.energy + EnergyBreakdown(
                dram_uj=gen_len * step.energy.dram_uj,
                buffer_uj=gen_len * step.energy.buffer_uj,
                core_uj=gen_len * step.energy.core_uj,
            )
        else:
            raise ValueError("task must be 'discriminative' or 'generative'")
    return ShardSimResult(
        model=cfg.name,
        accelerator=accel.name,
        task=task,
        weight_bits=weight_bits,
        shards=shards,
        stages=stages,
        topology=topology,
        link=link,
        cycles=total.cycles,
        energy=total.energy,
        interconnect_bytes=total.interconnect_bytes,
        interconnect_cycles=total.interconnect_cycles,
    )


def simulate_sharded_plan(
    cfg: ModelConfig,
    accel: AcceleratorSpec,
    task: str,
    gemm_bits: Mapping[str, float],
    **kw,
) -> ShardSimResult:
    """Sharded counterpart of :func:`repro.hw.simulator.simulate_plan`:
    per-GEMM precisions, unnamed GEMMs at FP16, mean bits reported."""
    r = simulate_sharded(cfg, accel, task, 16.0, gemm_bits=gemm_bits, **kw)
    streamed = cfg.block_gemms(1) + [cfg.lm_head_gemm(1)]
    elements = sum(g.weight_elements for g in streamed)
    mean_bits = (
        sum(g.weight_elements * gemm_bits.get(g.name, 16.0) for g in streamed)
        / elements
    )
    return replace(r, weight_bits=mean_bits)
