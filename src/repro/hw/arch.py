"""Accelerator architecture description (paper Section IV-C, Fig. 6).

The BitMoD accelerator: a 4x4 grid of PE tiles, each tile 8 rows x 8
columns of bit-serial PEs; 512 KB input and 512 KB weight buffers;
output-stationary dataflow with weight terms broadcast down columns
and inputs broadcast across rows.  All accelerators in the evaluation
are configured under an *iso-compute-area* constraint, so a design
with smaller PEs fits proportionally more of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ArchConfig", "BITMOD_ARCH", "BASELINE_FP16_ARCH"]


@dataclass(frozen=True)
class ArchConfig:
    """One accelerator configuration.

    ``pe_throughput`` is MACs per cycle per PE for a *bit-parallel* PE
    (ignored for bit-serial designs, where throughput is
    ``pe_lanes / terms_per_weight``).
    """

    name: str
    #: PE grid (already scaled for iso-area by the factory functions).
    pe_rows: int = 32
    pe_cols: int = 32
    #: 4-way dot-product lanes of a bit-serial PE.
    pe_lanes: int = 4
    bit_serial: bool = True
    frequency_ghz: float = 1.0
    weight_buffer_kb: int = 512
    input_buffer_kb: int = 512
    #: Effective DRAM bandwidth (DDR4-3200 x64 channel).
    dram_gbps: float = 25.6
    #: Per-PE area in um^2 (28 nm), used for iso-area scaling.
    pe_area_um2: float = 1517.0
    #: Per-PE average power in mW at 1 GHz.
    pe_power_mw: float = 0.586
    #: Weight-decoder (bit-serial term generator) area/power per tile.
    encoder_area_um2: float = 2419.0
    encoder_power_mw: float = 1.86
    pes_per_tile: int = 64

    @property
    def n_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    def peak_macs_per_cycle(self, terms_per_weight: int = 1) -> float:
        """Peak MAC throughput of the whole array."""
        if self.bit_serial:
            return self.n_pes * self.pe_lanes / terms_per_weight
        return self.n_pes * 1.0

    def compute_area_um2(self) -> float:
        area = self.n_pes * self.pe_area_um2
        n_tiles = self.n_pes / self.pes_per_tile
        return area + n_tiles * self.encoder_area_um2


#: Published Table X numbers: the BitMoD tile has 8x8 PEs in 99,509
#: um^2 (including encoder); the FP16 baseline tile fits 6x8 PEs in
#: 95,498 um^2.  Per-PE figures below are those numbers divided out.
BITMOD_ARCH = ArchConfig(
    name="bitmod",
    pe_rows=32,
    pe_cols=32,
    bit_serial=True,
    pe_area_um2=97090.0 / 64,
    pe_power_mw=37.5 / 64,
    encoder_area_um2=2419.0,
    encoder_power_mw=1.86,
    pes_per_tile=64,
)

BASELINE_FP16_ARCH = ArchConfig(
    name="fp16",
    pe_rows=24,  # 4x4 tiles of 6x8 PEs under iso-area (Table X)
    pe_cols=32,
    bit_serial=False,
    pe_area_um2=95498.0 / 48,
    pe_power_mw=36.96 / 48,
    encoder_area_um2=0.0,
    encoder_power_mw=0.0,
    pes_per_tile=48,
)
