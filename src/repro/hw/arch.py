"""Accelerator architecture description (paper Section IV-C, Fig. 6).

The BitMoD accelerator evaluated in the paper: 16 PE tiles of 8x8
bit-serial PEs each — 1024 PEs arranged as a 32x32 grid — with 512 KB
input and 512 KB weight buffers; output-stationary dataflow with
weight terms broadcast down columns and inputs broadcast across rows.
All accelerators in the evaluation are configured under an
*iso-compute-area* constraint, so a design with smaller PEs fits
proportionally more of them (see :mod:`repro.hw.baselines` for the
area-budget fitting, and :mod:`repro.dse.space` for sweeping these
fields across a whole design space).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ArchConfig", "BITMOD_ARCH", "BASELINE_FP16_ARCH"]


@dataclass(frozen=True)
class ArchConfig:
    """One accelerator configuration.

    The defaults describe the paper's BitMoD array: a ``32 x 32`` PE
    grid (16 tiles of 64 PEs), 4-lane bit-serial PEs at 1 GHz, 512 KB
    weight/input buffers, and one DDR4-3200 x64 channel.

    Parameters
    ----------
    pe_rows, pe_cols:
        PE grid dimensions (already scaled for iso-area by the factory
        functions in :mod:`repro.hw.baselines`).  ``pe_rows * pe_cols``
        must be divisible by ``pes_per_tile``.
    pe_lanes:
        Dot-product lanes of a bit-serial PE (4 in the paper: each PE
        retires a 4-element MAC group per ``terms_per_weight`` cycles).
    bit_serial:
        ``True`` for term-serial PEs; ``False`` for bit-parallel MACs.
    frequency_ghz:
        Core clock in GHz.  Must be positive.
    weight_buffer_kb, input_buffer_kb:
        On-chip SRAM buffer capacities in KB.  Must be positive.
    dram_gbps:
        Effective DRAM bandwidth in GB/s (25.6 = DDR4-3200 x64
        channel).  Must be positive.
    pe_area_um2:
        Per-PE area in um^2 at 28 nm, used for iso-area scaling.
    pe_power_mw:
        Per-PE average power in mW at 1 GHz (numerically equal to pJ
        per active cycle).
    encoder_area_um2, encoder_power_mw:
        Weight-decoder (bit-serial term generator) area/power, one
        encoder per tile of ``pes_per_tile`` PEs.
    pes_per_tile:
        PEs sharing one encoder (64 = the paper's 8x8 tile).

    ``pe_throughput`` note: a *bit-parallel* PE retires
    ``macs_per_cycle`` MACs every cycle (see
    :class:`repro.hw.baselines.AcceleratorSpec`); a bit-serial PE's
    throughput is ``pe_lanes / terms_per_weight``.

    Raises
    ------
    ValueError
        If any dimension/capacity is non-positive, or the PE grid is
        not an integer number of tiles.
    """

    name: str
    #: PE grid (already scaled for iso-area by the factory functions).
    pe_rows: int = 32
    pe_cols: int = 32
    #: 4-way dot-product lanes of a bit-serial PE.
    pe_lanes: int = 4
    bit_serial: bool = True
    frequency_ghz: float = 1.0
    weight_buffer_kb: int = 512
    input_buffer_kb: int = 512
    #: Effective DRAM bandwidth (DDR4-3200 x64 channel), GB/s.
    dram_gbps: float = 25.6
    #: Per-PE area in um^2 (28 nm), used for iso-area scaling.
    pe_area_um2: float = 1517.0
    #: Per-PE average power in mW at 1 GHz.
    pe_power_mw: float = 0.586
    #: Weight-decoder (bit-serial term generator) area/power per tile.
    encoder_area_um2: float = 2419.0
    encoder_power_mw: float = 1.86
    pes_per_tile: int = 64

    def __post_init__(self):
        for fname in ("pe_rows", "pe_cols", "pe_lanes", "pes_per_tile"):
            v = getattr(self, fname)
            if v <= 0:
                raise ValueError(
                    f"ArchConfig {self.name!r}: {fname} must be a positive "
                    f"integer, got {v!r}"
                )
        if self.frequency_ghz <= 0:
            raise ValueError(
                f"ArchConfig {self.name!r}: frequency_ghz must be positive, "
                f"got {self.frequency_ghz!r}"
            )
        if self.dram_gbps <= 0:
            raise ValueError(
                f"ArchConfig {self.name!r}: dram_gbps must be positive, "
                f"got {self.dram_gbps!r}"
            )
        for fname in ("weight_buffer_kb", "input_buffer_kb"):
            v = getattr(self, fname)
            if v <= 0:
                raise ValueError(
                    f"ArchConfig {self.name!r}: {fname} must be positive "
                    f"(a zero-sized buffer cannot hold a weight tile), got {v!r}"
                )
        n_pes = self.pe_rows * self.pe_cols
        if n_pes % self.pes_per_tile != 0:
            raise ValueError(
                f"ArchConfig {self.name!r}: PE grid {self.pe_rows}x"
                f"{self.pe_cols} = {n_pes} PEs is not an integer number of "
                f"{self.pes_per_tile}-PE tiles (n_pes must be divisible by "
                f"pes_per_tile)"
            )

    @property
    def n_pes(self) -> int:
        """Total PE count of the array (``pe_rows * pe_cols``)."""
        return self.pe_rows * self.pe_cols

    def peak_macs_per_cycle(self, terms_per_weight: int = 1) -> float:
        """Peak MAC throughput of the whole array, MACs/cycle.

        ``terms_per_weight`` is the bit-serial term count per weight
        (2-4 depending on precision; ignored for bit-parallel arrays).
        """
        if self.bit_serial:
            return self.n_pes * self.pe_lanes / terms_per_weight
        return self.n_pes * 1.0

    def compute_area_um2(self) -> float:
        """Compute area of the array in um^2: PEs plus per-tile encoders."""
        area = self.n_pes * self.pe_area_um2
        n_tiles = self.n_pes / self.pes_per_tile
        return area + n_tiles * self.encoder_area_um2


#: Published Table X numbers: the BitMoD tile has 8x8 PEs in 99,509
#: um^2 (including encoder); the FP16 baseline tile fits 6x8 PEs in
#: 95,498 um^2.  Per-PE figures below are those numbers divided out.
BITMOD_ARCH = ArchConfig(
    name="bitmod",
    pe_rows=32,
    pe_cols=32,
    bit_serial=True,
    pe_area_um2=97090.0 / 64,
    pe_power_mw=37.5 / 64,
    encoder_area_um2=2419.0,
    encoder_power_mw=1.86,
    pes_per_tile=64,
)

BASELINE_FP16_ARCH = ArchConfig(
    name="fp16",
    pe_rows=24,  # 4x4 tiles of 6x8 PEs under iso-area (Table X)
    pe_cols=32,
    bit_serial=False,
    pe_area_um2=95498.0 / 48,
    pe_power_mw=36.96 / 48,
    encoder_area_um2=0.0,
    encoder_power_mw=0.0,
    pes_per_tile=48,
)
