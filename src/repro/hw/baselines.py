"""Accelerator specifications: BitMoD, FP16 baseline, ANT, OliVe, FIGNA.

All accelerators are normalized to the same compute area (the paper's
iso-compute-area constraint): the 16-tile FP16 baseline array defines
the budget, and each design fits as many of its own PEs as that budget
allows.  Per-PE areas come from Table X (FP16, BitMoD) and from the
component model in :mod:`repro.hw.energy` scaled by published
relative costs (ANT's decoder-augmented PE, OliVe's outlier-pair PE).

Weight-precision policy: BitMoD supports {8, 6, 5, 4, 3}; ANT and
OliVe are bit-parallel designs supporting {8, 4} only — when their
4-bit accuracy is unacceptable on a model they must fall back to
8-bit, which is exactly the dynamic behind Fig. 7's generative gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.hw.arch import ArchConfig
from repro.hw.energy import bitmod_pe_tile_cost, fp16_pe_tile_cost

__all__ = [
    "AcceleratorSpec",
    "make_accelerator",
    "ACCELERATORS",
    "AREA_BUDGET_UM2",
    "ISO_AREA_SLACK",
    "ARRAY_COLS",
]

_FP16_TILE = fp16_pe_tile_cost()
_BITMOD_TILE = bitmod_pe_tile_cost()

#: Iso-compute-area budget: the 4x4-tile FP16 baseline array.
AREA_BUDGET_UM2 = 16 * _FP16_TILE.total_area

#: Slack of the iso-area fit: the paper's Table X BitMoD array is ~4%
#: larger than the 16-tile baseline yet still called "iso-compute".
#: Shared with :mod:`repro.dse.space` so DSE sweeps stay area-
#: comparable with the paper accelerators.
ISO_AREA_SLACK = 1.05

#: Systolic array width every fitted design keeps; rows absorb the PE
#: count.  Shared with :mod:`repro.dse.space`.
ARRAY_COLS = 32


@dataclass(frozen=True)
class AcceleratorSpec:
    """One accelerator under the iso-area constraint."""

    name: str
    arch: ArchConfig
    #: Precisions the design can execute.
    supported_bits: Tuple[int, ...]
    #: MACs per cycle per PE for bit-parallel designs.
    macs_per_cycle: float = 1.0
    #: KV-cache precision used for the attention GEMMs.
    kv_bits: int = 8

    def terms_per_weight(self, bits: int) -> int:
        """Bit-serial terms (cycles per 4-MAC step) at ``bits``."""
        if not self.arch.bit_serial:
            return 1
        if bits >= 7:
            return 4
        if bits >= 5:
            return 3
        return 2  # extended FP4 / FP3 (and Booth INT4)

    def effective_macs_per_cycle(self, bits: int) -> float:
        """Array-wide MAC throughput at the given weight precision."""
        if self.arch.bit_serial:
            return self.arch.n_pes * self.arch.pe_lanes / self.terms_per_weight(bits)
        return self.arch.n_pes * self.macs_per_cycle


def _grid_for(pe_area: float, encoder_area_per_tile: float, pes_per_tile: int) -> Tuple[int, int]:
    """Rows/cols of the largest array fitting the area budget."""
    tile_area = pes_per_tile * pe_area + encoder_area_per_tile
    n_tiles = max(1, int((ISO_AREA_SLACK * AREA_BUDGET_UM2) // tile_area))
    n_pes = n_tiles * pes_per_tile
    cols = ARRAY_COLS
    rows = max(1, n_pes // cols)
    return rows, cols


def make_accelerator(name: str) -> AcceleratorSpec:
    """Build one of the evaluated accelerators."""
    fp16_pe_area = _FP16_TILE.total_area / _FP16_TILE.n_pes
    fp16_pe_power = _FP16_TILE.total_power / _FP16_TILE.n_pes

    if name == "fp16":
        return AcceleratorSpec(
            name="fp16",
            arch=ArchConfig(
                name="fp16",
                pe_rows=24,
                pe_cols=32,
                bit_serial=False,
                pe_area_um2=fp16_pe_area,
                pe_power_mw=fp16_pe_power,
                encoder_area_um2=0.0,
                encoder_power_mw=0.0,
                pes_per_tile=48,
            ),
            supported_bits=(16,),
            kv_bits=16,
        )
    if name == "bitmod":
        pe_area = _BITMOD_TILE.pe_array_area / _BITMOD_TILE.n_pes
        pe_power = _BITMOD_TILE.pe_array_power / _BITMOD_TILE.n_pes
        rows, cols = _grid_for(pe_area, _BITMOD_TILE.encoder_area, 64)
        return AcceleratorSpec(
            name="bitmod",
            arch=ArchConfig(
                name="bitmod",
                pe_rows=rows,
                pe_cols=cols,
                bit_serial=True,
                pe_area_um2=pe_area,
                pe_power_mw=pe_power,
                encoder_area_um2=_BITMOD_TILE.encoder_area,
                encoder_power_mw=_BITMOD_TILE.encoder_power,
                pes_per_tile=64,
            ),
            supported_bits=(8, 6, 5, 4, 3),
            kv_bits=8,
        )
    if name in ("ant", "olive"):
        # Bit-parallel FP16-activation x INT-weight PEs with the
        # design's datatype decoder.  ANT's decoder is lean; OliVe's
        # outlier-victim pair handling costs noticeably more (the
        # paper's Section V-C discussion), so it fits fewer PEs.
        rel_area = {"ant": 0.70, "olive": 0.78}[name]
        pe_area = rel_area * fp16_pe_area
        pe_power = rel_area * fp16_pe_power
        rows, cols = _grid_for(pe_area, 0.0, 64)
        return AcceleratorSpec(
            name=name,
            arch=ArchConfig(
                name=name,
                pe_rows=rows,
                pe_cols=cols,
                bit_serial=False,
                pe_area_um2=pe_area,
                pe_power_mw=pe_power,
                encoder_area_um2=0.0,
                encoder_power_mw=0.0,
                pes_per_tile=64,
            ),
            supported_bits=(8, 4),
            kv_bits=8,
        )
    raise KeyError(f"unknown accelerator {name!r}")


ACCELERATORS = ("fp16", "ant", "olive", "bitmod")
