"""End-to-end accelerator simulator (drives Figs. 7, 8, 9).

For one (model, accelerator, task, weight-precision) combination the
simulator walks every GEMM of the workload, computes compute cycles
from the timing model and memory cycles from the DRAM traffic model,
takes the max per pass (double-buffered overlap), and accumulates the
energy breakdown (DRAM / buffers / core+encoder).

Workloads follow Section V-A: batch 1, 256-token prompt; generative
tasks emit 256 tokens, each refetching all weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Optional

from repro.hw.baselines import AcceleratorSpec
from repro.hw.dram import TrafficModel
from repro.obs.trace import NOOP_SPAN, TRACER
from repro.hw.energy import (
    DRAM_ENERGY_PJ_PER_BYTE,
    EnergyBreakdown,
    sram_energy_pj_per_byte,
)
from repro.hw.timing import gemm_compute_cycles
from repro.models.config import ModelConfig

__all__ = ["SimResult", "simulate", "simulate_plan", "simulate_workload"]


@dataclass
class SimResult:
    """Latency + energy of one workload run.

    Attributes
    ----------
    model, accelerator, task:
        Identity of the simulated (model, accelerator, workload) triple.
    weight_bits:
        Weight precision the run used, in bits per weight.
    cycles:
        Total cycles of the workload (compute/memory overlap already
        taken per pass).
    energy:
        :class:`~repro.hw.energy.EnergyBreakdown` in micro-joules,
        split into DRAM / on-chip buffer / core(+encoder) components.
    """

    model: str
    accelerator: str
    task: str
    weight_bits: float
    cycles: float
    energy: EnergyBreakdown

    @property
    def time_ms(self) -> float:
        """Wall-clock latency in milliseconds **at 1 GHz**.

        The paper evaluates every design at 1 GHz, so cycles map to
        nanoseconds directly.  Design-space sweeps with a frequency
        axis must divide by their own ``frequency_ghz`` instead (the
        :mod:`repro.dse.sweep` records do).
        """
        return self.cycles / 1e9 * 1e3  # 1 GHz

    @property
    def edp(self) -> float:
        """Energy-delay product in uJ * ms (lower is better).

        The Fig. 9 Pareto metric: ``energy.total_uj * time_ms``.
        Because both factors are normalized per request, EDP rewards
        designs that are simultaneously fast *and* frugal.
        """
        return self.energy.total_uj * self.time_ms


def _pass_result(
    cfg: ModelConfig,
    accel: AcceleratorSpec,
    weight_bits: float,
    m: int,
    context: int,
    group_size: int = 128,
    gemm_bits: Optional[Mapping[str, float]] = None,
) -> tuple:
    """(cycles, energy) of one forward pass over ``m`` tokens.

    ``gemm_bits`` optionally assigns each weight GEMM (block
    projections and ``lm_head``) its own precision — the per-layer
    aggregation behind :func:`simulate_plan`.  GEMMs it does not name
    fall back to ``weight_bits``.
    """
    arch = accel.arch
    sram_pj = sram_energy_pj_per_byte(arch.weight_buffer_kb)
    kv_terms = accel.terms_per_weight(accel.kv_bits)

    def bits_of(name: str) -> float:
        if gemm_bits is None:
            return weight_bits
        return gemm_bits.get(name, weight_bits)

    compute_cycles = 0.0
    active_pe_cycles = 0.0
    buffer_pj = 0.0
    # Hot loop: tracing guards cost exactly one branch when disabled
    # (span kwargs are only built under the enabled arm).
    traced = TRACER.enabled
    gemms = cfg.block_gemms(m) + [cfg.lm_head_gemm(m)]
    for gemm in gemms:
        with (
            TRACER.span("hw.gemm", name=gemm.name, m=gemm.m, k=gemm.k, n=gemm.n)
            if traced
            else NOOP_SPAN
        ):
            bits = bits_of(gemm.name)
            t = gemm_compute_cycles(
                gemm,
                arch,
                terms_per_weight=accel.terms_per_weight(int(round(bits))),
                macs_per_cycle=accel.macs_per_cycle,
                group_size=group_size,
            )
            compute_cycles += t.compute_cycles
            active_pe_cycles += t.active_pe_cycles
            w_bytes = gemm.weight_elements * bits / 8.0
            a_bytes = gemm.m * gemm.k * gemm.count * gemm.repeat * 2.0
            m_tiles = math.ceil(gemm.m / arch.pe_rows)
            n_tiles = math.ceil(gemm.n / arch.pe_cols)
            buffer_pj += (w_bytes * m_tiles + a_bytes * n_tiles) * sram_pj

    # Attention activation-activation GEMMs at KV precision.
    for gemm in cfg.attention_gemms(m, context):
        with (
            TRACER.span("hw.gemm", name=gemm.name, m=gemm.m, k=gemm.k, n=gemm.n)
            if traced
            else NOOP_SPAN
        ):
            t = gemm_compute_cycles(
                gemm,
                arch,
                terms_per_weight=kv_terms,
                macs_per_cycle=accel.macs_per_cycle,
                group_size=group_size,
            )
            compute_cycles += t.compute_cycles
            active_pe_cycles += t.active_pe_cycles

    traffic = TrafficModel(
        cfg,
        weight_bits=weight_bits,
        kv_bits=accel.kv_bits,
        weight_bits_map=(
            None if gemm_bits is None else tuple(sorted(gemm_bits.items()))
        ),
    )
    tr = traffic.pass_traffic(m, context)
    bytes_per_cycle = arch.dram_gbps / arch.frequency_ghz
    memory_cycles = tr.total_bytes / bytes_per_cycle

    cycles = max(compute_cycles, memory_cycles)

    pe_pj = active_pe_cycles * arch.pe_power_mw
    n_tiles_arr = arch.n_pes / arch.pes_per_tile
    encoder_pj = compute_cycles * n_tiles_arr * arch.encoder_power_mw
    energy = EnergyBreakdown(
        dram_uj=tr.total_bytes * DRAM_ENERGY_PJ_PER_BYTE / 1e6,
        buffer_uj=buffer_pj / 1e6,
        core_uj=(pe_pj + encoder_pj) / 1e6,
    )
    return cycles, energy


def simulate(
    cfg: ModelConfig,
    accel: AcceleratorSpec,
    task: str,
    weight_bits: float,
    prompt_len: int = 256,
    gen_len: int = 256,
    group_size: int = 128,
    gemm_bits: Optional[Mapping[str, float]] = None,
) -> SimResult:
    """Simulate one request of the given task type.

    Parameters
    ----------
    cfg:
        :class:`~repro.models.config.ModelConfig` supplying the
        full-size GEMM shapes and DRAM traffic dimensions.
    accel:
        :class:`~repro.hw.baselines.AcceleratorSpec` — the
        architecture, bit-serial term function, bit-parallel MAC rate,
        and KV-cache precision.
    task:
        ``"discriminative"`` (one prefill pass over ``prompt_len``
        tokens) or ``"generative"`` (prefill plus ``gen_len`` decode
        steps, each refetching all weights).
    weight_bits:
        Weight precision in bits per weight (drives both the
        bit-serial term count and the DRAM weight traffic).
    prompt_len, gen_len:
        Workload shape in tokens (paper Section V-A: 256/256).
    group_size:
        Weights per scaling-factor group (elements; 128 in the
        paper), which sets the dequantization-stall cadence of the
        bit-serial timing model.
    gemm_bits:
        Optional per-GEMM precision override (see
        :func:`simulate_plan`, the intended entry point); GEMMs it
        does not name run at ``weight_bits``.

    Returns
    -------
    SimResult
        Cycles plus the per-component
        :class:`~repro.hw.energy.EnergyBreakdown` in uJ.
    """
    with (
        TRACER.span(
            "hw.simulate",
            model=cfg.name,
            accelerator=accel.name,
            task=task,
            weight_bits=weight_bits,
        )
        if TRACER.enabled
        else NOOP_SPAN
    ):
        if task == "discriminative":
            cycles, energy = _pass_result(
                cfg, accel, weight_bits, prompt_len, prompt_len, group_size, gemm_bits
            )
        elif task == "generative":
            cycles, energy = _pass_result(
                cfg, accel, weight_bits, prompt_len, prompt_len, group_size, gemm_bits
            )
            # Decode steps are near-identical; use the average context.
            avg_ctx = prompt_len + gen_len // 2
            d_cycles, d_energy = _pass_result(
                cfg, accel, weight_bits, 1, avg_ctx, group_size, gemm_bits
            )
            cycles += gen_len * d_cycles
            energy = energy + EnergyBreakdown(
                dram_uj=gen_len * d_energy.dram_uj,
                buffer_uj=gen_len * d_energy.buffer_uj,
                core_uj=gen_len * d_energy.core_uj,
            )
        else:
            raise ValueError("task must be 'discriminative' or 'generative'")
    return SimResult(
        model=cfg.name,
        accelerator=accel.name,
        task=task,
        weight_bits=weight_bits,
        cycles=cycles,
        energy=energy,
    )


def simulate_plan(
    cfg: ModelConfig,
    accel: AcceleratorSpec,
    task: str,
    gemm_bits: Mapping[str, float],
    prompt_len: int = 256,
    gen_len: int = 256,
    group_size: int = 128,
) -> SimResult:
    """Simulate one request under a per-layer precision assignment.

    ``gemm_bits`` maps weight-GEMM names (``q_proj``, ``fc1``, ...,
    ``lm_head``) to bits per weight — typically
    :func:`repro.policy.plan.plan_gemm_bits` aggregating a
    :class:`~repro.policy.plan.QuantPlan`.  Each GEMM's compute terms
    and DRAM traffic are taken at its own precision and summed across
    the workload; unnamed GEMMs run at FP16.  A uniform assignment
    reproduces :func:`simulate` at that precision exactly.

    The reported ``weight_bits`` is the element-weighted mean over the
    streamed weights.
    """
    r = simulate(
        cfg,
        accel,
        task,
        16.0,  # unnamed GEMMs stay FP16
        prompt_len=prompt_len,
        gen_len=gen_len,
        group_size=group_size,
        gemm_bits=gemm_bits,
    )
    streamed = cfg.block_gemms(1) + [cfg.lm_head_gemm(1)]
    elements = sum(g.weight_elements for g in streamed)
    mean_bits = (
        sum(g.weight_elements * gemm_bits.get(g.name, 16.0) for g in streamed)
        / elements
    )
    return replace(r, weight_bits=mean_bits)


def simulate_workload(cfg, accel, task, weight_bits, **kw) -> SimResult:
    """Alias of :func:`simulate` kept for the benchmark harness.

    Accepts the same parameters: model config, accelerator spec, task
    name, weight precision in bits, and the optional
    ``prompt_len``/``gen_len`` token counts.
    """
    return simulate(cfg, accel, task, weight_bits, **kw)
