"""Area, power, and energy models (28 nm, 1 GHz).

Calibration anchors are the paper's published Table X synthesis
numbers (tile area/power for the FP16 baseline and BitMoD) plus
standard technology constants: CACTI-style SRAM access energy and
DDR4 DRAM energy per bit (DRAMsim3's model).  Component-level area
for the FIGNA-style bit-parallel PEs (Fig. 10) is built from adder /
multiplier / register costs so the *relative* comparison emerges from
structure, not from copying the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "sram_energy_pj_per_byte",
    "DRAM_ENERGY_PJ_PER_BYTE",
    "TileCost",
    "fp16_pe_tile_cost",
    "bitmod_pe_tile_cost",
    "bit_parallel_pe_cost",
    "EnergyBreakdown",
]

#: DDR4 energy per byte moved (~15 pJ/bit, DRAMsim3 DDR4 model).
DRAM_ENERGY_PJ_PER_BYTE = 120.0


def sram_energy_pj_per_byte(capacity_kb: float) -> float:
    """CACTI-like SRAM read energy per byte at 28 nm.

    Access energy grows roughly with sqrt(capacity); anchored at
    ~0.75 pJ/byte for a 64 KB bank, which reproduces CACTI 7 numbers
    within a few tens of percent across 32 KB - 1 MB.
    """
    if capacity_kb <= 0:
        raise ValueError("capacity must be positive")
    return 0.75 * float(np.sqrt(capacity_kb / 64.0))


@dataclass(frozen=True)
class TileCost:
    """Area (um^2) and power (mW) of one PE tile."""

    name: str
    n_pes: int
    pe_array_area: float
    encoder_area: float
    pe_array_power: float
    encoder_power: float

    @property
    def total_area(self) -> float:
        return self.pe_array_area + self.encoder_area

    @property
    def total_power(self) -> float:
        return self.pe_array_power + self.encoder_power

    @property
    def area_per_pe(self) -> float:
        return self.total_area / self.n_pes

    @property
    def energy_per_cycle_pj(self) -> float:
        """mW at 1 GHz == pJ per cycle."""
        return self.total_power


def fp16_pe_tile_cost() -> TileCost:
    """Table X, baseline row: 6x8 FP16 MAC PEs."""
    return TileCost(
        name="fp16",
        n_pes=48,
        pe_array_area=95498.0,
        encoder_area=0.0,
        pe_array_power=36.96,
        encoder_power=0.0,
    )


def bitmod_pe_tile_cost() -> TileCost:
    """Table X, BitMoD row: 8x8 bit-serial PEs + term encoder."""
    return TileCost(
        name="bitmod",
        n_pes=64,
        pe_array_area=97090.0,
        encoder_area=2419.0,
        pe_array_power=37.5,
        encoder_power=1.86,
    )


# ----------------------------------------------------------------------
# Component-level model for bit-parallel mixed-precision PEs (Fig. 10).
# Unit costs in um^2 at 28 nm; calibrated so one FP16 MAC PE lands at
# the Table X per-PE area (~1990 um^2).
# ----------------------------------------------------------------------
_AREA_PER_MULT_BIT2 = 8.74  # multiplier area ~ k * n*m bits
_AREA_PER_ADDER_BIT = 14.0
_AREA_PER_REG_BIT = 6.0
_AREA_FP_ALIGN_PER_BIT = 16.0  # exponent align + normalize logic
_POWER_PER_AREA = 36.96 / 95498.0  # mW per um^2, from the baseline tile


def bit_parallel_pe_cost(weight_bits: int, dual_issue: bool = False) -> dict:
    """Area/power of a FIGNA-like FP16-activation x INT-weight PE.

    ``dual_issue=True`` models the decomposable PE that executes two
    FP16xINT4 MACs per cycle: the multiplier splits, but the
    accumulator, alignment logic, and output register double.
    """
    man_bits = 11
    mult = _AREA_PER_MULT_BIT2 * man_bits * max(weight_bits, 4)
    align = _AREA_FP_ALIGN_PER_BIT * (man_bits + 5)
    acc = _AREA_PER_ADDER_BIT * 32 + _AREA_PER_REG_BIT * 38
    area = mult + align + acc
    if dual_issue:
        # Two outputs: duplicated accumulator/align/register, split mult.
        area = mult + 2 * (align + acc) + 0.15 * mult
    return {"area_um2": area, "power_mw": area * _POWER_PER_AREA}


def fp16_fp16_pe_cost() -> dict:
    """Conventional FP16 x FP16 MAC PE (the Fig. 10 'FP-FP' bar)."""
    man_bits = 11
    mult = _AREA_PER_MULT_BIT2 * man_bits * man_bits
    align = _AREA_FP_ALIGN_PER_BIT * (man_bits + 5)
    acc = _AREA_PER_ADDER_BIT * 32 + _AREA_PER_REG_BIT * 38
    area = mult + align + acc
    return {"area_um2": area, "power_mw": area * _POWER_PER_AREA}


@dataclass
class EnergyBreakdown:
    """Energy of one workload run, in micro-joules."""

    dram_uj: float = 0.0
    buffer_uj: float = 0.0
    core_uj: float = 0.0

    @property
    def total_uj(self) -> float:
        return self.dram_uj + self.buffer_uj + self.core_uj

    @property
    def onchip_uj(self) -> float:
        return self.buffer_uj + self.core_uj

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram_uj=self.dram_uj + other.dram_uj,
            buffer_uj=self.buffer_uj + other.buffer_uj,
            core_uj=self.core_uj + other.core_uj,
        )
