"""Functional (bit-accurate) execution of a GEMM on the BitMoD array.

This is the Python analogue of the paper's RTL simulation: a weight
tensor is quantized, *serialized to its DRAM image*, decoded by the
bit-serial term generator, and multiplied against FP16 activations by
the bit-accurate PEs of :mod:`repro.hw.pe` under the output-stationary
dataflow of Fig. 6 — per-group partial sums are dequantized by the
bit-serial unit and accumulated into per-channel outputs by the column
accumulator.

It is orders of magnitude slower than ``x @ w_deq.T`` (that is the
point: every bit of datapath behaviour is exercised), so it targets
small GEMMs in tests and the `bit_accurate_gemm` example.  The cycle
counts it reports are cross-checked against the analytic timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dtypes.base import GridDataType
from repro.dtypes.extended import BitMoDType, make_extended_float
from repro.dtypes.integer import IntegerType
from repro.hw.bitserial import BitSerialTerm, booth_encode, fixed_point_decompose
from repro.hw.pe import BitMoDPE, PEConfig
from repro.quant.config import QuantConfig
from repro.quant.packing import PackedTensor, pack_tensor, unpack_bits

__all__ = ["FunctionalGemm", "GemmExecution"]


@dataclass
class GemmExecution:
    """Result of a functional GEMM run."""

    output: np.ndarray  # (M, K_out)
    pe_cycles: int  # cycles of the longest-running PE
    groups_processed: int


class FunctionalGemm:
    """Execute ``x @ W.T`` with bit-serial PEs on quantized weights."""

    def __init__(self, config: QuantConfig, pe_config: PEConfig = PEConfig()):
        self.config = config
        self.dtype = config.resolve_dtype()
        self.pe = BitMoDPE(pe_config)

    # ------------------------------------------------------------------
    # Term generation (the Fig. 6 "bit-serial term generator").
    # ------------------------------------------------------------------
    def _decode_group_terms(
        self, packed: PackedTensor, group_idx: int
    ) -> List[List[BitSerialTerm]]:
        """Decode one group's element codes into bit-serial terms."""
        g = packed.group_size
        codes = unpack_bits(
            packed.element_data, packed.bits, (group_idx + 1) * g
        )[group_idx * g:]
        dtype = self.dtype
        if isinstance(dtype, IntegerType):
            if dtype.asymmetric:
                raise TypeError(
                    "the bit-serial PE executes symmetric integer or "
                    "extended-FP weights (asymmetric integers carry a "
                    "zero-point the paper's PE does not implement)"
                )
            offset = dtype.qmax_symmetric
            return [booth_encode(int(c) - offset, dtype.bits) for c in codes]
        if isinstance(dtype, BitMoDType):
            sv = dtype.special_values[int(packed.sv_selectors[group_idx])]
            grid = make_extended_float(dtype.bits, sv).grid
            return [fixed_point_decompose(float(grid[int(c)])) for c in codes]
        if isinstance(dtype, GridDataType):
            grid = dtype.grid
            return [fixed_point_decompose(float(grid[int(c)])) for c in codes]
        raise TypeError(f"unsupported datatype {dtype!r}")

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray, w: np.ndarray) -> GemmExecution:
        """Compute ``x @ Q(w).T`` through the PE datapath.

        ``x`` is ``(M, D)`` FP16 activations; ``w`` is ``(K, D)``
        weights (quantized internally per ``self.config``).
        """
        x = np.asarray(x, dtype=np.float16)
        m, d = x.shape
        k, d2 = w.shape
        if d != d2:
            raise ValueError("activation/weight dimension mismatch")

        packed = pack_tensor(w, self.config)
        g = packed.group_size
        groups_per_channel = (d + g - 1) // g
        pad = groups_per_channel * g - d
        if pad:
            x = np.pad(x, ((0, 0), (0, pad)))

        out = np.zeros((m, k))
        pe_cycles = 0
        groups = 0
        for row in range(k):
            for mi in range(m):
                acc = 0.0  # column accumulator (FP16-precision output)
                for gc in range(groups_per_channel):
                    gidx = row * groups_per_channel + gc
                    terms = self._decode_group_terms(packed, gidx)
                    acts = x[mi, gc * g: (gc + 1) * g]
                    partial = self.pe.group_dot(terms, acts)
                    sf_code = int(packed.sf_codes[gidx])
                    if packed.zeros is None:
                        deq = self.pe.dequantize(partial, sf_code)
                        chan_scale = float(
                            packed.channel_scales[
                                gidx // self._rows_per_channel(packed, k)
                            ]
                        )
                        acc += deq.value * chan_scale
                        pe_cycles += partial.cycles  # dequant overlaps
                    groups += 1
                out[mi, row] = acc
        return GemmExecution(output=out, pe_cycles=pe_cycles, groups_processed=groups)

    @staticmethod
    def _rows_per_channel(packed: PackedTensor, k: int) -> int:
        return max(1, packed.sf_codes.size // max(1, packed.channel_scales.size))
