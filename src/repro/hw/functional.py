"""Functional (bit-accurate) execution of a GEMM on the BitMoD array.

This is the Python analogue of the paper's RTL simulation: a weight
tensor is quantized, *serialized to its DRAM image*, decoded by the
bit-serial term generator, and multiplied against FP16 activations by
the bit-accurate PEs of :mod:`repro.hw.pe` under the output-stationary
dataflow of Fig. 6 — per-group partial sums are dequantized by the
bit-serial unit and accumulated into per-channel outputs by the column
accumulator.

:class:`FunctionalGemm` is now a *facade* over the multi-backend
kernel layer (:mod:`repro.kernels`): it validates inputs, packages
them as a :class:`~repro.kernels.base.GemmTask`, and hands execution
to the kernel dispatcher, which picks among the registered backends —
``reference`` (the original per-scalar engine, kept as ground truth),
``numpy`` (PR 2's vectorized integer-exact engine), ``fused``
(single-pass float32 tensor math) and ``numba`` (threaded JIT when
numba is installed) — optionally guided by memoized autotune records.
Every backend is bit-identical to the scalar reference (outputs,
cycle counts and group counts), which the registry-wide property
tests in ``tests/hw`` enforce; backend choice changes speed, never
results.

Pin a backend per instance (``FunctionalGemm(cfg, backend="numpy")``)
or process-wide via ``$REPRO_KERNEL_BACKEND``.  Even the fastest
backend is slower than ``x @ w_deq.T`` (that is the point: every bit
of datapath behaviour is exercised), but it scales to real tile sizes
and serving batch sizes, and the cycle counts it reports are
cross-checked against the analytic timing model.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dtypes.integer import IntegerType
from repro.hw.bitserial import BitSerialTerm
from repro.hw.pe import BitMoDPE, PEConfig
from repro.hw.termtable import ASYMMETRIC_REJECT_MSG
from repro.kernels.base import GemmExecution, GemmTask
from repro.obs.trace import TRACER
from repro.quant.config import QuantConfig
from repro.quant.packing import PackedTensor, pack_tensor

__all__ = ["FunctionalGemm", "GemmExecution"]


class FunctionalGemm:
    """Execute ``x @ W.T`` with bit-serial PEs on quantized weights."""

    def __init__(
        self,
        config: QuantConfig,
        pe_config: PEConfig = PEConfig(),
        backend: Optional[str] = None,
    ):
        self.config = config
        self.dtype = config.resolve_dtype()
        self.pe = BitMoDPE(pe_config)
        #: Kernel backend pin (None = dispatcher decides).
        self.backend = backend

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------
    def _check_supported(self) -> None:
        dtype = self.dtype
        if isinstance(dtype, IntegerType) and dtype.asymmetric:
            raise TypeError(ASYMMETRIC_REJECT_MSG)

    @staticmethod
    def _validated_shapes(x: np.ndarray, w_shape: tuple) -> np.ndarray:
        x = np.asarray(x, dtype=np.float16)
        if x.ndim != 2:
            raise ValueError("activations must be 2-D (M, D)")
        if x.shape[1] != w_shape[1]:
            raise ValueError("activation/weight dimension mismatch")
        return x

    def _task(self, x: np.ndarray, packed: PackedTensor) -> GemmTask:
        return GemmTask(
            x=x, packed=packed, dtype=self.dtype, pe_config=self.pe.config
        )

    # ------------------------------------------------------------------
    # Dispatched engines.
    # ------------------------------------------------------------------
    def run(self, x: np.ndarray, w: np.ndarray) -> GemmExecution:
        """Compute ``x @ Q(w).T`` through the PE datapath.

        ``x`` is ``(M, D)`` FP16 activations; ``w`` is ``(K, D)``
        weights (quantized internally per ``self.config``).
        """
        x = self._validated_shapes(x, np.asarray(w).shape)
        return self.run_packed(x, pack_tensor(w, self.config))

    def run_packed(self, x: np.ndarray, packed: PackedTensor) -> GemmExecution:
        """Execute a GEMM against an already-packed weight image.

        The packed tensor's decoded term layout is computed once and
        memoized in the bounded kernel cache, so repeated calls (the
        serving replay case) pay only the PE array arithmetic.

        Traced runs emit one coarse ``kernel.gemm`` span per call,
        plus the dispatcher's ``kernel.dispatch`` span naming the
        backend that actually ran (the disabled path costs a branch).
        """
        self._check_supported()
        x = self._validated_shapes(x, packed.shape)
        from repro.kernels.dispatch import get_dispatcher  # lazy: heavy deps

        task = self._task(x, packed)
        if TRACER.enabled:
            with TRACER.span(
                "kernel.gemm",
                dtype=self.config.dtype,
                m=int(x.shape[0]),
                k=int(packed.shape[0]),
                d=int(packed.shape[1]),
            ):
                return get_dispatcher().run(task, backend=self.backend)
        return get_dispatcher().run(task, backend=self.backend)

    # ------------------------------------------------------------------
    # Scalar reference engine (the Fig. 6 datapath, one value at a
    # time) — now the ``reference`` kernel backend, kept callable here
    # as the equivalence baseline for tests.
    # ------------------------------------------------------------------
    def run_scalar(self, x: np.ndarray, w: np.ndarray) -> GemmExecution:
        """Reference implementation: one PE call per (row, col, group)."""
        from repro.kernels.reference import ReferenceBackend

        x = self._validated_shapes(x, np.asarray(w).shape)
        packed = pack_tensor(w, self.config)
        return ReferenceBackend().run(self._task(x, packed))

    def _decode_group_terms(
        self, packed: PackedTensor, group_idx: int
    ) -> List[List[BitSerialTerm]]:
        """Decode one group's element codes into bit-serial terms."""
        from repro.kernels.reference import decode_group_terms

        return decode_group_terms(packed, self.dtype, group_idx)
