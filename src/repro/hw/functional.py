"""Functional (bit-accurate) execution of a GEMM on the BitMoD array.

This is the Python analogue of the paper's RTL simulation: a weight
tensor is quantized, *serialized to its DRAM image*, decoded by the
bit-serial term generator, and multiplied against FP16 activations by
the bit-accurate PEs of :mod:`repro.hw.pe` under the output-stationary
dataflow of Fig. 6 — per-group partial sums are dequantized by the
bit-serial unit and accumulated into per-channel outputs by the column
accumulator.

Two execution engines share that datapath definition:

* :meth:`FunctionalGemm.run` (and :meth:`run_packed`) — the
  *vectorized* engine.  The packed tensor is decoded once into dense
  term tables (:mod:`repro.hw.termtable`, cached on the
  ``PackedTensor``) and the whole ``(M, K)`` output tile advances
  through :meth:`~repro.hw.pe.BitMoDPE.group_dot_batch` together, so
  the per-Python-call cost is one *term step*, not one scalar.
* :meth:`FunctionalGemm.run_scalar` — the original per-scalar
  reference, kept as the ground truth the vectorized engine is tested
  against (bit-identical outputs, cycle counts and group counts).

Even vectorized, this is slower than ``x @ w_deq.T`` (that is the
point: every bit of datapath behaviour is exercised), but it now
scales to real tile sizes and serving batch sizes.  The cycle counts
it reports are cross-checked against the analytic timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dtypes.base import GridDataType
from repro.dtypes.extended import BitMoDType, make_extended_float
from repro.dtypes.integer import IntegerType
from repro.hw.bitserial import BitSerialTerm, booth_encode, fixed_point_decompose
from repro.hw.pe import BitMoDPE, PEConfig
from repro.hw.termtable import ASYMMETRIC_REJECT_MSG, decode_packed_terms
from repro.obs.trace import TRACER
from repro.quant.config import QuantConfig
from repro.quant.packing import PackedTensor, pack_tensor, unpack_bits

__all__ = ["FunctionalGemm", "GemmExecution"]


@dataclass
class GemmExecution:
    """Result of a functional GEMM run."""

    output: np.ndarray  # (M, K_out)
    pe_cycles: int  # cycles of the longest-running PE
    groups_processed: int


class FunctionalGemm:
    """Execute ``x @ W.T`` with bit-serial PEs on quantized weights."""

    def __init__(self, config: QuantConfig, pe_config: PEConfig = PEConfig()):
        self.config = config
        self.dtype = config.resolve_dtype()
        self.pe = BitMoDPE(pe_config)

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------
    def _check_supported(self) -> None:
        dtype = self.dtype
        if isinstance(dtype, IntegerType) and dtype.asymmetric:
            raise TypeError(ASYMMETRIC_REJECT_MSG)

    @staticmethod
    def _validated_shapes(x: np.ndarray, w_shape: tuple) -> np.ndarray:
        x = np.asarray(x, dtype=np.float16)
        if x.ndim != 2:
            raise ValueError("activations must be 2-D (M, D)")
        if x.shape[1] != w_shape[1]:
            raise ValueError("activation/weight dimension mismatch")
        return x

    # ------------------------------------------------------------------
    # Vectorized engine.
    # ------------------------------------------------------------------
    def run(self, x: np.ndarray, w: np.ndarray) -> GemmExecution:
        """Compute ``x @ Q(w).T`` through the PE datapath.

        ``x`` is ``(M, D)`` FP16 activations; ``w`` is ``(K, D)``
        weights (quantized internally per ``self.config``).
        """
        x = self._validated_shapes(x, np.asarray(w).shape)
        return self.run_packed(x, pack_tensor(w, self.config))

    def run_packed(self, x: np.ndarray, packed: PackedTensor) -> GemmExecution:
        """Execute a GEMM against an already-packed weight image.

        The packed tensor's term decode is computed once and cached on
        ``packed``, so repeated calls (the serving replay case) pay
        only the PE array arithmetic.

        Traced runs emit one coarse ``kernel.gemm`` span per call
        (the disabled path costs a single branch).
        """
        self._check_supported()
        x = self._validated_shapes(x, packed.shape)
        if TRACER.enabled:
            with TRACER.span(
                "kernel.gemm",
                dtype=self.config.dtype,
                m=int(x.shape[0]),
                k=int(packed.shape[0]),
                d=int(packed.shape[1]),
            ):
                return self._run_packed(x, packed)
        return self._run_packed(x, packed)

    def _run_packed(self, x: np.ndarray, packed: PackedTensor) -> GemmExecution:
        m = x.shape[0]
        k, d = packed.shape
        g = packed.group_size
        gpc = packed.groups_per_channel or max(1, (d + g - 1) // g)
        pad = gpc * g - d
        if pad:
            x = np.pad(x, ((0, 0), (0, pad)))

        sign, exp, man, bsig = decode_packed_terms(packed, self.dtype)
        shape = (k, gpc, g, -1)
        sign, exp, man, bsig = (
            a.reshape(shape) for a in (sign, exp, man, bsig)
        )
        sf_codes = np.asarray(packed.sf_codes, dtype=np.int64).reshape(k, gpc)
        chan_scales = np.asarray(packed.channel_scales, dtype=np.float64).reshape(-1)
        if chan_scales.size != k:
            raise ValueError(
                f"expected one channel scale per output channel "
                f"({k}), got {chan_scales.size}"
            )

        out = np.zeros((m, k))
        pe_cycles = 0
        groups = 0
        for gc in range(gpc):
            acts = x[:, gc * g : (gc + 1) * g]
            partial = self.pe.group_dot_batch(
                sign[:, gc], exp[:, gc], man[:, gc], bsig[:, gc], acts
            )
            deq = self.pe.dequantize_batch(partial, sf_codes[None, :, gc])
            # Same float64 accumulation order as the scalar column
            # accumulator: one += per group column, ascending gc.
            out += deq.value * chan_scales[None, :]
            pe_cycles += m * k * partial.cycles  # dequant overlaps
            groups += m * k
        return GemmExecution(output=out, pe_cycles=pe_cycles, groups_processed=groups)

    # ------------------------------------------------------------------
    # Scalar reference engine (the Fig. 6 datapath, one value at a
    # time).  Kept verbatim as the equivalence baseline for tests.
    # ------------------------------------------------------------------
    def _decode_group_terms(
        self, packed: PackedTensor, group_idx: int
    ) -> List[List[BitSerialTerm]]:
        """Decode one group's element codes into bit-serial terms."""
        g = packed.group_size
        codes = unpack_bits(
            packed.element_data, packed.bits, (group_idx + 1) * g
        )[group_idx * g:]
        dtype = self.dtype
        if isinstance(dtype, IntegerType):
            self._check_supported()
            offset = dtype.qmax_symmetric
            return [booth_encode(int(c) - offset, dtype.bits) for c in codes]
        if isinstance(dtype, BitMoDType):
            sv = dtype.special_values[int(packed.sv_selectors[group_idx])]
            grid = make_extended_float(dtype.bits, sv).grid
            return [fixed_point_decompose(float(grid[int(c)])) for c in codes]
        if isinstance(dtype, GridDataType):
            grid = dtype.grid
            return [fixed_point_decompose(float(grid[int(c)])) for c in codes]
        raise TypeError(f"unsupported datatype {dtype!r}")

    def run_scalar(self, x: np.ndarray, w: np.ndarray) -> GemmExecution:
        """Reference implementation: one PE call per (row, col, group)."""
        x = self._validated_shapes(x, np.asarray(w).shape)
        m = x.shape[0]
        packed = pack_tensor(w, self.config)
        k, d = packed.shape
        g = packed.group_size
        groups_per_channel = (d + g - 1) // g
        pad = groups_per_channel * g - d
        if pad:
            x = np.pad(x, ((0, 0), (0, pad)))

        out = np.zeros((m, k))
        pe_cycles = 0
        groups = 0
        for row in range(k):
            for mi in range(m):
                acc = 0.0  # column accumulator (FP16-precision output)
                for gc in range(groups_per_channel):
                    gidx = row * groups_per_channel + gc
                    terms = self._decode_group_terms(packed, gidx)
                    acts = x[mi, gc * g: (gc + 1) * g]
                    partial = self.pe.group_dot(terms, acts)
                    sf_code = int(packed.sf_codes[gidx])
                    if packed.zeros is None:
                        deq = self.pe.dequantize(partial, sf_code)
                        chan_scale = float(
                            packed.channel_scales[
                                gidx // self._rows_per_channel(packed, k)
                            ]
                        )
                        acc += deq.value * chan_scale
                        pe_cycles += partial.cycles  # dequant overlaps
                    groups += 1
                out[mi, row] = acc
        return GemmExecution(output=out, pe_cycles=pe_cycles, groups_processed=groups)

    @staticmethod
    def _rows_per_channel(packed: PackedTensor, k: int) -> int:
        # Prefer the explicit layout carried by the packed tensor;
        # size-division inference mis-scales ragged/padded shapes.
        if packed.groups_per_channel:
            return packed.groups_per_channel
        return max(1, packed.sf_codes.size // max(1, packed.channel_scales.size))
