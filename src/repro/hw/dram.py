"""DRAM traffic accounting for LLM inference.

Computes the off-chip bytes moved per forward pass: quantized weights
(with per-group metadata), FP16 activations at layer boundaries, and
the KV-cache at the accelerator's KV precision.  The 512 KB on-chip
buffers cannot hold any full weight matrix of the benchmark models, so
weights stream from DRAM on every use — the assumption behind the
paper's memory-bound generative results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.models.config import ModelConfig

__all__ = ["TrafficModel", "Traffic"]

_FP16_BYTES = 2.0


@dataclass(frozen=True)
class Traffic:
    """DRAM bytes of one forward pass."""

    weight_bytes: float
    activation_bytes: float
    kv_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.activation_bytes + self.kv_bytes


@dataclass(frozen=True)
class TrafficModel:
    """Per-pass DRAM traffic for a model at given precisions.

    ``weight_bits_map`` (optional, name-sorted ``(gemm_name, bits)``
    pairs) assigns each streamed GEMM — the block projections plus
    ``lm_head`` — its own precision, the mixed-precision deployments
    of :mod:`repro.policy`; names it does not cover fall back to
    ``weight_bits``.
    """

    config: ModelConfig
    weight_bits: float = 16.0
    kv_bits: float = 16.0
    weight_bits_map: Optional[Tuple[Tuple[str, float], ...]] = None

    def _streamed_weight_bytes(self) -> float:
        """Bytes of the weights read in full every pass (blocks + LM
        head), honouring the per-GEMM precision map when present."""
        cfg = self.config
        if self.weight_bits_map is None:
            return cfg.streamed_weight_elements * self.weight_bits / 8.0
        bits = dict(self.weight_bits_map)
        total = 0.0
        for gemm in cfg.block_gemms(1) + [cfg.lm_head_gemm(1)]:
            total += gemm.weight_elements * bits.get(gemm.name, self.weight_bits) / 8.0
        return total

    def pass_traffic(self, m: int, context: int) -> Traffic:
        """One forward pass over ``m`` new tokens with ``context``
        tokens of KV-cache after the pass."""
        cfg = self.config
        # Streamed weights (blocks + LM head) at the quantized
        # precision, plus the m embedding-row lookups in FP16.
        weight_bytes = (
            self._streamed_weight_bytes() + m * cfg.hidden * _FP16_BYTES
        )
        kv_dim = cfg.n_kv_heads * cfg.head_dim
        # Write m new KV entries, read back the full context, per layer.
        kv_bytes = (
            cfg.n_layers * 2 * kv_dim * (m + context) * self.kv_bits / 8.0
        )
        act_bytes = (
            cfg.n_layers * 2 * m * cfg.hidden + m * cfg.vocab
        ) * _FP16_BYTES
        return Traffic(
            weight_bytes=weight_bytes,
            activation_bytes=act_bytes,
            kv_bytes=kv_bytes,
        )

    def workload_traffic(self, task: str, prompt_len: int = 256, gen_len: int = 256) -> Traffic:
        """Total traffic of a discriminative or generative request."""
        if task == "discriminative":
            return self.pass_traffic(prompt_len, prompt_len)
        if task != "generative":
            raise ValueError("task must be 'discriminative' or 'generative'")
        total = self.pass_traffic(prompt_len, prompt_len)
        w, a, k = total.weight_bytes, total.activation_bytes, total.kv_bytes
        for t in range(gen_len):
            step = self.pass_traffic(1, prompt_len + t + 1)
            w += step.weight_bytes
            a += step.activation_bytes
            k += step.kv_bytes
        return Traffic(weight_bytes=w, activation_bytes=a, kv_bytes=k)
