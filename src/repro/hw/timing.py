"""Cycle-level timing model for weight-stationary GEMMs.

Output-stationary mapping on a ``rows x cols`` PE array (Fig. 6):
every PE owns one output element of an ``M x N`` tile; weights stream
along K.  A bit-serial PE retires 4 MACs every ``terms_per_weight``
cycles; a bit-parallel PE retires ``macs_per_cycle`` every cycle.

The per-group bit-serial dequantization (8 cycles for an 8-bit scaling
factor) overlaps with the next group's dot product whenever the group
takes at least 8 cycles — with group size 128, 4 lanes, and >= 2 terms
the group takes >= 64 cycles, so dequantization never stalls (the
Section IV-B pipeline argument, asserted in the tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.arch import ArchConfig
from repro.models.config import GEMMShape

__all__ = ["GemmTiming", "gemm_compute_cycles", "dequant_stalls"]


@dataclass(frozen=True)
class GemmTiming:
    """Cycle count of one GEMM on one accelerator."""

    name: str
    compute_cycles: float
    active_pe_cycles: float
    macs: float


def gemm_compute_cycles(
    gemm: GEMMShape,
    arch: ArchConfig,
    terms_per_weight: int = 1,
    macs_per_cycle: float = 1.0,
    group_size: int = 128,
) -> GemmTiming:
    """Compute cycles for ``gemm`` (already including count/repeat).

    Parameters
    ----------
    gemm:
        :class:`~repro.models.config.GEMMShape`; its ``count`` and
        ``repeat`` multipliers are folded into the returned cycles.
    arch:
        The PE array (grid dimensions, lanes, bit-serial flag).
    terms_per_weight:
        Bit-serial terms per weight (2-4; cycles per ``pe_lanes``-MAC
        step).  Ignored for bit-parallel arrays.
    macs_per_cycle:
        MACs retired per cycle by one bit-parallel PE.  Ignored for
        bit-serial arrays.
    group_size:
        Weights per scaling-factor group (128 in the paper); sets how
        often a dequantization stall *could* occur.

    Returns
    -------
    GemmTiming
        ``compute_cycles`` (cycles), ``active_pe_cycles``
        (PE-cycles, i.e. cycles x PEs actually busy — the quantity
        per-PE power multiplies into pJ), and ``macs``.
    """
    m_tiles = math.ceil(gemm.m / arch.pe_rows)
    n_tiles = math.ceil(gemm.n / arch.pe_cols)
    if arch.bit_serial:
        k_cycles = math.ceil(gemm.k / arch.pe_lanes) * terms_per_weight
        stalls = dequant_stalls(group_size, arch.pe_lanes, terms_per_weight)
        k_cycles += stalls * math.ceil(gemm.k / group_size)
    else:
        k_cycles = math.ceil(gemm.k / macs_per_cycle)
    per_instance = m_tiles * n_tiles * k_cycles
    instances = gemm.count * gemm.repeat
    cycles = per_instance * instances

    # PEs active in edge tiles: average utilization of the array.
    util_m = gemm.m / (m_tiles * arch.pe_rows)
    util_n = gemm.n / (n_tiles * arch.pe_cols)
    active = cycles * arch.n_pes * util_m * util_n
    return GemmTiming(
        name=gemm.name,
        compute_cycles=float(cycles),
        active_pe_cycles=float(active),
        macs=float(gemm.macs),
    )


def dequant_stalls(group_size: int, lanes: int, terms_per_weight: int, sf_bits: int = 8) -> int:
    """Pipeline stall cycles per group caused by dequantization.

    Parameters
    ----------
    group_size:
        Weights per scaling-factor group (elements).
    lanes:
        Dot-product lanes of the PE (elements retired per term step).
    terms_per_weight:
        Bit-serial terms per weight (cycles per lane-group).
    sf_bits:
        Scaling-factor precision in bits; the bit-serial scale
        multiply takes one cycle per bit, so 8-bit scales need 8
        cycles of slack.

    Returns
    -------
    int
        Stall cycles per group: zero whenever the group dot product
        (``group_size / lanes * terms_per_weight`` cycles) is at least
        as long as the scaling-factor multiply — true for every BitMoD
        configuration (Section IV-B).
    """
    group_cycles = (group_size // lanes) * terms_per_weight
    return max(0, sf_bits - group_cycles)
