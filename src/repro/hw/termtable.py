"""Precomputed bit-serial term tables (the vectorized term generator).

The scalar codecs of :mod:`repro.hw.bitserial` decompose one value per
call, which made the bit-accurate GEMM an M*K*G triple loop of Python
calls.  This module precomputes the decomposition of an *entire code
space* once per datatype — every storage code of an integer, BitMoD or
grid datatype mapped to its ``(sign, exp, man, bsig)`` term fields as
dense ``(n_codes, n_terms)`` int64 arrays — so decoding a packed
tensor becomes a single fancy-indexing gather and the PE can process
whole GEMM tiles as array arithmetic.

Tables are built *from* the scalar codecs (single source of truth for
the paper's Fig. 4 encodings) and memoized per datatype key:

* integers      -> one table per bit width (offset-binary code space)
* grid dtypes   -> one table per level grid
* BitMoD        -> one table per (bits, special value) candidate grid

:func:`decode_packed_terms` turns a :class:`~repro.quant.packing.
PackedTensor` into per-group term arrays, reading the tensor's
word-packed element stream (``PackedTensor.word_image()``, several
codes per 64-bit word) and memoizing the decoded arrays in the
bounded kernel decode cache (:mod:`repro.kernels.cache`,
``$REPRO_KERNEL_CACHE_MB``) so serving-path replays decode each
weight image exactly once — without unbounded growth when many large
layers are replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.dtypes.base import GridDataType
from repro.dtypes.extended import BitMoDType, make_extended_float
from repro.dtypes.integer import IntegerType
from repro.hw.bitserial import booth_encode, fixed_point_decompose

__all__ = [
    "TermTable",
    "ASYMMETRIC_REJECT_MSG",
    "integer_term_table",
    "grid_term_table",
    "term_tables_for_dtype",
    "decode_packed_terms",
]

#: Why asymmetric integers cannot execute on the bit-serial PE (shared
#: by every entry point that rejects them).
ASYMMETRIC_REJECT_MSG = (
    "the bit-serial PE executes symmetric integer or extended-FP "
    "weights (asymmetric integers carry a zero-point the paper's PE "
    "does not implement)"
)

@dataclass(frozen=True)
class TermTable:
    """Bit-serial decomposition of one datatype's full code space.

    ``sign``, ``exp``, ``man``, ``bsig`` are ``(n_codes, n_terms)``
    int8 arrays (the PE promotes them to int64 on use); row ``c``
    holds the terms of storage code ``c``.  ``values`` is the decoded
    value per code (for reference/tests).
    """

    sign: np.ndarray
    exp: np.ndarray
    man: np.ndarray
    bsig: np.ndarray
    values: np.ndarray

    @property
    def n_codes(self) -> int:
        return self.sign.shape[0]

    @property
    def n_terms(self) -> int:
        return self.sign.shape[1]

    def lookup(self, codes: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Gather term fields for an array of storage codes.

        Returns ``(sign, exp, man, bsig)``, each shaped
        ``codes.shape + (n_terms,)``.
        """
        idx = np.asarray(codes, dtype=np.int64)
        return self.sign[idx], self.exp[idx], self.man[idx], self.bsig[idx]

    def term_values(self) -> np.ndarray:
        """Per-term real values (reconstruction check: rows sum to
        ``values``)."""
        return (
            ((-1.0) ** self.sign)
            * (2.0 ** self.exp)
            * self.man
            * (2.0 ** self.bsig)
        )


def _table_from_lists(term_lists, values) -> TermTable:
    n_terms = len(term_lists[0])
    if any(len(t) != n_terms for t in term_lists):
        raise ValueError("all codes must decompose to the same term count")
    # int8 is ample for every field (sign/exp/man are bits, bsig is a
    # small shift) and keeps decoded whole-tensor term arrays 8x
    # leaner; the PE's int64 arithmetic promotes them on use.
    sign = np.array([[t.sign for t in ts] for ts in term_lists], dtype=np.int8)
    exp = np.array([[t.exp for t in ts] for ts in term_lists], dtype=np.int8)
    man = np.array([[t.man for t in ts] for ts in term_lists], dtype=np.int8)
    bsig = np.array([[t.bsig for t in ts] for ts in term_lists], dtype=np.int8)
    for arr in (sign, exp, man, bsig):
        arr.setflags(write=False)
    return TermTable(
        sign=sign, exp=exp, man=man, bsig=bsig,
        values=np.asarray(values, dtype=np.float64),
    )


@lru_cache(maxsize=None)
def integer_term_table(bits: int) -> TermTable:
    """Booth table over the offset-binary code space of a symmetric
    ``bits``-wide integer: code ``c`` represents ``c - qmax``."""
    qmax = 2 ** (bits - 1) - 1
    values = [c - qmax for c in range(2 * qmax + 1)]
    return _table_from_lists([booth_encode(v, bits) for v in values], values)


@lru_cache(maxsize=None)
def _grid_term_table_cached(grid_key: tuple) -> TermTable:
    return _table_from_lists(
        [fixed_point_decompose(v) for v in grid_key], grid_key
    )


def grid_term_table(grid: np.ndarray) -> TermTable:
    """LOD table over a sorted level grid: code ``c`` is grid index
    ``c``.  Raises ``ValueError`` (same as the scalar codec) when a
    level is not expressible in the PE's fixed-point term format."""
    return _grid_term_table_cached(tuple(float(v) for v in np.asarray(grid).reshape(-1)))


def term_tables_for_dtype(dtype) -> Tuple[TermTable, ...]:
    """Term table(s) executing ``dtype`` on the bit-serial PE.

    Integer and plain grid datatypes map to a single table; BitMoD
    families map to one table per special-value candidate, indexed by
    the packed tensor's per-group SV selector.
    """
    if isinstance(dtype, IntegerType):
        if dtype.asymmetric:
            raise TypeError(ASYMMETRIC_REJECT_MSG)
        return (integer_term_table(dtype.bits),)
    if isinstance(dtype, BitMoDType):
        return tuple(
            grid_term_table(make_extended_float(dtype.bits, sv).grid)
            for sv in dtype.special_values
        )
    if isinstance(dtype, GridDataType):
        return (grid_term_table(dtype.grid),)
    raise TypeError(f"unsupported datatype {dtype!r}")


def decode_packed_terms(packed, dtype) -> Tuple[np.ndarray, ...]:
    """Decode a whole packed tensor into per-group term arrays.

    Returns ``(sign, exp, man, bsig)`` int8 arrays of shape
    ``(n_groups, group_size, n_terms)``.  Codes are read from the
    tensor's word-packed image (multiple codes per 64-bit word,
    unpacked in one vectorized shift-and-mask) and gathered through
    the memoized term tables.  The decoded arrays are memoized in the
    bounded LRU :func:`~repro.kernels.cache.decode_cache` — keyed by
    the identity of the term tables, which reflects the actual grids
    rather than the datatype name, so two same-named dtypes with
    different special values cannot alias — and repeated GEMMs over
    one weight image (the serving case) decode it exactly once.
    Decodes larger than the cache budget (``$REPRO_KERNEL_CACHE_MB``)
    are returned uncached.
    """
    tables = term_tables_for_dtype(dtype)
    token = tuple(id(t) for t in tables)
    # Local import: the kernels cache depends only on repro.obs, but
    # importing it at module scope would cycle through repro.kernels'
    # backend registration, which imports this module.
    from repro.kernels.cache import decode_cache

    cache = decode_cache()
    cached = cache.get(packed, "terms", token)
    if cached is not None:
        return cached

    from repro.quant.packing import unpack_words  # local: avoid import cycle
    g = packed.group_size
    n_groups = packed.sf_codes.size
    codes = unpack_words(packed.word_image(), packed.bits, n_groups * g)
    codes = codes.astype(np.int64).reshape(n_groups, g)

    if isinstance(dtype, BitMoDType):
        sel = np.asarray(packed.sv_selectors, dtype=np.int64).reshape(-1)
        n_terms = tables[0].n_terms
        arrays = tuple(
            np.zeros((n_groups, g, n_terms), dtype=np.int8) for _ in range(4)
        )
        for gi, table in enumerate(tables):
            mask = sel == gi
            if not mask.any():
                continue
            fields = table.lookup(codes[mask])
            for dst, src in zip(arrays, fields):
                dst[mask] = src
    else:
        arrays = tables[0].lookup(codes)

    return cache.put(packed, "terms", token, tuple(arrays))
