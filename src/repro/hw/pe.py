"""Bit-accurate model of the BitMoD processing element (Fig. 5).

The PE computes, every cycle, a 4-way dot product between four
bit-serial weight terms and four FP16 activations, in four steps:

1. **Exponent alignment** — the per-lane product exponent is
   ``activation_exp + term_exp``; lanes align to the largest.
2. **Bit-serial multiplication** — the 1-bit weight mantissa gates the
   11-bit activation mantissa (hidden bit included); aligned mantissas
   keep 3 guard bits and round to nearest even, as in FPRaker.
3. **Group accumulation** — the 4-way sum is scaled by the term's
   bit-significance and added into a wide fixed-point accumulator,
   which is renormalized to a bounded mantissa width.
4. **Bit-serial dequantization** — after the group dot product
   finishes, the accumulator is multiplied by the 8-bit integer
   per-group scaling factor one bit per cycle (shift-and-add).

Numbers are carried as ``(mantissa, exponent)`` pairs with explicit
integer arithmetic — no hidden float math in the datapath — so the
model is faithful to RTL behaviour including alignment rounding.  The
test suite validates it against float dot products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.dtypes.floating import FP16_MANTISSA_BITS, fp16_decompose
from repro.hw.bitserial import BitSerialTerm

__all__ = ["PEConfig", "BitMoDPE", "PEResult", "BatchPEResult"]

_FP16_EXP_OFFSET = 15 + FP16_MANTISSA_BITS  # value = man * 2**(exp - 25)


def _rshift_rne(value: int, shift: int) -> int:
    """Arithmetic right shift with round-to-nearest-even."""
    if shift <= 0:
        return value << (-shift)
    sign = -1 if value < 0 else 1
    mag = abs(value)
    floor = mag >> shift
    rem = mag & ((1 << shift) - 1)
    half = 1 << (shift - 1)
    if rem > half or (rem == half and (floor & 1)):
        floor += 1
    return sign * floor


# ----------------------------------------------------------------------
# Vectorized integer primitives.
#
# These reproduce the scalar helpers above elementwise over numpy
# arrays.  They operate on int64 by default and on ``object`` arrays
# (arbitrary-precision Python ints) when the caller detects that an
# alignment shift could overflow 64 bits — either way the results are
# bit-identical to the scalar datapath.
# ----------------------------------------------------------------------


def _rshift_rne_vec(value: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Elementwise :func:`_rshift_rne` for non-negative ``shift``."""
    if value.dtype == object:
        # Keep the whole computation in Python ints (exact path).
        shift = np.asarray(shift).astype(object)
    else:
        # Beyond 62 the operands (< 2**62) all round to zero exactly as
        # they would with the true shift; clamping keeps << defined.
        shift = np.minimum(shift, 62)
    neg = value < 0
    mag = np.where(neg, -value, value)
    floor = mag >> shift
    rem = mag - (floor << shift)
    half = ((mag * 0) + 1) << np.maximum(shift - 1, 0)  # 2**(shift-1); 1 when shift==0
    # shift == 0 => rem == 0 < half, so no rounding happens (exact).
    round_up = (rem > half) | ((rem == half) & ((floor & 1) == 1))
    floor = floor + np.where(round_up, 1, 0)
    return np.where(neg, -floor, floor)


def _bit_length_vec(value: np.ndarray) -> np.ndarray:
    """Elementwise ``int.bit_length`` of non-negative values."""
    if value.dtype == object:
        return np.frompyfunc(lambda v: int(v).bit_length(), 1, 1)(value).astype(
            np.int64
        )
    out = np.zeros(value.shape, dtype=np.int64)
    tmp = value.copy()
    for s in (32, 16, 8, 4, 2, 1):
        big = tmp >= (np.int64(1) << s)
        out += np.where(big, s, 0)
        tmp = np.where(big, tmp >> s, tmp)
    return out + (tmp > 0)


@dataclass(frozen=True)
class PEConfig:
    """Datapath widths of the PE."""

    lanes: int = 4
    guard_bits: int = 3
    acc_mantissa_bits: int = 24
    sf_bits: int = 8


@dataclass
class PEResult:
    """A (mantissa, exponent) fixed-point value plus cycle count."""

    mantissa: int
    exponent: int
    cycles: int

    @property
    def value(self) -> float:
        return float(self.mantissa) * 2.0 ** self.exponent


@dataclass
class BatchPEResult:
    """A tile of (mantissa, exponent) values plus per-output cycles.

    ``mantissa`` / ``exponent`` are integer arrays of one shape;
    ``cycles`` is the cycle count of *each* output element (every PE in
    the tile runs the same statically-scheduled term sequence).
    """

    mantissa: np.ndarray
    exponent: np.ndarray
    cycles: int

    @property
    def value(self) -> np.ndarray:
        # ldexp is exact scaling by 2**exp — same float64 result as the
        # scalar ``float(man) * 2.0 ** exp``.
        return np.ldexp(
            self.mantissa.astype(np.float64), self.exponent.astype(np.int32)
        )


class BitMoDPE:
    """Functional, bit-accurate BitMoD PE."""

    def __init__(self, config: PEConfig = PEConfig()):
        self.config = config

    # ------------------------------------------------------------------
    def dot4(
        self, terms: Sequence[BitSerialTerm], acts: Sequence[float]
    ) -> Tuple[int, int]:
        """One cycle: 4-way product sum.  Returns ``(mantissa, exp)``
        where the value is ``mantissa * 2**exp``."""
        cfg = self.config
        if len(terms) != cfg.lanes or len(acts) != cfg.lanes:
            raise ValueError(f"PE is {cfg.lanes}-wide")
        a_sign, a_exp, a_man = fp16_decompose(np.asarray(acts, dtype=np.float64))

        lane_exp = []
        lane_man = []
        for i, t in enumerate(terms):
            # The bit-significance enters the lane exponent: Booth
            # terms at one index share it, LOD terms carry their own.
            e = int(a_exp[i]) + t.exp + t.bsig
            m = int(a_man[i]) * t.man
            s = int(a_sign[i]) ^ t.sign
            lane_exp.append(e)
            lane_man.append(-m if s else m)
        e_max = max(lane_exp)
        total = 0
        for m, e in zip(lane_man, lane_exp):
            aligned = _rshift_rne(m << cfg.guard_bits, e_max - e)
            total += aligned
        exp = e_max - cfg.guard_bits - _FP16_EXP_OFFSET
        return total, exp

    # ------------------------------------------------------------------
    def _accumulate(
        self, acc: Tuple[int, int], man: int, exp: int
    ) -> Tuple[int, int]:
        cfg = self.config
        acc_man, acc_exp = acc
        if acc_man == 0:
            new_man, new_exp = man, exp
        elif man == 0:
            new_man, new_exp = acc_man, acc_exp
        else:
            if exp >= acc_exp:
                # Shift the accumulator down to the incoming exponent
                # only when that loses nothing; otherwise align incoming.
                new_man = acc_man + (man << (exp - acc_exp))
                new_exp = acc_exp
            else:
                new_man = man + (acc_man << (acc_exp - exp))
                new_exp = exp
        # Renormalize to the bounded accumulator width (Fig. 5 step 3).
        excess = abs(new_man).bit_length() - cfg.acc_mantissa_bits
        if excess > 0:
            new_man = _rshift_rne(new_man, excess)
            new_exp += excess
        return new_man, new_exp

    # ------------------------------------------------------------------
    def group_dot(
        self,
        weight_terms: List[List[BitSerialTerm]],
        acts: Sequence[float],
    ) -> PEResult:
        """Dot product of one weight group against FP16 activations.

        ``weight_terms[i]`` is the bit-serial decomposition of weight
        ``i`` (code-space); ``acts`` the matching activations.  The PE
        processes 4 lanes per cycle and one term index per cycle, so
        the cycle count is ``(G/4) * terms_per_weight``.
        """
        cfg = self.config
        g = len(weight_terms)
        if g % cfg.lanes:
            raise ValueError(f"group size must be a multiple of {cfg.lanes}")
        n_terms = len(weight_terms[0])
        if any(len(t) != n_terms for t in weight_terms):
            raise ValueError("all weights must decompose to the same term count")

        acc = (0, 0)
        cycles = 0
        acts = np.asarray(acts, dtype=np.float64)
        for base in range(0, g, cfg.lanes):
            lane_acts = acts[base: base + cfg.lanes]
            for t_idx in range(n_terms):
                terms = [weight_terms[base + i][t_idx] for i in range(cfg.lanes)]
                # Terms at one index share a bit-significance by
                # construction; verify the invariant cheaply.
                man, exp = self.dot4(terms, lane_acts)
                acc = self._accumulate(acc, man, exp)
                cycles += 1
        return PEResult(mantissa=acc[0], exponent=acc[1], cycles=cycles)

    # ------------------------------------------------------------------
    # Batched (vectorized) datapath.  Same integer arithmetic as the
    # scalar methods above, executed elementwise over whole GEMM tiles;
    # outputs are bit-identical per element (the test suite asserts it).
    # ------------------------------------------------------------------
    def _accumulate_batch(
        self,
        acc_man: np.ndarray,
        acc_exp: np.ndarray,
        man: np.ndarray,
        exp: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Elementwise :meth:`_accumulate` over integer arrays."""
        cfg = self.config
        acc_zero = acc_man == 0
        man_zero = man == 0
        both = ~acc_zero & ~man_zero

        base_exp = np.where(
            both, np.minimum(acc_exp, exp), np.where(acc_zero, exp, acc_exp)
        )
        man_shift = np.where(both, np.maximum(exp - base_exp, 0), 0)
        acc_shift = np.where(both, np.maximum(acc_exp - base_exp, 0), 0)

        # int64 alignment can overflow only when a shifted operand
        # would exceed 62 bits; fall back to exact Python-int math for
        # the (pathological) tiles where that happens.
        width = np.maximum(
            _bit_length_vec(np.abs(man)) + man_shift,
            _bit_length_vec(np.abs(acc_man)) + acc_shift,
        )
        if int(width.max(initial=0)) > 61:
            acc_man = acc_man.astype(object)
            man = man.astype(object)
            man_shift = man_shift.astype(object)
            acc_shift = acc_shift.astype(object)

        summed = (man << man_shift) + (acc_man << acc_shift)
        new_man = np.where(acc_zero, man, np.where(man_zero, acc_man, summed))
        new_exp = np.where(acc_zero, exp, np.where(man_zero, acc_exp, base_exp))

        # Renormalize to the bounded accumulator width (Fig. 5 step 3).
        excess = np.maximum(
            _bit_length_vec(np.abs(new_man)) - cfg.acc_mantissa_bits, 0
        )
        new_man = _rshift_rne_vec(new_man, excess)
        new_exp = new_exp + excess
        if new_man.dtype == object:
            new_man = new_man.astype(np.int64)  # renormalized: fits again
        return new_man, new_exp

    def group_dot_batch(
        self,
        term_sign: np.ndarray,
        term_exp: np.ndarray,
        term_man: np.ndarray,
        term_bsig: np.ndarray,
        acts: np.ndarray,
    ) -> BatchPEResult:
        """Group dot product of a whole GEMM tile in one call.

        Parameters
        ----------
        term_sign, term_exp, term_man, term_bsig:
            ``(k, g, n_terms)`` int64 term fields — the bit-serial
            decomposition of ``k`` weight groups (one per output
            channel), e.g. from
            :func:`repro.hw.termtable.decode_packed_terms`.
        acts:
            ``(m, g)`` FP16-representable activations shared across
            the ``k`` channels.

        Returns a :class:`BatchPEResult` with ``(m, k)`` mantissa and
        exponent arrays; each element is bit-identical to
        :meth:`group_dot` run on that (activation row, weight group)
        pair, and ``cycles`` equals the scalar per-PE cycle count
        ``(g / lanes) * n_terms``.
        """
        cfg = self.config
        k, g, n_terms = term_man.shape
        if g % cfg.lanes:
            raise ValueError(f"group size must be a multiple of {cfg.lanes}")
        acts = np.asarray(acts, dtype=np.float64)
        m = acts.shape[0]
        if acts.shape[1] != g:
            raise ValueError("activation/terms group size mismatch")
        a_sign, a_exp, a_man = fp16_decompose(acts)  # (m, g) int64

        acc_man = np.zeros((m, k), dtype=np.int64)
        acc_exp = np.zeros((m, k), dtype=np.int64)
        cycles = 0
        for base in range(0, g, cfg.lanes):
            sl = slice(base, base + cfg.lanes)
            ae = a_exp[:, None, sl]  # (m, 1, lanes)
            am = a_man[:, None, sl]
            asg = a_sign[:, None, sl]
            for t in range(n_terms):
                e = ae + (term_exp[None, :, sl, t] + term_bsig[None, :, sl, t])
                mm = am * term_man[None, :, sl, t]
                neg = (asg ^ term_sign[None, :, sl, t]) == 1
                mm = np.where(neg, -mm, mm)
                e_max = e.max(axis=-1)
                aligned = _rshift_rne_vec(
                    mm << cfg.guard_bits, e_max[..., None] - e
                )
                total = aligned.sum(axis=-1)
                step_exp = e_max - cfg.guard_bits - _FP16_EXP_OFFSET
                acc_man, acc_exp = self._accumulate_batch(
                    acc_man, acc_exp, total, step_exp
                )
                cycles += 1
        return BatchPEResult(mantissa=acc_man, exponent=acc_exp, cycles=cycles)

    def dequantize_batch(
        self, partial: BatchPEResult, sf_codes: np.ndarray
    ) -> BatchPEResult:
        """Elementwise :meth:`dequantize` over a tile.

        ``sf_codes`` broadcasts against ``partial.mantissa`` (e.g. one
        8-bit code per output channel of an ``(m, k)`` tile).
        """
        cfg = self.config
        sf = np.broadcast_to(
            np.asarray(sf_codes, dtype=np.int64), partial.mantissa.shape
        )
        if sf.size and (int(sf.min()) < 0 or int(sf.max()) >= 2**cfg.sf_bits):
            raise ValueError(f"scaling factor must fit in {cfg.sf_bits} bits")
        acc_man = np.zeros_like(partial.mantissa)
        acc_exp = np.zeros_like(partial.exponent)
        for i in range(cfg.sf_bits):
            bit = ((sf >> i) & 1) == 1
            nm, ne = self._accumulate_batch(
                acc_man, acc_exp, partial.mantissa << i, partial.exponent
            )
            acc_man = np.where(bit, nm, acc_man)
            acc_exp = np.where(bit, ne, acc_exp)
        return BatchPEResult(mantissa=acc_man, exponent=acc_exp, cycles=cfg.sf_bits)

    # ------------------------------------------------------------------
    def dequantize(self, partial: PEResult, sf_code: int) -> PEResult:
        """Bit-serial multiply of the group partial sum by an integer
        scaling factor (Fig. 5 step 4): one SF bit per cycle."""
        cfg = self.config
        if not 0 <= sf_code < 2**cfg.sf_bits:
            raise ValueError(f"scaling factor must fit in {cfg.sf_bits} bits")
        acc = (0, 0)
        cycles = 0
        for i in range(cfg.sf_bits):
            if (sf_code >> i) & 1:
                acc = self._accumulate(acc, partial.mantissa << i, partial.exponent)
            cycles += 1
        return PEResult(mantissa=acc[0], exponent=acc[1], cycles=cycles)
