"""Bit-accurate model of the BitMoD processing element (Fig. 5).

The PE computes, every cycle, a 4-way dot product between four
bit-serial weight terms and four FP16 activations, in four steps:

1. **Exponent alignment** — the per-lane product exponent is
   ``activation_exp + term_exp``; lanes align to the largest.
2. **Bit-serial multiplication** — the 1-bit weight mantissa gates the
   11-bit activation mantissa (hidden bit included); aligned mantissas
   keep 3 guard bits and round to nearest even, as in FPRaker.
3. **Group accumulation** — the 4-way sum is scaled by the term's
   bit-significance and added into a wide fixed-point accumulator,
   which is renormalized to a bounded mantissa width.
4. **Bit-serial dequantization** — after the group dot product
   finishes, the accumulator is multiplied by the 8-bit integer
   per-group scaling factor one bit per cycle (shift-and-add).

Numbers are carried as ``(mantissa, exponent)`` pairs with explicit
integer arithmetic — no hidden float math in the datapath — so the
model is faithful to RTL behaviour including alignment rounding.  The
test suite validates it against float dot products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.dtypes.floating import FP16_MANTISSA_BITS, fp16_decompose
from repro.hw.bitserial import BitSerialTerm

__all__ = ["PEConfig", "BitMoDPE", "PEResult"]

_FP16_EXP_OFFSET = 15 + FP16_MANTISSA_BITS  # value = man * 2**(exp - 25)


def _rshift_rne(value: int, shift: int) -> int:
    """Arithmetic right shift with round-to-nearest-even."""
    if shift <= 0:
        return value << (-shift)
    sign = -1 if value < 0 else 1
    mag = abs(value)
    floor = mag >> shift
    rem = mag & ((1 << shift) - 1)
    half = 1 << (shift - 1)
    if rem > half or (rem == half and (floor & 1)):
        floor += 1
    return sign * floor


@dataclass(frozen=True)
class PEConfig:
    """Datapath widths of the PE."""

    lanes: int = 4
    guard_bits: int = 3
    acc_mantissa_bits: int = 24
    sf_bits: int = 8


@dataclass
class PEResult:
    """A (mantissa, exponent) fixed-point value plus cycle count."""

    mantissa: int
    exponent: int
    cycles: int

    @property
    def value(self) -> float:
        return float(self.mantissa) * 2.0 ** self.exponent


class BitMoDPE:
    """Functional, bit-accurate BitMoD PE."""

    def __init__(self, config: PEConfig = PEConfig()):
        self.config = config

    # ------------------------------------------------------------------
    def dot4(
        self, terms: Sequence[BitSerialTerm], acts: Sequence[float]
    ) -> Tuple[int, int]:
        """One cycle: 4-way product sum.  Returns ``(mantissa, exp)``
        where the value is ``mantissa * 2**exp``."""
        cfg = self.config
        if len(terms) != cfg.lanes or len(acts) != cfg.lanes:
            raise ValueError(f"PE is {cfg.lanes}-wide")
        a_sign, a_exp, a_man = fp16_decompose(np.asarray(acts, dtype=np.float64))

        lane_exp = []
        lane_man = []
        for i, t in enumerate(terms):
            # The bit-significance enters the lane exponent: Booth
            # terms at one index share it, LOD terms carry their own.
            e = int(a_exp[i]) + t.exp + t.bsig
            m = int(a_man[i]) * t.man
            s = int(a_sign[i]) ^ t.sign
            lane_exp.append(e)
            lane_man.append(-m if s else m)
        e_max = max(lane_exp)
        total = 0
        for m, e in zip(lane_man, lane_exp):
            aligned = _rshift_rne(m << cfg.guard_bits, e_max - e)
            total += aligned
        exp = e_max - cfg.guard_bits - _FP16_EXP_OFFSET
        return total, exp

    # ------------------------------------------------------------------
    def _accumulate(
        self, acc: Tuple[int, int], man: int, exp: int
    ) -> Tuple[int, int]:
        cfg = self.config
        acc_man, acc_exp = acc
        if acc_man == 0:
            new_man, new_exp = man, exp
        elif man == 0:
            new_man, new_exp = acc_man, acc_exp
        else:
            if exp >= acc_exp:
                # Shift the accumulator down to the incoming exponent
                # only when that loses nothing; otherwise align incoming.
                new_man = acc_man + (man << (exp - acc_exp))
                new_exp = acc_exp
            else:
                new_man = man + (acc_man << (acc_exp - exp))
                new_exp = exp
        # Renormalize to the bounded accumulator width (Fig. 5 step 3).
        excess = abs(new_man).bit_length() - cfg.acc_mantissa_bits
        if excess > 0:
            new_man = _rshift_rne(new_man, excess)
            new_exp += excess
        return new_man, new_exp

    # ------------------------------------------------------------------
    def group_dot(
        self,
        weight_terms: List[List[BitSerialTerm]],
        acts: Sequence[float],
    ) -> PEResult:
        """Dot product of one weight group against FP16 activations.

        ``weight_terms[i]`` is the bit-serial decomposition of weight
        ``i`` (code-space); ``acts`` the matching activations.  The PE
        processes 4 lanes per cycle and one term index per cycle, so
        the cycle count is ``(G/4) * terms_per_weight``.
        """
        cfg = self.config
        g = len(weight_terms)
        if g % cfg.lanes:
            raise ValueError(f"group size must be a multiple of {cfg.lanes}")
        n_terms = len(weight_terms[0])
        if any(len(t) != n_terms for t in weight_terms):
            raise ValueError("all weights must decompose to the same term count")

        acc = (0, 0)
        cycles = 0
        acts = np.asarray(acts, dtype=np.float64)
        for base in range(0, g, cfg.lanes):
            lane_acts = acts[base: base + cfg.lanes]
            for t_idx in range(n_terms):
                terms = [weight_terms[base + i][t_idx] for i in range(cfg.lanes)]
                # Terms at one index share a bit-significance by
                # construction; verify the invariant cheaply.
                man, exp = self.dot4(terms, lane_acts)
                acc = self._accumulate(acc, man, exp)
                cycles += 1
        return PEResult(mantissa=acc[0], exponent=acc[1], cycles=cycles)

    # ------------------------------------------------------------------
    def dequantize(self, partial: PEResult, sf_code: int) -> PEResult:
        """Bit-serial multiply of the group partial sum by an integer
        scaling factor (Fig. 5 step 4): one SF bit per cycle."""
        cfg = self.config
        if not 0 <= sf_code < 2**cfg.sf_bits:
            raise ValueError(f"scaling factor must fit in {cfg.sf_bits} bits")
        acc = (0, 0)
        cycles = 0
        for i in range(cfg.sf_bits):
            if (sf_code >> i) & 1:
                acc = self._accumulate(acc, partial.mantissa << i, partial.exponent)
            cycles += 1
        return PEResult(mantissa=acc[0], exponent=acc[1], cycles=cycles)
