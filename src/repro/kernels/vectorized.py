"""The ``numpy`` backend: PR 2's vectorized integer-exact engine.

The packed tensor is decoded once into dense term arrays
(:func:`repro.hw.termtable.decode_packed_terms`, memoized in the
bounded :mod:`repro.kernels.cache`) and the whole ``(M, K)`` output
tile advances through :meth:`repro.hw.pe.BitMoDPE.group_dot_batch`
one group column at a time — exact int64 (or arbitrary-precision
object-array) accumulator arithmetic, so it executes *any*
:class:`~repro.hw.pe.PEConfig` width bit-faithfully.  That generality
is why it is the universal fallback the faster, width-specialized
backends defer to.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hw.pe import BitMoDPE
from repro.hw.termtable import decode_packed_terms
from repro.kernels.base import (
    GemmExecution,
    GemmTask,
    KernelBackend,
    TileSpec,
    register_backend,
)

__all__ = ["VectorizedBackend"]


@register_backend
class VectorizedBackend(KernelBackend):
    """Batched group-dot execution over dense decoded term arrays."""

    name = "numpy"
    priority = 10

    def supports(self, task: GemmTask) -> Optional[str]:
        if task.packed.zeros is not None:
            # Matches the scalar PE's TypeError semantics: callers see
            # the rejection in FunctionalGemm before dispatch; here it
            # keeps the autotuner from timing an un-runnable candidate.
            return "the bit-serial PE does not execute zero-point containers"
        return None

    def run(self, task: GemmTask, tile: Optional[TileSpec] = None) -> GemmExecution:
        packed = task.packed
        pe = BitMoDPE(task.pe_config)
        m, k, d, g, gpc, _pad = task.geometry()
        x = task.padded_x()

        sign, exp, man, bsig = decode_packed_terms(packed, task.dtype)
        shape = (k, gpc, g, -1)
        sign, exp, man, bsig = (
            a.reshape(shape) for a in (sign, exp, man, bsig)
        )
        sf_codes = task.sf_codes()
        chan_scales = task.channel_scales()

        out = np.zeros((m, k))
        pe_cycles = 0
        groups = 0
        for gc in range(gpc):
            acts = x[:, gc * g : (gc + 1) * g]
            partial = pe.group_dot_batch(
                sign[:, gc], exp[:, gc], man[:, gc], bsig[:, gc], acts
            )
            deq = pe.dequantize_batch(partial, sf_codes[None, :, gc])
            # Same float64 accumulation order as the scalar column
            # accumulator: one += per group column, ascending gc.
            out += deq.value * chan_scales[None, :]
            pe_cycles += m * k * partial.cycles  # dequant overlaps
            groups += m * k
        return GemmExecution(output=out, pe_cycles=pe_cycles, groups_processed=groups)
