"""The ``fused`` backend: the whole datapath as float32 array math.

The scalar PE accumulator (:meth:`repro.hw.pe.BitMoDPE._accumulate`)
aligns two fixed-point operands to a common exponent, adds exactly,
then renormalizes the mantissa to ``acc_mantissa_bits`` with
round-to-nearest-even.  For the default 24-bit width that procedure
*is* IEEE float32 addition: a float32 significand is exactly 24 bits
(hidden bit included) and hardware adds round to nearest even.  Two
facts make the replacement exact rather than approximate:

* every accumulated operand is exactly representable — a group step's
  aligned 4-lane total carries at most ``lanes * 2047 * 2**guard <
  2**24`` of magnitude, and the running accumulator is by construction
  a <=24-bit mantissa;
* every value stays in float32 *normal* range — step exponents are
  bounded by the FP16 activation exponent range plus small term
  shifts, far from both 2**127 and 2**-126.

So this backend runs the entire GEMM as fused numpy float32 tensor
ops — no int64 alignment loops, no per-step Python — and remains
bit-identical to the scalar reference:

1. per-lane alignment: ``rint(ldexp(a_man * t_man << guard, e -
   e_max))`` reproduces ``_rshift_rne`` exactly (the product is a
   <=14-bit integer, power-of-two scaling is exact, and ``np.rint``
   rounds half to even; signs fold into the mantissas because RNE is
   symmetric);
2. the per-step lane sum and the across-step accumulation are plain
   float32 adds in the scalar engine's order;
3. bit-serial dequantization is float32 adds of ``ldexp(partial, i)``
   over the set bits of the 8-bit scaling-factor code;
4. the per-channel float64 combine matches the scalar column
   accumulator (one ``+=`` per group column, ascending).

Per-tensor term layouts (transposed for contiguous lane access) are
prepared once and memoized in the bounded
:class:`~repro.kernels.cache.DecodeCache`.  PE configs the proof does
not cover (non-24-bit accumulators, wide guard/lane products) are
declined via :meth:`supports` and fall back to the ``numpy`` backend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dtypes.floating import fp16_decompose
from repro.hw.termtable import decode_packed_terms, term_tables_for_dtype
from repro.kernels.base import (
    GemmExecution,
    GemmTask,
    KernelBackend,
    TileSpec,
    register_backend,
)
from repro.kernels.cache import decode_cache

__all__ = ["FusedBackend"]

#: FP16 value = mantissa * 2**(exp - 25)  (see repro.dtypes.floating).
_FP16_EXP_OFFSET = 15 + 10

#: Largest FP16 mantissa including the hidden bit (11 bits).
_FP16_MAN_MAX = (1 << 11) - 1


def _prepare(task: GemmTask):
    """Per-tensor transposed term layout, memoized in the DecodeCache.

    Returns ``(te, tms)``: term exponents ``exp + bsig`` as int8 and
    sign-folded term mantissas as float32, both shaped
    ``(K, blocks, n_terms, lanes)`` with lanes contiguous.
    """
    packed = task.packed
    lanes = int(task.pe_config.lanes)
    tables = term_tables_for_dtype(task.dtype)
    token = (tuple(id(t) for t in tables), lanes)
    cache = decode_cache()
    prep = cache.get(packed, "fused", token)
    if prep is not None:
        return prep

    _m, k, _d, g, gpc, _pad = task.geometry()
    blocks = gpc * g // lanes
    sign, exp, man, bsig = decode_packed_terms(packed, task.dtype)
    n_terms = sign.shape[-1]
    te = (exp + bsig).reshape(k, blocks, lanes, n_terms)
    te = np.ascontiguousarray(te.transpose(0, 1, 3, 2))
    tms = man.astype(np.float32) * (1.0 - 2.0 * sign.astype(np.float32))
    tms = np.ascontiguousarray(
        tms.reshape(k, blocks, lanes, n_terms).transpose(0, 1, 3, 2)
    )
    return cache.put(packed, "fused", token, (te, tms))


@register_backend
class FusedBackend(KernelBackend):
    """Single-pass float32 execution of the bit-serial datapath."""

    name = "fused"
    priority = 20

    #: K-blocking keeps the (m, k_chunk, blocks, n_terms, lanes)
    #: intermediates L2-resident; 64 is a good single-core default.
    DEFAULT_K_CHUNK = 64

    def supports(self, task: GemmTask) -> Optional[str]:
        cfg = task.pe_config
        if task.packed.zeros is not None:
            return "asymmetric containers skip dequantization (scalar semantics)"
        if cfg.acc_mantissa_bits != 24:
            return (
                f"float32 accumulation requires a 24-bit accumulator "
                f"(config has {cfg.acc_mantissa_bits})"
            )
        if cfg.guard_bits < 0 or (
            cfg.lanes * (_FP16_MAN_MAX << max(cfg.guard_bits, 0)) >= 1 << 24
        ):
            return "per-step lane sum would exceed the float32 mantissa"
        return None

    def default_tile(self, task: GemmTask) -> TileSpec:
        return TileSpec(k_chunk=self.DEFAULT_K_CHUNK, threads=1)

    def candidate_tiles(self, task: GemmTask):
        return [TileSpec(k_chunk=kc, threads=1) for kc in (32, 64, 128)]

    def run(self, task: GemmTask, tile: Optional[TileSpec] = None) -> GemmExecution:
        cfg = task.pe_config
        lanes = int(cfg.lanes)
        guard = int(cfg.guard_bits)
        m, k, _d, g, gpc, _pad = task.geometry()
        if g % lanes:
            raise ValueError(f"group size must be a multiple of {lanes}")
        sf = task.sf_codes()
        if sf.size and (int(sf.min()) < 0 or int(sf.max()) >= 1 << cfg.sf_bits):
            raise ValueError(f"scaling factor must fit in {cfg.sf_bits} bits")
        chan_scales = task.channel_scales()
        te, tms = _prepare(task)
        n_terms = te.shape[2]
        bpg = g // lanes
        spg = bpg * n_terms  # PE cycles per group (steps)
        k_chunk = tile.k_chunk if tile is not None and tile.k_chunk > 0 else (
            self.DEFAULT_K_CHUNK
        )

        x = task.padded_x()
        a_sign, a_exp, a_man = fp16_decompose(x)
        blocks = gpc * g // lanes
        ae = a_exp.astype(np.int8).reshape(m, blocks, 1, lanes)
        amf = a_man.astype(np.float32) * (1.0 - 2.0 * a_sign.astype(np.float32))
        amf *= float(1 << guard)
        amf = amf.reshape(m, blocks, 1, lanes)

        acc = np.zeros((m, k, gpc), dtype=np.float32)
        for k0 in range(0, k, k_chunk):
            k1 = min(k0 + k_chunk, k)
            # Lane exponents and products for every (row, step, lane).
            e = ae[:, None] + te[None, k0:k1]  # (m, kc, blocks, T, lanes) i8
            emax = e.max(axis=-1)
            sh = np.subtract(e, emax[..., None], dtype=np.int32)  # <= 0
            prod = amf[:, None] * tms[None, k0:k1]
            al = np.ldexp(prod, sh)  # exact: power-of-two scaling
            np.rint(al, out=al)  # RNE alignment == _rshift_rne
            tot = al.sum(axis=-1, dtype=np.float32)  # integer-exact
            sv = np.ldexp(
                tot, np.subtract(emax, guard + _FP16_EXP_OFFSET, dtype=np.int32)
            )
            sv = sv.reshape(m, k1 - k0, gpc, spg)
            a = acc[:, k0:k1]
            # Sequential float32 adds in the scalar step order
            # (block-major, term-minor) — each IS the 24-bit RNE
            # accumulator renormalization.
            for s in range(spg):
                a += sv[..., s]

        # Bit-serial dequantization: partial * sf, one set bit at a time.
        acc2 = np.zeros_like(acc)
        for i in range(int(cfg.sf_bits)):
            bit = ((sf >> i) & 1) == 1  # (k, gpc)
            acc2 = np.where(bit[None], acc2 + np.ldexp(acc, i), acc2)

        out = np.zeros((m, k))
        for gc in range(gpc):
            out += acc2[:, :, gc].astype(np.float64) * chan_scales[None, :]
        return GemmExecution(
            output=out,
            pe_cycles=m * k * gpc * spg,
            groups_processed=m * k * gpc,
        )
