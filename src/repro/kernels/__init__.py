"""repro.kernels — multi-backend execution of the bit-serial GEMM.

The bit-accurate functional GEMM is a contract (outputs, cycle and
group counts bit-identical to the scalar Fig. 6 datapath); this
package holds the implementations of that contract and the machinery
that picks between them:

* :mod:`repro.kernels.base` — :class:`GemmTask` /
  :class:`KernelBackend` interface and the backend registry;
* :mod:`repro.kernels.reference` — the scalar ground truth;
* :mod:`repro.kernels.vectorized` — PR 2's integer-exact numpy engine
  (the universal fallback: any PE width);
* :mod:`repro.kernels.fused` — single-pass float32 tensor math
  (~6x the numpy backend single-core; requires the default 24-bit
  accumulator, see the module docstring for the exactness proof);
* :mod:`repro.kernels.numba_backend` — threaded JIT over the
  word-packed layout when numba is installed, plain-Python (and
  testable) when not;
* :mod:`repro.kernels.cache` — the bounded LRU for per-tensor decoded
  term arrays and backend layouts (``$REPRO_KERNEL_CACHE_MB``);
* :mod:`repro.kernels.autotune` — searches (backend, tile) per
  (datatype, shape-class, granularity) and memoizes winners in the
  content-addressed store under ``tune/``;
* :mod:`repro.kernels.dispatch` — routes every
  :meth:`~repro.hw.functional.FunctionalGemm.run_packed` call, honors
  ``$REPRO_KERNEL_BACKEND`` / ``$REPRO_KERNEL_AUTOTUNE``, and warns
  once when numba is missing.
"""

from repro.kernels.base import (
    GemmExecution,
    GemmTask,
    KernelBackend,
    TileSpec,
    available_backends,
    get_backend,
    list_backends,
    register_backend,
)
from repro.kernels.cache import DecodeCache, decode_cache, reset_decode_cache

# Importing the backend modules registers them.
from repro.kernels.reference import ReferenceBackend
from repro.kernels.vectorized import VectorizedBackend
from repro.kernels.fused import FusedBackend
from repro.kernels.numba_backend import HAVE_NUMBA, NumbaBackend
from repro.kernels.autotune import TUNE_KIND, TUNE_SCHEMA_VERSION, Autotuner, shape_class
from repro.kernels.dispatch import KernelDispatcher, get_dispatcher, reset_dispatcher

__all__ = [
    "Autotuner",
    "DecodeCache",
    "FusedBackend",
    "GemmExecution",
    "GemmTask",
    "HAVE_NUMBA",
    "KernelBackend",
    "KernelDispatcher",
    "NumbaBackend",
    "ReferenceBackend",
    "TileSpec",
    "TUNE_KIND",
    "TUNE_SCHEMA_VERSION",
    "VectorizedBackend",
    "available_backends",
    "decode_cache",
    "get_backend",
    "get_dispatcher",
    "list_backends",
    "register_backend",
    "reset_decode_cache",
    "reset_dispatcher",
    "shape_class",
]
