"""The ``numba`` backend: threaded, tiled JIT over word-packed terms.

The kernel (:func:`gemm_core`) is the scalar datapath flattened into
one nest of integer/float32 scalar ops — exact integer alignment with
round-to-nearest-even (the `_rshift_rne` bit trick), float32 step
accumulation (identical to the 24-bit RNE accumulator, see
:mod:`repro.kernels.fused` for the proof), float32 bit-serial
dequantization, float64 per-channel combine.  It is written as plain
Python over numpy scalars so it:

* JIT-compiles under ``numba.njit(parallel=True)`` with ``prange``
  over output channels when numba is installed (threaded tiling —
  ``TileSpec.threads`` maps to ``numba.set_num_threads``), and
* still *executes* (slowly) as ordinary Python when numba is absent,
  which is how its bit-identity stays testable in numba-less
  environments even though the dispatcher then falls back to faster
  backends for real work.

Inputs are prepared per weight image (and memoized in the bounded
:class:`~repro.kernels.cache.DecodeCache`) from the tensor's
word-packed layout: ``PackedTensor.word_image()`` packs multiple
datatype codes per int64 word, decoded in bulk through the TermTable
codecs by :func:`repro.hw.termtable.decode_packed_terms`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dtypes.floating import fp16_decompose
from repro.hw.termtable import decode_packed_terms, term_tables_for_dtype
from repro.kernels.base import (
    GemmExecution,
    GemmTask,
    KernelBackend,
    TileSpec,
    register_backend,
)
from repro.kernels.cache import decode_cache

__all__ = ["NumbaBackend", "HAVE_NUMBA", "gemm_core"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

#: FP16 value = mantissa * 2**(exp - 25).
_FP16_EXP_OFFSET = 15 + 10

_FP16_MAN_MAX = (1 << 11) - 1

#: float32 powers of two, indexed by exponent + _POW2_BIAS.
_POW2_BIAS = 128
_POW2 = np.ldexp(np.float32(1.0), np.arange(-128, 128, dtype=np.int32)).astype(
    np.float32
)


def gemm_core(am3, ae, te, tm, sf, chan, gpc, bpg, n_terms, lanes,
              exp_off, sf_bits, pow2, out):
    """The whole GEMM as scalar ops (numba-jittable, python-runnable).

    ``am3``: (M, blocks, lanes) int64 signed activation mantissas,
    pre-shifted by the guard bits; ``ae``: matching exponents;
    ``te``/``tm``: (K, blocks, n_terms, lanes) term exponents and
    signed 0/±1 term mantissas; ``sf``: (K, gpc) scaling-factor codes;
    ``chan``: (K,) float64 channel scales; ``pow2``: float32
    powers-of-two table biased by ``_POW2_BIAS``.
    """
    m = am3.shape[0]
    k = te.shape[0]
    for row in range(k):  # prange under the JIT
        for mi in range(m):
            o = 0.0
            for gc in range(gpc):
                acc = np.float32(0.0)
                for b in range(bpg):
                    blk = gc * bpg + b
                    for t in range(n_terms):
                        emax = -10000
                        for ln in range(lanes):
                            e = int(ae[mi, blk, ln]) + int(te[row, blk, t, ln])
                            if e > emax:
                                emax = e
                        tot = 0
                        for ln in range(lanes):
                            p = int(am3[mi, blk, ln]) * int(tm[row, blk, t, ln])
                            if p == 0:
                                continue
                            sh = emax - (
                                int(ae[mi, blk, ln]) + int(te[row, blk, t, ln])
                            )
                            if sh > 60:  # |p| < 2**24 rounds to zero
                                continue
                            if p >= 0:
                                mag = p
                                neg = False
                            else:
                                mag = -p
                                neg = True
                            fl = mag >> sh
                            if sh > 0:
                                rem = mag - (fl << sh)
                                half = 1 << (sh - 1)
                                if rem > half or (rem == half and (fl & 1) == 1):
                                    fl += 1
                            tot += -fl if neg else fl
                        # One float32 add per step == the 24-bit RNE
                        # accumulator (integer-exact operand, exact
                        # power-of-two scale, normal range).
                        acc = np.float32(
                            acc + np.float32(tot)
                            * pow2[emax - exp_off + _POW2_BIAS]
                        )
                # Bit-serial dequantization by the sf code.
                dq = np.float32(0.0)
                code = int(sf[row, gc])
                for i in range(sf_bits):
                    if (code >> i) & 1:
                        dq = np.float32(dq + acc * pow2[i + _POW2_BIAS])
                o += float(dq) * chan[row]
            out[mi, row] = o


_JITTED = None


def _jit_kernel():  # pragma: no cover - requires numba
    """Compile (once) the ``prange``-parallel twin of :func:`gemm_core`.

    The source is shared — the outer ``range`` over output channels is
    rewritten to ``numba.prange`` before compilation, so the plain and
    JIT kernels cannot drift apart.
    """
    global _JITTED
    if _JITTED is None:
        import inspect
        import textwrap

        src = textwrap.dedent(inspect.getsource(gemm_core))
        src = src.replace("def gemm_core(", "def _gemm_core_jit(")
        src = src.replace(
            "for row in range(k):", "for row in numba.prange(k):"
        )
        ns = {"np": np, "numba": numba, "_POW2_BIAS": _POW2_BIAS}
        exec(src, ns)  # noqa: S102 - compiling our own source
        _JITTED = numba.njit(parallel=True)(ns["_gemm_core_jit"])
    return _JITTED


def _prepare(task: GemmTask):
    """Per-tensor integer layout for the kernel, DecodeCache-memoized."""
    packed = task.packed
    lanes = int(task.pe_config.lanes)
    tables = term_tables_for_dtype(task.dtype)
    token = (tuple(id(t) for t in tables), lanes)
    cache = decode_cache()
    prep = cache.get(packed, "numba", token)
    if prep is not None:
        return prep

    _m, k, _d, g, gpc, _pad = task.geometry()
    blocks = gpc * g // lanes
    sign, exp, man, bsig = decode_packed_terms(packed, task.dtype)
    n_terms = sign.shape[-1]
    te = (exp.astype(np.int16) + bsig.astype(np.int16)).reshape(
        k, blocks, lanes, n_terms
    )
    te = np.ascontiguousarray(te.transpose(0, 1, 3, 2))
    tm = np.where(sign != 0, -man, man).astype(np.int8).reshape(
        k, blocks, lanes, n_terms
    )
    tm = np.ascontiguousarray(tm.transpose(0, 1, 3, 2))
    return cache.put(packed, "numba", token, (te, tm))


@register_backend
class NumbaBackend(KernelBackend):
    """JIT-compiled, ``prange``-threaded integer-exact kernel."""

    name = "numba"
    priority = 30

    @classmethod
    def available(cls) -> bool:
        return HAVE_NUMBA

    def supports(self, task: GemmTask) -> Optional[str]:
        cfg = task.pe_config
        if task.packed.zeros is not None:
            return "asymmetric containers skip dequantization (scalar semantics)"
        if cfg.acc_mantissa_bits != 24:
            return (
                f"float32 accumulation requires a 24-bit accumulator "
                f"(config has {cfg.acc_mantissa_bits})"
            )
        if cfg.guard_bits < 0 or (
            cfg.lanes * (_FP16_MAN_MAX << max(cfg.guard_bits, 0)) >= 1 << 24
        ):
            return "per-step lane sum would exceed the float32 mantissa"
        return None

    def default_tile(self, task: GemmTask) -> TileSpec:
        threads = numba.config.NUMBA_NUM_THREADS if HAVE_NUMBA else 1
        return TileSpec(k_chunk=0, threads=int(threads))

    def candidate_tiles(self, task: GemmTask):
        tiles = [TileSpec(k_chunk=0, threads=1)]
        if HAVE_NUMBA and int(numba.config.NUMBA_NUM_THREADS) > 1:
            tiles.append(
                TileSpec(k_chunk=0, threads=int(numba.config.NUMBA_NUM_THREADS))
            )
        return tiles

    def run(self, task: GemmTask, tile: Optional[TileSpec] = None) -> GemmExecution:
        cfg = task.pe_config
        lanes = int(cfg.lanes)
        guard = int(cfg.guard_bits)
        m, k, _d, g, gpc, _pad = task.geometry()
        if g % lanes:
            raise ValueError(f"group size must be a multiple of {lanes}")
        sf = task.sf_codes()
        if sf.size and (int(sf.min()) < 0 or int(sf.max()) >= 1 << cfg.sf_bits):
            raise ValueError(f"scaling factor must fit in {cfg.sf_bits} bits")
        chan_scales = task.channel_scales()
        te, tm = _prepare(task)
        n_terms = te.shape[2]
        bpg = g // lanes
        blocks = gpc * g // lanes

        x = task.padded_x()
        a_sign, a_exp, a_man = fp16_decompose(x)
        am3 = np.where(a_sign != 0, -a_man, a_man).astype(np.int64) << guard
        am3 = am3.reshape(m, blocks, lanes)
        ae = a_exp.astype(np.int64).reshape(m, blocks, lanes)

        out = np.zeros((m, k))
        kernel = gemm_core
        if HAVE_NUMBA:  # pragma: no cover - requires numba
            if tile is not None and tile.threads >= 1:
                try:
                    numba.set_num_threads(
                        min(tile.threads, numba.config.NUMBA_NUM_THREADS)
                    )
                except ValueError:
                    pass
            kernel = _jit_kernel()
        kernel(
            am3, ae, te, tm, sf, chan_scales,
            gpc, bpg, n_terms, lanes,
            guard + _FP16_EXP_OFFSET, int(cfg.sf_bits), _POW2, out,
        )
        spg = bpg * n_terms
        return GemmExecution(
            output=out,
            pe_cycles=m * k * gpc * spg,
            groups_processed=m * k * gpc,
        )
