"""Bounded LRU cache for per-tensor decoded/prepared kernel arrays.

PR 2 pinned each packed tensor's decoded term arrays directly on the
tensor object — fast, but *unbounded across tensors*: replaying a
large model kept every layer's decode alive for the life of the
artifact.  This module replaces that with one process-wide LRU keyed
by ``(tensor identity, kind)`` under a byte budget
(``$REPRO_KERNEL_CACHE_MB``, default 256), shared by every consumer:

* ``kind="terms"`` — the dense ``(n_groups, g, n_terms)`` term arrays
  of :func:`repro.hw.termtable.decode_packed_terms`;
* ``kind="fused"`` / ``kind="numba"`` — the transposed per-backend
  layouts the faster kernels precompute per weight image.

Entries die with their tensor (a ``weakref.finalize`` per entry), so
the cache cannot resurrect or outlive packed tensors, and the stored
``token`` (e.g. the identity of the memoized term tables) guards
against content aliasing the way the old per-tensor key did.

Hit/miss/eviction counts are mirrored into :mod:`repro.obs`
(``kernels.decode.hits`` / ``.misses`` / ``.evictions`` and the
``kernels.decode.bytes`` gauge) so a serving replay's decode behaviour
is observable.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

from repro import obs

__all__ = ["DecodeCache", "decode_cache", "reset_decode_cache"]

#: Default byte budget when ``$REPRO_KERNEL_CACHE_MB`` is unset.
DEFAULT_BUDGET_MB = 256.0


def _env_budget_bytes() -> int:
    raw = os.environ.get("REPRO_KERNEL_CACHE_MB", "")
    try:
        mb = float(raw) if raw else DEFAULT_BUDGET_MB
    except ValueError:
        mb = DEFAULT_BUDGET_MB
    return max(0, int(mb * 1024 * 1024))


def _nbytes(value: Any) -> int:
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_nbytes(v) for v in value)
    return 0


class DecodeCache:
    """LRU of prepared arrays keyed by (object identity, kind)."""

    def __init__(self, budget_bytes: Optional[int] = None):
        self.budget_bytes = (
            _env_budget_bytes() if budget_bytes is None else int(budget_bytes)
        )
        # key -> (token, value, nbytes); insertion order is LRU order.
        self._entries: "OrderedDict[Tuple[int, str], Tuple[Hashable, Any, int]]" = (
            OrderedDict()
        )
        self._finalizers: Dict[Tuple[int, str], weakref.finalize] = {}
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversize = 0

    # ------------------------------------------------------------------
    def get(self, obj: Any, kind: str, token: Hashable) -> Optional[Any]:
        """The cached value for ``(obj, kind)`` if its token matches."""
        key = (id(obj), kind)
        entry = self._entries.get(key)
        if entry is not None and entry[0] == token:
            self._entries.move_to_end(key)
            self.hits += 1
            obs.counter("kernels.decode.hits", kind=kind).inc()
            return entry[1]
        self.misses += 1
        obs.counter("kernels.decode.misses", kind=kind).inc()
        return None

    def put(self, obj: Any, kind: str, token: Hashable, value: Any) -> Any:
        """Insert and return ``value`` (oversize values pass through
        uncached so one huge layer cannot flush the whole cache)."""
        nbytes = _nbytes(value)
        if nbytes > self.budget_bytes:
            self.oversize += 1
            obs.counter("kernels.decode.oversize", kind=kind).inc()
            return value
        key = (id(obj), kind)
        self._discard(key)
        while self._entries and self.total_bytes + nbytes > self.budget_bytes:
            self._evict_lru()
        self._entries[key] = (token, value, nbytes)
        self.total_bytes += nbytes
        # Entries die with their tensor: no resurrection, and a reused
        # id() can never alias a dead object's entry.
        self._finalizers[key] = weakref.finalize(obj, self._discard, key)
        obs.gauge("kernels.decode.bytes").set(self.total_bytes)
        return value

    def contains(self, obj: Any, kind: str) -> bool:
        return (id(obj), kind) in self._entries

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes,
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "oversize": self.oversize,
        }

    # ------------------------------------------------------------------
    def _evict_lru(self) -> None:
        key, (_, _, nbytes) = next(iter(self._entries.items()))
        self._remove(key)
        self.evictions += 1
        obs.counter("kernels.decode.evictions").inc()

    def _discard(self, key: Tuple[int, str]) -> None:
        if key in self._entries:
            self._remove(key)

    def _remove(self, key: Tuple[int, str]) -> None:
        _, _, nbytes = self._entries.pop(key)
        self.total_bytes -= nbytes
        fin = self._finalizers.pop(key, None)
        if fin is not None:
            fin.detach()
        obs.gauge("kernels.decode.bytes").set(self.total_bytes)


# ----------------------------------------------------------------------
# Process-wide instance.
# ----------------------------------------------------------------------

_CACHE: Optional[DecodeCache] = None


def decode_cache() -> DecodeCache:
    """The process-wide cache (budget read from the env on first use)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = DecodeCache()
    return _CACHE


def reset_decode_cache(budget_bytes: Optional[int] = None) -> DecodeCache:
    """Fresh process-wide cache (tests, or after changing the env)."""
    global _CACHE
    _CACHE = DecodeCache(budget_bytes)
    return _CACHE
