"""Kernel autotuner: search once, memoize in the content-addressed store.

Backend choice and tile shape are workload-dependent (array shapes,
thread counts, cache sizes), but they are *stable* per (datatype,
shape-class, granularity, PE config, available backends) — so the
tuner times each candidate ``(backend, tile)`` once and persists the
winner in the pipeline :class:`~repro.pipeline.store.CacheStore`
under the ``tune/`` kind.  Tune records ride the same integrity
envelope and quarantine semantics as pipeline cells: a corrupted
record is quarantined to ``corrupt/tune/`` on read, reported as a
miss, and simply re-searched.

Keys bucket the GEMM M/N/K dimensions to powers of two
(:func:`shape_class`) so one search covers a family of nearby shapes,
and include the *set of available backends*: a record tuned where
numba is installed can never be replayed in a process where it is
not, and vice versa.

A warm process performs **zero** search trials — the CI
``kernels-matrix`` job and the autotuner unit tests assert this via
:attr:`Autotuner.trials_run` and the ``kernels.autotune.*`` counters.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro import obs
from repro.kernels.base import (
    GemmTask,
    KernelBackend,
    TileSpec,
    available_backends,
    get_backend,
)

__all__ = [
    "TUNE_KIND",
    "TUNE_SCHEMA_VERSION",
    "Autotuner",
    "shape_class",
]

_log = obs.get_logger(__name__)

#: Store namespace for tune records.
TUNE_KIND = "tune"

#: Bump when the record layout or search semantics change.
TUNE_SCHEMA_VERSION = 1


def _bucket(n: int) -> int:
    """Smallest power of two >= n (shape-class bucketing)."""
    n = max(1, int(n))
    return 1 << (n - 1).bit_length()


def shape_class(m: int, n: int, k: int) -> str:
    """Power-of-two bucket of a GEMM's M/N/K (N = output channels,
    K = reduction depth)."""
    return f"m{_bucket(m)}_n{_bucket(n)}_k{_bucket(k)}"


class Autotuner:
    """Times candidate (backend, tile) pairs; memoizes the winner."""

    def __init__(self, store=None, repeats: int = 2):
        self._store = store
        self.repeats = repeats
        #: Search trials performed by this instance (0 on a warm path).
        self.trials_run = 0

    @property
    def store(self):
        if self._store is None:
            from repro.pipeline.store import CacheStore

            self._store = CacheStore()
        return self._store

    # ------------------------------------------------------------------
    def key(self, task: GemmTask) -> str:
        from repro.pipeline.keys import stable_digest

        m, k, d, g, gpc, _pad = task.geometry()
        return stable_digest(
            {
                "v": TUNE_SCHEMA_VERSION,
                "dtype": task.packed.dtype_name,
                "bits": int(task.packed.bits),
                "group_size": g,
                "granularity": "channel" if gpc == 1 else "group",
                "class": shape_class(m, k, d),
                "pe": task.pe_config,
                "backends": sorted(available_backends()),
            }
        )

    # ------------------------------------------------------------------
    def lookup(self, task: GemmTask) -> Optional[dict]:
        """A valid memoized record, or ``None`` (corrupt entries are
        quarantined by the store and surface here as misses)."""
        rec = self.store.get_json(TUNE_KIND, self.key(task))
        if rec is None or not self._valid(rec, task):
            obs.counter("kernels.autotune.misses").inc()
            return None
        obs.counter("kernels.autotune.hits").inc()
        return rec

    def _valid(self, rec: dict, task: GemmTask) -> bool:
        if not isinstance(rec, dict):
            return False
        if rec.get("schema_version") != TUNE_SCHEMA_VERSION:
            return False
        name = rec.get("backend")
        if not isinstance(name, str) or not isinstance(rec.get("tile"), dict):
            return False
        try:
            backend = get_backend(name)
        except ValueError:
            return False
        return backend.available() and backend.supports(task) is None

    # ------------------------------------------------------------------
    def candidates(self, task: GemmTask) -> List[Tuple[KernelBackend, TileSpec]]:
        """Every (available backend, tile) pair worth timing.  The
        scalar reference is excluded: it exists for ground truth, not
        to win races."""
        out: List[Tuple[KernelBackend, TileSpec]] = []
        for name in available_backends():
            backend = get_backend(name)
            if backend.name == "reference" or backend.supports(task) is not None:
                continue
            for tile in backend.candidate_tiles(task):
                out.append((backend, tile))
        return out

    def search(self, task: GemmTask) -> Optional[dict]:
        """Time every candidate on ``task`` and persist the winner."""
        candidates = self.candidates(task)
        if not candidates:
            return None
        m, k, d, g, gpc, _pad = task.geometry()
        trials = []
        best = None
        with obs.span(
            "kernel.autotune", dtype=task.packed.dtype_name,
            shape=shape_class(m, k, d), n_candidates=len(candidates),
        ):
            for backend, tile in candidates:
                backend.run(task, tile)  # warm per-tensor prep/JIT
                seconds = float("inf")
                for _ in range(self.repeats):
                    t0 = time.perf_counter()
                    backend.run(task, tile)
                    seconds = min(seconds, time.perf_counter() - t0)
                self.trials_run += 1
                obs.counter("kernels.autotune.trials").inc()
                trial = {
                    "backend": backend.name,
                    "k_chunk": tile.k_chunk,
                    "threads": tile.threads,
                    "seconds": seconds,
                }
                trials.append(trial)
                if best is None or seconds < best[0]:
                    best = (seconds, backend, tile)

        _seconds, backend, tile = best
        rec = {
            "schema_version": TUNE_SCHEMA_VERSION,
            "backend": backend.name,
            "tile": tile.to_dict(),
            "dtype": task.packed.dtype_name,
            "group_size": g,
            "granularity": "channel" if gpc == 1 else "group",
            "shape_class": shape_class(m, k, d),
            "backends_considered": sorted(available_backends()),
            "trials": trials,
        }
        self.store.put_json(TUNE_KIND, self.key(task), rec)
        _log.info(
            "autotuned %s %s -> %s %s (%d trials)",
            rec["dtype"], rec["shape_class"], rec["backend"], rec["tile"],
            len(trials),
        )
        return rec

    def decide(self, task: GemmTask, allow_search: bool = True) -> Optional[dict]:
        """Warm lookup, else (when allowed) a cold search."""
        rec = self.lookup(task)
        if rec is not None:
            return rec
        if not allow_search:
            return None
        return self.search(task)
