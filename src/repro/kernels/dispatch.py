"""Kernel dispatch: pick the backend/tile for each GEMM, observably.

Resolution order for one :class:`~repro.kernels.base.GemmTask`:

1. an explicit backend — the ``backend=`` argument (e.g. from
   ``FunctionalGemm(..., backend="numpy")``) or the
   ``$REPRO_KERNEL_BACKEND`` environment override; an unavailable or
   unsupporting choice *falls back* (with a one-line
   :mod:`repro.obs` warning) rather than failing, because every
   backend is bit-identical — only speed is at stake;
2. a memoized autotune record (:mod:`repro.kernels.autotune`) for the
   task's (datatype, shape-class, granularity, PE config, available
   backends) key — consulted from an in-process memo first, the
   content-addressed store second.  Cold *searches* only run when
   enabled (``$REPRO_KERNEL_AUTOTUNE=1`` or ``autotune=True``), so
   ordinary test/library calls never pay timing loops;
3. static priority among available, supporting backends
   (numba > fused > numpy > reference).

When the numba backend is registered but numba is not installed, the
first default dispatch emits a single clear warning — a missing
optional dependency silently halving throughput is exactly the kind
of perf regression that should be diagnosable from logs.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro import obs
from repro.kernels.autotune import Autotuner
from repro.kernels.base import (
    GemmExecution,
    GemmTask,
    KernelBackend,
    TileSpec,
    available_backends,
    get_backend,
)

__all__ = ["KernelDispatcher", "get_dispatcher", "reset_dispatcher"]

_log = obs.get_logger(__name__)

#: One-shot flags so fallback warnings do not spam per-GEMM call.
_WARNED_NUMBA_MISSING = False
_WARNED_FALLBACK: set = set()


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def _warn_numba_missing(chosen: str) -> None:
    global _WARNED_NUMBA_MISSING
    if _WARNED_NUMBA_MISSING:
        return
    _WARNED_NUMBA_MISSING = True
    _log.warning(
        "numba is not installed; kernel dispatch falls back to the %r "
        "backend (install numba to enable the threaded JIT backend)",
        chosen,
    )


class KernelDispatcher:
    """Routes GEMM tasks to backends; memoizes tuner decisions."""

    def __init__(
        self,
        store=None,
        backend: Optional[str] = None,
        autotune: Optional[bool] = None,
    ):
        self.tuner = Autotuner(store=store)
        self._backend_override = backend
        self._autotune = autotune
        # tuner-key -> (backend name, tile); avoids a store read per call.
        self._memo: Dict[str, Tuple[str, Optional[TileSpec]]] = {}

    # ------------------------------------------------------------------
    @property
    def autotune_enabled(self) -> bool:
        if self._autotune is not None:
            return self._autotune
        return _env_truthy("REPRO_KERNEL_AUTOTUNE")

    def _override_name(self, backend: Optional[str]) -> Optional[str]:
        return (
            backend
            or self._backend_override
            or os.environ.get("REPRO_KERNEL_BACKEND")
            or None
        )

    # ------------------------------------------------------------------
    def _best_static(self, task: GemmTask) -> KernelBackend:
        """Highest-priority available backend that supports the task."""
        chosen = None
        for name in available_backends():
            b = get_backend(name)
            if b.supports(task) is None:
                chosen = b
                break
        if chosen is None:  # every backend declined: the numpy backend
            chosen = get_backend("numpy")  # executes any PE config
        numba = get_backend("numba")
        if not numba.available():
            _warn_numba_missing(chosen.name)
        return chosen

    def resolve(
        self, task: GemmTask, backend: Optional[str] = None
    ) -> Tuple[KernelBackend, Optional[TileSpec]]:
        """The (backend, tile) this task will run on."""
        name = self._override_name(backend)
        if name:
            b = get_backend(name)  # unknown names fail loudly
            reason = (
                "not available in this process"
                if not b.available()
                else b.supports(task)
            )
            if reason is None:
                return b, b.default_tile(task)
            fb = self._best_static(task)
            if name not in _WARNED_FALLBACK:
                _WARNED_FALLBACK.add(name)
                _log.warning(
                    "kernel backend %r cannot run this task (%s); "
                    "falling back to %r",
                    name, reason, fb.name,
                )
            obs.counter("kernels.dispatch.fallbacks", requested=name).inc()
            return fb, fb.default_tile(task)

        key = self.tuner.key(task)
        memo = self._memo.get(key)
        if memo is not None:
            b = get_backend(memo[0])
            return b, memo[1]
        rec = self.tuner.decide(task, allow_search=self.autotune_enabled)
        if rec is not None:
            b = get_backend(rec["backend"])
            tile = TileSpec.from_dict(rec["tile"])
            numba = get_backend("numba")
            if not numba.available():
                _warn_numba_missing(b.name)
        else:
            b = self._best_static(task)
            tile = b.default_tile(task)
        self._memo[key] = (b.name, tile)
        return b, tile

    # ------------------------------------------------------------------
    def run(
        self, task: GemmTask, backend: Optional[str] = None
    ) -> GemmExecution:
        b, tile = self.resolve(task, backend=backend)
        obs.counter("kernels.dispatch", backend=b.name).inc()
        if obs.trace_enabled():
            m, k, d, *_ = task.geometry()
            with obs.span(
                "kernel.dispatch", backend=b.name,
                dtype=task.packed.dtype_name, m=m, k=k, d=d,
            ):
                return b.run(task, tile)
        return b.run(task, tile)


# ----------------------------------------------------------------------
# Process-wide dispatcher.
# ----------------------------------------------------------------------

_DISPATCHER: Optional[KernelDispatcher] = None


def get_dispatcher() -> KernelDispatcher:
    """The process-wide dispatcher (env read lazily per call)."""
    global _DISPATCHER
    if _DISPATCHER is None:
        _DISPATCHER = KernelDispatcher()
    return _DISPATCHER


def reset_dispatcher(**kwargs) -> KernelDispatcher:
    """Fresh dispatcher + re-armed one-shot warnings (tests, or after
    changing ``$REPRO_CACHE_DIR`` / ``$REPRO_KERNEL_*``)."""
    global _DISPATCHER, _WARNED_NUMBA_MISSING
    _DISPATCHER = KernelDispatcher(**kwargs)
    _WARNED_NUMBA_MISSING = False
    _WARNED_FALLBACK.clear()
    return _DISPATCHER
