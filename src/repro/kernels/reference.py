"""The scalar reference backend: one PE call per (row, col, group).

This is the original per-scalar engine of
:class:`repro.hw.functional.FunctionalGemm` — the Fig. 6 datapath one
value at a time, decoding each group's codes through the scalar
codecs of :mod:`repro.hw.bitserial`.  It is deliberately slow and
deliberately untouched by the faster backends' layout tricks: it is
the ground truth every other backend's bit-identity is tested
against.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dtypes.base import GridDataType
from repro.dtypes.extended import BitMoDType, make_extended_float
from repro.dtypes.integer import IntegerType
from repro.hw.bitserial import BitSerialTerm, booth_encode, fixed_point_decompose
from repro.hw.pe import BitMoDPE
from repro.hw.termtable import ASYMMETRIC_REJECT_MSG
from repro.kernels.base import (
    GemmExecution,
    GemmTask,
    KernelBackend,
    TileSpec,
    register_backend,
)

__all__ = ["ReferenceBackend", "decode_group_terms", "rows_per_channel"]


def decode_group_terms(packed, dtype, group_idx: int) -> List[List[BitSerialTerm]]:
    """Decode one group's element codes into bit-serial terms."""
    from repro.quant.packing import unpack_bits

    g = packed.group_size
    codes = unpack_bits(
        packed.element_data, packed.bits, (group_idx + 1) * g
    )[group_idx * g:]
    if isinstance(dtype, IntegerType):
        if dtype.asymmetric:
            raise TypeError(ASYMMETRIC_REJECT_MSG)
        offset = dtype.qmax_symmetric
        return [booth_encode(int(c) - offset, dtype.bits) for c in codes]
    if isinstance(dtype, BitMoDType):
        sv = dtype.special_values[int(packed.sv_selectors[group_idx])]
        grid = make_extended_float(dtype.bits, sv).grid
        return [fixed_point_decompose(float(grid[int(c)])) for c in codes]
    if isinstance(dtype, GridDataType):
        grid = dtype.grid
        return [fixed_point_decompose(float(grid[int(c)])) for c in codes]
    raise TypeError(f"unsupported datatype {dtype!r}")


def rows_per_channel(packed, k: int) -> int:
    # Prefer the explicit layout carried by the packed tensor;
    # size-division inference mis-scales ragged/padded shapes.
    if packed.groups_per_channel:
        return packed.groups_per_channel
    return max(1, packed.sf_codes.size // max(1, packed.channel_scales.size))


@register_backend
class ReferenceBackend(KernelBackend):
    """The scalar ground-truth engine (never picked by default)."""

    name = "reference"
    priority = -100

    def supports(self, task: GemmTask) -> Optional[str]:
        if task.packed.zeros is not None:
            return "the bit-serial PE does not execute zero-point containers"
        return None

    def run(self, task: GemmTask, tile: Optional[TileSpec] = None) -> GemmExecution:
        packed = task.packed
        pe = BitMoDPE(task.pe_config)
        x = task.x
        m = x.shape[0]
        k, d = packed.shape
        g = packed.group_size
        groups_per_channel = (d + g - 1) // g
        pad = groups_per_channel * g - d
        if pad:
            x = np.pad(x, ((0, 0), (0, pad)))

        out = np.zeros((m, k))
        pe_cycles = 0
        groups = 0
        for row in range(k):
            for mi in range(m):
                acc = 0.0  # column accumulator (FP16-precision output)
                for gc in range(groups_per_channel):
                    gidx = row * groups_per_channel + gc
                    terms = decode_group_terms(packed, task.dtype, gidx)
                    acts = x[mi, gc * g: (gc + 1) * g]
                    partial = pe.group_dot(terms, acts)
                    sf_code = int(packed.sf_codes[gidx])
                    if packed.zeros is None:
                        deq = pe.dequantize(partial, sf_code)
                        chan_scale = float(
                            packed.channel_scales[
                                gidx // rows_per_channel(packed, k)
                            ]
                        )
                        acc += deq.value * chan_scale
                        pe_cycles += partial.cycles  # dequant overlaps
                    groups += 1
                out[mi, row] = acc
        return GemmExecution(output=out, pe_cycles=pe_cycles, groups_processed=groups)
