"""Kernel backend interface: one GEMM task, many implementations.

The bit-accurate GEMM of :class:`repro.hw.functional.FunctionalGemm`
is a *contract* — given FP16 activations and a packed weight image it
must produce the exact outputs, cycle counts and group counts of the
scalar Fig. 6 datapath — and this module separates that contract from
how it is computed.  A :class:`GemmTask` bundles one GEMM's inputs; a
:class:`KernelBackend` executes it; the registry maps backend names to
singleton instances so the dispatcher (:mod:`repro.kernels.dispatch`)
and the autotuner (:mod:`repro.kernels.autotune`) can enumerate and
rank them.

Backends self-describe in two dimensions:

* :meth:`KernelBackend.available` — can this backend run at all in
  the current process (e.g. the numba backend without numba installed
  reports ``False`` and the dispatcher falls back);
* :meth:`KernelBackend.supports` — can it run *this* task exactly
  (e.g. the fused float32 backend requires the default 24-bit
  accumulator; exotic :class:`~repro.hw.pe.PEConfig` widths fall back
  to the numpy backend, which handles any width).

Every registered backend is held to the registry-wide bit-identity
property tests in ``tests/hw``: identical outputs, ``pe_cycles`` and
``groups_processed`` to the scalar reference for every datatype.

This module is import-light on purpose (numpy only): backends and the
:mod:`repro.hw` layer both import it, so it must not import either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

__all__ = [
    "GemmExecution",
    "GemmTask",
    "TileSpec",
    "KernelBackend",
    "register_backend",
    "get_backend",
    "list_backends",
    "available_backends",
]


@dataclass
class GemmExecution:
    """Result of a functional GEMM run."""

    output: np.ndarray  # (M, K_out)
    pe_cycles: int  # cycles of the longest-running PE
    groups_processed: int


@dataclass(frozen=True)
class TileSpec:
    """A backend tuning point: blocking shape + thread count.

    ``k_chunk`` is the number of output channels (weight rows) a
    blocked backend processes per pass — the knob that trades working
    set size against loop overhead.  ``0`` means "no blocking"
    (backend default).  ``threads`` only matters to threaded backends;
    single-threaded ones ignore it.
    """

    k_chunk: int = 0
    threads: int = 1

    def to_dict(self) -> dict:
        return {"k_chunk": self.k_chunk, "threads": self.threads}

    @classmethod
    def from_dict(cls, doc: dict) -> "TileSpec":
        return cls(
            k_chunk=int(doc.get("k_chunk", 0)),
            threads=int(doc.get("threads", 1)),
        )


@dataclass
class GemmTask:
    """One functional GEMM: validated activations x a packed image.

    ``x`` is ``(M, D)`` float16 (already validated by the caller —
    :class:`~repro.hw.functional.FunctionalGemm` keeps shape/dtype
    policing in one place so every backend sees identical inputs),
    ``packed`` a :class:`~repro.quant.packing.PackedTensor`, ``dtype``
    its resolved registry datatype, and ``pe_config`` the PE datapath
    widths the execution must be bit-faithful to.
    """

    x: np.ndarray
    packed: Any  # PackedTensor (kept untyped: base must not import quant)
    dtype: Any  # resolved registry datatype
    pe_config: Any  # repro.hw.pe.PEConfig

    def geometry(self) -> Tuple[int, int, int, int, int, int]:
        """``(m, k, d, g, gpc, pad)`` of the padded execution."""
        m = int(self.x.shape[0])
        k, d = self.packed.shape
        g = int(self.packed.group_size)
        gpc = self.packed.groups_per_channel or max(1, (d + g - 1) // g)
        pad = gpc * g - d
        return m, int(k), int(d), g, int(gpc), int(pad)

    def padded_x(self) -> np.ndarray:
        """Activations zero-padded up to the packed group layout."""
        *_, pad = self.geometry()
        if pad:
            return np.pad(self.x, ((0, 0), (0, pad)))
        return self.x

    def channel_scales(self) -> np.ndarray:
        """Per-channel second-level scales, validated against K."""
        k = int(self.packed.shape[0])
        chan = np.asarray(self.packed.channel_scales, dtype=np.float64).reshape(-1)
        if chan.size != k:
            raise ValueError(
                f"expected one channel scale per output channel "
                f"({k}), got {chan.size}"
            )
        return chan

    def sf_codes(self) -> np.ndarray:
        """Per-group scaling-factor codes as ``(K, groups_per_channel)``."""
        m, k, d, g, gpc, pad = self.geometry()
        return np.asarray(self.packed.sf_codes, dtype=np.int64).reshape(k, gpc)


class KernelBackend:
    """One way of executing a :class:`GemmTask` bit-exactly.

    Subclasses set ``name`` (the registry key, also what
    ``$REPRO_KERNEL_BACKEND`` selects) and ``priority`` (higher wins
    when the dispatcher picks a default without a tuned record).
    """

    #: Registry key (``reference``, ``numpy``, ``fused``, ``numba``).
    name: str = "?"
    #: Default-dispatch rank; the fastest expected backend is highest.
    priority: int = 0

    @classmethod
    def available(cls) -> bool:
        """Whether the backend can run in this process at all."""
        return True

    def supports(self, task: GemmTask) -> Optional[str]:
        """``None`` when the backend can run ``task`` bit-exactly,
        else a human-readable reason (the dispatcher falls back)."""
        return None

    def default_tile(self, task: GemmTask) -> TileSpec:
        """The untuned tile this backend runs when no record exists."""
        return TileSpec()

    def candidate_tiles(self, task: GemmTask) -> List[TileSpec]:
        """Tiles the autotuner should time for this backend."""
        return [self.default_tile(task)]

    def run(self, task: GemmTask, tile: Optional[TileSpec] = None) -> GemmExecution:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(cls: Type[KernelBackend]) -> Type[KernelBackend]:
    """Class decorator: instantiate and register a backend by name."""
    inst = cls()
    _REGISTRY[inst.name] = inst
    return cls


def get_backend(name: str) -> KernelBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown kernel backend {name!r}; known: {known}") from None


def list_backends() -> List[str]:
    """All registered backend names, highest priority first."""
    return sorted(_REGISTRY, key=lambda n: -_REGISTRY[n].priority)


def available_backends() -> List[str]:
    """Registered backends that can run in this process, best first."""
    return [n for n in list_backends() if _REGISTRY[n].available()]
