"""Structured logging setup for the ``repro`` namespace.

One logger tree rooted at ``repro``; :func:`setup_logging` attaches a
single stderr handler with a key=value-friendly format and sets the
level from (in precedence order) an explicit argument — the CLIs'
``--log-level`` — or the ``REPRO_LOG`` environment variable.  Calling
it again reconfigures the level instead of stacking handlers.

Modules get loggers via :func:`get_logger`::

    log = get_logger(__name__)          # repro.pipeline.engine
    log.info("sweep done points=%d skipped=%d", n, k)
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

__all__ = ["get_logger", "setup_logging"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"

#: Marker attribute on the handler this module installed.
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro`` tree (accepts module ``__name__``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def setup_logging(level: Optional[str] = None) -> logging.Logger:
    """Configure the ``repro`` root logger; returns it.

    ``level`` falls back to ``$REPRO_LOG`` and then ``WARNING``.
    Unknown level names raise ``ValueError`` (listing the valid ones).
    """
    if level is None:
        level = os.environ.get("REPRO_LOG") or "WARNING"
    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        valid = "debug, info, warning, error, critical"
        raise ValueError(f"unknown log level {level!r} (valid: {valid})")

    root = logging.getLogger("repro")
    root.setLevel(numeric)
    if not any(getattr(h, _HANDLER_TAG, False) for h in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        setattr(handler, _HANDLER_TAG, True)
        root.addHandler(handler)
        root.propagate = False
    return root
