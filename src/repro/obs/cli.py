"""``bitmod-repro obs`` — trace and metrics tooling.

Usage::

    bitmod-repro obs summarize out/trace.jsonl       # per-span-name table
    bitmod-repro obs convert out/trace.jsonl out/trace.json
    bitmod-repro obs diff out/warm.metrics.json out/cold.metrics.json

``summarize`` reads either span shape (JSONL or chrome-trace JSON) and
prints an aggregate table by span name.  ``convert`` turns a JSONL
span log into Chrome ``trace_event`` JSON loadable in Perfetto /
``chrome://tracing``.  ``diff`` compares two metrics snapshots (the
files ``--metrics OUT`` writes) series by series.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.metrics import diff_snapshots
from repro.obs.trace import chrome_trace, load_spans, summarize_spans

__all__ = ["main"]


def _cmd_summarize(args) -> int:
    spans = load_spans(args.trace)
    if not spans:
        print("no spans in trace")
        return 0
    rows = summarize_spans(spans)
    t0 = min(s["ts_ns"] for s in spans)
    t1 = max(s["ts_ns"] + s["dur_ns"] for s in spans)
    pids = sorted({s["pid"] for s in spans})
    header = f"{'span':<28} {'count':>7} {'total_ms':>10} {'mean_ms':>10} {'max_ms':>10}"
    print(header)
    print("-" * len(header))
    for r in rows[: args.top]:
        print(
            f"{r['name']:<28} {r['count']:>7} {r['total_ms']:>10.2f} "
            f"{r['mean_ms']:>10.3f} {r['max_ms']:>10.3f}"
        )
    if len(rows) > args.top:
        print(f"... {len(rows) - args.top} more span names")
    print()
    print(
        f"{len(spans)} spans, {len(rows)} names, {len(pids)} process(es); "
        f"trace wall {(t1 - t0) / 1e6:.1f} ms"
    )
    return 0


def _cmd_convert(args) -> int:
    spans = load_spans(args.src)
    out = Path(args.dest)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(spans), indent=1) + "\n", encoding="utf-8")
    print(f"wrote {args.dest} ({len(spans)} spans)")
    return 0


def _cmd_diff(args) -> int:
    a = json.loads(Path(args.before).read_text(encoding="utf-8"))
    b = json.loads(Path(args.after).read_text(encoding="utf-8"))
    # Accept both a bare snapshot and a _run_meta.json carrying one.
    a = a.get("metrics", a)
    b = b.get("metrics", b)
    d = diff_snapshots(a, b)
    changed = sum(len(v) for v in d.values())
    if not changed:
        print("no metric changes")
        return 0
    for group in ("counters", "gauges"):
        for key, v in d[group].items():
            print(f"{group[:-1]} {key}: {v['before']} -> {v['after']} ({v['delta']:+g})")
    for key, fields in d["histograms"].items():
        parts = ", ".join(
            f"{f}: {v['before']:g} -> {v['after']:g}" for f, v in fields.items()
        )
        print(f"histogram {key}: {parts}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bitmod-repro obs",
        description="Summarize traces, convert span logs, diff metric snapshots.",
    )
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("summarize", help="aggregate a trace by span name")
    p.add_argument("trace", help="trace file (.jsonl span log or chrome .json)")
    p.add_argument("--top", type=int, default=20, metavar="N", help="rows to print")
    p.set_defaults(func=_cmd_summarize)

    p = sub.add_parser("convert", help="convert a JSONL span log to chrome-trace JSON")
    p.add_argument("src", help="input span log (.jsonl)")
    p.add_argument("dest", help="output chrome-trace file (.json)")
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser("diff", help="diff two metrics snapshots")
    p.add_argument("before", help="baseline snapshot (or _run_meta.json)")
    p.add_argument("after", help="comparison snapshot (or _run_meta.json)")
    p.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    try:
        return args.func(args)
    except (OSError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
