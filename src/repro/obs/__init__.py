"""repro.obs — unified tracing, metrics, and structured logging.

The process-wide observability layer every subsystem emits into:

* **Tracing** (:mod:`repro.obs.trace`) — ``with obs.span("quantize",
  layer="fc1"):`` nested timed regions, exported to JSONL or Chrome
  ``trace_event`` JSON (Perfetto-loadable).  Disabled by default; the
  disabled path is one attribute load and one branch.
* **Metrics** (:mod:`repro.obs.metrics`) — counters, gauges and
  histograms in a registry, with JSON snapshots and a Prometheus-style
  text exposition.  ``obs.counter("pipeline.cache.hits").inc()``
  resolves the *current* global registry at call time, which is what
  lets :func:`capture` redirect a worker process's emissions.
* **Logging** (:mod:`repro.obs.log`) — ``setup_logging()`` honoring
  ``$REPRO_LOG`` / ``--log-level``.

:func:`capture` is the worker-side half of multi-process merging: it
swaps in a fresh registry (and optionally enables tracing), runs the
batch, and hands back ``(spans, metrics-dump)`` for the parent to
:func:`absorb_capture`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    nearest_rank,
)
from repro.obs import trace
from repro.obs.trace import (
    NOOP_SPAN,
    Tracer,
    chrome_trace,
    get_tracer,
    load_spans,
    set_tracing,
    span,
    summarize_spans,
    write_trace,
)

__all__ = [
    "Capture",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Tracer",
    "absorb_capture",
    "capture",
    "chrome_trace",
    "counter",
    "diff_snapshots",
    "gauge",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram",
    "load_spans",
    "nearest_rank",
    "reset",
    "set_tracing",
    "setup_logging",
    "snapshot",
    "span",
    "summarize_spans",
    "trace_enabled",
    "tracing_enabled",
    "write_trace",
]

# ----------------------------------------------------------------------
# Process-global registry (swappable; resolve at call time).
# ----------------------------------------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str, **labels) -> Counter:
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return _REGISTRY.gauge(name, **labels)


def histogram(name: str, cap: Optional[int] = None, **labels) -> Histogram:
    return _REGISTRY.histogram(name, cap=cap, **labels)


def snapshot() -> dict:
    return _REGISTRY.snapshot()


def tracing_enabled() -> bool:
    return trace.TRACER.enabled


#: Alias kept short for hot-path guards.
trace_enabled = tracing_enabled


def reset() -> None:
    """Fresh global registry + cleared, disabled tracer (tests/CLIs)."""
    global _REGISTRY
    _REGISTRY = MetricsRegistry()
    trace.TRACER.enabled = False
    trace.TRACER.clear()


# ----------------------------------------------------------------------
# Worker-process capture.
# ----------------------------------------------------------------------


class Capture:
    """What one :func:`capture` block collected (filled on exit)."""

    def __init__(self):
        self.spans: List[dict] = []
        self.metrics: List[dict] = []


@contextmanager
def capture(tracing: bool = True):
    """Collect spans + metrics emitted inside the block, in isolation.

    Swaps a fresh registry into the module global and (optionally)
    enables the tracer for the duration; pre-existing buffered spans
    and the previous registry are restored afterwards.  The yielded
    :class:`Capture` carries the block's spans and a mergeable metrics
    dump once the block exits.
    """
    global _REGISTRY
    prev_registry = _REGISTRY
    prev_enabled = trace.TRACER.enabled
    stash = trace.TRACER.drain()
    captured = _REGISTRY = MetricsRegistry()
    trace.TRACER.enabled = tracing
    cap = Capture()
    try:
        yield cap
    finally:
        cap.spans = trace.TRACER.drain()
        cap.metrics = captured.dump()
        _REGISTRY = prev_registry
        trace.TRACER.enabled = prev_enabled
        trace.TRACER.absorb(stash)


def absorb_capture(spans: List[dict], metrics: List[dict]) -> None:
    """Parent-side merge of a worker's :class:`Capture` payload."""
    trace.TRACER.absorb(spans)
    _REGISTRY.merge(metrics)
