"""Span-based tracing: nested timed regions exported to JSONL/Perfetto.

A *span* is one timed region of work — ``with span("quantize",
layer="fc1"):`` — recorded with monotonic durations, wall-clock
placement, process/thread ids and the id of the enclosing span, so
nesting survives serialization.  Spans buffer in a per-process
:class:`Tracer`; worker processes drain their buffers and the parent
absorbs them, producing one merged timeline whose process lanes are
the real worker pids.

Two export shapes:

* **JSONL** — one span object per line, the stable schema documented
  in ``docs/observability.md`` (what ``bitmod-repro obs summarize``
  and the tests consume);
* **Chrome trace JSON** — ``{"traceEvents": [...]}`` with complete
  (``"ph": "X"``) events, loadable in Perfetto or ``chrome://tracing``.

Tracing is **disabled by default**.  The module-level :func:`span`
helper costs one attribute load and one branch when disabled (it
returns a shared no-op context manager); hot loops that want to avoid
even building keyword arguments can guard on :func:`enabled` —
``with TRACER.span(...) if TRACER.enabled else NOOP_SPAN:``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "NOOP_SPAN",
    "Tracer",
    "chrome_trace",
    "enabled",
    "get_tracer",
    "load_spans",
    "set_tracing",
    "span",
    "summarize_spans",
    "write_trace",
]


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    """Live context manager for one enabled span."""

    __slots__ = ("tracer", "name", "args", "span_id", "parent", "_wall_ns", "_mono_ns")

    def __init__(self, tracer: "Tracer", name: str, args: Dict):
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self):
        t = self.tracer
        self.span_id = t._next_id()
        stack = t._stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.span_id)
        self._wall_ns = time.time_ns()
        self._mono_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc):
        dur_ns = time.perf_counter_ns() - self._mono_ns
        t = self.tracer
        stack = t._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = {
            "name": self.name,
            "ts_ns": self._wall_ns,
            "dur_ns": dur_ns,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "id": self.span_id,
            "parent": self.parent,
        }
        if self.args:
            record["args"] = self.args
        t._append(record)
        return False


class Tracer:
    """Per-process span buffer.

    Thread-safe: every thread keeps its own nesting stack, and buffer
    appends hold a lock.  ``enabled`` gates everything — a disabled
    tracer's :meth:`span` returns the shared no-op context manager.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._spans: List[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._id = 0

    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            # Disambiguate ids across processes: workers drain into the
            # parent buffer, and parent links must not collide.
            return (os.getpid() << 32) | self._id

    def _append(self, record: dict) -> None:
        with self._lock:
            self._spans.append(record)

    # ------------------------------------------------------------------
    def span(self, name: str, /, **args):
        """Context manager timing one region (no-op when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return _SpanHandle(self, name, args)

    def add_span(
        self,
        name: str,
        /,
        start_wall_ns: int,
        dur_ns: int,
        parent: Optional[int] = None,
        **args,
    ) -> None:
        """Record a span with explicit timestamps (no-op when disabled).

        For lifecycles that cannot be a lexical ``with`` block — e.g. a
        serve request whose submit and completion happen on different
        scheduler steps.
        """
        if not self.enabled:
            return
        record = {
            "name": name,
            "ts_ns": int(start_wall_ns),
            "dur_ns": int(dur_ns),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "id": self._next_id(),
            "parent": parent,
        }
        if args:
            record["args"] = args
        self._append(record)

    # ------------------------------------------------------------------
    def spans(self) -> List[dict]:
        """A snapshot of the buffered spans (oldest first)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[dict]:
        """Return the buffered spans and clear the buffer."""
        with self._lock:
            out, self._spans = self._spans, []
        return out

    def absorb(self, spans: Iterable[dict]) -> None:
        """Merge spans drained from another tracer (worker processes)."""
        with self._lock:
            self._spans.extend(spans)

    def clear(self) -> None:
        self.drain()


# ----------------------------------------------------------------------
# Process-global tracer.
# ----------------------------------------------------------------------

TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


def enabled() -> bool:
    return TRACER.enabled


def set_tracing(on: bool = True) -> Tracer:
    """Turn the global tracer on/off; returns it."""
    TRACER.enabled = on
    return TRACER


def span(name: str, /, **args):
    """``with span("name", k=v):`` against the global tracer."""
    t = TRACER
    if not t.enabled:
        return NOOP_SPAN
    return _SpanHandle(t, name, args)


# ----------------------------------------------------------------------
# Export / import.
# ----------------------------------------------------------------------


def to_jsonl(spans: Iterable[dict]) -> str:
    """One-span-per-line JSONL text."""
    return "".join(json.dumps(s, sort_keys=True) + "\n" for s in spans)


def chrome_trace(spans: Iterable[dict]) -> dict:
    """Spans as a Chrome ``trace_event`` JSON object.

    Complete (``"ph": "X"``) events with microsecond timestamps
    rebased to the earliest span, one lane per (pid, tid), plus
    ``process_name`` metadata so Perfetto labels worker lanes by pid.
    """
    spans = list(spans)
    t0 = min((s["ts_ns"] for s in spans), default=0)
    events = []
    pids = {}
    for s in spans:
        pids.setdefault(s["pid"], None)
        event = {
            "name": s["name"],
            "cat": "repro",
            "ph": "X",
            "ts": (s["ts_ns"] - t0) / 1e3,
            "dur": s["dur_ns"] / 1e3,
            "pid": s["pid"],
            "tid": s["tid"],
        }
        if s.get("args"):
            event["args"] = s["args"]
        events.append(event)
    main_pid = os.getpid()
    for pid in sorted(pids):
        name = "main" if pid == main_pid else f"worker-{pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(path: Union[str, Path], spans: Iterable[dict]) -> Path:
    """Write spans to ``path``: chrome-trace for ``.json``, else JSONL."""
    # Imported here, not at module top: resilience.faults logs through
    # obs, so the packages must not need each other at import time.
    from repro.resilience.atomic import atomic_write_text

    path = Path(path)
    spans = list(spans)
    if path.suffix == ".json":
        atomic_write_text(path, json.dumps(chrome_trace(spans), indent=1) + "\n")
    else:
        atomic_write_text(path, to_jsonl(spans))
    return path


def load_spans(path: Union[str, Path]) -> List[dict]:
    """Read spans back from a JSONL or chrome-trace file.

    Chrome files lose the ``id``/``parent`` links (the format has no
    such field on complete events); timestamps come back in ``ts_ns``
    relative to the trace start.
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None  # more than one document: a JSONL span log
    if isinstance(doc, dict) and "traceEvents" in doc:
        spans = []
        for e in doc.get("traceEvents", []):
            if e.get("ph") != "X":
                continue
            spans.append(
                {
                    "name": e["name"],
                    "ts_ns": int(e["ts"] * 1e3),
                    "dur_ns": int(e["dur"] * 1e3),
                    "pid": e.get("pid", 0),
                    "tid": e.get("tid", 0),
                    "id": None,
                    "parent": None,
                    "args": e.get("args", {}),
                }
            )
        return spans
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def summarize_spans(spans: Iterable[dict]) -> List[dict]:
    """Aggregate spans by name: count, total/mean/max duration (ms).

    Sorted by total time, descending — the ``obs summarize`` table.
    """
    agg: Dict[str, dict] = {}
    for s in spans:
        a = agg.setdefault(
            s["name"], {"name": s["name"], "count": 0, "total_ms": 0.0, "max_ms": 0.0}
        )
        ms = s["dur_ns"] / 1e6
        a["count"] += 1
        a["total_ms"] += ms
        a["max_ms"] = max(a["max_ms"], ms)
    for a in agg.values():
        a["mean_ms"] = a["total_ms"] / a["count"]
    return sorted(agg.values(), key=lambda a: -a["total_ms"])
