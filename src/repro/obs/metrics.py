"""Metrics: counters, gauges and histograms in a process-wide registry.

The registry is the shared home for the numbers every subsystem used
to keep privately (``CacheStore`` hit/miss fields, ``ServeMetrics``
token counters, ``_run_meta.json`` wall times).  Three primitives:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — a settable point-in-time value (``set``/``inc``);
* :class:`Histogram` — streaming samples with nearest-rank
  percentiles.  The sorted view is **cached** and invalidated on
  ``record``, and an optional reservoir ``cap`` bounds memory on
  unbounded streams (uniform reservoir sampling; ``count``/``mean``/
  ``max`` still reflect every sample ever recorded).

Series are keyed by ``(name, labels)``; ``registry.counter("dse.skipped",
reason="tile divisibility")`` get-or-creates one labelled series.
Snapshots come in two shapes: :meth:`MetricsRegistry.snapshot` (the
human/JSON view written next to experiment results) and
:meth:`MetricsRegistry.dump` (a mergeable form that
:meth:`MetricsRegistry.merge` folds back in — how worker-process
metrics join the parent registry).  :meth:`MetricsRegistry.to_prometheus`
renders the text exposition format.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "nearest_rank",
]

Labels = Tuple[Tuple[str, str], ...]


def _labels(kw: Dict[str, object]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in kw.items()))


def series_name(name: str, labels: Labels) -> str:
    """Canonical ``name{k=v,...}`` series string."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def nearest_rank(ordered: List[float], p: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sample list.

    ``p`` in [0, 100]; empty input yields 0.0 (the historical
    ``LatencyStats`` convention).
    """
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
    return ordered[int(rank)]


class Counter:
    """Monotonic counter."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def snapshot_value(self):
        v = self.value
        return int(v) if float(v).is_integer() else v


class Gauge(Counter):
    """Point-in-time value (a counter that may also go down)."""

    kind = "gauge"

    def set(self, v: float) -> None:
        self.value = float(v)

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Streaming samples with cached-sort nearest-rank percentiles."""

    kind = "histogram"

    def __init__(
        self,
        name: str = "",
        labels: Labels = (),
        cap: Optional[int] = None,
        seed: int = 0,
    ):
        if cap is not None and cap < 1:
            raise ValueError("histogram cap must be at least 1")
        self.name = name
        self.labels = labels
        self.cap = cap
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._n = 0
        self._sum = 0.0
        self._max = 0.0
        self._rng = random.Random(seed) if cap is not None else None

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        value = float(value)
        self._n += 1
        self._sum += value
        if value > self._max or self._n == 1:
            self._max = value
        if self.cap is None or len(self.samples) < self.cap:
            self.samples.append(value)
        else:
            # Uniform reservoir: each of the _n samples seen so far
            # ends up retained with probability cap/_n.
            j = self._rng.randrange(self._n)
            if j < self.cap:
                self.samples[j] = value
            else:
                return  # retained set unchanged; keep the sorted cache
        self._sorted = None

    observe = record

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Samples ever recorded (not capped by the reservoir)."""
        return self._n

    @property
    def mean(self) -> float:
        return self._sum / self._n if self._n else 0.0

    @property
    def max(self) -> float:
        return self._max if self._n else 0.0

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        return self._sorted

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        return nearest_rank(self._ordered(), p)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create home for labelled metric series."""

    def __init__(self):
        self._metrics: Dict[Tuple[str, str, Labels], object] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, cls, name: str, labels: Labels, **kw):
        key = (kind, name, labels)
        m = self._metrics.get(key)
        if m is None:
            m = self._metrics[key] = cls(name, labels, **kw)
        return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", Counter, name, _labels(labels))

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", Gauge, name, _labels(labels))

    def histogram(
        self, name: str, cap: Optional[int] = None, **labels
    ) -> Histogram:
        return self._get("histogram", Histogram, name, _labels(labels), cap=cap)

    def register(self, metric) -> None:
        """Adopt a pre-built metric object (e.g. a serve LatencyStats)."""
        self._metrics[(metric.kind, metric.name, metric.labels)] = metric

    def metrics(self) -> List[object]:
        return [self._metrics[k] for k in sorted(self._metrics)]

    def clear(self) -> None:
        self._metrics.clear()

    # ------------------------------------------------------------------
    # Snapshots.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The human/JSON view: plain values and histogram summaries."""
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for m in self.metrics():
            key = series_name(m.name, m.labels)
            if m.kind == "counter":
                out["counters"][key] = m.snapshot_value()
            elif m.kind == "gauge":
                out["gauges"][key] = m.snapshot_value()
            else:
                out["histograms"][key] = m.summary()
        return out

    def dump(self) -> List[dict]:
        """Mergeable form: every series with its raw state."""
        out = []
        for m in self.metrics():
            rec = {"kind": m.kind, "name": m.name, "labels": list(m.labels)}
            if m.kind == "histogram":
                rec.update(samples=list(m.samples), count=m.count, sum=m._sum, max=m.max)
            else:
                rec["value"] = m.value
            out.append(rec)
        return out

    def merge(self, dumped: List[dict]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters add, gauges take the incoming value, histograms
        extend (count/sum/max aggregate exactly even when the incoming
        reservoir dropped samples).
        """
        for rec in dumped:
            labels = tuple((k, v) for k, v in rec["labels"])
            if rec["kind"] == "counter":
                self._get("counter", Counter, rec["name"], labels).inc(rec["value"])
            elif rec["kind"] == "gauge":
                self._get("gauge", Gauge, rec["name"], labels).set(rec["value"])
            else:
                h = self._get("histogram", Histogram, rec["name"], labels)
                for v in rec["samples"]:
                    h.samples.append(float(v))
                h._sorted = None
                h._n += int(rec["count"])
                h._sum += float(rec["sum"])
                if rec["count"] and (h._max < rec["max"] or h._n == rec["count"]):
                    h._max = float(rec["max"])

    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition (histograms as summary quantiles)."""
        lines = []
        seen_types = set()
        for m in self.metrics():
            pname = _prom_name(m.name)
            if (pname, m.kind) not in seen_types:
                seen_types.add((pname, m.kind))
                ptype = "summary" if m.kind == "histogram" else m.kind
                lines.append(f"# TYPE {pname} {ptype}")
            if m.kind in ("counter", "gauge"):
                lines.append(f"{pname}{_prom_labels(m.labels)} {_prom_num(m.value)}")
                continue
            for q, p in (("0.5", 50), ("0.95", 95), ("0.99", 99)):
                labels = m.labels + (("quantile", q),)
                lines.append(
                    f"{pname}{_prom_labels(labels)} {_prom_num(m.percentile(p))}"
                )
            lines.append(f"{pname}_count{_prom_labels(m.labels)} {m.count}")
            lines.append(f"{pname}_sum{_prom_labels(m.labels)} {_prom_num(m._sum)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Labels) -> str:
    if not labels:
        return ""
    body = ",".join(f'{_prom_name(k)}="{_escape(v)}"' for k, v in labels)
    return "{" + body + "}"


def _escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_num(v: float) -> str:
    v = float(v)
    return str(int(v)) if v.is_integer() else repr(v)


def diff_snapshots(before: dict, after: dict) -> dict:
    """Series-wise diff of two :meth:`MetricsRegistry.snapshot` dicts.

    Counters/gauges report ``(before, after, delta)``; histograms
    compare their summaries field by field.  Series present in only
    one snapshot diff against zero/empty.
    """
    out = {"counters": {}, "gauges": {}, "histograms": {}}
    for group in ("counters", "gauges"):
        a, b = before.get(group, {}), after.get(group, {})
        for key in sorted(set(a) | set(b)):
            va, vb = a.get(key, 0), b.get(key, 0)
            if va != vb:
                out[group][key] = {"before": va, "after": vb, "delta": vb - va}
    a, b = before.get("histograms", {}), after.get("histograms", {})
    empty = {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    for key in sorted(set(a) | set(b)):
        sa, sb = a.get(key, empty), b.get(key, empty)
        fields = {
            f: {"before": sa.get(f, 0), "after": sb.get(f, 0)}
            for f in sorted(set(sa) | set(sb))
            if sa.get(f, 0) != sb.get(f, 0)
        }
        if fields:
            out["histograms"][key] = fields
    return out
