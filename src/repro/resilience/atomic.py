"""One atomic write path for every file the repo emits.

A crash (or an injected fault) between ``open()`` and the final
``write()`` must never leave a truncated JSON report, benchmark
artifact or cache entry behind.  Everything here funnels through
:func:`atomic_write_bytes`: the payload lands in a tempfile *in the
destination directory* (same filesystem, so the rename is atomic) and
``os.replace`` publishes it in one step — readers observe either the
old complete file or the new complete file, never a torn one.

The :class:`~repro.pipeline.store.CacheStore`, the experiment runner's
JSON emission (``--json``/``_run_meta.json``), the DSE CLI outputs,
trace/metrics snapshots and the benchmark ``BENCH_*.json`` writers all
use these helpers.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` via tempfile + rename (POSIX-atomic)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Atomic drop-in for ``Path.write_text``."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: Union[str, Path],
    obj: Any,
    indent: Optional[int] = None,
    sort_keys: bool = False,
) -> Path:
    """Serialize ``obj`` as JSON and publish it atomically."""
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    if indent is not None:
        text += "\n"
    return atomic_write_text(path, text)
