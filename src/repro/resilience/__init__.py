"""repro.resilience — fault injection, crash-safe IO, retries, resume.

The ops substrate the pipeline engine, DSE sweeps and the serve path
lean on to survive real-world failure (crash-only design: fail fast,
recover deterministically):

* :mod:`repro.resilience.faults` — seedable, declarative
  :class:`FaultPlan` fault injection (``$REPRO_FAULTS``) so chaos
  tests reproduce: kill a pool worker mid-batch, corrupt a cache
  entry, raise/delay inside a cell, stall a serve request;
* :mod:`repro.resilience.atomic` — the one write-temp-then-rename
  helper every JSON/artifact emission goes through;
* :mod:`repro.resilience.retry` — bounded exponential-backoff
  :class:`RetryPolicy` (process-pool respawn pacing);
* :mod:`repro.resilience.journal` — per-run append-only
  :class:`RunJournal` of completed work, the ``--resume RUN_ID``
  substrate.

See ``docs/resilience.md`` for the fault-plan schema and the
retry/journal/serve-degradation semantics.
"""

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    clear_fault_plan,
    corrupt_file,
    get_fault_plan,
    set_fault_plan,
)
from repro.resilience.journal import RunJournal, run_dir
from repro.resilience.retry import RetryBudgetExceeded, RetryPolicy

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "RunJournal",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "clear_fault_plan",
    "corrupt_file",
    "get_fault_plan",
    "run_dir",
    "set_fault_plan",
]
