"""Deterministic, seedable fault injection.

Chaos testing only earns its keep when a failure reproduces: a
:class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries
that fire at named *sites* instrumented through the codebase, with
per-spec trigger counting (``after``/``times``) and an optional seeded
probability, so the same plan injects the same faults in the same
places every run.

Sites currently instrumented:

========================  ====================================================
``pipeline.cell``         inside :func:`repro.pipeline.cells.compute_cell`
                          (ctx: ``kind``, ``model``, ``dataset``) — a ``kill``
                          here takes down a pool worker mid-batch
``cache.put``             after a :class:`~repro.pipeline.store.CacheStore`
                          write (ctx: ``kind``, ``key``) — ``corrupt``
                          truncates or bit-flips the entry on disk
``serve.decode``          per decode pass in the continuous batcher
                          (ctx: ``request``) — ``delay`` stalls a request
========================  ====================================================

Actions:

* ``kill``  — ``os._exit(exit_code)`` (a crash, not an exception: no
  ``finally`` blocks run, exactly like a segfault or SIGKILL);
* ``raise`` — raise :class:`FaultInjected`;
* ``delay`` — sleep ``delay_s`` then continue;
* ``corrupt`` — returned to the call site, which applies
  :func:`corrupt_file` (``mode``: ``truncate`` or ``flip``) to the file
  it just wrote.

Activation: set ``$REPRO_FAULTS`` to inline JSON or ``@/path/plan.json``
(worker processes inherit the environment, so pool workers honor the
same plan), or call :func:`set_fault_plan` in-process (tests).  When
the plan comes from a file, cross-process ``times`` accounting lands in
``<plan>.state/`` marker files (override with ``$REPRO_FAULTS_STATE``):
a ``times: 1`` worker-kill fires once across the whole pool, so the
respawned worker survives — which is what makes kill-and-recover tests
deterministic.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "clear_fault_plan",
    "corrupt_file",
    "enabled",
    "fire",
    "get_fault_plan",
    "set_fault_plan",
]

_ACTIONS = ("kill", "raise", "delay", "corrupt")
_CORRUPT_MODES = ("truncate", "flip")


class FaultInjected(RuntimeError):
    """The error a ``raise`` fault throws at its site."""

    def __init__(self, site: str, ctx: Optional[Mapping[str, object]] = None):
        super().__init__(f"injected fault at {site} ({dict(ctx or {})})")
        self.site = site
        self.ctx = dict(ctx or {})


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where, what, and when it fires."""

    site: str
    action: str
    #: Context filters: every (key, value) must equal the site's ctx.
    match: Tuple[Tuple[str, object], ...] = ()
    #: Matching events to let pass (per process) before firing.
    after: int = 0
    #: Total activations allowed (global when a state dir is set).
    times: int = 1
    #: Fire probability per eligible event (seeded; 1.0 = always).
    p: float = 1.0
    delay_s: float = 0.0
    exit_code: int = 137
    mode: str = "truncate"

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; known: {', '.join(_ACTIONS)}"
            )
        if self.mode not in _CORRUPT_MODES:
            raise ValueError(
                f"unknown corrupt mode {self.mode!r}; known: {', '.join(_CORRUPT_MODES)}"
            )
        if self.after < 0 or self.times < 1 or not (0.0 < self.p <= 1.0):
            raise ValueError("need after >= 0, times >= 1, 0 < p <= 1")

    def matches(self, site: str, ctx: Mapping[str, object]) -> bool:
        if site != self.site:
            return False
        return all(ctx.get(k) == v for k, v in self.match)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["match"] = dict(self.match)
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "FaultSpec":
        d = dict(d)
        match = d.pop("match", {}) or {}
        return cls(match=tuple(sorted(match.items())), **d)  # type: ignore[arg-type]


class FaultPlan:
    """A seeded list of fault specs with deterministic trigger state."""

    def __init__(
        self,
        faults: List[FaultSpec],
        seed: int = 0,
        state_dir: Optional[Union[str, Path]] = None,
    ):
        self.faults = list(faults)
        self.seed = int(seed)
        self.state_dir = None if state_dir is None else Path(state_dir)
        # Per-process trigger state; ``times`` moves to marker files
        # under ``state_dir`` when one is configured.
        self._seen: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._rngs: Dict[int, np.random.Generator] = {}

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(
        cls, d: Mapping[str, object], state_dir: Optional[Union[str, Path]] = None
    ) -> "FaultPlan":
        faults = [FaultSpec.from_dict(f) for f in d.get("faults", ())]  # type: ignore[union-attr]
        return cls(faults, seed=int(d.get("seed", 0)), state_dir=state_dir)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        """Parse ``$REPRO_FAULTS``: inline JSON or ``@/path/plan.json``."""
        state_dir = os.environ.get("REPRO_FAULTS_STATE") or None
        if value.startswith("@"):
            path = Path(value[1:])
            if state_dir is None:
                state_dir = f"{path}.state"
            return cls.from_dict(
                json.loads(path.read_text(encoding="utf-8")), state_dir=state_dir
            )
        return cls.from_dict(json.loads(value), state_dir=state_dir)

    # ------------------------------------------------------------------
    def _rng(self, idx: int) -> np.random.Generator:
        rng = self._rngs.get(idx)
        if rng is None:
            rng = self._rngs[idx] = np.random.default_rng((self.seed, idx))
        return rng

    def _claim(self, idx: int, spec: FaultSpec) -> bool:
        """Claim one of the spec's ``times`` activation slots.

        With a ``state_dir`` the slots are ``O_EXCL`` marker files, so
        the budget holds across every process sharing the plan file —
        a respawned pool worker cannot re-fire a spent fault.
        """
        if self.state_dir is None:
            if self._fired.get(idx, 0) >= spec.times:
                return False
            self._fired[idx] = self._fired.get(idx, 0) + 1
            return True
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for slot in range(spec.times):
            marker = self.state_dir / f"fault-{idx}.{slot}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.write(fd, f"pid={os.getpid()}\n".encode())
            os.close(fd)
            return True
        return False

    def fire(self, site: str, **ctx) -> Optional[FaultSpec]:
        """Evaluate every spec against one event at ``site``.

        Performs ``kill``/``raise``/``delay`` actions directly; returns
        the matched spec (``corrupt`` specs are the caller's job) or
        ``None`` when nothing fired.
        """
        for idx, spec in enumerate(self.faults):
            if not spec.matches(site, ctx):
                continue
            seen = self._seen.get(idx, 0) + 1
            self._seen[idx] = seen
            if seen <= spec.after:
                continue
            if spec.p < 1.0 and self._rng(idx).random() >= spec.p:
                continue
            if not self._claim(idx, spec):
                continue
            self._record(spec, site)
            if spec.action == "kill":
                os._exit(spec.exit_code)
            if spec.action == "raise":
                raise FaultInjected(site, ctx)
            if spec.action == "delay":
                time.sleep(spec.delay_s)
            return spec
        return None

    @staticmethod
    def _record(spec: FaultSpec, site: str) -> None:
        # Imported lazily: obs must stay importable without resilience
        # and vice versa.
        from repro import obs

        obs.counter("resilience.faults_injected", site=site, action=spec.action).inc()
        obs.get_logger(__name__).warning(
            "injecting %s fault at %s", spec.action, site
        )


def corrupt_file(path: Union[str, Path], mode: str = "truncate") -> None:
    """Damage a file in place: drop its tail, or flip a middle byte."""
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: max(len(data) // 2, 1)])
    elif mode == "flip":
        if not data:
            return
        mid = len(data) // 2
        path.write_bytes(data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1 :])
    else:
        raise ValueError(f"unknown corrupt mode {mode!r}")


# ----------------------------------------------------------------------
# Process-global plan (lazy $REPRO_FAULTS load; swappable in tests).
# ----------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_LOADED = False


def get_fault_plan() -> Optional[FaultPlan]:
    """The active plan: in-process override or ``$REPRO_FAULTS``."""
    global _PLAN, _LOADED
    if not _LOADED:
        _LOADED = True
        env = os.environ.get("REPRO_FAULTS")
        if env:
            _PLAN = FaultPlan.from_env(env)
    return _PLAN


def set_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` for this process (tests/fixtures)."""
    global _PLAN, _LOADED
    _PLAN = plan
    _LOADED = True


def clear_fault_plan() -> None:
    """Drop any plan and re-read ``$REPRO_FAULTS`` on next use."""
    global _PLAN, _LOADED
    _PLAN = None
    _LOADED = False


def enabled() -> bool:
    """Cheap hot-path guard: is any fault plan active?"""
    return get_fault_plan() is not None


def fire(site: str, **ctx) -> Optional[FaultSpec]:
    """Fire one event at ``site`` against the active plan (if any)."""
    plan = get_fault_plan()
    if plan is None:
        return None
    return plan.fire(site, **ctx)
