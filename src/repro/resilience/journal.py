"""Per-run append-only journals: the resume substrate.

A :class:`RunJournal` is one JSONL file of completion events —
experiment results, computed cell keys, DSE point keys — appended as
work finishes.  After a crash (SIGKILL, OOM, power loss) the journal
plus the content-addressed :class:`~repro.pipeline.store.CacheStore`
reconstruct exactly what a run already did:

* journaled **experiment** events replay their stored result payload,
  so ``bitmod-repro --all --resume RUN_ID`` skips finished experiments
  and re-emits byte-identical JSON;
* journaled **cells**/**dse_point** events document partial progress;
  the cells and point records themselves live in the store, so the
  re-run resolves them as cache hits instead of recomputing.

Appends are a single ``write`` of one ``\\n``-terminated line to an
``O_APPEND`` descriptor plus ``flush``; a crash mid-append leaves at
most one torn *tail* line, which :meth:`records` detects and drops
(every complete line is still valid JSON).  Journals live under
``$REPRO_RUN_DIR`` or ``<cache root>/runs/<run_id>/journal.jsonl``.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = ["RunJournal", "run_dir"]

_RUN_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def run_dir(run_id: str, base: Optional[Union[str, Path]] = None) -> Path:
    """The on-disk home of one run: ``<base>/runs/<run_id>``."""
    if not _RUN_ID.match(run_id):
        raise ValueError(
            f"invalid run id {run_id!r} (letters, digits, '.', '_', '-' only)"
        )
    if base is None:
        env = os.environ.get("REPRO_RUN_DIR")
        if env:
            return Path(env) / run_id
        # Lazy import: pipeline.store imports resilience.atomic.
        from repro.pipeline.store import default_cache_dir

        base = default_cache_dir() / "runs"
    return Path(base) / run_id


class RunJournal:
    """Append-only JSONL event log for one run id."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None

    @classmethod
    def for_run(
        cls, run_id: str, base: Optional[Union[str, Path]] = None
    ) -> "RunJournal":
        return cls(run_dir(run_id, base) / "journal.jsonl")

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Persist one event (a JSON-able dict with an ``event`` key)."""
        if "event" not in record:
            raise ValueError("journal records need an 'event' key")
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(line)
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def records(self) -> List[dict]:
        """Every complete event, oldest first.

        A torn tail line (crash mid-append) is dropped; a torn line
        anywhere *else* means outside interference and raises.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        lines = text.splitlines()
        out: List[dict] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                out.append(json.loads(line))
            except ValueError:
                if i == len(lines) - 1:
                    break  # torn tail from a crash mid-append
                raise ValueError(
                    f"{self.path}: corrupt journal line {i + 1} "
                    "(only the final line may be torn)"
                ) from None
        return out

    def completed(self, event: str, key: str = "name") -> Dict[str, dict]:
        """Latest event of one type per ``key`` value (replay index)."""
        out: Dict[str, dict] = {}
        for r in self.records():
            if r.get("event") == event and key in r:
                out[str(r[key])] = r
        return out

    def completed_keys(self, event: str) -> List[str]:
        """Flattened ``keys``/``key`` fields of every ``event`` record."""
        keys: List[str] = []
        for r in self.records():
            if r.get("event") != event:
                continue
            if "keys" in r:
                keys.extend(r["keys"])
            elif "key" in r:
                keys.append(r["key"])
        return keys
