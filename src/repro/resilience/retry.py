"""Bounded exponential-backoff retry policy.

The pipeline engine uses one :class:`RetryPolicy` to pace process-pool
respawns after a worker crash; anything else that needs fail-fast-and-
recover semantics (remote stores, flaky IO) should reuse it rather
than growing ad-hoc sleep loops.

Delays are deterministic (no jitter by default) so chaos tests under a
seeded :class:`~repro.resilience.faults.FaultPlan` replay identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["RetryPolicy", "RetryBudgetExceeded"]


class RetryBudgetExceeded(RuntimeError):
    """Raised when an operation stays broken past ``max_attempts``."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base * multiplier**(n-1)``, capped.

    ``max_attempts`` counts *retries* (a policy of 3 allows the
    initial try plus three recoveries).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), bounded above."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)

    def sleep(self, attempt: int, _sleep: Callable[[float], None] = time.sleep) -> float:
        """Sleep the backoff for ``attempt`` and return the delay used."""
        d = self.delay(attempt)
        if d > 0:
            _sleep(d)
        return d

    def attempts(self) -> Iterator[int]:
        """Yield retry attempt numbers ``1..max_attempts``, sleeping
        the backoff *before* each yield (the caller already failed
        once when it starts iterating)."""
        for attempt in range(1, self.max_attempts + 1):
            self.sleep(attempt)
            yield attempt
