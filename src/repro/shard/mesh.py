"""Device meshes and named sharding specs.

A :class:`DeviceMesh` is the declarative shape of a multi-device
deployment: ``tp`` tensor-parallel shards x ``pp`` pipeline stages,
an interconnect ``topology`` (priced by :mod:`repro.hw.multichip`),
and the collective ``reduce`` mode:

* ``"gather"`` (default) — row-parallel projections keep their full
  contraction dimension and exchange *activations* (all-gather of the
  exact per-shard columns), so every GEMM contracts over the same
  operands as the single-device pass and the logits are **byte
  identical** to it.
* ``"sum"`` — the classic Megatron schedule: row-parallel weights are
  K-sliced and partial sums are all-reduced in fixed shard order.
  Deterministic and token-stream identical, but float addition is not
  associative, so logits may differ from the single-device pass by a
  few ULP.

Both modes move the same interconnect volume per layer; the mesh is
part of the artifact digest, so shard sets packed under one mode
cannot be silently loaded under the other.

:class:`ShardSpec` names how one weight tensor splits across the
``tp`` axis — the ``PartitionSpec`` idea from the jax_llama exemplar,
reduced to the three cases a decoder block needs (replicate, split
output channels, split input columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hw.multichip import TOPOLOGIES
from repro.models.config import ModelConfig
from repro.shard.errors import ShardError

__all__ = ["DeviceMesh", "REDUCE_MODES", "ShardSpec", "partition_specs"]

#: Collective schedules a mesh may run (see module docstring).
REDUCE_MODES = ("gather", "sum")


@dataclass(frozen=True)
class DeviceMesh:
    """A ``tp x pp`` grid of identical devices."""

    tp: int = 1
    pp: int = 1
    topology: str = "ring"
    reduce: str = "gather"

    def __post_init__(self):
        if self.tp < 1 or self.pp < 1:
            raise ShardError(
                f"mesh must be at least 1x1, got tp={self.tp} pp={self.pp}",
                tp=self.tp,
                pp=self.pp,
            )
        if self.topology not in TOPOLOGIES:
            raise ShardError(
                f"unknown topology {self.topology!r} "
                f"(known: {', '.join(TOPOLOGIES)})",
                topology=self.topology,
            )
        if self.reduce not in REDUCE_MODES:
            raise ShardError(
                f"unknown reduce mode {self.reduce!r} "
                f"(known: {', '.join(REDUCE_MODES)})",
                reduce=self.reduce,
            )

    @property
    def n_devices(self) -> int:
        return self.tp * self.pp

    # ------------------------------------------------------------------
    def validate_model(self, cfg: ModelConfig) -> None:
        """Raise :class:`ShardError` unless ``cfg`` splits evenly.

        Head-partitioned attention needs ``sim_heads`` *and*
        ``sim_kv_heads`` divisible by ``tp`` (GQA groups must not
        straddle shards); column-parallel MLP and vocab projections
        need the same of ``sim_intermediate``/``sim_vocab``; pipeline
        needs at least one layer per stage.
        """
        problems = []
        if cfg.sim_heads % self.tp:
            problems.append(f"{cfg.sim_heads} heads % tp={self.tp}")
        if cfg.sim_kv_heads % self.tp:
            problems.append(f"{cfg.sim_kv_heads} KV heads % tp={self.tp}")
        if cfg.sim_intermediate % self.tp:
            problems.append(f"intermediate {cfg.sim_intermediate} % tp={self.tp}")
        if cfg.sim_vocab % self.tp:
            problems.append(f"vocab {cfg.sim_vocab} % tp={self.tp}")
        if self.pp > cfg.sim_layers:
            problems.append(f"{cfg.sim_layers} layers < pp={self.pp}")
        if problems:
            raise ShardError(
                f"{cfg.name} cannot shard over a {self.tp}x{self.pp} mesh: "
                + "; ".join(problems),
                model=cfg.name,
                tp=self.tp,
                pp=self.pp,
                problems=problems,
            )

    def layer_ranges(self, n_layers: int) -> List[Tuple[int, int]]:
        """Contiguous ``(start, stop)`` layer range per pipeline stage
        (sizes differ by at most one, earlier stages get the extras)."""
        if self.pp > n_layers:
            raise ShardError(
                f"cannot pipeline {n_layers} layers over {self.pp} stages",
                pp=self.pp,
                n_layers=n_layers,
            )
        base, extra = divmod(n_layers, self.pp)
        ranges, start = [], 0
        for s in range(self.pp):
            stop = start + base + (1 if s < extra else 0)
            ranges.append((start, stop))
            start = stop
        return ranges

    def stage_of(self, layer: int, n_layers: int) -> int:
        for s, (a, b) in enumerate(self.layer_ranges(n_layers)):
            if a <= layer < b:
                return s
        raise ShardError(f"layer {layer} outside [0, {n_layers})", layer=layer)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "tp": self.tp,
            "pp": self.pp,
            "topology": self.topology,
            "reduce": self.reduce,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "DeviceMesh":
        known = {"tp", "pp", "topology", "reduce"}
        unknown = set(d) - known
        if unknown:
            raise ShardError(
                f"unknown mesh keys: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(
            tp=int(d.get("tp", 1)),
            pp=int(d.get("pp", 1)),
            topology=d.get("topology", "ring"),
            reduce=d.get("reduce", "gather"),
        )


@dataclass(frozen=True)
class ShardSpec:
    """How one tensor splits over the ``tp`` axis.

    ``kind`` is one of:

    * ``"replicate"`` — every shard holds the full tensor (norm gains,
      embedding);
    * ``"split_out"`` — output channels (rows of the ``(out, in)``
      weight) slice into ``tp`` contiguous blocks: column-parallel
      projections, and row-parallel ones under ``reduce="gather"``;
    * ``"split_in"`` — input columns (the contraction dim) slice:
      row-parallel projections under ``reduce="sum"``.
    """

    kind: str

    def __post_init__(self):
        if self.kind not in ("replicate", "split_out", "split_in"):
            raise ShardError(f"unknown shard spec kind {self.kind!r}")

    def slice_bounds(self, dim_size: int, rank: int, tp: int) -> Tuple[int, int]:
        """The ``[start, stop)`` this rank owns along the split axis."""
        if dim_size % tp:
            raise ShardError(
                f"dimension {dim_size} does not split over {tp} shards",
                dim=dim_size,
                tp=tp,
            )
        width = dim_size // tp
        return rank * width, (rank + 1) * width


#: Column-parallel projections: output dim splits, inputs replicated.
_COLUMN_PARALLEL = ("q_proj", "k_proj", "v_proj", "gate_proj", "up_proj", "fc1")
#: Row-parallel projections: contraction dim splits under "sum".
_ROW_PARALLEL = ("o_proj", "down_proj", "fc2")


def partition_specs(cfg: ModelConfig, mesh: DeviceMesh) -> Dict[str, ShardSpec]:
    """The named sharding spec of every weight of ``cfg`` under ``mesh``.

    Keys are the :class:`~repro.models.transformer.CausalLM` weight
    names; every name the model generates must resolve here, so an
    architecture this mapping does not understand fails loudly at
    partition time.
    """
    mesh.validate_model(cfg)
    row_kind = "split_out" if mesh.reduce == "gather" else "split_in"
    specs: Dict[str, ShardSpec] = {
        "embed": ShardSpec("replicate"),
        "final_norm": ShardSpec("replicate"),
        "lm_head": ShardSpec("split_out"),
    }
    for layer in range(cfg.sim_layers):
        prefix = f"layers.{layer}."
        specs[prefix + "attn_norm"] = ShardSpec("replicate")
        specs[prefix + "mlp_norm"] = ShardSpec("replicate")
        for name in _COLUMN_PARALLEL:
            specs[prefix + name] = ShardSpec("split_out")
        for name in _ROW_PARALLEL:
            specs[prefix + name] = ShardSpec(row_kind)
    return specs
