"""repro.shard — tensor/pipeline-parallel serving over a device mesh.

The sharding layer splits a packed model over an explicit
:class:`DeviceMesh` (``tp`` tensor-parallel shards x ``pp`` pipeline
stages) and serves it through a :class:`ShardedEngine` whose
cross-shard traffic all flows through one metered :class:`Collective`.
Under the default ``reduce="gather"`` mesh the sharded engine's
logits and token streams are **byte-identical** to the single-device
engine; ``reduce="sum"`` runs the classic all-reduce schedule with a
fixed accumulation order (deterministic, token-identical).

Interconnect cost is modeled, not wished away: per-topology wire
bytes and link seconds come from :mod:`repro.hw.multichip`, and the
same formulas drive the multi-chip design-space axis in
:mod:`repro.dse`.
"""

from repro.shard.artifact import (
    load_sharded_artifact,
    mesh_digest,
    save_sharded_artifact,
    shard_paths,
)
from repro.shard.collective import Collective, OpStats
from repro.shard.engine import PREFIX_CACHE_UNSUPPORTED, ShardedEngine
from repro.shard.errors import ShardError, ShardTopologyError
from repro.shard.mesh import REDUCE_MODES, DeviceMesh, ShardSpec, partition_specs
from repro.shard.model import ShardedCausalLM, ShardedKVCache, check_kv_quant
from repro.shard.partition import shard_artifact, shard_weights, slice_packed

__all__ = [
    "Collective",
    "DeviceMesh",
    "OpStats",
    "PREFIX_CACHE_UNSUPPORTED",
    "REDUCE_MODES",
    "ShardError",
    "ShardSpec",
    "ShardTopologyError",
    "ShardedCausalLM",
    "ShardedEngine",
    "ShardedKVCache",
    "check_kv_quant",
    "load_sharded_artifact",
    "mesh_digest",
    "partition_specs",
    "save_sharded_artifact",
    "shard_artifact",
    "shard_paths",
    "shard_weights",
    "slice_packed",
]
