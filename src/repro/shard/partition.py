"""Exact partitioning of weights and packed artifacts over a mesh.

Two paths produce a shard's weights, and they must agree bit for bit:

* :func:`shard_weights` slices the *dequantized* float tensors — the
  fast in-memory path :class:`~repro.shard.engine.ShardedEngine` uses
  when it already holds the full artifact;
* :func:`slice_packed` slices the *bit-packed DRAM image* itself, so
  :func:`shard_artifact` can emit per-shard sub-artifacts whose blobs
  round-trip through :mod:`repro.serve.artifact` and dequantize to
  exactly the same values.

Slicing a :class:`~repro.quant.packing.PackedTensor` is exact because
dequantization is elementwise with per-row scales: an output-channel
slice takes whole scale rows, and an input-column slice either takes
whole groups or — when the slice is narrower than a group but divides
it — *subdivides* every group, repeating its scale/selector/zero per
sub-group (each element keeps the identical code and scale, so the
dequantized values cannot change).  Slices that straddle group
boundaries unevenly raise :class:`~repro.shard.errors.ShardError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.models.config import ModelConfig
from repro.quant.packing import PackedTensor, pack_bits, unpack_bits
from repro.shard.errors import ShardError
from repro.shard.mesh import DeviceMesh, ShardSpec, partition_specs

__all__ = ["slice_packed", "shard_weights", "shard_artifact"]


def _group_arrays(p: PackedTensor):
    """(codes, sf, sv, zeros, per_group_scales) as per-row views."""
    k, d = p.shape
    g = p.group_size
    if d % g:
        raise ShardError(
            f"packed tensor {p.shape} has ragged groups "
            f"(group_size={g}); cannot slice exactly",
            shape=list(p.shape),
            group_size=g,
        )
    gpc = p.groups_per_channel or (d // g)
    n_rows = k * gpc
    codes = unpack_bits(p.element_data, p.bits, n_rows * g).reshape(n_rows, g)
    return codes, gpc


def _rebuild(
    p: PackedTensor,
    codes: np.ndarray,
    shape: tuple,
    group_size: int,
    gpc: int,
    sf_codes: np.ndarray,
    channel_scales: np.ndarray,
    sv_selectors: Optional[np.ndarray],
    zeros: Optional[np.ndarray],
) -> PackedTensor:
    return PackedTensor(
        dtype_name=p.dtype_name,
        bits=p.bits,
        shape=shape,
        group_size=group_size,
        element_data=pack_bits(codes.reshape(-1), p.bits),
        sf_codes=np.ascontiguousarray(sf_codes.reshape(-1)),
        channel_scales=np.ascontiguousarray(channel_scales.reshape(-1)),
        sv_selectors=(
            None
            if sv_selectors is None
            else np.ascontiguousarray(sv_selectors.reshape(-1))
        ),
        zeros=None if zeros is None else np.ascontiguousarray(zeros.reshape(-1)),
        groups_per_channel=gpc,
    )


def slice_packed(p: PackedTensor, dim: int, start: int, stop: int) -> PackedTensor:
    """An exact sub-image of ``p``: ``unpack(slice) == unpack(p)[slice]``.

    ``dim=0`` slices output channels ``[start:stop)`` (whole scale
    rows); ``dim=1`` slices input columns — whole groups when aligned,
    otherwise each group is subdivided into ``group_size // width``
    sub-groups with repeated metadata (exact, since scales apply
    elementwise).
    """
    if dim not in (0, 1):
        raise ShardError(f"packed tensors are 2-D; cannot slice dim {dim}")
    k, d = p.shape
    size = (k, d)[dim]
    if not (0 <= start < stop <= size):
        raise ShardError(
            f"slice [{start}:{stop}) outside dimension of size {size}",
            start=start,
            stop=stop,
            size=size,
        )
    codes, gpc = _group_arrays(p)
    g = p.group_size
    # Asymmetric-integer images store one FP scale per *group* in
    # channel_scales; everything else stores one per channel.
    per_group_scales = p.zeros is not None
    sf = p.sf_codes.reshape(k, gpc)
    sv = None if p.sv_selectors is None else p.sv_selectors.reshape(k, gpc)
    zr = None if p.zeros is None else p.zeros.reshape(k, gpc)
    cs = (
        p.channel_scales.reshape(k, gpc)
        if per_group_scales
        else p.channel_scales.reshape(k)
    )
    codes = codes.reshape(k, gpc, g)

    if dim == 0:
        sel = slice(start, stop)
        return _rebuild(
            p,
            codes[sel],
            (stop - start, d),
            g,
            gpc,
            sf[sel],
            cs[sel],
            None if sv is None else sv[sel],
            None if zr is None else zr[sel],
        )

    width = stop - start
    if start % g == 0 and stop % g == 0:
        ga, gb = start // g, stop // g
        return _rebuild(
            p,
            codes[:, ga:gb],
            (k, width),
            g,
            gb - ga,
            sf[:, ga:gb],
            cs[:, ga:gb] if per_group_scales else cs,
            None if sv is None else sv[:, ga:gb],
            None if zr is None else zr[:, ga:gb],
        )
    if g % width == 0 and start % width == 0:
        # Subdivide every group into sub-groups of the slice width,
        # repeating its metadata — elementwise-identical dequant —
        # then take the now-aligned sub-group range.
        sub = g // width
        codes = codes.reshape(k, gpc * sub, width)
        sf = np.repeat(sf, sub, axis=1)
        sv = None if sv is None else np.repeat(sv, sub, axis=1)
        zr = None if zr is None else np.repeat(zr, sub, axis=1)
        ga, gb = start // width, stop // width
        return _rebuild(
            p,
            codes[:, ga:gb],
            (k, width),
            width,
            gb - ga,
            sf[:, ga:gb],
            np.repeat(cs, sub, axis=1)[:, ga:gb] if per_group_scales else cs,
            None if sv is None else sv[:, ga:gb],
            None if zr is None else zr[:, ga:gb],
        )
    raise ShardError(
        f"slice [{start}:{stop}) is not group-alignable "
        f"(group_size={g}): neither group-aligned nor an even "
        "subdivision of a group",
        start=start,
        stop=stop,
        group_size=g,
    )


def _slice_array(
    w: np.ndarray, spec: ShardSpec, rank: int, tp: int
) -> np.ndarray:
    if spec.kind == "replicate" or tp == 1:
        return w
    if w.ndim == 1:
        # 1-D tensors (norm gains) only ever replicate; a split spec
        # on one is a partitioning bug, not a slice.
        raise ShardError(f"cannot split a 1-D tensor with spec {spec.kind}")
    dim = 0 if spec.kind == "split_out" else 1
    a, b = spec.slice_bounds(w.shape[dim], rank, tp)
    return np.ascontiguousarray(w[a:b] if dim == 0 else w[:, a:b])


def shard_weights(
    weights: Dict[str, np.ndarray], cfg: ModelConfig, mesh: DeviceMesh
) -> List[List[Dict[str, np.ndarray]]]:
    """Per-device weight dicts, ``result[stage][tp_rank]``.

    Stage 0 carries the embedding, the last stage ``final_norm`` and
    ``lm_head``; each stage carries its contiguous layer range with
    the tensor-parallel slices of :func:`partition_specs`.  Weight
    names keep their global layer indices.
    """
    specs = partition_specs(cfg, mesh)
    ranges = mesh.layer_ranges(cfg.sim_layers)
    out: List[List[Dict[str, np.ndarray]]] = []
    for stage, (lo, hi) in enumerate(ranges):
        ranks: List[Dict[str, np.ndarray]] = []
        for rank in range(mesh.tp):
            shard: Dict[str, np.ndarray] = {}
            for name, w in weights.items():
                stage_names = _owning_stage(name, mesh, cfg)
                if stage not in stage_names:
                    continue
                if name.startswith("layers."):
                    layer = int(name.split(".")[1])
                    if not (lo <= layer < hi):
                        continue
                spec = specs.get(name)
                if spec is None:
                    raise ShardError(
                        f"no sharding spec for tensor {name!r}", tensor=name
                    )
                shard[name] = _slice_array(w, spec, rank, mesh.tp)
            ranks.append(shard)
        out.append(ranks)
    return out


def _owning_stage(name: str, mesh: DeviceMesh, cfg: ModelConfig) -> tuple:
    """Pipeline stages that hold tensor ``name``."""
    if name == "embed":
        return (0,)
    if name in ("final_norm", "lm_head"):
        return (mesh.pp - 1,)
    if name.startswith("layers."):
        layer = int(name.split(".")[1])
        return (mesh.stage_of(layer, cfg.sim_layers),)
    raise ShardError(f"no sharding spec for tensor {name!r}", tensor=name)


def shard_artifact(artifact, mesh: DeviceMesh) -> List:
    """Split a packed :class:`~repro.serve.artifact.ModelArtifact` into
    one sub-artifact per device, shard-header attached.

    Packed tensors are sliced at the bit-packed level
    (:func:`slice_packed`), raw FP tensors as arrays; each sub-artifact
    carries the full quant config / plan / KV metadata plus a
    ``shard_header`` naming the mesh, this shard's coordinates, and
    the :func:`~repro.shard.artifact.mesh_digest` of the whole set.
    Device order is stage-major: ``index = stage * tp + tp_rank``.
    """
    from repro.models.zoo import get_model_config
    from repro.serve.artifact import ModelArtifact
    from repro.shard.artifact import mesh_digest

    cfg = get_model_config(artifact.model_name)
    specs = partition_specs(cfg, mesh)
    ranges = mesh.layer_ranges(cfg.sim_layers)
    digest = mesh_digest(artifact, mesh)
    shards: List[ModelArtifact] = []
    for stage, (lo, hi) in enumerate(ranges):
        for rank in range(mesh.tp):
            packed = {}
            raw = {}
            for name, p in artifact.packed.items():
                if stage not in _owning_stage(name, mesh, cfg):
                    continue
                layer = int(name.split(".")[1]) if name.startswith("layers.") else None
                if layer is not None and not (lo <= layer < hi):
                    continue
                spec = specs[name]
                if spec.kind == "replicate" or mesh.tp == 1:
                    packed[name] = p
                else:
                    dim = 0 if spec.kind == "split_out" else 1
                    a, b = spec.slice_bounds(p.shape[dim], rank, mesh.tp)
                    packed[name] = slice_packed(p, dim, a, b)
            for name, w in artifact.raw_weights.items():
                if stage not in _owning_stage(name, mesh, cfg):
                    continue
                layer = int(name.split(".")[1]) if name.startswith("layers.") else None
                if layer is not None and not (lo <= layer < hi):
                    continue
                raw[name] = _slice_array(w, specs[name], rank, mesh.tp)
            shards.append(
                ModelArtifact(
                    model_name=artifact.model_name,
                    seed=artifact.seed,
                    quant_config=artifact.quant_config,
                    kv_quant=artifact.kv_quant,
                    packed=packed,
                    raw_weights=raw,
                    plan=artifact.plan,
                    shard_header={
                        "mesh": mesh.to_dict(),
                        "shard_index": stage * mesh.tp + rank,
                        "n_shards": mesh.n_devices,
                        "stage": stage,
                        "tp_rank": rank,
                        "layers": [lo, hi],
                        "mesh_digest": digest,
                    },
                )
            )
    return shards
