"""Structured sharding errors.

Sharding failures must surface at *construction/load* time with a
machine-readable shape, never as a mid-prefill broadcasting crash:
:class:`ShardError` mirrors the :class:`~repro.serve.errors.ServeError`
convention (a stable ``code`` plus ``to_dict()`` wire form) so a
front-end can branch on ``shard_incompatible`` vs
``shard_topology_mismatch`` without parsing prose.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["ShardError", "ShardTopologyError"]


class ShardError(ValueError):
    """A model/config cannot be sharded as requested (incompatible
    head counts, unsupported KV quantization, unaligned slices, ...)."""

    code = "shard_incompatible"

    def __init__(self, message: str, **details):
        super().__init__(message)
        self.details = details

    def to_dict(self) -> Dict:
        """The JSON error body a front-end would serialize."""
        out: Dict = {"error": self.code, "message": str(self)}
        out.update(self.details)
        return out


class ShardTopologyError(ShardError):
    """A shard *set* is unloadable: missing/duplicate shard indices, or
    shards whose mesh digests disagree (mixed artifacts or meshes)."""

    code = "shard_topology_mismatch"
