"""Sharded artifact sets on disk: per-shard blobs + topology header.

:func:`save_sharded_artifact` splits one packed
:class:`~repro.serve.artifact.ModelArtifact` over a
:class:`~repro.shard.mesh.DeviceMesh` and writes one ``.rpro``
container per device (the same binary format as single-device
artifacts — each shard is independently loadable and verifiable),
plus nothing else: the topology lives *inside* each container's
``shard`` header block, so a shard directory needs no side-car index.

Every shard of a set carries the same :func:`mesh_digest` — a content
address over the mesh shape and the source artifact's identity (model,
seed, quant policy, plan, tensor inventory).  :func:`load_sharded_artifact`
refuses, with a structured
:class:`~repro.shard.errors.ShardTopologyError`, any directory whose
shards disagree on that digest or whose index set is not exactly
``0..n-1`` — a shard set mixing two packs, or missing a device, fails
loudly at load time rather than serving a frankenstein model.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.pipeline.keys import stable_digest
from repro.serve.artifact import ModelArtifact, load_artifact, write_artifact
from repro.shard.errors import ShardTopologyError
from repro.shard.mesh import DeviceMesh
from repro.shard.partition import shard_artifact

__all__ = [
    "mesh_digest",
    "save_sharded_artifact",
    "load_sharded_artifact",
    "shard_paths",
]

#: ``shard-03-of-08.rpro``
_SHARD_NAME = "shard-{index:02d}-of-{n:02d}.rpro"
_SHARD_GLOB = "shard-*-of-*.rpro"


def mesh_digest(artifact: ModelArtifact, mesh: DeviceMesh) -> str:
    """Content address binding a shard set to its source + mesh.

    Covers the mesh shape (tp/pp/topology/reduce), the model identity,
    the quantization policy (global config, KV config, per-layer plan),
    and the tensor inventory with shapes — everything that determines
    whether two shards could have come from the same
    :func:`~repro.shard.partition.shard_artifact` call.  Blob *content*
    is already guarded per-file by the container's sha256.
    """
    return stable_digest(
        {
            "mesh": mesh.to_dict(),
            "model": artifact.model_name,
            "seed": artifact.seed,
            "quant": artifact.quant_config.cache_key(),
            "kv_quant": (
                None
                if artifact.kv_quant is None
                else {
                    "bits": artifact.kv_quant.bits,
                    "per_head": artifact.kv_quant.per_head,
                }
            ),
            "plan": None if artifact.plan is None else artifact.plan.cache_key(),
            "packed": sorted(
                (name, list(p.shape)) for name, p in artifact.packed.items()
            ),
            "raw": sorted(
                (name, list(w.shape)) for name, w in artifact.raw_weights.items()
            ),
        }
    )


def shard_paths(directory: Union[str, Path], n: int) -> List[Path]:
    """The canonical shard filenames of an ``n``-device set."""
    d = Path(directory)
    return [d / _SHARD_NAME.format(index=i, n=n) for i in range(n)]


def save_sharded_artifact(
    directory: Union[str, Path], artifact: ModelArtifact, mesh: DeviceMesh
) -> List[Path]:
    """Split ``artifact`` over ``mesh`` and write one container per
    device into ``directory``; returns the paths in shard-index order."""
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    shards = shard_artifact(artifact, mesh)
    paths = shard_paths(d, len(shards))
    for sub, path in zip(shards, paths):
        write_artifact(path, sub)
    return paths


def load_sharded_artifact(
    directory: Union[str, Path], verify: bool = True
) -> Tuple[List[ModelArtifact], DeviceMesh]:
    """Load and validate a complete shard set from ``directory``.

    Returns ``(shards, mesh)`` with shards sorted by shard index
    (stage-major).  Raises :class:`ShardTopologyError` when the
    directory holds no shards, a shard lacks its topology header, the
    mesh digests disagree, or the index set is incomplete/duplicated.
    """
    d = Path(directory)
    files = sorted(d.glob(_SHARD_GLOB))
    if not files:
        raise ShardTopologyError(
            f"no shard containers ({_SHARD_GLOB}) in {d}", directory=str(d)
        )
    loaded = []
    for path in files:
        art = load_artifact(path, verify=verify)
        if art.shard_header is None:
            raise ShardTopologyError(
                f"{path.name} is a single-device artifact, not a shard "
                "(no shard header)",
                path=str(path),
            )
        loaded.append((path, art))

    digests = {art.shard_header["mesh_digest"] for _, art in loaded}
    if len(digests) != 1:
        raise ShardTopologyError(
            f"shards in {d} come from different packs/meshes: "
            f"{len(digests)} distinct mesh digests",
            directory=str(d),
            digests=sorted(digests),
        )
    n = loaded[0][1].shard_header["n_shards"]
    indices = sorted(art.shard_header["shard_index"] for _, art in loaded)
    if indices != list(range(n)):
        missing = sorted(set(range(n)) - set(indices))
        dupes = sorted({i for i in indices if indices.count(i) > 1})
        raise ShardTopologyError(
            f"incomplete shard set in {d}: have indices {indices}, "
            f"need 0..{n - 1}",
            directory=str(d),
            expected=n,
            have=indices,
            missing=missing,
            duplicates=dupes,
        )
    loaded.sort(key=lambda pair: pair[1].shard_header["shard_index"])
    mesh = DeviceMesh.from_dict(loaded[0][1].shard_header["mesh"])
    return [art for _, art in loaded], mesh
