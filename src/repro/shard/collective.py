"""The explicit collective layer of the sharded engine.

Every cross-shard data movement of
:class:`~repro.shard.model.ShardedCausalLM` goes through one
:class:`Collective` — never an ad-hoc ``np.concatenate`` in the
forward pass — so the numerics are pinned in exactly one place:

* :meth:`all_gather` concatenates per-shard parts in rank order —
  exact by construction (no arithmetic);
* :meth:`all_reduce` sums partial results in **fixed rank order**
  (0, 1, ..., tp-1), left to right — deterministic across runs, and
  the accumulation-order spec that makes the ``"sum"`` reduce mode
  reproducible even though float addition is not associative;
* :meth:`send` moves a pipeline boundary activation (identity on the
  data, accounted on the wire).

Each op is metered: logical payload bytes (at FP16, the precision a
deployment would ship activations at), modeled per-topology wire
bytes and link seconds (formulas from :mod:`repro.hw.multichip`), and
``shard.collective.bytes`` / ``shard.collective.calls`` observability
counters, with a per-op span when tracing is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro import obs
from repro.hw.multichip import LinkSpec, collective_seconds, wire_bytes_per_device
from repro.obs.trace import NOOP_SPAN, TRACER
from repro.shard.mesh import DeviceMesh

__all__ = ["Collective", "OpStats"]

_FP16_BYTES = 2


@dataclass
class OpStats:
    """Accumulated accounting of one collective op kind."""

    calls: int = 0
    payload_bytes: int = 0
    wire_bytes: float = 0.0
    modeled_seconds: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "calls": self.calls,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "modeled_seconds": self.modeled_seconds,
        }


class Collective:
    """Collectives over the ``tp`` axis of one :class:`DeviceMesh`."""

    def __init__(self, mesh: DeviceMesh, link: LinkSpec = LinkSpec()):
        self.mesh = mesh
        self.link = link
        self.stats: Dict[str, OpStats] = {
            "all_gather": OpStats(),
            "all_reduce": OpStats(),
            "send": OpStats(),
        }

    # ------------------------------------------------------------------
    def _account(self, op: str, payload_elems: int, n: int) -> None:
        payload = payload_elems * _FP16_BYTES
        s = self.stats[op]
        s.calls += 1
        s.payload_bytes += payload
        wire = n * wire_bytes_per_device(op, payload, n, self.mesh.topology)
        if op == "send":
            wire = float(payload)
        s.wire_bytes += wire
        s.modeled_seconds += collective_seconds(
            op, payload, n, self.link, self.mesh.topology
        )
        obs.counter("shard.collective.bytes", op=op).inc(int(wire))
        obs.counter("shard.collective.calls", op=op).inc()

    # ------------------------------------------------------------------
    def all_gather(
        self, parts: Sequence[np.ndarray], axis: int = -1, stage: int = 0
    ) -> np.ndarray:
        """Concatenate per-rank ``parts`` in rank order along ``axis``."""
        if len(parts) != self.mesh.tp:
            raise ValueError(
                f"all_gather expects {self.mesh.tp} parts, got {len(parts)}"
            )
        if self.mesh.tp == 1:
            return parts[0]
        with (
            TRACER.span("shard.all_gather", stage=stage, tp=self.mesh.tp)
            if TRACER.enabled
            else NOOP_SPAN
        ):
            out = np.concatenate(parts, axis=axis)
        self._account("all_gather", out.size, self.mesh.tp)
        return out

    def all_reduce(
        self, parts: Sequence[np.ndarray], stage: int = 0
    ) -> np.ndarray:
        """Sum per-rank partial results in fixed rank order."""
        if len(parts) != self.mesh.tp:
            raise ValueError(
                f"all_reduce expects {self.mesh.tp} parts, got {len(parts)}"
            )
        if self.mesh.tp == 1:
            return parts[0]
        with (
            TRACER.span("shard.all_reduce", stage=stage, tp=self.mesh.tp)
            if TRACER.enabled
            else NOOP_SPAN
        ):
            out = parts[0].copy()
            for p in parts[1:]:  # rank order: the accumulation spec
                out += p
        self._account("all_reduce", out.size, self.mesh.tp)
        return out

    def send(self, x: np.ndarray, src_stage: int, dst_stage: int) -> np.ndarray:
        """Move a pipeline boundary activation between stages."""
        with (
            TRACER.span("shard.send", src=src_stage, dst=dst_stage)
            if TRACER.enabled
            else NOOP_SPAN
        ):
            self._account("send", x.size, 1)
        return x

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Accounting snapshot: per-op stats plus totals."""
        per_op = {op: s.to_dict() for op, s in self.stats.items()}
        return {
            "topology": self.mesh.topology,
            "tp": self.mesh.tp,
            "pp": self.mesh.pp,
            "link_gbps": self.link.gbps,
            "link_latency_us": self.link.latency_us,
            "ops": per_op,
            "total_wire_bytes": sum(s.wire_bytes for s in self.stats.values()),
            "total_modeled_seconds": sum(
                s.modeled_seconds for s in self.stats.values()
            ),
        }

    def reset(self) -> None:
        for op in self.stats:
            self.stats[op] = OpStats()
