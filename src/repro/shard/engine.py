"""The sharded inference engine.

:class:`ShardedEngine` is an :class:`~repro.serve.engine.InferenceEngine`
whose model is a :class:`~repro.shard.model.ShardedCausalLM` — the
whole sequence surface (``start_sequence`` / ``prefill`` / ``decode``
/ ``generate``, greedy and tempered sampling) is inherited unchanged,
so a :class:`~repro.serve.batching.ContinuousBatcher` or
:class:`~repro.serve.server.ServeServer` drives it exactly like a
single-device engine.  Under the default ``reduce="gather"`` mesh the
token stream *and* every logit row are byte-identical to the
single-device engine built from the same artifact.

Two constructors:

* :meth:`from_artifact` — shard a full in-memory artifact (dequantize
  once, slice the float weights);
* :meth:`from_shard_set` — assemble from per-device sub-artifacts
  (e.g. ``load_sharded_artifact``), each shard dequantizing only its
  own sliced packed image.  Both paths produce bit-identical weights
  (see :mod:`repro.shard.partition`).

The prompt-prefix cache is **disabled** on sharded engines:
:class:`~repro.serve.prefix.PrefixKVCache` snapshots are whole-model
:class:`~repro.models.transformer.KVCache` objects, while a sharded
sequence keeps one cache per (stage, rank) — adopting a snapshot
would need a head-sliced re-partition of quantized KV blocks, which
does not round-trip exactly.  The gate is explicit and tested rather
than silently dropping to a cold prefill.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.models.zoo import get_model_config
from repro.quant.kv import KVQuantConfig
from repro.serve.artifact import ModelArtifact
from repro.serve.engine import InferenceEngine
from repro.shard.collective import Collective
from repro.shard.errors import ShardError, ShardTopologyError
from repro.shard.mesh import DeviceMesh
from repro.shard.model import ShardedCausalLM, check_kv_quant
from repro.shard.partition import shard_weights

try:  # LinkSpec lives with the interconnect model
    from repro.hw.multichip import LinkSpec
except ImportError:  # pragma: no cover
    LinkSpec = None  # type: ignore

__all__ = ["ShardedEngine", "PREFIX_CACHE_UNSUPPORTED"]

#: Why ``prefix_cache`` is rejected — asserted verbatim by the tests.
PREFIX_CACHE_UNSUPPORTED = (
    "prefix KV reuse is not supported on sharded engines: cached "
    "snapshots are whole-model KV caches and cannot be re-partitioned "
    "exactly onto per-shard head slices"
)


class ShardedEngine(InferenceEngine):
    """Prefill/decode executor over a tensor/pipeline-parallel model."""

    def __init__(
        self,
        model: ShardedCausalLM,
        kv_quant: Optional[KVQuantConfig] = None,
        seed: int = 0,
        artifact: Optional[ModelArtifact] = None,
        prefix_cache=None,
    ):
        check_kv_quant(kv_quant)
        if prefix_cache is not None:
            raise ShardError(PREFIX_CACHE_UNSUPPORTED, prefix_cache=True)
        super().__init__(
            model, kv_quant=kv_quant, seed=seed, artifact=artifact,
            prefix_cache=None,
        )

    # ------------------------------------------------------------------
    @property
    def mesh(self) -> DeviceMesh:
        return self.model.mesh

    @property
    def collective(self) -> Collective:
        return self.model.collective

    def collective_stats(self) -> Dict:
        """Interconnect accounting since construction (or last reset)."""
        return self.collective.snapshot()

    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls,
        artifact: ModelArtifact,
        mesh: DeviceMesh,
        seed: int = 0,
        link=None,
        prefix_cache=None,
    ) -> "ShardedEngine":
        """Dequantize ``artifact`` once and slice the float weights.

        The resulting per-shard weights are bit-identical to
        dequantizing per-shard sliced packed images
        (:meth:`from_shard_set`) — slicing and elementwise dequant
        commute.
        """
        check_kv_quant(artifact.kv_quant)
        cfg = get_model_config(artifact.model_name)
        full = artifact.instantiate()
        grid = shard_weights(full.weights, cfg, mesh)
        collective = cls._collective(mesh, link)
        model = ShardedCausalLM(
            cfg, mesh, grid, collective=collective, seed=artifact.seed
        )
        return cls(
            model,
            kv_quant=artifact.kv_quant,
            seed=seed,
            artifact=artifact,
            prefix_cache=prefix_cache,
        )

    @classmethod
    def from_shard_set(
        cls,
        shards: Sequence[ModelArtifact],
        seed: int = 0,
        link=None,
    ) -> "ShardedEngine":
        """Assemble an engine from a validated per-device shard set.

        ``shards`` must be a complete set in shard-index order with
        matching mesh digests (the shape ``load_sharded_artifact``
        returns); each shard's packed tensors dequantize through its
        own per-tensor config.
        """
        if not shards:
            raise ShardTopologyError("empty shard set")
        headers = [s.shard_header for s in shards]
        if any(h is None for h in headers):
            raise ShardTopologyError(
                "shard set contains a single-device artifact (no shard header)"
            )
        digests = {h["mesh_digest"] for h in headers}
        if len(digests) != 1:
            raise ShardTopologyError(
                f"shard set mixes {len(digests)} mesh digests",
                digests=sorted(digests),
            )
        indices = [h["shard_index"] for h in headers]
        if indices != list(range(headers[0]["n_shards"])):
            raise ShardTopologyError(
                f"shard set out of order or incomplete: indices {indices}",
                have=indices,
                expected=headers[0]["n_shards"],
            )
        mesh = DeviceMesh.from_dict(headers[0]["mesh"])
        first = shards[0]
        check_kv_quant(first.kv_quant)
        cfg = get_model_config(first.model_name)
        grid: List[List[Dict[str, np.ndarray]]] = [
            [None] * mesh.tp for _ in range(mesh.pp)
        ]
        for art in shards:
            h = art.shard_header
            weights = {k: v.copy() for k, v in art.raw_weights.items()}
            for name, p in art.packed.items():
                from repro.quant.packing import unpack_tensor

                weights[name] = unpack_tensor(p, art.tensor_config(name))
            grid[h["stage"]][h["tp_rank"]] = weights
        collective = cls._collective(mesh, link)
        model = ShardedCausalLM(
            cfg, mesh, grid, collective=collective, seed=first.seed
        )
        return cls(model, kv_quant=first.kv_quant, seed=seed, artifact=None)

    @staticmethod
    def _collective(mesh: DeviceMesh, link) -> Collective:
        if link is None:
            return Collective(mesh)
        return Collective(mesh, link=link)
