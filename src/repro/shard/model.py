"""Tensor/pipeline-parallel causal LM over a device mesh.

:class:`ShardedCausalLM` runs the same math as
:class:`~repro.models.transformer.CausalLM` with every weight split
per :func:`~repro.shard.mesh.partition_specs` — an SPMD program
unrolled in-process: one weight dict per (stage, tp-rank), explicit
per-rank compute, and every cross-rank movement through the
:class:`~repro.shard.collective.Collective` layer.

Why the default mode is byte-exact — the accumulation-order spec:
column-parallel projections are *evaluated jointly*: the per-rank
weight row-blocks are concatenated back (bit-identical to the full
weight, since the partitioner slices contiguous rows) and pushed
through ONE GEMM whose shape equals the single-device one, then split
into per-rank column blocks.  This matters because BLAS picks its
blocking — and therefore its K-accumulation order — from the matrix
shape: a per-rank GEMM of width ``N/tp`` can round differently than
the width-``N`` original (empirically it does below width 128), while
the fused evaluation is the *same* GEMM as single-device, so its
output slices are byte-exact by construction.  Per-rank attention
stays genuinely per-rank: head-batched matmuls keep every per-head
GEMM shape unchanged, so slicing the head axis never changes an
accumulation order.  Under ``reduce="gather"`` row-parallel
projections all-gather their exact input columns and contract over
the full K the same way — logits match byte for byte.  Under
``reduce="sum"`` the row-parallel weights are K-sliced per rank and
partial sums are all-reduced in fixed rank order: deterministic,
token-stream identical, logits within a few ULP.

Per-shard KV caches hold each rank's local heads.  KV-cache
quantization composes only when it is per-head (head slicing then
commutes with the scale computation); ``per_head=False`` computes a
global min/max over all heads and is rejected with a structured
:class:`~repro.shard.errors.ShardError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.models.config import ModelConfig
from repro.models.layers import (
    apply_rope,
    causal_attention,
    gelu,
    layer_norm,
    linear,
    rms_norm,
    rope_cache,
    silu,
)
from repro.models.transformer import KVCache, _LN_FAMILIES
from repro.quant.kv import KVQuantConfig
from repro.shard.collective import Collective
from repro.shard.errors import ShardError
from repro.shard.mesh import DeviceMesh

__all__ = ["ShardedCausalLM", "ShardedKVCache", "check_kv_quant"]


def check_kv_quant(kv_quant: Optional[KVQuantConfig]) -> None:
    """Reject KV quantization that cannot shard exactly.

    Per-head scales commute with head partitioning (each head's
    min/max sees the same values on its owning shard as on a single
    device); a per-tensor scale couples all heads and would make the
    sharded cache diverge from the single-device one.
    """
    if kv_quant is not None and not kv_quant.per_head:
        raise ShardError(
            "per-tensor KV quantization (per_head=False) does not commute "
            "with head-partitioned attention; use per_head=True or no "
            "KV quantization",
            kv_per_head=False,
        )


class ShardedKVCache:
    """A grid of per-device :class:`KVCache` objects.

    ``caches[stage][rank]`` holds the local layers x local KV heads of
    that device.  Layer indices inside each stage cache are local
    (0-based within the stage's range).
    """

    def __init__(
        self,
        mesh: DeviceMesh,
        layer_counts: List[int],
        quant: Optional[KVQuantConfig] = None,
    ):
        check_kv_quant(quant)
        self.mesh = mesh
        self.quant = quant
        self.caches: List[List[KVCache]] = [
            [KVCache(n, quant=quant) for _ in range(mesh.tp)]
            for n in layer_counts
        ]

    @property
    def seq_len(self) -> int:
        return self.caches[0][0].seq_len

    @property
    def memory_bytes(self) -> int:
        return sum(c.memory_bytes for row in self.caches for c in row)


class ShardedCausalLM:
    """The sharded twin of :class:`~repro.models.transformer.CausalLM`."""

    def __init__(
        self,
        config: ModelConfig,
        mesh: DeviceMesh,
        shards: List[List[Dict[str, np.ndarray]]],
        collective: Optional[Collective] = None,
        seed: int = 0,
    ):
        mesh.validate_model(config)
        if len(shards) != mesh.pp or any(len(row) != mesh.tp for row in shards):
            raise ShardError(
                f"weight grid is {len(shards)}x"
                f"{len(shards[0]) if shards else 0}, mesh is "
                f"{mesh.pp}x{mesh.tp} (stages x ranks)",
                pp=mesh.pp,
                tp=mesh.tp,
            )
        self.config = config
        self.mesh = mesh
        self.shards = shards
        self.collective = collective if collective is not None else Collective(mesh)
        self.seed = seed
        self._use_layernorm = config.family in _LN_FAMILIES
        self._use_rope = config.family != "opt"
        self._rope = None
        self._ranges = mesh.layer_ranges(config.sim_layers)
        #: Concatenated per-rank weight blocks, keyed (stage, name) —
        #: the operand of the fused (shape-preserving) rank GEMMs.
        self._fused: Dict[Tuple[int, str], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _w(self, stage: int, rank: int, name: str) -> np.ndarray:
        try:
            return self.shards[stage][rank][name]
        except KeyError:
            raise ShardError(
                f"stage {stage} rank {rank} is missing tensor {name!r}",
                stage=stage,
                rank=rank,
                tensor=name,
            ) from None

    def _fused_w(self, stage: int, name: str) -> np.ndarray:
        """The per-rank row-blocks of ``name`` concatenated in rank
        order — bit-identical to the unsharded weight, so the fused
        GEMM runs at the single-device shape (see module docstring)."""
        key = (stage, name)
        w = self._fused.get(key)
        if w is None:
            if self.mesh.tp == 1:
                w = self._w(stage, 0, name)
            else:
                w = np.concatenate(
                    [self._w(stage, r, name) for r in range(self.mesh.tp)],
                    axis=0,
                )
            self._fused[key] = w
        return w

    def _norm(self, x: np.ndarray, gain: np.ndarray) -> np.ndarray:
        if self._use_layernorm:
            return layer_norm(x, gain)
        return rms_norm(x, gain)

    def _positions(self, seq: int, hidden: int) -> np.ndarray:
        # Identical to CausalLM._positions — the OPT sinusoidal stand-in.
        pos = np.arange(seq)[:, None]
        dim = np.arange(hidden // 2)[None, :]
        angle = pos / 10000 ** (2 * dim / hidden)
        out = np.zeros((seq, hidden))
        out[:, 0::2] = np.sin(angle)
        out[:, 1::2] = np.cos(angle)
        return 0.02 * out

    def fresh_cache(self, kv_quant: Optional[KVQuantConfig] = None) -> ShardedKVCache:
        return ShardedKVCache(
            self.mesh, [hi - lo for lo, hi in self._ranges], quant=kv_quant
        )

    # ------------------------------------------------------------------
    def _attention(
        self,
        stage: int,
        local_layer: int,
        xn: np.ndarray,
        prefix: str,
        cos,
        sin,
        past: int,
        cache: Optional[ShardedKVCache],
        batch: int,
        seq: int,
    ) -> np.ndarray:
        cfg, mesh = self.config, self.mesh
        tp = mesh.tp
        heads, kv_heads = cfg.sim_heads // tp, cfg.sim_kv_heads // tp
        hd = cfg.sim_head_dim()
        # Fused QKV projections (single-device GEMM shapes), split into
        # per-rank head blocks; column-parallel, so no collective.
        qs = np.split(linear(xn, self._fused_w(stage, prefix + "q_proj")), tp, axis=-1)
        ks = np.split(linear(xn, self._fused_w(stage, prefix + "k_proj")), tp, axis=-1)
        vs = np.split(linear(xn, self._fused_w(stage, prefix + "v_proj")), tp, axis=-1)
        parts: List[np.ndarray] = []
        for rank in range(tp):
            q, k, v = qs[rank], ks[rank], vs[rank]
            q = q.reshape(batch, seq, heads, hd).transpose(0, 2, 1, 3)
            k = k.reshape(batch, seq, kv_heads, hd).transpose(0, 2, 1, 3)
            v = v.reshape(batch, seq, kv_heads, hd).transpose(0, 2, 1, 3)
            if self._use_rope:
                q = apply_rope(q, cos, sin)
                k = apply_rope(k, cos, sin)
            if cache is not None:
                k, v = cache.caches[stage][rank].append(local_layer, k, v)
            if kv_heads != heads:
                rep = heads // kv_heads
                k = np.repeat(k, rep, axis=1)
                v = np.repeat(v, rep, axis=1)
            attn = causal_attention(q, k, v, past_len=past)
            parts.append(attn.transpose(0, 2, 1, 3).reshape(batch, seq, -1))
        return self._row_parallel(stage, prefix + "o_proj", parts)

    def _row_parallel(
        self, stage: int, name: str, parts: List[np.ndarray]
    ) -> np.ndarray:
        """Project per-rank column blocks through a row-parallel weight."""
        mesh, coll = self.mesh, self.collective
        if mesh.tp == 1:
            return linear(parts[0], self._w(stage, 0, name))
        if mesh.reduce == "gather":
            full = coll.all_gather(parts, axis=-1, stage=stage)
            out = linear(full, self._fused_w(stage, name))
            return coll.all_gather(
                list(np.split(out, mesh.tp, axis=-1)), axis=-1, stage=stage
            )
        outs = [
            linear(parts[r], self._w(stage, r, name)) for r in range(mesh.tp)
        ]
        return coll.all_reduce(outs, stage=stage)

    def _mlp(self, stage: int, xn: np.ndarray, prefix: str) -> np.ndarray:
        cfg, tp = self.config, self.mesh.tp
        if cfg.gated_mlp:
            gate = silu(linear(xn, self._fused_w(stage, prefix + "gate_proj")))
            up = linear(xn, self._fused_w(stage, prefix + "up_proj"))
            # Elementwise, so the per-rank column blocks of the fused
            # product equal each rank's locally computed activation.
            parts = list(np.split(gate * up, tp, axis=-1))
            return self._row_parallel(stage, prefix + "down_proj", parts)
        inner = gelu(linear(xn, self._fused_w(stage, prefix + "fc1")))
        parts = list(np.split(inner, tp, axis=-1))
        return self._row_parallel(stage, prefix + "fc2", parts)

    # ------------------------------------------------------------------
    def hidden_states(
        self, tokens: np.ndarray, cache: Optional[ShardedKVCache] = None
    ) -> np.ndarray:
        cfg, mesh = self.config, self.mesh
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        batch, seq = tokens.shape
        h = cfg.sim_hidden
        head_dim = cfg.sim_head_dim()
        past = cache.seq_len if cache is not None else 0
        total = past + seq

        x = self._w(0, 0, "embed")[tokens] * np.sqrt(h)
        if not self._use_rope:
            x = x + self._positions(total, h)[None, past:]

        cos = sin = None
        if self._use_rope:
            if self._rope is None or self._rope[0].shape[0] < total:
                grown = (
                    total
                    if self._rope is None
                    else max(total, 2 * self._rope[0].shape[0])
                )
                self._rope = rope_cache(grown, head_dim)
            cos, sin = self._rope[0][past:total], self._rope[1][past:total]

        for stage, (lo, hi) in enumerate(self._ranges):
            if stage > 0:
                x = self.collective.send(x, src_stage=stage - 1, dst_stage=stage)
            for layer in range(lo, hi):
                prefix = f"layers.{layer}."
                xn = self._norm(x, self._w(stage, 0, prefix + "attn_norm"))
                x = x + self._attention(
                    stage, layer - lo, xn, prefix, cos, sin, past, cache,
                    batch, seq,
                )
                xn = self._norm(x, self._w(stage, 0, prefix + "mlp_norm"))
                x = x + self._mlp(stage, xn, prefix)

        last = mesh.pp - 1
        return self._norm(x, self._w(last, 0, "final_norm"))

    def logits(
        self, tokens: np.ndarray, cache: Optional[ShardedKVCache] = None
    ) -> np.ndarray:
        """Vocabulary logits ``(batch, seq, vocab)`` — vocab-parallel
        LM head, logits all-gathered across ranks."""
        x = self.hidden_states(tokens, cache=cache)
        mesh = self.mesh
        last = mesh.pp - 1
        if mesh.tp == 1:
            return linear(x, self._w(last, 0, "lm_head"))
        out = linear(x, self._fused_w(last, "lm_head"))
        return self.collective.all_gather(
            list(np.split(out, mesh.tp, axis=-1)), axis=-1, stage=last
        )

    # ------------------------------------------------------------------
    # Stateful serving path (mirrors CausalLM).
    # ------------------------------------------------------------------
    def prefill(
        self,
        tokens: np.ndarray,
        kv_quant: Optional[KVQuantConfig] = None,
    ) -> Tuple[np.ndarray, ShardedKVCache]:
        cache = self.fresh_cache(kv_quant)
        return self.logits(tokens, cache=cache), cache

    def decode_step(
        self, tokens: np.ndarray, cache: ShardedKVCache
    ) -> np.ndarray:
        tokens = np.asarray(tokens)
        if tokens.ndim == 0:
            tokens = tokens[None]
        if tokens.ndim == 1:
            tokens = tokens[:, None]
        if tokens.shape[1] != 1:
            raise ValueError(
                "decode_step consumes exactly one new token per sequence"
            )
        return self.logits(tokens, cache=cache)[:, -1]
