"""BitMoD reproduction: bit-serial mixture-of-datatype LLM acceleration.

This package is a from-scratch reproduction of the HPCA 2025 paper
"BitMoD: Bit-serial Mixture-of-Datatype LLM Acceleration".

Subpackages
-----------
``repro.dtypes``
    The numerical datatype zoo: integer, floating-point, the BitMoD
    extended FP3/FP4 families, and the baseline datatypes of ANT
    (Flint), OliVe (outlier-victim), and Microscaling (MX).
``repro.quant``
    The quantization engine: granularity handling, linear and
    non-linear quantizers, the fine-grained datatype adaptation of
    Algorithm 1 and second-level scaling-factor quantization.
``repro.models``
    A numpy transformer substrate standing in for the HuggingFace
    models used by the paper.
``repro.eval``
    Perplexity / accuracy / memory-footprint evaluation harnesses.
``repro.methods``
    Software-only PTQ methods (RTN, AWQ, GPTQ, OmniQuant, SmoothQuant,
    QuaRot) re-implemented so BitMoD datatypes can be dropped in.
``repro.hw``
    The BitMoD accelerator model: unified bit-serial representation,
    bit-accurate processing element, cycle-level simulator, and
    area/power/energy models, plus the baseline accelerators.
``repro.experiments``
    One module per paper table/figure.
``repro.serve``
    The deployment path: on-disk packed-model artifacts, an
    incremental-decode inference engine, continuous batching, an
    asyncio serving front-end, and the bridge replaying served
    traffic through the accelerator model.
``repro.pipeline``
    The shared evaluation substrate: content-addressed cache keys and
    store, per-process context memos, and the parallel cell engine.
``repro.dse``
    Design-space exploration: declarative accelerator spaces with
    iso-area normalization, cached sweeps joining the hardware model
    with pipeline accuracy cells, and Pareto-frontier reporting.
``repro.obs``
    Observability: a span tracer with JSONL/Perfetto chrome-trace
    export and cross-process merging, a metrics registry (counters,
    gauges, histograms; JSON snapshots and Prometheus exposition),
    and structured logging — disabled by default, near-zero cost.
"""

from repro.dtypes import DataType, get_dtype, list_dtypes
from repro.quant import QuantConfig, QuantResult, quantize_tensor

__version__ = "1.0.0"

__all__ = [
    "DataType",
    "get_dtype",
    "list_dtypes",
    "QuantConfig",
    "QuantResult",
    "quantize_tensor",
    "__version__",
]
