"""The Flint datatype of ANT (MICRO 2022), used as a baseline.

Flint is a hybrid float/int format: the position of the leading one in
the magnitude field selects between an integer-like dense region near
zero and a float-like wide-dynamic-range region for large values.  We
reproduce its defining property — *wider dynamic range* than FP/INT of
the same width, with sparse large values and dense small ones — with a
budgeted construction:

* the magnitude set always contains powers of two up to ``2**bits``
  (one octave more dynamic range than the same-width float), and
* remaining encodings are spent on mantissa refinements of the lowest
  octaves first.

Resulting grids (code space):

* ``flint4``: 0, +-1, +-1.5, +-2, +-3, +-4, +-6, +-8
* ``flint3``: 0, +-1, +-2, +-8

Flint helps per-channel quantization (wide range covers in-channel
outliers) and hurts per-group quantization — the paper's Table I
observation that Flint never wins at per-group granularity.

ANT selects the datatype *adaptively* among {int, float, flint, pot}.
The BitMoD paper extends ANT to per-group granularity for its Table VI
comparison; :class:`AntAdaptiveType` mirrors that: each group picks,
by MSE, among the symmetric candidate grids the ANT decoder supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dtypes.base import DataType, GridDataType
from repro.dtypes.floating import float_grid
from repro.dtypes.integer import int_symmetric_levels

__all__ = ["flint_values", "make_flint_type", "AntAdaptiveType"]


def flint_values(bits: int) -> np.ndarray:
    """Value set of a ``bits``-wide Flint number (sign-magnitude).

    The budget is ``2**(bits-1) - 1`` non-zero magnitudes.  Powers of
    two ``2**0 .. 2**bits`` come first (keeping the lowest exponents
    and the top one if the budget is tight); leftover encodings add
    mantissa refinements, shallowest depth and smallest exponent first.
    """
    if bits < 3:
        raise ValueError("flint needs at least 3 bits")
    budget = 2 ** (bits - 1) - 1
    # One extra octave of dynamic range relative to the same-width
    # float; at 3 bits the format is all range (its per-group downfall).
    emax = bits if bits == 3 else bits - 1
    powers = [2.0**e for e in range(emax + 1)]
    if len(powers) > budget:
        # Keep the dense low end plus the top exponent: flint's whole
        # point is dynamic range.
        mags = powers[: budget - 1] + [powers[-1]]
    else:
        mags = list(powers)
        refinements = []
        for depth in (1, 2, 3):
            for e in range(emax):
                for k in range(1, 2**depth, 2):
                    value = 2.0**e * (1.0 + k / 2.0**depth)
                    refinements.append((depth, e, value))
        for _depth, _e, value in sorted(refinements):
            if len(mags) >= budget:
                break
            if value not in mags:
                mags.append(value)
    values = [0.0]
    for mag in mags:
        values.extend([mag, -mag])
    return np.unique(np.asarray(values, dtype=np.float64))


def make_flint_type(bits: int) -> GridDataType:
    """A :class:`GridDataType` for the ``bits``-wide Flint format."""
    return GridDataType(
        name=f"flint{bits}",
        bits=bits,
        values=flint_values(bits),
        description=f"ANT flint, {bits} bits",
    )


@dataclass
class AntAdaptiveType(DataType):
    """ANT's adaptive datatype selection, extended to per-group.

    Every group is quantized with each candidate grid (flint and, from
    4 bits up, float and PoT) and keeps the lowest-MSE result,
    mirroring how the BitMoD paper extends ANT for its Table VI
    comparison.  All candidates are symmetric — ANT has no zero-point —
    which is exactly why it loses to asymmetric integer at per-group
    granularity.
    """

    bits: int = 4
    name: str = ""
    nonlinear: bool = True
    candidates: list = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"ant{self.bits}"
        cands = [make_flint_type(self.bits)]
        if self.bits >= 4:
            cands.append(
                GridDataType(
                    name=f"fp{self.bits}_ant",
                    bits=self.bits,
                    values=float_grid(2, self.bits - 3, bias=1),
                )
            )
            # Power-of-two (PoT) grid.
            pot = [0.0]
            for e in range(2 ** (self.bits - 1) - 1):
                pot.extend([2.0**e, -(2.0**e)])
            cands.append(
                GridDataType(name=f"pot{self.bits}", bits=self.bits, values=pot)
            )
        if self.bits >= 5:
            cands.append(
                GridDataType(
                    name=f"int{self.bits}_ant",
                    bits=self.bits,
                    values=int_symmetric_levels(self.bits),
                )
            )
        self.candidates = cands

    def memory_bits_per_weight(self, group_size: int) -> float:
        selector = float(np.ceil(np.log2(len(self.candidates))))
        return self.bits + (8.0 + selector) / group_size
