"""Floating-point datatypes and FP16 bit-level helpers.

Low-precision floats are represented as explicit level grids (they are
non-linear datatypes).  :func:`float_grid` generates the value set of a
generic ``FPb-EeMm`` format with IEEE-style subnormals and *no*
inf/NaN encodings — the convention used by quantization work, where
every encoding is spent on a finite value.

The FP16 helpers at the bottom decompose IEEE half-precision numbers
into (sign, exponent, mantissa-with-hidden-bit) triples; the
bit-accurate PE model in :mod:`repro.hw.pe` consumes these.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import GridDataType

__all__ = [
    "float_grid",
    "make_float_type",
    "FP3_VALUES",
    "FP4_VALUES",
    "FP6_E2M3_VALUES",
    "FP6_E3M2_VALUES",
    "fp16_decompose",
    "fp16_compose",
    "FP16_MANTISSA_BITS",
]


def float_grid(exp_bits: int, man_bits: int, bias: int | None = None) -> np.ndarray:
    """All values of a sign/exponent/mantissa minifloat format.

    Parameters
    ----------
    exp_bits, man_bits:
        Field widths.  Total storage is ``1 + exp_bits + man_bits``.
    bias:
        Exponent bias.  Defaults to ``2**(exp_bits-1) - 1`` except for
        the tiny formats used in the paper (FP3/FP4/FP6-E2M3) which
        conventionally use bias 1 so that their value sets match the
        paper's Table IV.

    The exponent field value 0 denotes subnormals ``m / 2**man_bits *
    2**(1-bias)``; all other exponent values are normal numbers.  No
    encodings are reserved for inf/NaN.
    """
    if exp_bits < 1 or man_bits < 0:
        raise ValueError("need exp_bits >= 1 and man_bits >= 0")
    if bias is None:
        bias = max(2 ** (exp_bits - 1) - 1, 1)
    values = [0.0]
    for e in range(2**exp_bits):
        for m in range(2**man_bits):
            if e == 0:
                mag = (m / 2**man_bits) * 2.0 ** (1 - bias)
            else:
                mag = (1.0 + m / 2**man_bits) * 2.0 ** (e - bias)
            if mag > 0.0:
                values.extend([mag, -mag])
    return np.unique(np.asarray(values, dtype=np.float64))


#: Basic FP3 (1 sign, 2 exponent, 0 mantissa, bias 1): {0, +-1, +-2, +-4}.
FP3_VALUES = float_grid(2, 0, bias=1)

#: Basic FP4 (E2M1, bias 1): {0, +-0.5, +-1, +-1.5, +-2, +-3, +-4, +-6}.
FP4_VALUES = float_grid(2, 1, bias=1)

#: FP6 with 2 exponent / 3 mantissa bits (bias 1).
FP6_E2M3_VALUES = float_grid(2, 3, bias=1)

#: FP6 with 3 exponent / 2 mantissa bits (default bias 3).
FP6_E3M2_VALUES = float_grid(3, 2)


def make_float_type(name: str, exp_bits: int, man_bits: int, bias: int | None = None) -> GridDataType:
    """Construct a :class:`GridDataType` for a minifloat format."""
    bits = 1 + exp_bits + man_bits
    return GridDataType(
        name=name,
        bits=bits,
        values=float_grid(exp_bits, man_bits, bias=bias),
        description=f"FP{bits}-E{exp_bits}M{man_bits}",
    )


# ----------------------------------------------------------------------
# FP16 bit-level helpers (used by the hardware PE model).
# ----------------------------------------------------------------------

#: Explicit mantissa bits of IEEE FP16.
FP16_MANTISSA_BITS = 10


def fp16_decompose(x: np.ndarray):
    """Decompose FP16 values into (sign, exponent, mantissa) fields.

    Returns integer arrays ``(sign, exp, man)`` where the value is
    ``(-1)**sign * man * 2**(exp - 15 - 10)`` and ``man`` includes the
    hidden bit (11 bits for normal numbers).  Subnormals are returned
    with ``exp == 1`` and no hidden bit, matching IEEE semantics.
    """
    h = np.asarray(x, dtype=np.float16)
    bits = h.view(np.uint16).astype(np.int64)
    sign = (bits >> 15) & 0x1
    exp_field = (bits >> 10) & 0x1F
    frac = bits & 0x3FF
    is_normal = exp_field > 0
    man = np.where(is_normal, frac + (1 << FP16_MANTISSA_BITS), frac)
    exp = np.where(is_normal, exp_field, 1)
    return sign, exp, man


def fp16_compose(sign: np.ndarray, exp: np.ndarray, man: np.ndarray) -> np.ndarray:
    """Inverse of :func:`fp16_decompose` (via arithmetic, not bit packing)."""
    sign = np.asarray(sign, dtype=np.float64)
    exp = np.asarray(exp, dtype=np.float64)
    man = np.asarray(man, dtype=np.float64)
    return ((-1.0) ** sign) * man * 2.0 ** (exp - 15 - FP16_MANTISSA_BITS)
