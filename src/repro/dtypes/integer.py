"""Integer datatypes: symmetric and asymmetric, arbitrary bit width.

Symmetric integer quantization (paper Eq. 1)::

    delta = absmax(W) / (2**(b-1) - 1)
    Wq    = round(W / delta)            in [-(2**(b-1)-1), 2**(b-1)-1]
    Wdq   = Wq * delta

Asymmetric integer quantization (paper Eq. 2)::

    delta = (max(W) - min(W)) / (2**b - 1)
    z     = round(-min(W) / delta)
    Wq    = round(W / delta) + z        in [0, 2**b - 1]
    Wdq   = (Wq - z) * delta

Both are linear quantizers, so they are implemented directly rather
than via a level grid (which would be equivalent but slower).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes.base import DataType

__all__ = ["IntegerType", "int_symmetric_levels"]


def int_symmetric_levels(bits: int) -> np.ndarray:
    """The symmetric integer code grid, e.g. ``[-7 .. 7]`` for 4 bits.

    Note the symmetric range drops the most negative two's complement
    code (``-2**(b-1)``), the convention used by the paper and by every
    framework it compares against.
    """
    qmax = 2 ** (bits - 1) - 1
    return np.arange(-qmax, qmax + 1, dtype=np.float64)


@dataclass
class IntegerType(DataType):
    """A ``bits``-wide integer datatype.

    Parameters
    ----------
    bits:
        Total storage bits, including sign.
    asymmetric:
        Select asymmetric (scale + zero-point) quantization.
    """

    bits: int = 4
    asymmetric: bool = False
    nonlinear: bool = False

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError("integer quantization needs at least 2 bits")
        mode = "asym" if self.asymmetric else "sym"
        self.name = f"int{self.bits}_{mode}"

    @property
    def qmax_symmetric(self) -> int:
        return 2 ** (self.bits - 1) - 1

    @property
    def qmax_asymmetric(self) -> int:
        return 2**self.bits - 1

    def memory_bits_per_weight(self, group_size: int) -> float:
        if self.asymmetric:
            # Software-style asymmetric quantization stores a 16-bit
            # scale and an 8-bit zero point per group (Section III-C,
            # memory overhead analysis).
            return self.bits + (16.0 + 8.0) / group_size
        return self.bits + 8.0 / group_size

    # ------------------------------------------------------------------
    # Row-wise quantization.  ``w`` has shape (n_groups, group_size) and
    # each row is quantized independently.
    # ------------------------------------------------------------------
    def quantize_rows(self, w: np.ndarray):
        """Quantize each row of ``w`` independently.

        Returns
        -------
        (w_deq, codes, scales, zeros)
            ``zeros`` is ``None`` for symmetric quantization.
        """
        w = np.asarray(w, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError("quantize_rows expects a 2-D array")
        if self.asymmetric:
            return self._quantize_rows_asym(w)
        return self._quantize_rows_sym(w)

    def _quantize_rows_sym(self, w: np.ndarray):
        qmax = self.qmax_symmetric
        absmax = np.max(np.abs(w), axis=1, keepdims=True)
        scales = absmax / qmax
        # Guard all-zero rows: any positive scale dequantizes 0 -> 0.
        scales = np.where(scales == 0.0, 1.0, scales)
        codes = np.clip(np.round(w / scales), -qmax, qmax)
        w_deq = codes * scales
        return w_deq, codes, scales, None

    def _quantize_rows_asym(self, w: np.ndarray):
        qmax = self.qmax_asymmetric
        wmin = np.min(w, axis=1, keepdims=True)
        wmax = np.max(w, axis=1, keepdims=True)
        scales = (wmax - wmin) / qmax
        scales = np.where(scales == 0.0, 1.0, scales)
        zeros = np.round(-wmin / scales)
        codes = np.clip(np.round(w / scales) + zeros, 0, qmax)
        w_deq = (codes - zeros) * scales
        return w_deq, codes, scales, zeros
