"""Microscaling (MX) formats (OCP spec / ISCA 2023), used as a baseline.

An MX block couples a group of ``block_size`` (spec default 32)
low-precision floating-point elements with one shared 8-bit
power-of-two scale (the "microexponent").  Relative to BitMoD-style
per-group quantization the two crucial differences are:

* the scale is restricted to powers of two, so the grid cannot be
  stretched to exactly cover the group's absmax; and
* the element datatype is the *basic* FP4/FP3, leaving the redundant
  negative-zero encoding unused.

Both cost accuracy, which is the point of the paper's Table VI
comparison.  The MX spec fixes the block size at 32; the paper notes
MX degrades with larger blocks, so we keep 32 as the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dtypes.base import DataType, GridDataType, quantize_to_grid
from repro.dtypes.floating import FP3_VALUES, FP4_VALUES, float_grid

__all__ = ["MXType"]

_ELEMENT_GRIDS = {
    3: FP3_VALUES,
    4: FP4_VALUES,
    5: float_grid(2, 2, bias=1),
    6: float_grid(2, 3, bias=1),
    8: float_grid(4, 3),
}


@dataclass
class MXType(DataType):
    """MX format: shared 8-bit power-of-two scale + FP elements.

    Parameters
    ----------
    bits:
        Element precision (3-6, 8).
    block_size:
        Elements sharing one microexponent (OCP spec: 32).
    """

    bits: int = 4
    block_size: int = 32
    name: str = ""
    nonlinear: bool = True
    element_grid: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.bits not in _ELEMENT_GRIDS:
            raise ValueError(f"no MX element format at {self.bits} bits")
        if not self.name:
            self.name = f"mx_fp{self.bits}"
        self.element_grid = _ELEMENT_GRIDS[self.bits]

    @property
    def element_type(self) -> GridDataType:
        return GridDataType(
            name=f"fp{self.bits}_mx_elem",
            bits=self.bits,
            values=self.element_grid,
        )

    def memory_bits_per_weight(self, group_size: int) -> float:
        # group_size is ignored: MX's metadata granularity is its own
        # block size, regardless of the quantizer's group size.
        return self.bits + 8.0 / self.block_size

    # ------------------------------------------------------------------
    def quantize_rows(self, w: np.ndarray):
        """Quantize each row of ``w`` as one MX block.

        Rows must have length ``block_size`` (the granularity layer
        slices tensors accordingly).  Returns ``(w_deq, scales)`` where
        scales are the power-of-two shared exponents.
        """
        w = np.asarray(w, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError("quantize_rows expects a 2-D array")
        absmax = np.max(np.abs(w), axis=1, keepdims=True)
        grid_max = float(np.max(np.abs(self.element_grid)))
        # Shared exponent: floor(log2(absmax)) - floor(log2(grid_max)),
        # the OCP MX scale rule.  All-zero blocks get scale 1.
        safe = np.where(absmax > 0.0, absmax, 1.0)
        shared_exp = np.floor(np.log2(safe)) - np.floor(np.log2(grid_max))
        scales = np.where(absmax > 0.0, 2.0**shared_exp, 1.0)
        w_deq = quantize_to_grid(w / scales, self.element_grid) * scales
        return w_deq, scales
