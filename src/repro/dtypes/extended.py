"""BitMoD extended floating-point datatypes (paper Section III-A).

The sign-magnitude representation of a basic float wastes one encoding
on the redundant negative zero.  BitMoD repurposes that encoding as a
*special value* (SV), producing two families per precision:

========  =============================  ==================
Datatype  Basic values                   Special value
========  =============================  ==================
FP3-ER    0, +-1, +-2, +-4               -3 or +3
FP3-EA    0, +-1, +-2, +-4               -6 or +6
FP4-ER    0, +-0.5 .. +-6 (basic FP4)    -5 or +5
FP4-EA    0, +-0.5 .. +-6 (basic FP4)    -8 or +8
========  =============================  ==================

(Table IV of the paper.)  "ER" = extra resolution: the SV falls inside
the basic range, densifying the grid while keeping it symmetric-ish.
"EA" = extra asymmetry: the SV falls outside the range, extending the
absolute maximum on one side only.

A *weight group* is quantized with the basic values plus exactly one
special value; the full BitMoD datatype lets every group pick its own
SV from the family's four candidates (Algorithm 1, implemented in
:mod:`repro.quant.adaptive`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.dtypes.base import DataType, GridDataType
from repro.dtypes.floating import FP3_VALUES, FP4_VALUES

__all__ = [
    "ExtendedFloat",
    "BitMoDType",
    "FP3_SPECIAL_VALUES",
    "FP4_SPECIAL_VALUES",
    "make_extended_float",
]

#: The BitMoD special-value sets of Table IV: {ER pair, EA pair}.
FP3_SPECIAL_VALUES = (-3.0, 3.0, -6.0, 6.0)
FP4_SPECIAL_VALUES = (-5.0, 5.0, -8.0, 8.0)

_BASIC = {3: FP3_VALUES, 4: FP4_VALUES}


@dataclass
class ExtendedFloat(GridDataType):
    """A basic FP3/FP4 grid extended with a *fixed* special value.

    Instances of this class represent one (dtype, SV) combination, e.g.
    "FP3 with special value +6".  They are the candidates that
    Algorithm 1 searches over; :class:`BitMoDType` bundles a family of
    them.
    """

    special_value: float = 0.0
    base_bits: int = 3

    def memory_bits_per_weight(self, group_size: int) -> float:
        # 8-bit INT scaling factor + 2-bit SV selector per group
        # (Section III-C memory overhead analysis).
        return self.base_bits + (8.0 + 2.0) / group_size


def make_extended_float(bits: int, special_value: float) -> ExtendedFloat:
    """Basic FP3/FP4 grid plus one special value.

    ``special_value`` may be any float — the paper's accelerator keeps
    the allowed SVs in a programmable register file, so the datatype
    definition does not restrict them to Table IV's defaults.

    Grids are memoized per (bits, SV): the packing, unpacking and
    bit-serial decode paths re-derive the same handful of candidate
    grids for every group, so callers share one immutable instance.
    """
    return _make_extended_float_cached(int(bits), float(special_value))


@lru_cache(maxsize=None)
def _make_extended_float_cached(bits: int, special_value: float) -> ExtendedFloat:
    if bits not in _BASIC:
        raise ValueError(f"extended floats exist for 3 and 4 bits, not {bits}")
    basic = _BASIC[bits]
    grid = np.union1d(basic, [float(special_value)])
    sv_txt = f"{special_value:+g}"
    ef = ExtendedFloat(
        name=f"fp{bits}_sv{sv_txt}",
        bits=bits,
        values=grid,
        special_value=float(special_value),
        base_bits=bits,
        description=f"FP{bits} extended with special value {sv_txt}",
    )
    # The instance is shared process-wide; freeze its grid so no caller
    # can mutate it in place and corrupt every other consumer.
    ef.values.setflags(write=False)
    return ef


@dataclass
class BitMoDType(DataType):
    """The BitMoD per-group adaptive datatype family.

    A family holds ``N`` candidate special values (the paper uses
    ``N = 4`` so the per-group selector costs 2 bits).  Quantizing a
    tensor with this datatype runs Algorithm 1: every group tries every
    candidate and keeps the SV with the lowest group MSE.

    Restricting ``special_values`` to a subset yields the paper's
    ablation datatypes:

    * ``FP4-ER``  = ``BitMoDType(4, (-5.0, 5.0))``
    * ``FP4-EA``  = ``BitMoDType(4, (-8.0, 8.0))``
    * ``FP3-ER``  = ``BitMoDType(3, (-3.0, 3.0))``
    * ``FP3-EA``  = ``BitMoDType(3, (-6.0, 6.0))``
    * full BitMoD = all four SVs per precision.
    """

    bits: int = 4
    special_values: tuple = ()
    name: str = ""
    nonlinear: bool = True
    candidates: list = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.bits not in _BASIC:
            raise ValueError("BitMoD datatypes exist for 3 and 4 bits")
        if not self.special_values:
            defaults = {3: FP3_SPECIAL_VALUES, 4: FP4_SPECIAL_VALUES}
            self.special_values = defaults[self.bits]
        self.special_values = tuple(float(v) for v in self.special_values)
        if not self.name:
            self.name = f"bitmod_fp{self.bits}"
        self.candidates = [
            make_extended_float(self.bits, sv) for sv in self.special_values
        ]

    @property
    def basic_values(self) -> np.ndarray:
        """Basic FP values shared by every candidate (Algo. 1 line 2)."""
        return _BASIC[self.bits]

    @property
    def selector_bits(self) -> float:
        """Bits needed to encode which SV a group selected."""
        n = len(self.special_values)
        return float(np.ceil(np.log2(n))) if n > 1 else 0.0

    def memory_bits_per_weight(self, group_size: int) -> float:
        return self.bits + (8.0 + self.selector_bits) / group_size
