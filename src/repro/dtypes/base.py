"""Core datatype abstractions.

Every quantization datatype in this reproduction is, at its heart, a
finite set of representable values (*levels*) plus metadata describing
how the hardware stores and processes those values.  Linear integer
datatypes are a special case whose levels form an arithmetic
progression; non-linear datatypes (floating point, Flint, the BitMoD
extended floats) carry an explicit level grid.

The central primitive is :func:`quantize_to_grid`, which snaps a float
tensor to the nearest level of a grid.  It is fully vectorized and is
the inner loop of Algorithm 1 in the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DataType",
    "GridDataType",
    "quantize_to_grid",
    "grid_absmax",
    "snap_indices",
]


def _as_sorted_grid(values) -> np.ndarray:
    """Return ``values`` as a sorted, deduplicated float64 numpy array."""
    grid = np.unique(np.asarray(values, dtype=np.float64))
    if grid.size < 2:
        raise ValueError("a quantization grid needs at least two levels")
    return grid


def snap_indices(x: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Indices of the nearest grid level for every element of ``x``.

    ``grid`` must be sorted ascending.  Ties round toward the upper
    level, matching ``np.searchsorted`` midpoint behaviour; the paper's
    results are insensitive to tie direction because weight values are
    continuous.
    """
    x = np.asarray(x, dtype=np.float64)
    # Midpoints between adjacent levels partition the real line into
    # nearest-level cells.
    midpoints = (grid[1:] + grid[:-1]) / 2.0
    if midpoints.size <= 255 and x.size >= 4096:
        # Quantization grids are tiny, so one strict comparison per
        # midpoint beats binary search by ~4x.  Bit-identical:
        # ``searchsorted(mid, x, "left")`` is the count of midpoints
        # strictly below ``x`` — except NaN, which searchsorted sorts
        # past the end and comparisons would send to index 0.
        idx = np.zeros(x.shape, dtype=np.uint8)
        for m in midpoints:
            np.add(idx, x > m, out=idx, casting="unsafe")
        out = idx.astype(np.intp)
        nan = np.isnan(x)
        if nan.any():
            out[nan] = midpoints.size
        return out
    return np.searchsorted(midpoints, x, side="left")


def quantize_to_grid(x: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Snap every element of ``x`` to its nearest value in ``grid``.

    This is the ``NonLinearQuantize`` primitive of Algorithm 1 (line 7).
    """
    grid = np.asarray(grid, dtype=np.float64)
    return grid[snap_indices(x, grid)]


def grid_absmax(grid: np.ndarray) -> float:
    """Largest magnitude representable by ``grid``."""
    grid = np.asarray(grid, dtype=np.float64)
    return float(np.max(np.abs(grid)))


class DataType(abc.ABC):
    """A low-precision numerical datatype.

    Concrete subclasses are dataclasses defining (at least):

    ``name``
        Registry name, e.g. ``"int4_asym"`` or ``"fp3_ea"``.
    ``bits``
        Storage bits per weight element (excluding per-group metadata,
        which is accounted for separately by the memory model).
    ``asymmetric``
        True when quantized with an explicit zero-point.
    ``nonlinear``
        True for datatypes quantized by snapping to a non-linear grid.

    No defaults are declared here on purpose: inherited class
    attributes would silently become dataclass field defaults in
    subclasses and break required-field ordering.
    """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, bits={self.bits})"

    def memory_bits_per_weight(self, group_size: int) -> float:
        """Average storage cost per weight including group metadata.

        The default charges an 8-bit scaling factor per group (the
        INT8 second-level scaling factor of Section III-C).  Subclasses
        with extra metadata (zero points, special-value selectors,
        shared exponents) override this.
        """
        return self.bits + 8.0 / group_size


@dataclass
class GridDataType(DataType):
    """A datatype defined by an explicit, finite level grid.

    Parameters
    ----------
    name:
        Registry name.
    bits:
        Storage bits per element.
    values:
        The representable values.  They are conventionally expressed in
        "code space": the quantizer computes a per-group scale
        ``delta = absmax(W) / absmax(values)`` and snaps ``W / delta``
        onto the grid.
    """

    name: str
    bits: int
    values: np.ndarray
    asymmetric: bool = False
    nonlinear: bool = True
    #: Optional free-form description used in reports.
    description: str = ""
    _grid: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._grid = _as_sorted_grid(self.values)
        self.values = self._grid

    @property
    def grid(self) -> np.ndarray:
        """Sorted level grid."""
        return self._grid

    @property
    def num_levels(self) -> int:
        return int(self._grid.size)

    @property
    def absmax(self) -> float:
        return grid_absmax(self._grid)

    @property
    def max_level(self) -> float:
        return float(self._grid[-1])

    @property
    def min_level(self) -> float:
        return float(self._grid[0])

    def is_symmetric_grid(self, tol: float = 1e-12) -> bool:
        """Whether the grid is symmetric around zero."""
        return bool(
            np.allclose(np.sort(-self._grid), self._grid, atol=tol)
        )

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Snap ``x`` (already scaled into code space) onto the grid."""
        return quantize_to_grid(x, self._grid)

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Return grid indices (storage codes) for scaled values."""
        return snap_indices(x, self._grid)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`encode`."""
        return self._grid[np.asarray(codes, dtype=np.int64)]
