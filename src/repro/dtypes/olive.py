"""The OliVe outlier-victim-pair datatype (ISCA 2023), used as a baseline.

OliVe quantizes "normal" values with a symmetric integer grid and
protects *outliers* — the few values whose magnitude far exceeds the
rest — by re-encoding them in an "adaptive biased float" (abfloat)
format whose exponent bias places a sparse high-magnitude grid over
the outlier range.  Because the hardware fetches weights in pairs, an
outlier steals the encoding slot of its adjacent *victim*, which is
pruned to zero.

Reproduced behaviours:

* normals use an ``INTb-Sym`` grid scaled by the *non-outlier* absmax,
  so outliers no longer inflate the scaling factor;
* outliers snap to an abfloat grid ``(1 + m/2) * 2**(e + bias)`` with
  1 mantissa bit and a fixed exponent bias equal to the element width
  (at 4 bits: {16, 24, ..., 192}, the range quoted in the BitMoD
  paper) — a deliberately huge range whose sparseness is OliVe's
  per-group weakness;
* each outlier forces one adjacent weight (its pair partner) to zero;
* the number of outliers per group is chosen adaptively (including
  zero) by minimizing group MSE, which is the most favourable
  per-group extension of OliVe's per-channel scheme.

OliVe shines under per-channel quantization, where a channel really
does mix outliers with small values.  Under per-group quantization the
outliers are already tamed by the group scale, so sacrificing victims
buys little — the paper's explanation for OliVe's Table VI numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dtypes.base import DataType, quantize_to_grid
from repro.dtypes.integer import IntegerType

__all__ = ["abfloat_values", "OliveType"]


def abfloat_values(bits: int, bias: int = 0) -> np.ndarray:
    """Outlier (abfloat) magnitudes for a ``bits``-wide OliVe format.

    A minifloat with 1 mantissa bit and ``2**(bits-2)`` exponent
    levels, all shifted by ``bias``: magnitudes
    ``(1 + m/2) * 2**(e + bias)``.
    """
    if bits < 3:
        raise ValueError("abfloat needs at least 3 bits")
    n_exp = 2 ** (bits - 2)
    mags = []
    for e in range(n_exp):
        for m in (0, 1):
            mags.append((1.0 + 0.5 * m) * 2.0 ** (e + bias))
    return np.asarray(sorted(mags), dtype=np.float64)


@dataclass
class OliveType(DataType):
    """OliVe outlier-victim-pair quantization at ``bits`` precision.

    Parameters
    ----------
    bits:
        Element precision for both normals and outliers.
    outlier_counts:
        Candidate numbers of outliers per group; each group keeps the
        count with the lowest MSE.  The default, a fixed two outliers
        per group, mirrors the per-group extension evaluated by the
        BitMoD paper: the outlier-victim mechanism is structural in
        OliVe's encoding, so groups pay for it whether or not they
        contain real outliers.  Include 0 to let groups opt out
        entirely (more favourable than the paper's extension).
    """

    bits: int = 4
    outlier_counts: tuple = (2,)
    name: str = ""
    asymmetric: bool = False
    nonlinear: bool = True
    int_type: IntegerType = field(init=False, repr=False)
    _outlier_grid: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"olive{self.bits}"
        self.int_type = IntegerType(bits=self.bits, asymmetric=False)
        # Fixed exponent bias places the outlier grid just above the
        # integer range ({8..96} at 4 bits), reaching toward the ~192
        # top end the BitMoD paper quotes.  Being fixed (not per-group
        # fitted) is what leaves the grid sparse where moderate
        # per-group outliers actually live.
        self._outlier_grid = abfloat_values(self.bits, bias=self.bits - 1)

    def memory_bits_per_weight(self, group_size: int) -> float:
        # Outlier-victim pairs are encoded in-place; the identifier bit
        # pattern lives inside the victim's slot, so storage stays at
        # ``bits`` per weight plus the group scale.
        return self.bits + 8.0 / group_size

    # ------------------------------------------------------------------
    def quantize_rows(self, w: np.ndarray):
        """Outlier-victim-pair quantization of each row of ``w``.

        Returns ``(w_deq, scales)``.  Rows are weight groups.
        """
        w = np.asarray(w, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError("quantize_rows expects a 2-D array")
        n_rows, group_size = w.shape
        qmax = self.int_type.qmax_symmetric

        order = np.argsort(np.abs(w), axis=1)  # ascending magnitude
        row_idx = np.arange(n_rows)[:, None]

        best_deq = None
        best_scale = None
        best_err = np.full(n_rows, np.inf)

        for k in self.outlier_counts:
            if k >= group_size:
                continue
            if k == 0:
                deq, _codes, scale, _z = self.int_type.quantize_rows(w)
                scale = scale.copy()
            else:
                out_pos = order[:, group_size - k:]  # (n_rows, k)
                normal_absmax = np.abs(
                    w[row_idx[:, 0], order[:, group_size - k - 1]]
                )[:, None]
                scale = np.where(normal_absmax > 0, normal_absmax / qmax, 1.0)
                deq = np.clip(np.round(w / scale), -qmax, qmax) * scale

                # Outliers: snap |w|/scale onto the abfloat grid with a
                # per-row adaptive bias covering the largest outlier.
                out_vals = w[row_idx, out_pos]
                out_mag = np.abs(out_vals) / scale
                snapped = quantize_to_grid(out_mag, self._outlier_grid)
                deq[row_idx, out_pos] = np.sign(out_vals) * snapped * scale

                # Victims: the pair partner of each outlier is pruned,
                # unless that partner is itself an outlier.
                vic_pos = out_pos ^ 1
                is_out = np.zeros((n_rows, group_size), dtype=bool)
                is_out[row_idx, out_pos] = True
                vic_is_out = is_out[row_idx, vic_pos]
                vic_rows, vic_cols = np.nonzero(~vic_is_out)
                deq[vic_rows, vic_pos[vic_rows, vic_cols]] = 0.0

            err = np.sum((deq - w) ** 2, axis=1)
            improved = err < best_err
            if best_deq is None:
                best_deq, best_scale, best_err = deq, scale, err
            elif improved.any():
                best_deq[improved] = deq[improved]
                best_scale[improved] = scale[improved]
                best_err[improved] = err[improved]

        return best_deq, best_scale
