"""Datatype registry: string name -> datatype instance.

The registry names mirror the paper's tables so experiment code reads
like the paper:

======================  ==========================================
Name                    Datatype
======================  ==========================================
``int{b}_sym``          symmetric integer, b in 2..8
``int{b}_asym``         asymmetric integer, b in 2..8
``fp3`` / ``fp4``       basic FP3 / FP4 (E2M0 / E2M1)
``fp6_e2m3``            FP6 with 2 exponent bits
``fp6_e3m2``            FP6 with 3 exponent bits
``fp3_er`` ...          BitMoD families restricted to the ER pair
``fp3_ea`` ...          ... or the EA pair
``bitmod_fp3``          full BitMoD 3-bit (4 special values)
``bitmod_fp4``          full BitMoD 4-bit (4 special values)
``flint{b}``            ANT flint grid
``ant{b}``              ANT adaptive per-group selection
``olive{b}``            OliVe outlier-victim pair
``mx_fp{b}``            Microscaling, block size 32
======================  ==========================================
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict

from repro.dtypes.base import DataType, GridDataType
from repro.dtypes.extended import BitMoDType
from repro.dtypes.flint import AntAdaptiveType, flint_values, make_flint_type
from repro.dtypes.floating import (
    FP3_VALUES,
    FP4_VALUES,
    FP6_E2M3_VALUES,
    FP6_E3M2_VALUES,
)
from repro.dtypes.integer import IntegerType
from repro.dtypes.mx import MXType
from repro.dtypes.olive import OliveType

__all__ = ["get_dtype", "list_dtypes", "register_dtype"]

_FACTORIES: Dict[str, Callable[[], DataType]] = {}


def register_dtype(name: str, factory: Callable[[], DataType]) -> None:
    """Register a datatype factory under ``name``."""
    if name in _FACTORIES:
        raise ValueError(f"datatype {name!r} already registered")
    _FACTORIES[name] = factory


def _populate() -> None:
    for bits in range(2, 9):
        register_dtype(
            f"int{bits}_sym",
            lambda b=bits: IntegerType(bits=b, asymmetric=False),
        )
        register_dtype(
            f"int{bits}_asym",
            lambda b=bits: IntegerType(bits=b, asymmetric=True),
        )
    register_dtype(
        "fp3", lambda: GridDataType(name="fp3", bits=3, values=FP3_VALUES)
    )
    register_dtype(
        "fp4", lambda: GridDataType(name="fp4", bits=4, values=FP4_VALUES)
    )
    register_dtype(
        "fp6_e2m3",
        lambda: GridDataType(name="fp6_e2m3", bits=6, values=FP6_E2M3_VALUES),
    )
    register_dtype(
        "fp6_e3m2",
        lambda: GridDataType(name="fp6_e3m2", bits=6, values=FP6_E3M2_VALUES),
    )
    register_dtype(
        "fp3_er",
        lambda: BitMoDType(bits=3, special_values=(-3.0, 3.0), name="fp3_er"),
    )
    register_dtype(
        "fp3_ea",
        lambda: BitMoDType(bits=3, special_values=(-6.0, 6.0), name="fp3_ea"),
    )
    register_dtype(
        "fp4_er",
        lambda: BitMoDType(bits=4, special_values=(-5.0, 5.0), name="fp4_er"),
    )
    register_dtype(
        "fp4_ea",
        lambda: BitMoDType(bits=4, special_values=(-8.0, 8.0), name="fp4_ea"),
    )
    register_dtype("bitmod_fp3", lambda: BitMoDType(bits=3))
    register_dtype("bitmod_fp4", lambda: BitMoDType(bits=4))
    for bits in (3, 4, 5, 6):
        register_dtype(f"flint{bits}", lambda b=bits: make_flint_type(b))
        # "ant{b}" follows the BitMoD paper's per-group extension of
        # ANT, which applies the Flint grid per group (their Table I
        # Flint rows equal their Table VI ANT rows).  ANT's original
        # per-tensor adaptive selection is "ant_adaptive{b}".
        register_dtype(
            f"ant{bits}",
            lambda b=bits: GridDataType(
                name=f"ant{b}", bits=b, values=flint_values(b)
            ),
        )
        register_dtype(
            f"ant_adaptive{bits}", lambda b=bits: AntAdaptiveType(bits=b)
        )
        register_dtype(f"olive{bits}", lambda b=bits: OliveType(bits=b))
    for bits in (3, 4, 5, 6, 8):
        register_dtype(f"mx_fp{bits}", lambda b=bits: MXType(bits=b))


_populate()


def get_dtype(name: str) -> DataType:
    """Instantiate the datatype registered under ``name``.

    Lookup is case-insensitive; an unknown name raises with the
    closest registered spellings instead of the full registry.
    """
    factory = _FACTORIES.get(name)
    if factory is None and isinstance(name, str):
        folded = name.lower()
        factory = _FACTORIES.get(folded)
        if factory is None:
            close = difflib.get_close_matches(folded, _FACTORIES, n=3, cutoff=0.6)
            hint = (
                f"did you mean {' or '.join(repr(c) for c in close)}?"
                if close
                else "see list_dtypes() for the registry"
            )
            raise KeyError(f"unknown datatype {name!r}; {hint}") from None
    elif factory is None:
        raise KeyError(f"unknown datatype {name!r}; see list_dtypes() for the registry")
    return factory()


def list_dtypes() -> list:
    """Sorted list of registered datatype names."""
    return sorted(_FACTORIES)
