"""Datatype zoo for the BitMoD reproduction."""

from repro.dtypes.base import (
    DataType,
    GridDataType,
    grid_absmax,
    quantize_to_grid,
    snap_indices,
)
from repro.dtypes.extended import (
    FP3_SPECIAL_VALUES,
    FP4_SPECIAL_VALUES,
    BitMoDType,
    ExtendedFloat,
    make_extended_float,
)
from repro.dtypes.flint import AntAdaptiveType, flint_values, make_flint_type
from repro.dtypes.floating import (
    FP3_VALUES,
    FP4_VALUES,
    FP6_E2M3_VALUES,
    FP6_E3M2_VALUES,
    float_grid,
    fp16_compose,
    fp16_decompose,
    make_float_type,
)
from repro.dtypes.integer import IntegerType, int_symmetric_levels
from repro.dtypes.mx import MXType
from repro.dtypes.olive import OliveType, abfloat_values
from repro.dtypes.registry import get_dtype, list_dtypes, register_dtype

__all__ = [
    "DataType",
    "GridDataType",
    "quantize_to_grid",
    "snap_indices",
    "grid_absmax",
    "BitMoDType",
    "ExtendedFloat",
    "make_extended_float",
    "FP3_SPECIAL_VALUES",
    "FP4_SPECIAL_VALUES",
    "AntAdaptiveType",
    "flint_values",
    "make_flint_type",
    "float_grid",
    "make_float_type",
    "FP3_VALUES",
    "FP4_VALUES",
    "FP6_E2M3_VALUES",
    "FP6_E3M2_VALUES",
    "fp16_decompose",
    "fp16_compose",
    "IntegerType",
    "int_symmetric_levels",
    "MXType",
    "OliveType",
    "abfloat_values",
    "get_dtype",
    "list_dtypes",
    "register_dtype",
]
