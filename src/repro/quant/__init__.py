"""Quantization engine for the BitMoD reproduction."""

from repro.quant.adaptive import (
    adaptive_quantize_rows,
    quantize_rows_ant,
    quantize_rows_bitmod,
)
from repro.quant.config import QuantConfig, QuantResult, quantize_tensor
from repro.quant.errors import max_abs_error, mse, nmse, rmse
from repro.quant.granularity import (
    GRANULARITIES,
    RowLayout,
    from_rows,
    rows_per_channel,
    to_rows,
)
from repro.quant.quantizer import RowQuant, clipped_absmax_scales, quantize_rows_grid
from repro.quant.kv import KVQuantConfig, quantize_kv
from repro.quant.packing import (
    PackedTensor,
    pack_bits,
    pack_tensor,
    unpack_bits,
    unpack_tensor,
)
from repro.quant.scale import ScaleQuant, quantize_scales

__all__ = [
    "QuantConfig",
    "QuantResult",
    "quantize_tensor",
    "adaptive_quantize_rows",
    "quantize_rows_bitmod",
    "quantize_rows_ant",
    "quantize_rows_grid",
    "clipped_absmax_scales",
    "RowQuant",
    "ScaleQuant",
    "quantize_scales",
    "KVQuantConfig",
    "quantize_kv",
    "PackedTensor",
    "pack_tensor",
    "unpack_tensor",
    "pack_bits",
    "unpack_bits",
    "GRANULARITIES",
    "RowLayout",
    "to_rows",
    "from_rows",
    "rows_per_channel",
    "mse",
    "nmse",
    "rmse",
    "max_abs_error",
]
