"""KV-cache quantization (paper Section IV-B).

The BitMoD PE keeps one attention operand in FP16, so the key and
value tensors must be low-precision integers.  The paper leans on the
observation (FlexGen, SmoothQuant, Atom) that keys/values tolerate
INT8 — and often INT4 — because softmax normalization bounds their
influence.

Keys and values are quantized **per head** with asymmetric integers
(the Atom convention): each head's slice gets its own scale/zero so
head-to-head magnitude differences don't cost precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KVQuantConfig", "quantize_kv"]


@dataclass(frozen=True)
class KVQuantConfig:
    """How to quantize the KV-cache."""

    bits: int = 8
    per_head: bool = True


def quantize_kv(kv: np.ndarray, config: KVQuantConfig = KVQuantConfig()) -> np.ndarray:
    """Quantize a key or value tensor.

    ``kv`` has shape ``(batch, heads, seq, head_dim)``.  Returns the
    dequantized tensor (same shape), asymmetric integer per head (or
    per tensor with ``per_head=False``).
    """
    kv = np.asarray(kv, dtype=np.float64)
    if kv.ndim != 4:
        raise ValueError("KV tensors have shape (batch, heads, seq, head_dim)")
    qmax = 2**config.bits - 1
    if config.per_head:
        axes = (0, 2, 3)
        lo = kv.min(axis=axes, keepdims=True)
        hi = kv.max(axis=axes, keepdims=True)
    else:
        lo = kv.min(keepdims=True)
        hi = kv.max(keepdims=True)
        lo = lo.reshape(1, 1, 1, 1)
        hi = hi.reshape(1, 1, 1, 1)
    scale = (hi - lo) / qmax
    scale = np.where(scale == 0.0, 1.0, scale)
    zero = np.round(-lo / scale)
    codes = np.clip(np.round(kv / scale) + zero, 0, qmax)
    return (codes - zero) * scale
