"""Row quantizers for linear and non-linear (grid) datatypes.

Every quantizer maps a 2-D array of quantization rows to

* ``w_deq`` — the dequantized weights (same shape),
* ``scales`` — one scaling factor per row, shape ``(n_rows, 1)``,
* auxiliary metadata (integer zero points, chosen special values...).

Scales follow the paper's convention (Section III-A): for a grid
datatype, ``delta = absmax(row) / absmax(grid)``, then the scaled row
is snapped to the nearest grid level.  For linear integer types the
closed forms of Eq. 1 / Eq. 2 are used instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.dtypes.base import GridDataType, quantize_to_grid

__all__ = ["RowQuant", "quantize_rows_grid", "clipped_absmax_scales"]


@dataclass
class RowQuant:
    """Result of quantizing a 2-D array of rows."""

    w_deq: np.ndarray
    scales: np.ndarray
    zeros: Optional[np.ndarray] = None
    #: Per-row chosen special value (BitMoD) or NaN when not applicable.
    special_values: Optional[np.ndarray] = None
    #: Per-row candidate-grid index (adaptive datatypes).
    candidate_idx: Optional[np.ndarray] = None
    #: Per-row squared error sum.
    sq_error: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.sq_error is None:
            self.sq_error = np.zeros((self.w_deq.shape[0],))


def clipped_absmax_scales(
    rows: np.ndarray, grid_absmax: float, clip_ratio: float = 1.0
) -> np.ndarray:
    """Per-row scaling factors ``clip_ratio * absmax(row) / grid_absmax``.

    ``clip_ratio`` < 1 implements the clipping used by OmniQuant-style
    optimizers.  All-zero rows get scale 1 so dequantization stays
    well-defined.
    """
    absmax = np.max(np.abs(rows), axis=1, keepdims=True) * clip_ratio
    scales = absmax / grid_absmax
    return np.where(scales == 0.0, 1.0, scales)


def quantize_rows_grid(
    rows: np.ndarray, dtype: GridDataType, clip_ratio: float = 1.0
) -> RowQuant:
    """Quantize each row onto ``dtype``'s level grid (NonLinearQuantize)."""
    rows = np.asarray(rows, dtype=np.float64)
    scales = clipped_absmax_scales(rows, dtype.absmax, clip_ratio)
    snapped = quantize_to_grid(rows / scales, dtype.grid)
    w_deq = snapped * scales
    err = np.sum((w_deq - rows) ** 2, axis=1)
    return RowQuant(w_deq=w_deq, scales=scales, sq_error=err)
