"""Fine-grained datatype adaptation — Algorithm 1 of the paper.

Every weight group is quantized with the family's *basic* values plus
each candidate *special value* in turn; the candidate with the lowest
group mean-square error wins (paper Algo. 1, lines 4-12).  The same
machinery also implements ANT's per-group adaptive grid selection,
since both are "pick the best grid per group by MSE".

The search is vectorized across all groups *and* all candidates of a
tensor at once: the row absmax is computed a single time, per-candidate
squared errors are stacked into one ``(n_candidates, n_rows)`` array
and the winner selected with one ``argmin``, and — for BitMoD-style
extended-float candidates — candidates that share a scaling factor
also share one basic-grid snap, with each special value applied as a
two-midpoint window overlay that reproduces the union-grid
``searchsorted`` bit for bit.  The paper notes their GPU
implementation quantizes Llama-2-7B in ~10 s; this numpy
implementation exhibits the same one-pass-per-candidate structure with
the redundant passes removed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dtypes.base import GridDataType, quantize_to_grid
from repro.dtypes.extended import BitMoDType, ExtendedFloat
from repro.dtypes.flint import AntAdaptiveType
from repro.dtypes.floating import FP3_VALUES, FP4_VALUES
from repro.quant.quantizer import RowQuant

__all__ = ["adaptive_quantize_rows", "quantize_rows_bitmod", "quantize_rows_ant"]

_EXTENDED_BASIC = {3: FP3_VALUES, 4: FP4_VALUES}


def _is_extended(cand: GridDataType) -> bool:
    """Eligible for the shared basic-snap fast path: an ExtendedFloat
    whose grid really is ``basic ∪ {sv}`` (a hand-built instance with a
    custom ``values`` set falls back to the generic grid snap)."""
    if not (isinstance(cand, ExtendedFloat) and cand.base_bits in _EXTENDED_BASIC):
        return False
    expected = np.union1d(
        _EXTENDED_BASIC[cand.base_bits], [float(cand.special_value)]
    )
    return np.array_equal(cand.grid, expected)


def _apply_sv_window(x: np.ndarray, snapped: np.ndarray, cand: ExtendedFloat) -> np.ndarray:
    """Overlay ``cand``'s special value onto a basic-grid snap.

    The extended grid is ``basic ∪ {sv}``, so its nearest-level result
    differs from the basic one exactly for ``x`` strictly above
    ``(b_lo + sv)/2`` and at most ``(sv + b_hi)/2`` — the two union-grid
    midpoints adjacent to the SV.  Applying the SV as that window is
    bit-identical (ties included) to snapping onto the union grid.
    """
    basic = _EXTENDED_BASIC[cand.base_bits]
    sv = float(cand.special_value)
    if np.any(basic == sv):
        return snapped  # union grid degenerates to the basic grid
    pos = int(np.searchsorted(basic, sv))
    m1 = (basic[pos - 1] + sv) / 2.0 if pos > 0 else -np.inf
    m2 = (sv + basic[pos]) / 2.0 if pos < basic.size else np.inf
    return np.where((x > m1) & (x <= m2), sv, snapped)


def _snap_candidate(x: np.ndarray, cand: GridDataType, basic_cache: dict) -> np.ndarray:
    """Snap code-space values ``x`` onto ``cand``'s grid, sharing the
    basic-grid ``searchsorted`` between extended-float candidates with
    a common scaling factor (``basic_cache`` key: bits + absmax)."""
    if _is_extended(cand):
        key = (cand.base_bits, float(cand.absmax))
        snapped = basic_cache.get(key)
        if snapped is None:
            snapped = quantize_to_grid(x, _EXTENDED_BASIC[cand.base_bits])
            basic_cache[key] = snapped
        return _apply_sv_window(x, snapped, cand)
    return quantize_to_grid(x, cand.grid)


def adaptive_quantize_rows(
    rows: np.ndarray,
    candidates: Sequence[GridDataType],
    clip_ratio: float = 1.0,
) -> RowQuant:
    """Per-row best-of-N grid quantization (the core of Algorithm 1).

    Parameters
    ----------
    rows:
        ``(n_rows, group_size)`` weight groups.
    candidates:
        Candidate grids; every row keeps the lowest-MSE one.
    """
    if not candidates:
        raise ValueError("need at least one candidate grid")
    rows = np.asarray(rows, dtype=np.float64)
    n_rows = rows.shape[0]
    n_cand = len(candidates)

    # One absmax pass shared by every candidate (scales differ only by
    # the per-candidate grid absmax divisor).
    absmax = np.max(np.abs(rows), axis=1, keepdims=True) * clip_ratio

    errs = np.empty((n_cand, n_rows))
    scales_all = np.empty((n_cand, n_rows, 1))
    basic_cache: dict = {}
    scaled_cache: dict = {}
    for idx, cand in enumerate(candidates):
        scales = absmax / cand.absmax
        scales = np.where(scales == 0.0, 1.0, scales)
        scales_all[idx] = scales
        key = float(cand.absmax)
        x = scaled_cache.get(key)
        if x is None:
            x = rows / scales
            scaled_cache[key] = x
        diff = _snap_candidate(x, cand, basic_cache) * scales
        diff -= rows
        # In-place square, then np.sum (pairwise) — bit-identical to
        # the one-candidate-at-a-time ``sum((w_deq - rows)**2)``.
        errs[idx] = np.sum(np.square(diff, out=diff), axis=1)

    # Winner per row: first index achieving the minimum, matching the
    # sequential strict-< update rule (NaN errors never displace the
    # first candidate).
    finite_errs = np.where(np.isnan(errs), np.inf, errs)
    best_idx = np.argmin(finite_errs, axis=0)
    best_idx[np.isnan(errs[0])] = 0

    # Rebuild the winning dequantization per candidate on its rows only
    # — bit-identical to a full per-candidate pass because every op is
    # elementwise; extended-float candidates reuse the cached basic
    # snap instead of re-running searchsorted.
    w_deq = np.empty_like(rows)
    for idx, cand in enumerate(candidates):
        mask = best_idx == idx
        if not mask.any():
            continue
        scales = scales_all[idx][mask]
        x_sub = scaled_cache[float(cand.absmax)][mask]
        if _is_extended(cand):
            key = (cand.base_bits, float(cand.absmax))
            snapped = _apply_sv_window(x_sub, basic_cache[key][mask], cand)
        else:
            snapped = quantize_to_grid(x_sub, cand.grid)
        w_deq[mask] = snapped * scales

    rq = RowQuant(
        w_deq=w_deq,
        scales=scales_all[best_idx, np.arange(n_rows)],
        sq_error=errs[best_idx, np.arange(n_rows)],
    )
    rq.candidate_idx = best_idx
    return rq


def quantize_rows_bitmod(
    rows: np.ndarray, dtype: BitMoDType, clip_ratio: float = 1.0
) -> RowQuant:
    """Algorithm 1 for a BitMoD family: per-group special-value choice."""
    result = adaptive_quantize_rows(rows, dtype.candidates, clip_ratio)
    svs = np.asarray(dtype.special_values, dtype=np.float64)
    result.special_values = svs[result.candidate_idx]
    return result


def quantize_rows_ant(
    rows: np.ndarray, dtype: AntAdaptiveType, clip_ratio: float = 1.0
) -> RowQuant:
    """ANT's adaptive grid selection, per group."""
    return adaptive_quantize_rows(rows, dtype.candidates, clip_ratio)
