"""Fine-grained datatype adaptation — Algorithm 1 of the paper.

Every weight group is quantized with the family's *basic* values plus
each candidate *special value* in turn; the candidate with the lowest
group mean-square error wins (paper Algo. 1, lines 4-12).  The same
machinery also implements ANT's per-group adaptive grid selection,
since both are "pick the best grid per group by MSE".

The search is vectorized across all groups of a tensor at once — the
paper notes their GPU implementation quantizes Llama-2-7B in ~10 s;
this numpy implementation exhibits the same
one-quantization-pass-per-candidate structure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dtypes.base import GridDataType
from repro.dtypes.extended import BitMoDType
from repro.dtypes.flint import AntAdaptiveType
from repro.quant.quantizer import RowQuant, quantize_rows_grid

__all__ = ["adaptive_quantize_rows", "quantize_rows_bitmod", "quantize_rows_ant"]


def adaptive_quantize_rows(
    rows: np.ndarray,
    candidates: Sequence[GridDataType],
    clip_ratio: float = 1.0,
) -> RowQuant:
    """Per-row best-of-N grid quantization (the core of Algorithm 1).

    Parameters
    ----------
    rows:
        ``(n_rows, group_size)`` weight groups.
    candidates:
        Candidate grids; every row keeps the lowest-MSE one.
    """
    if not candidates:
        raise ValueError("need at least one candidate grid")
    rows = np.asarray(rows, dtype=np.float64)
    n_rows = rows.shape[0]

    best = quantize_rows_grid(rows, candidates[0], clip_ratio)
    best_idx = np.zeros(n_rows, dtype=np.int64)
    for idx, cand in enumerate(candidates[1:], start=1):
        trial = quantize_rows_grid(rows, cand, clip_ratio)
        improved = trial.sq_error < best.sq_error
        if improved.any():
            best.w_deq[improved] = trial.w_deq[improved]
            best.scales[improved] = trial.scales[improved]
            best.sq_error[improved] = trial.sq_error[improved]
            best_idx[improved] = idx
    best.candidate_idx = best_idx
    return best


def quantize_rows_bitmod(
    rows: np.ndarray, dtype: BitMoDType, clip_ratio: float = 1.0
) -> RowQuant:
    """Algorithm 1 for a BitMoD family: per-group special-value choice."""
    result = adaptive_quantize_rows(rows, dtype.candidates, clip_ratio)
    svs = np.asarray(dtype.special_values, dtype=np.float64)
    result.special_values = svs[result.candidate_idx]
    return result


def quantize_rows_ant(
    rows: np.ndarray, dtype: AntAdaptiveType, clip_ratio: float = 1.0
) -> RowQuant:
    """ANT's adaptive grid selection, per group."""
    return adaptive_quantize_rows(rows, dtype.candidates, clip_ratio)
