"""Bit-exact packing of quantized tensors into accelerator memory images.

The BitMoD accelerator streams weights from DRAM as dense bit-packed
groups: ``group_size`` b-bit element codes, one 8-bit scaling-factor
code per group, a 2-bit special-value selector (BitMoD datatypes), and
per-channel FP16 second-level factors.  This module implements that
container — the piece an actual deployment would serialize to flash —
with exact round-tripping back to the dequantized tensor.

Element codes are grid indices for non-linear datatypes and offset
binary for integers, so every registry datatype packs into exactly
``bits`` bits per weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dtypes.base import GridDataType, snap_indices
from repro.dtypes.extended import BitMoDType, make_extended_float
from repro.dtypes.integer import IntegerType
from repro.quant.config import QuantConfig, QuantResult, quantize_tensor
from repro.quant.granularity import from_rows, rows_per_channel, to_rows
from repro.quant.scale import quantize_scales

__all__ = [
    "PackedTensor",
    "pack_tensor",
    "unpack_tensor",
    "pack_bits",
    "unpack_bits",
    "pack_words",
    "unpack_words",
    "WORD_BITS",
]

#: Machine-word width of the word-packed layout (one DRAM burst beat).
WORD_BITS = 64


def pack_bits(codes: np.ndarray, bits: int) -> bytes:
    """Pack unsigned integer ``codes`` (< 2**bits) LSB-first into bytes.

    The bit stream is LSB-first within each code and across codes,
    which is exactly ``np.packbits(..., bitorder="little")`` over the
    per-code bit expansion — one vectorized pass instead of a
    ``bitwise_or.at`` scatter per bit plane.
    """
    codes = np.asarray(codes, dtype=np.uint64).reshape(-1)
    if codes.size and int(codes.max()) >= 2**bits:
        raise ValueError(f"code does not fit in {bits} bits")
    shifts = np.arange(bits, dtype=np.uint64)
    bit_matrix = ((codes[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bit_matrix.reshape(-1), bitorder="little").tobytes()


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`."""
    raw = np.frombuffer(data, dtype=np.uint8)
    bit_stream = np.unpackbits(raw, count=count * bits, bitorder="little")
    bit_stream = bit_stream.reshape(count, bits)
    # Shift-or one bit plane at a time: no (count, bits) uint64
    # temporary, just `bits` cheap column passes.
    codes = np.zeros(count, dtype=np.uint64)
    for b in range(bits):
        codes |= bit_stream[:, b].astype(np.uint64) << np.uint64(b)
    return codes


def pack_words(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``codes`` (< 2**bits) into uint64 words, LSB-first.

    The word layout never straddles a word boundary: each 64-bit word
    carries ``64 // bits`` whole codes (code ``i`` of a word sits at
    bit offset ``i * bits``), the remaining high bits are zero.  That
    is the layout a burst-oriented decoder wants — whole codes fall
    out of one shift-and-mask per position — and what the kernel
    backends decode in bulk.
    """
    if not 1 <= bits <= WORD_BITS:
        raise ValueError(f"bits must be in [1, {WORD_BITS}], got {bits}")
    codes = np.asarray(codes, dtype=np.uint64).reshape(-1)
    if codes.size and int(codes.max()) >= 2**bits:
        raise ValueError(f"code does not fit in {bits} bits")
    cpw = WORD_BITS // bits
    n_words = (codes.size + cpw - 1) // cpw
    padded = np.zeros(n_words * cpw, dtype=np.uint64)
    padded[: codes.size] = codes
    shifts = (np.arange(cpw, dtype=np.uint64) * np.uint64(bits))[None, :]
    return (padded.reshape(n_words, cpw) << shifts).sum(
        axis=1, dtype=np.uint64
    )


def unpack_words(words: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_words`: the first ``count`` codes."""
    if not 1 <= bits <= WORD_BITS:
        raise ValueError(f"bits must be in [1, {WORD_BITS}], got {bits}")
    words = np.asarray(words, dtype=np.uint64).reshape(-1)
    cpw = WORD_BITS // bits
    if count > words.size * cpw:
        raise ValueError(
            f"cannot unpack {count} codes from {words.size} words "
            f"({cpw} codes per word)"
        )
    shifts = (np.arange(cpw, dtype=np.uint64) * np.uint64(bits))[None, :]
    mask = np.uint64(2**bits - 1) if bits < WORD_BITS else np.uint64(0xFFFFFFFFFFFFFFFF)
    codes = (words[:, None] >> shifts) & mask
    return codes.reshape(-1)[:count]


@dataclass
class PackedTensor:
    """A serialized quantized tensor (the DRAM image)."""

    dtype_name: str
    bits: int
    shape: tuple
    group_size: int
    element_data: bytes
    sf_codes: np.ndarray  # uint8 per group
    channel_scales: np.ndarray  # float per channel (second-level factor)
    sv_selectors: Optional[np.ndarray] = None  # uint8 per group (BitMoD)
    zeros: Optional[np.ndarray] = None  # integer zero points (asym int)
    #: Groups per output channel, carried explicitly from the row
    #: layout (inferring it from array-size division silently
    #: mis-scales channel scales for padded/ragged shapes).  ``None``
    #: only for containers written before the field existed.
    groups_per_channel: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        total = len(self.element_data)
        total += self.sf_codes.size  # 1 byte each
        total += self.channel_scales.size * 2  # FP16 second-level
        if self.sv_selectors is not None:
            total += (self.sv_selectors.size * 2 + 7) // 8
        if self.zeros is not None:
            total += self.zeros.size  # 8-bit zero points
        return total

    @property
    def bits_per_weight(self) -> float:
        n = int(np.prod(self.shape))
        return self.total_bytes * 8.0 / n

    @property
    def n_codes(self) -> int:
        """Element codes in the image (includes group padding)."""
        return int(self.sf_codes.size) * int(self.group_size)

    def word_image(self) -> np.ndarray:
        """The element stream re-packed as 64-bit words (lazily built,
        cached on the container).

        Words hold ``64 // bits`` whole codes each (:func:`pack_words`)
        — the burst-friendly layout the kernel backends decode in bulk
        — while ``element_data`` stays the tightly bit-packed DRAM
        image whose byte count the memory model charges for.
        """
        cached = getattr(self, "_word_image", None)
        if cached is None:
            codes = unpack_bits(self.element_data, self.bits, self.n_codes)
            cached = pack_words(codes, self.bits)
            cached.setflags(write=False)
            self._word_image = cached
        return cached


def pack_tensor(w: np.ndarray, config: QuantConfig) -> PackedTensor:
    """Quantize ``w`` and serialize it into a DRAM image.

    Supports integer and BitMoD/grid datatypes (the formats the BitMoD
    accelerator executes) at group or channel granularity; the stored
    ``group_size`` is the *effective* scale-row length (the channel
    size for per-channel quantization), which is what makes the
    container self-describing on unpack.
    """
    if config.granularity == "tensor":
        raise ValueError(
            "per-tensor granularity has no packed container representation; "
            "pack at 'group' or 'channel' granularity"
        )
    dtype = config.resolve_dtype()
    result = quantize_tensor(w, config)
    rows, layout = to_rows(w, result.layout.granularity, result.layout.group_size)
    deq_rows, _ = to_rows(result.w_deq, result.layout.granularity, result.layout.group_size)

    scales = result.scales
    safe_scales = np.where(scales == 0.0, 1.0, scales)

    if isinstance(dtype, IntegerType):
        if dtype.asymmetric:
            codes = np.round(deq_rows / safe_scales + result.zeros)
            zeros = result.zeros.astype(np.int64)
        else:
            offset = dtype.qmax_symmetric
            codes = np.round(deq_rows / safe_scales) + offset
            zeros = None
        codes = codes.astype(np.uint64)
        sv_sel = None
    elif isinstance(dtype, BitMoDType):
        sv_sel = np.zeros(layout.n_rows, dtype=np.uint8)
        codes = np.zeros_like(deq_rows, dtype=np.uint64)
        code_rows = deq_rows / safe_scales
        for gi, sv in enumerate(dtype.special_values):
            mask = result.special_values.reshape(-1) == sv
            if not mask.any():
                continue
            grid = make_extended_float(dtype.bits, sv).grid
            sv_sel[mask] = gi
            codes[mask] = snap_indices(code_rows[mask], grid).astype(np.uint64)
        zeros = None
    elif isinstance(dtype, GridDataType):
        codes = snap_indices(deq_rows / safe_scales, dtype.grid).astype(np.uint64)
        sv_sel = None
        zeros = None
    else:
        raise TypeError(f"packing not supported for datatype {dtype!r}")

    if zeros is not None:
        # Asymmetric integer follows the software convention: FP16
        # scale + zero point per group (Section III-C memory analysis).
        sf_codes = np.ones(layout.n_rows, dtype=np.uint8)
        channel_scales = scales.reshape(-1).astype(np.float64)
    else:
        # Second-level INT8 scaling factors (what quantize_tensor used;
        # re-quantizing the already-quantized scales is idempotent).
        rpc = rows_per_channel(layout)
        sq = quantize_scales(scales, bits=8, rows_per_channel=rpc)
        sf_codes = sq.codes.reshape(-1).astype(np.uint8)
        channel_scales = sq.channel_scales.reshape(-1).astype(np.float64)

    return PackedTensor(
        dtype_name=dtype.name,
        bits=dtype.bits,
        shape=tuple(w.shape),
        # Effective scale-row length: the group size at group
        # granularity, the channel size at channel granularity.
        group_size=rows.shape[1],
        element_data=pack_bits(codes, dtype.bits),
        sf_codes=sf_codes,
        channel_scales=channel_scales,
        sv_selectors=sv_sel,
        zeros=None if zeros is None else zeros.reshape(-1),
        groups_per_channel=rows_per_channel(layout),
    )


def unpack_tensor(packed: PackedTensor, config: QuantConfig) -> np.ndarray:
    """Reconstruct the dequantized tensor from a DRAM image."""
    dtype = config.resolve_dtype()
    k, d = packed.shape
    rows_shape, layout = to_rows(np.zeros(packed.shape), "group", packed.group_size)
    n_rows, g = rows_shape.shape
    codes = unpack_bits(packed.element_data, packed.bits, n_rows * g).reshape(n_rows, g)

    if packed.zeros is not None:
        # Asymmetric integer: per-group FP scale stored directly.
        scales = packed.channel_scales.reshape(n_rows, 1)
    else:
        rpc = packed.groups_per_channel or rows_per_channel(layout)
        scales = (
            packed.sf_codes.astype(np.float64).reshape(-1, rpc)
            * packed.channel_scales.reshape(-1, 1)
        ).reshape(n_rows, 1)

    if isinstance(dtype, IntegerType):
        if dtype.asymmetric:
            deq = (codes.astype(np.float64) - packed.zeros.reshape(n_rows, 1)) * scales
        else:
            deq = (codes.astype(np.float64) - dtype.qmax_symmetric) * scales
    elif isinstance(dtype, BitMoDType):
        deq = np.zeros((n_rows, g))
        for gi, sv in enumerate(dtype.special_values):
            mask = packed.sv_selectors == gi
            if not mask.any():
                continue
            grid = make_extended_float(dtype.bits, sv).grid
            deq[mask] = grid[codes[mask].astype(np.int64)]
        deq *= scales
    elif isinstance(dtype, GridDataType):
        deq = dtype.grid[codes.astype(np.int64)] * scales
    else:
        raise TypeError(f"unpacking not supported for datatype {dtype!r}")
    return from_rows(deq, layout)
