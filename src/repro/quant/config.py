"""Top-level quantization entry point.

:func:`quantize_tensor` glues together granularity handling, the
per-datatype row quantizers, and second-level scaling-factor
quantization into the one call the rest of the codebase uses::

    from repro.quant import QuantConfig, quantize_tensor

    cfg = QuantConfig(dtype="bitmod_fp3", group_size=128)
    result = quantize_tensor(weight, cfg)
    y = x @ result.w_deq.T          # use dequantized weights

``QuantConfig`` defaults mirror the paper: per-group granularity with
group size 128 and INT8 second-level scaling factors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

import numpy as np

from repro.dtypes.base import DataType, GridDataType
from repro.dtypes.extended import BitMoDType
from repro.dtypes.flint import AntAdaptiveType
from repro.dtypes.integer import IntegerType
from repro.dtypes.mx import MXType
from repro.dtypes.olive import OliveType
from repro.dtypes.registry import get_dtype
from repro.quant.adaptive import quantize_rows_ant, quantize_rows_bitmod
from repro.quant.granularity import (
    GRANULARITIES,
    RowLayout,
    from_rows,
    rows_per_channel,
    to_rows,
)
from repro.quant.quantizer import RowQuant, quantize_rows_grid
from repro.quant.scale import quantize_scales

__all__ = ["QuantConfig", "QuantResult", "quantize_tensor", "GRANULARITIES"]


@dataclass(frozen=True)
class QuantConfig:
    """How to quantize a weight tensor.

    Parameters
    ----------
    dtype:
        Registry name (e.g. ``"bitmod_fp3"``) or a datatype instance.
    granularity:
        ``"tensor"``, ``"channel"`` or ``"group"``.
    group_size:
        Weights per group at ``"group"`` granularity (paper: 128; MX
        datatypes override this with their own 32-element block).
    scale_bits:
        Second-level scaling-factor precision; ``None`` keeps FP16
        scales (Table V's baseline).  The paper uses 8.
    clip_ratio:
        Multiplies the absmax before computing scales; < 1 clips
        outliers (used by the OmniQuant integration).
    """

    dtype: Union[str, DataType] = "bitmod_fp4"
    granularity: str = "group"
    group_size: int = 128
    scale_bits: Optional[int] = 8
    clip_ratio: float = 1.0

    def __post_init__(self):
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {', '.join(GRANULARITIES)}; "
                f"got {self.granularity!r}"
            )
        if not isinstance(self.group_size, int) or self.group_size < 1:
            raise ValueError(
                f"group_size must be a positive integer; got {self.group_size!r}"
            )
        if not 0.0 < self.clip_ratio <= 1.0:
            raise ValueError(
                f"clip_ratio must lie in (0, 1]; got {self.clip_ratio!r}"
            )

    def resolve_dtype(self) -> DataType:
        if isinstance(self.dtype, DataType):
            return self.dtype
        return get_dtype(self.dtype)

    def with_(self, **kwargs) -> "QuantConfig":
        """Functional update helper."""
        return replace(self, **kwargs)

    def cache_key(self) -> str:
        """Stable content digest of this config.

        A registry *name* and the instance it resolves to key
        identically, so ``QuantConfig(dtype="bitmod_fp4")`` and
        ``QuantConfig(dtype=get_dtype("bitmod_fp4"))`` share cache
        entries; instances with non-default parameters (e.g. ablation
        special-value sets) key by their full field contents.
        """
        from repro.pipeline.keys import stable_digest

        return stable_digest(
            {
                "dtype": stable_digest(self.resolve_dtype()),
                "granularity": self.granularity,
                "group_size": self.group_size,
                "scale_bits": self.scale_bits,
                "clip_ratio": self.clip_ratio,
            }
        )


@dataclass
class QuantResult:
    """Everything produced by quantizing one tensor."""

    w_deq: np.ndarray
    scales: np.ndarray
    layout: RowLayout
    dtype: DataType
    config: QuantConfig
    zeros: Optional[np.ndarray] = None
    special_values: Optional[np.ndarray] = None
    candidate_idx: Optional[np.ndarray] = None
    sq_error: Optional[np.ndarray] = None

    @property
    def mse(self) -> float:
        """Mean squared error implied by the stored per-row errors."""
        if self.sq_error is None:
            return float("nan")
        k, d = self.layout.shape
        return float(np.sum(self.sq_error) / (k * d))

    @property
    def memory_bits(self) -> float:
        """Total storage bits for this tensor, metadata included."""
        k, d = self.layout.shape
        group = self.layout.group_size if self.layout.granularity == "group" else d
        return self.dtype.memory_bits_per_weight(group) * k * d

    @property
    def bits_per_weight(self) -> float:
        k, d = self.layout.shape
        return self.memory_bits / (k * d)


def _requantize_scales(rq: RowQuant, layout: RowLayout, bits: int) -> None:
    """Replace ``rq``'s scales with their INT-quantized reconstruction
    and refresh the dequantized weights accordingly."""
    rpc = rows_per_channel(layout)
    sq = quantize_scales(rq.scales, bits=bits, rows_per_channel=rpc)
    old = np.where(rq.scales == 0.0, 1.0, rq.scales)
    codes = rq.w_deq / old  # grid-space codes are exactly recoverable
    rq.w_deq = codes * sq.scales
    rq.scales = sq.scales


def quantize_tensor(w: np.ndarray, config: QuantConfig = QuantConfig()) -> QuantResult:
    """Quantize a ``(K, D)`` weight tensor according to ``config``."""
    dtype = config.resolve_dtype()

    group_size = config.group_size
    granularity = config.granularity
    if isinstance(dtype, MXType):
        # MX's metadata granularity is its own block size.
        group_size = dtype.block_size
        granularity = "group"

    rows, layout = to_rows(w, granularity, group_size)

    zeros = None
    if isinstance(dtype, IntegerType):
        clipped = rows
        if config.clip_ratio != 1.0:
            # Clip the row range before computing scales, OmniQuant-style.
            lo = np.min(rows, axis=1, keepdims=True) * config.clip_ratio
            hi = np.max(rows, axis=1, keepdims=True) * config.clip_ratio
            clipped = np.clip(rows, lo, hi)
        w_deq, _codes, scales, zeros = dtype.quantize_rows(clipped)
        err = np.sum((w_deq - rows) ** 2, axis=1)
        rq = RowQuant(w_deq=w_deq, scales=scales, zeros=zeros, sq_error=err)
    elif isinstance(dtype, BitMoDType):
        rq = quantize_rows_bitmod(rows, dtype, config.clip_ratio)
    elif isinstance(dtype, AntAdaptiveType):
        rq = quantize_rows_ant(rows, dtype, config.clip_ratio)
    elif isinstance(dtype, OliveType):
        w_deq, scales = dtype.quantize_rows(rows)
        err = np.sum((w_deq - rows) ** 2, axis=1)
        rq = RowQuant(w_deq=w_deq, scales=scales, sq_error=err)
    elif isinstance(dtype, MXType):
        w_deq, scales = dtype.quantize_rows(rows)
        err = np.sum((w_deq - rows) ** 2, axis=1)
        rq = RowQuant(w_deq=w_deq, scales=scales, sq_error=err)
    elif isinstance(dtype, GridDataType):
        rq = quantize_rows_grid(rows, dtype, config.clip_ratio)
    else:  # pragma: no cover - registry only yields the above
        raise TypeError(f"no quantizer for datatype {dtype!r}")

    # Second-level scaling-factor quantization (Section III-C).  MX
    # scales are already powers of two; integer-asymmetric follows the
    # software convention of FP16 scales unless asked otherwise.
    if (
        config.scale_bits is not None
        and not isinstance(dtype, MXType)
        and not (isinstance(dtype, IntegerType) and zeros is not None)
    ):
        _requantize_scales(rq, layout, config.scale_bits)
        rq.sq_error = np.sum((rq.w_deq - rows) ** 2, axis=1)

    return QuantResult(
        w_deq=from_rows(rq.w_deq, layout),
        scales=rq.scales,
        layout=layout,
        dtype=dtype,
        config=config,
        zeros=rq.zeros,
        special_values=rq.special_values,
        candidate_idx=rq.candidate_idx,
        sq_error=rq.sq_error,
    )
