"""Quantization granularity: per-tensor, per-channel, per-group.

A weight tensor ``W`` with shape ``(K, D)`` (K output channels, D
channel size) is reshaped into a 2-D array of *quantization rows*,
each row being the set of weights that shares one scaling factor:

* per-tensor  -> 1 row of ``K * D`` weights
* per-channel -> ``K`` rows of ``D`` weights
* per-group   -> ``K * D/G`` rows of ``G`` weights

:func:`to_rows` / :func:`from_rows` are exact inverses, and every
quantizer in :mod:`repro.quant` operates on rows, so the granularity
logic lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GRANULARITIES", "RowLayout", "to_rows", "from_rows", "rows_per_channel"]

GRANULARITIES = ("tensor", "channel", "group")


@dataclass(frozen=True)
class RowLayout:
    """Bookkeeping needed to undo :func:`to_rows`."""

    shape: tuple
    granularity: str
    group_size: int
    pad: int

    @property
    def n_rows(self) -> int:
        k, d = self.shape
        if self.granularity == "tensor":
            return 1
        if self.granularity == "channel":
            return k
        return k * ((d + self.pad) // self.group_size)


def _effective_group(d: int, granularity: str, group_size: int) -> int:
    if granularity == "tensor":
        return 0  # sentinel: whole tensor
    if granularity == "channel":
        return d
    if granularity == "group":
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        return group_size
    raise ValueError(f"unknown granularity {granularity!r} (expected one of {GRANULARITIES})")


def to_rows(w: np.ndarray, granularity: str, group_size: int = 128):
    """Reshape ``w`` (K, D) into quantization rows.

    Channels whose size is not a multiple of ``group_size`` are
    zero-padded (the padding is stripped again by :func:`from_rows`;
    padded zeros quantize to zero and do not perturb group scales
    because scales come from absolute maxima).

    Returns
    -------
    (rows, layout)
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("weight tensors are 2-D (K output channels x D)")
    k, d = w.shape
    g = _effective_group(d, granularity, group_size)
    if granularity == "tensor":
        return w.reshape(1, k * d), RowLayout(w.shape, granularity, group_size, 0)
    pad = (-d) % g
    if pad:
        w = np.pad(w, ((0, 0), (0, pad)))
    rows = w.reshape(k * ((d + pad) // g), g)
    return rows, RowLayout((k, d), granularity, group_size, pad)


def from_rows(rows: np.ndarray, layout: RowLayout) -> np.ndarray:
    """Inverse of :func:`to_rows`."""
    k, d = layout.shape
    full = rows.reshape(k, d + layout.pad)
    return np.ascontiguousarray(full[:, :d])


def rows_per_channel(layout: RowLayout) -> int:
    """Number of quantization rows per output channel."""
    if layout.granularity == "tensor":
        return 1
    if layout.granularity == "channel":
        return 1
    k, d = layout.shape
    return (d + layout.pad) // layout.group_size
