"""Second-level quantization of per-group scaling factors.

Section III-C of the paper builds on VS-Quant: the ``D/G`` per-group
scaling factors belonging to one output channel are themselves
symmetrically quantized to a low-precision integer, so the hardware
can dequantize group partial sums with a bit-serial integer multiplier
instead of a floating-point unit.  Table V establishes that INT8
scaling factors are lossless; BitMoD therefore uses 8 bits.

Scaling factors are non-negative by construction, so "symmetric"
quantization degenerates to unsigned: ``sf_q = round(sf / Delta2)``
with ``Delta2 = max(sf_channel) / (2**bits - 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ScaleQuant", "quantize_scales"]


@dataclass
class ScaleQuant:
    """Quantized per-group scaling factors.

    Attributes
    ----------
    scales:
        Reconstructed (dequantized) scaling factors, same shape as the
        input — use these to dequantize weights.
    codes:
        Integer codes in ``[0, 2**bits - 1]``, shape like ``scales``.
    channel_scales:
        The per-channel second-level factor ``Delta2``.
    bits:
        Scaling-factor precision.
    """

    scales: np.ndarray
    codes: np.ndarray
    channel_scales: np.ndarray
    bits: int


def quantize_scales(scales: np.ndarray, bits: int = 8, rows_per_channel: int = 1) -> ScaleQuant:
    """Quantize per-group scaling factors to ``bits``-wide integers.

    Parameters
    ----------
    scales:
        ``(n_rows, 1)`` per-group scaling factors, grouped so that
        consecutive blocks of ``rows_per_channel`` rows belong to one
        output channel (the layout produced by
        :func:`repro.quant.granularity.to_rows`).
    bits:
        Integer precision; the paper uses 8 (Table V shows INT8 is
        lossless, INT2 is not).
    rows_per_channel:
        ``D/G`` — how many groups share one channel, hence one
        second-level factor.
    """
    if bits < 1:
        raise ValueError("scaling factors need at least 1 bit")
    flat = np.asarray(scales, dtype=np.float64).reshape(-1)
    n_rows = flat.size
    if n_rows % rows_per_channel:
        raise ValueError(
            f"{n_rows} rows do not divide into channels of {rows_per_channel}"
        )
    per_chan = flat.reshape(-1, rows_per_channel)
    qmax = 2**bits - 1
    chan_max = np.max(per_chan, axis=1, keepdims=True)
    delta2 = np.where(chan_max > 0.0, chan_max / qmax, 1.0)
    codes = np.clip(np.round(per_chan / delta2), 0, qmax)
    recon = codes * delta2
    # A quantized-to-zero scaling factor would collapse a whole group;
    # clamp to one LSB, mirroring what any sane hardware/driver does.
    recon = np.where((per_chan > 0.0) & (recon == 0.0), delta2, recon)
    codes = np.where((per_chan > 0.0) & (codes == 0.0), 1.0, codes)
    return ScaleQuant(
        scales=recon.reshape(np.asarray(scales).shape),
        codes=codes.reshape(np.asarray(scales).shape),
        channel_scales=delta2,
        bits=bits,
    )
