"""Quantization error metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "nmse", "rmse", "max_abs_error"]


def mse(original: np.ndarray, quantized: np.ndarray) -> float:
    """Mean squared error between tensors."""
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    return float(np.mean((original - quantized) ** 2))


def nmse(original: np.ndarray, quantized: np.ndarray) -> float:
    """MSE normalized by signal power (scale-invariant)."""
    original = np.asarray(original, dtype=np.float64)
    power = float(np.mean(original**2))
    if power == 0.0:
        return 0.0
    return mse(original, quantized) / power


def rmse(original: np.ndarray, quantized: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(original, quantized)))


def max_abs_error(original: np.ndarray, quantized: np.ndarray) -> float:
    """Largest elementwise absolute error."""
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    return float(np.max(np.abs(original - quantized))) if original.size else 0.0
