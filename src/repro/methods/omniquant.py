"""OmniQuant: optimized clipping thresholds (Shao et al., ICLR 2024).

OmniQuant learns, per layer, how aggressively to clip the weight range
before quantization (its "learnable weight clipping"), trading a
little clipping error on the extremes for a finer grid over the body.
The released implementation optimizes the threshold by block-wise
gradient descent; with our layer sizes an exact grid search over the
clip ratio against the layer output error on calibration data reaches
the same optimum and keeps the method deterministic.

The clip ratio feeds :class:`~repro.quant.config.QuantConfig`'s
``clip_ratio``, which every datatype (integer or grid, including
BitMoD) honours — that is why swapping the weight quantizer under
OmniQuant is trivial, exactly the property Table XI exploits.
"""

from __future__ import annotations

import numpy as np

from repro.methods.base import PTQMethod
from repro.quant.config import quantize_tensor

__all__ = ["OmniQuant"]


class OmniQuant(PTQMethod):
    """Per-layer clipping-threshold search in front of any datatype."""

    name = "omniquant"

    def __init__(self, qconfig, clip_grid=None):
        super().__init__(qconfig)
        self.clip_grid = (
            (1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7)
            if clip_grid is None
            else tuple(clip_grid)
        )

    def quantize_weight(self, name: str, w: np.ndarray, x: np.ndarray) -> np.ndarray:
        best_w, best_err = None, np.inf
        for ratio in self.clip_grid:
            cfg = self.qconfig.with_(clip_ratio=ratio)
            w_q = quantize_tensor(w, cfg).w_deq
            err = float(np.mean(((w_q - w) @ x.T) ** 2))
            if err < best_err:
                best_err, best_w = err, w_q
        return best_w
