"""GPTQ: Hessian-based error-compensated quantization (Frantar et al.).

GPTQ quantizes weight columns one at a time and redistributes each
column's rounding error onto the not-yet-quantized columns using the
inverse Hessian of the layer's least-squares objective
(``H = X^T X``).  This is the full OBQ-style algorithm with the
standard practical choices: Cholesky-based inverse, percdamp damping,
and per-group scales frozen when the group's first column is reached.

The quantizer for each column is the configured datatype's row
quantizer, so GPTQ composes with integer *and* grid datatypes
(including BitMoD families, where the group's special value is chosen
when the group is frozen).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import GridDataType, quantize_to_grid
from repro.dtypes.extended import BitMoDType
from repro.dtypes.integer import IntegerType
from repro.methods.base import PTQMethod
from repro.quant.adaptive import quantize_rows_bitmod
from repro.quant.quantizer import quantize_rows_grid

__all__ = ["GPTQ"]


class _GroupQuantizer:
    """Per-group column quantizer with scales frozen at group entry."""

    def __init__(self, dtype, w_group: np.ndarray):
        """``w_group``: the (out, group_size) slice used to fix scales."""
        self.dtype = dtype
        if isinstance(dtype, IntegerType):
            _, _, self.scales, self.zeros = dtype.quantize_rows(w_group)
        elif isinstance(dtype, BitMoDType):
            rq = quantize_rows_bitmod(w_group, dtype)
            self.scales = rq.scales
            best = rq.candidate_idx
            self.grids = [dtype.candidates[i].grid for i in range(len(dtype.candidates))]
            self.grid_idx = best
        elif isinstance(dtype, GridDataType):
            rq = quantize_rows_grid(w_group, dtype)
            self.scales = rq.scales
        else:
            raise TypeError(f"GPTQ does not support datatype {dtype!r}")

    def quantize_column(self, col: np.ndarray) -> np.ndarray:
        """Quantize one weight column with the frozen group params."""
        s = self.scales[:, 0]
        if isinstance(self.dtype, IntegerType):
            if self.dtype.asymmetric:
                qmax = self.dtype.qmax_asymmetric
                z = self.zeros[:, 0]
                q = np.clip(np.round(col / s) + z, 0, qmax)
                return (q - z) * s
            qmax = self.dtype.qmax_symmetric
            q = np.clip(np.round(col / s), -qmax, qmax)
            return q * s
        if isinstance(self.dtype, BitMoDType):
            out = np.empty_like(col)
            scaled = col / s
            for gi, grid in enumerate(self.grids):
                mask = self.grid_idx == gi
                if mask.any():
                    out[mask] = quantize_to_grid(scaled[mask], grid) * s[mask]
            return out
        return quantize_to_grid(col / s, self.dtype.grid) * s


class GPTQ(PTQMethod):
    """Error-compensated quantization against the layer Hessian."""

    name = "gptq"

    def __init__(self, qconfig, percdamp: float = 0.01):
        super().__init__(qconfig)
        self.percdamp = percdamp

    def quantize_weight(self, name: str, w: np.ndarray, x: np.ndarray) -> np.ndarray:
        dtype = self.qconfig.resolve_dtype()
        out_f, in_f = w.shape
        group = self.qconfig.group_size
        if self.qconfig.granularity == "channel":
            group = in_f

        hessian = x.T @ x
        damp = self.percdamp * float(np.mean(np.diag(hessian))) + 1e-8
        hessian[np.diag_indices(in_f)] += damp
        # Upper Cholesky factor of the inverse Hessian (inv(H) = U^T U),
        # the standard GPTQ trick.  numpy's cholesky returns the lower
        # factor L with inv(H) = L L^T, so U = L^T.
        hinv = np.linalg.cholesky(np.linalg.inv(hessian)).T

        w_work = w.astype(np.float64).copy()
        w_q = np.empty_like(w_work)
        quantizer = None
        for j in range(in_f):
            if j % group == 0:
                stop = min(j + group, in_f)
                quantizer = _GroupQuantizer(dtype, w_work[:, j:stop])
            col = w_work[:, j]
            q_col = quantizer.quantize_column(col)
            w_q[:, j] = q_col
            err = (col - q_col) / hinv[j, j]
            if j + 1 < in_f:
                w_work[:, j + 1:] -= np.outer(err, hinv[j, j + 1:])
        return w_q
