"""Software-only PTQ methods, each composable with any datatype."""

from typing import Dict, Type

from repro.methods.awq import AWQ
from repro.methods.base import PTQMethod, collect_calibration, layer_output_mse
from repro.methods.gptq import GPTQ
from repro.methods.omniquant import OmniQuant
from repro.methods.quarot import QuaRot, hadamard_matrix, random_orthogonal
from repro.methods.rtn import RTN
from repro.methods.smoothquant import SmoothQuant, smooth_scales

#: Registry-name lookup used by pipeline cell specs (a method must be
#: reconstructible by name + hyperparams inside worker processes).
METHODS: Dict[str, Type[PTQMethod]] = {
    cls.name: cls for cls in (RTN, AWQ, GPTQ, OmniQuant, SmoothQuant, QuaRot)
}


def get_method(name: str) -> Type[PTQMethod]:
    """Look up a PTQ method class by its registry name."""
    try:
        return METHODS[name]
    except KeyError:
        known = ", ".join(sorted(METHODS))
        raise KeyError(f"unknown PTQ method {name!r}; known: {known}") from None


__all__ = [
    "PTQMethod",
    "METHODS",
    "get_method",
    "collect_calibration",
    "layer_output_mse",
    "RTN",
    "AWQ",
    "GPTQ",
    "OmniQuant",
    "SmoothQuant",
    "smooth_scales",
    "QuaRot",
    "hadamard_matrix",
    "random_orthogonal",
]
