"""Software-only PTQ methods, each composable with any datatype."""

from repro.methods.awq import AWQ
from repro.methods.base import PTQMethod, collect_calibration, layer_output_mse
from repro.methods.gptq import GPTQ
from repro.methods.omniquant import OmniQuant
from repro.methods.quarot import QuaRot, hadamard_matrix, random_orthogonal
from repro.methods.rtn import RTN
from repro.methods.smoothquant import SmoothQuant, smooth_scales

__all__ = [
    "PTQMethod",
    "collect_calibration",
    "layer_output_mse",
    "RTN",
    "AWQ",
    "GPTQ",
    "OmniQuant",
    "SmoothQuant",
    "smooth_scales",
    "QuaRot",
    "hadamard_matrix",
    "random_orthogonal",
]
