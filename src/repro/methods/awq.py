"""AWQ: activation-aware weight quantization (Lin et al., MLSys 2024).

AWQ's observation: ~1% of weight channels are *salient* because their
input activations are large; protecting them matters far more than
protecting large weights.  Its mechanism: scale up weight columns by a
per-input-channel factor ``s_j`` derived from activation magnitude
(so they quantize more precisely), and fold ``1/s_j`` into the
preceding operation.  The scale exponent ``alpha`` in

    s_j = mean(|X_j|) ** alpha   (normalized)

is grid-searched per layer to minimize the layer output error on
calibration data — the same search the released AWQ performs.

For weight-only evaluation the fold-back is algebraically exact, so
the effective dequantized weight is ``Q(W * s) / s``.
"""

from __future__ import annotations

import numpy as np

from repro.methods.base import PTQMethod
from repro.quant.config import quantize_tensor

__all__ = ["AWQ"]


class AWQ(PTQMethod):
    """Activation-aware scale search in front of any datatype."""

    name = "awq"

    def __init__(self, qconfig, alpha_grid=None):
        super().__init__(qconfig)
        self.alpha_grid = (
            tuple(np.linspace(0.0, 1.0, 11)) if alpha_grid is None else tuple(alpha_grid)
        )

    def quantize_weight(self, name: str, w: np.ndarray, x: np.ndarray) -> np.ndarray:
        act_mag = np.mean(np.abs(x), axis=0)
        act_mag = np.maximum(act_mag, 1e-8)
        # Normalize so alpha=0 reduces to RTN exactly.
        act_mag = act_mag / np.exp(np.mean(np.log(act_mag)))

        best_w, best_err = None, np.inf
        for alpha in self.alpha_grid:
            s = act_mag**alpha
            w_q = quantize_tensor(w * s[None, :], self.qconfig).w_deq / s[None, :]
            err = float(np.mean(((w_q - w) @ x.T) ** 2))
            if err < best_err:
                best_err, best_w = err, w_q
        return best_w
