"""SmoothQuant: activation-difficulty migration (Xiao et al., ICML 2023).

Activations are harder to quantize than weights because of outlier
channels; SmoothQuant migrates part of that difficulty to the weights
with a per-channel factor

    s_j = max|X_j|^alpha / max|W_:,j|^(1-alpha)      (alpha = 0.5)

scaling activations down (``X / s``) and weights up (``W * s``).  The
division is folded into the preceding normalization gain, so only
norm-preceded linears (Q/K/V and the MLP input projections) are
smoothed — the same restriction as the released SmoothQuant.

Two uses here:

* :meth:`SmoothQuant.smooth_model` applies the migration and returns
  the smoothed-but-unquantized model plus a weight-quantization hook —
  supporting Table XII, where BitMoD/INT weight datatypes are applied
  on top of SmoothQuant-calibrated models;
* ``act_bits=8`` additionally enables INT8 dynamic per-tensor
  activation quantization inside the returned model (the "SQ8"
  columns).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.methods.base import PTQMethod, collect_calibration
from repro.models.transformer import CausalLM
from repro.quant.config import quantize_tensor

__all__ = ["SmoothQuant", "smooth_scales"]

#: Linears whose input comes straight from a norm, keyed by the norm's
#: weight suffix.
_NORM_CONSUMERS = {
    "attn_norm": ("q_proj", "k_proj", "v_proj"),
    "mlp_norm": ("gate_proj", "up_proj", "fc1"),
}


def smooth_scales(x: np.ndarray, ws, alpha: float = 0.5) -> np.ndarray:
    """Per-input-channel migration factors for one norm's consumers."""
    act_max = np.maximum(np.max(np.abs(x), axis=0), 1e-8)
    w_max = np.maximum.reduce([np.max(np.abs(w), axis=0) for w in ws])
    w_max = np.maximum(w_max, 1e-8)
    s = act_max**alpha / w_max ** (1.0 - alpha)
    # Normalize to keep overall weight magnitude stable.
    return s / np.exp(np.mean(np.log(s)))


class SmoothQuant(PTQMethod):
    """Difficulty migration + pluggable weight datatype."""

    name = "smoothquant"

    def __init__(self, qconfig, alpha: float = 0.5, act_bits: Optional[int] = None):
        super().__init__(qconfig)
        self.alpha = alpha
        self.act_bits = act_bits

    # ------------------------------------------------------------------
    def smooth_model(
        self, model: CausalLM, calib: Optional[Dict[str, np.ndarray]] = None
    ) -> CausalLM:
        """Return a smoothed (but not yet quantized) copy of ``model``."""
        if calib is None:
            calib = collect_calibration(model)
        weights = dict(model.weights)
        for layer in range(model.config.sim_layers):
            for norm_suffix, consumers in _NORM_CONSUMERS.items():
                names = [
                    f"layers.{layer}.{c}"
                    for c in consumers
                    if f"layers.{layer}.{c}" in weights
                ]
                if not names:
                    continue
                x = calib[names[0]]
                s = smooth_scales(x, [weights[n] for n in names], self.alpha)
                for n in names:
                    weights[n] = weights[n] * s[None, :]
                norm_name = f"layers.{layer}.{norm_suffix}"
                weights[norm_name] = weights[norm_name] / s
        smoothed = CausalLM(model.config, seed=model.seed, weights=weights)
        if self.act_bits is not None:
            smoothed.act_quant_bits = self.act_bits
        return smoothed

    def quantize_weight(self, name: str, w: np.ndarray, x: np.ndarray) -> np.ndarray:
        # Migration happens at model level; per-layer step is plain RTN.
        return quantize_tensor(w, self.qconfig).w_deq

    def quantize_model(
        self, model: CausalLM, calib: Optional[Dict[str, np.ndarray]] = None
    ) -> CausalLM:
        smoothed = self.smooth_model(model, calib)

        def fn(_name: str, w: np.ndarray) -> np.ndarray:
            return quantize_tensor(w, self.qconfig).w_deq

        quantized = smoothed.apply_quantizer(fn)
        if self.act_bits is not None:
            quantized.act_quant_bits = self.act_bits
        return quantized
