"""QuaRot: rotation-based outlier removal (Ashkboos et al., 2024).

QuaRot multiplies the residual stream by a random orthogonal
(Hadamard) matrix, exploiting the computational invariance
``(W R)(R^T x) = W x``.  The rotation mixes outlier channels into all
channels, making weights and activations nearly Gaussian — great for
*activation* quantization, but for weight-only quantization it also
destroys the per-group asymmetry and the concentrated distributions
that grouped datatypes exploit, which is why weight-only QuaRot trails
AWQ/OmniQuant in the paper's Table XI.

For weight-only evaluation the effective dequantized weight is
``Q(W R) R^T``: the input-side rotation cancels algebraically, so no
runtime rotation is needed.
"""

from __future__ import annotations

import numpy as np

from repro.methods.base import PTQMethod
from repro.quant.config import quantize_tensor

__all__ = ["QuaRot", "hadamard_matrix", "random_orthogonal"]


def hadamard_matrix(n: int) -> np.ndarray:
    """Normalized Sylvester-Hadamard matrix (``n`` a power of two)."""
    if n <= 0 or n & (n - 1):
        raise ValueError("Hadamard size must be a positive power of two")
    h = np.ones((1, 1))
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    return h / np.sqrt(n)


def random_orthogonal(n: int, seed: int = 0) -> np.ndarray:
    """Haar-ish random orthogonal matrix via QR."""
    rng = np.random.default_rng(seed)
    q, r = np.linalg.qr(rng.standard_normal((n, n)))
    return q * np.sign(np.diag(r))


class QuaRot(PTQMethod):
    """Rotate the weight input dimension before quantizing."""

    name = "quarot"

    def __init__(self, qconfig, seed: int = 1234):
        super().__init__(qconfig)
        self.seed = seed
        self._cache = {}

    def _rotation(self, n: int) -> np.ndarray:
        if n not in self._cache:
            if n & (n - 1) == 0:
                self._cache[n] = hadamard_matrix(n)
            else:
                self._cache[n] = random_orthogonal(n, self.seed)
        return self._cache[n]

    def quantize_weight(self, name: str, w: np.ndarray, x: np.ndarray) -> np.ndarray:
        rot = self._rotation(w.shape[1])
        w_q = quantize_tensor(w @ rot, self.qconfig).w_deq
        return w_q @ rot.T
