"""Shared infrastructure for software-only PTQ methods.

Every method follows the same contract: given a :class:`CausalLM`, a
:class:`QuantConfig` describing the target datatype, and calibration
activations, produce a quantized copy of the model.  The methods only
*adjust* how weights are presented to the quantizer (scaling, clipping,
rotation, error compensation) — the datatype itself is pluggable,
which is exactly the property the paper exploits to drop BitMoD
datatypes into AWQ/OmniQuant/SmoothQuant (Section V-E).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.models.corpus import sample_tokens
from repro.models.transformer import CausalLM
from repro.quant.config import QuantConfig, quantize_tensor

__all__ = ["PTQMethod", "collect_calibration", "layer_output_mse"]


def collect_calibration(
    model: CausalLM, dataset: str = "wikitext", batch: int = 2, seq: int = 64
) -> Dict[str, np.ndarray]:
    """Input activations of every block linear on a calibration batch.

    Mirrors the 128-sample calibration sets used by AWQ/GPTQ et al.,
    scaled to the substrate.
    """
    tokens = sample_tokens(dataset, model.config.sim_vocab, batch, seq, seed_offset=997)
    return model.collect_activations(tokens)


def layer_output_mse(x: np.ndarray, w: np.ndarray, w_q: np.ndarray) -> float:
    """MSE of a linear layer's output under weight perturbation.

    The orientation is explicit: ``x`` is ``(n_samples, D)`` input
    activations and ``w`` / ``w_q`` are ``(K, D)`` weights, matching
    :func:`collect_calibration` and ``CausalLM.named_linears``.  (The
    old shape heuristic silently guessed wrong for square layers.)
    """
    if x.ndim != 2 or w.ndim != 2:
        raise ValueError(f"expected 2-D x and w, got {x.shape} and {w.shape}")
    if w_q.shape != w.shape:
        raise ValueError(f"w_q shape {w_q.shape} != w shape {w.shape}")
    if x.shape[1] != w.shape[1]:
        raise ValueError(
            f"x is (n_samples, D)={x.shape} but w is (K, D)={w.shape}; "
            "the trailing dimensions must agree"
        )
    delta = x @ (w_q - w).T
    return float(np.mean(delta**2))


class PTQMethod(abc.ABC):
    """A post-training quantization method."""

    name: str = "abstract"

    def __init__(self, qconfig: QuantConfig):
        self.qconfig = qconfig

    def cache_key(self) -> str:
        """Stable digest: method name + datatype config + hyperparams.

        Hyperparameters are collected from the instance dict (minus
        the quant config and private state), so subclasses get correct
        keys without overriding — an ``AWQ(alpha_grid=...)`` with a
        custom grid keys differently from the default instance.
        """
        from repro.pipeline.keys import stable_digest

        params = {
            k: v
            for k, v in vars(self).items()
            if k != "qconfig" and not k.startswith("_")
        }
        return stable_digest(
            {"method": self.name, "quant": self.qconfig.cache_key(), "params": params}
        )

    @abc.abstractmethod
    def quantize_weight(
        self, name: str, w: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        """Return the dequantized weight for one layer.

        ``x`` is the calibration input activation ``(n_samples, D)``.
        """

    def quantize_model(
        self, model: CausalLM, calib: Optional[Dict[str, np.ndarray]] = None
    ) -> CausalLM:
        """Quantize every block linear of ``model``."""
        if calib is None:
            calib = collect_calibration(model)

        def fn(layer_name: str, w: np.ndarray) -> np.ndarray:
            x = calib.get(layer_name)
            if x is None:
                return quantize_tensor(w, self.qconfig).w_deq
            return self.quantize_weight(layer_name, w, x)

        return model.apply_quantizer(fn)
