"""Shared infrastructure for software-only PTQ methods.

Every method follows the same contract: given a :class:`CausalLM`, a
:class:`QuantConfig` describing the target datatype, and calibration
activations, produce a quantized copy of the model.  The methods only
*adjust* how weights are presented to the quantizer (scaling, clipping,
rotation, error compensation) — the datatype itself is pluggable,
which is exactly the property the paper exploits to drop BitMoD
datatypes into AWQ/OmniQuant/SmoothQuant (Section V-E).
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

from repro.models.corpus import sample_tokens
from repro.models.transformer import CausalLM
from repro.quant.config import QuantConfig, quantize_tensor

__all__ = ["PTQMethod", "collect_calibration", "layer_output_mse"]


def collect_calibration(
    model: CausalLM, dataset: str = "wikitext", batch: int = 2, seq: int = 64
) -> Dict[str, np.ndarray]:
    """Input activations of every block linear on a calibration batch.

    Mirrors the 128-sample calibration sets used by AWQ/GPTQ et al.,
    scaled to the substrate.
    """
    tokens = sample_tokens(dataset, model.config.sim_vocab, batch, seq, seed_offset=997)
    return model.collect_activations(tokens)


def layer_output_mse(x: np.ndarray, w: np.ndarray, w_q: np.ndarray) -> float:
    """MSE of a linear layer's output under weight perturbation."""
    delta = (w_q - w) @ x.T if x.shape[0] < w.shape[0] else x @ (w_q - w).T
    return float(np.mean(delta**2))


class PTQMethod(abc.ABC):
    """A post-training quantization method."""

    name: str = "abstract"

    def __init__(self, qconfig: QuantConfig):
        self.qconfig = qconfig

    @abc.abstractmethod
    def quantize_weight(
        self, name: str, w: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        """Return the dequantized weight for one layer.

        ``x`` is the calibration input activation ``(n_samples, D)``.
        """

    def quantize_model(
        self, model: CausalLM, calib: Dict[str, np.ndarray] = None
    ) -> CausalLM:
        """Quantize every block linear of ``model``."""
        if calib is None:
            calib = collect_calibration(model)

        def fn(layer_name: str, w: np.ndarray) -> np.ndarray:
            x = calib.get(layer_name)
            if x is None:
                return quantize_tensor(w, self.qconfig).w_deq
            return self.quantize_weight(layer_name, w, x)

        return model.apply_quantizer(fn)
