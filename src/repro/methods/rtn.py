"""Round-to-nearest (RTN) — the no-optimization baseline method."""

from __future__ import annotations

import numpy as np

from repro.methods.base import PTQMethod
from repro.quant.config import quantize_tensor

__all__ = ["RTN"]


class RTN(PTQMethod):
    """Plain round-to-nearest quantization with the configured dtype."""

    name = "rtn"

    def quantize_weight(self, name: str, w: np.ndarray, x: np.ndarray) -> np.ndarray:
        return quantize_tensor(w, self.qconfig).w_deq
