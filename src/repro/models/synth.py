"""Synthetic weight generation with family-faithful statistics.

The generator reproduces the four distributional phenomena that drive
LLM weight-quantization behaviour (paper Section II-C and the
quantization literature it cites):

1. **Gaussian-like body with heavy tails** — Student-t with
   per-family degrees of freedom; heavy tails stretch the absmax and
   hence the quantization step.
2. **Per-channel scale variation** — log-normal per-output-channel
   scales (the Fig. 2 phenomenon: per-tensor range >> per-group
   range).
3. **Rare large outliers** — sparse entries many sigmas out, the
   phenomenon OliVe targets.
4. **Per-group asymmetry** — slowly varying mean shifts along the
   input dimension, so individual 128-weight groups can be solely
   positive/negative shifted even though the tensor is symmetric
   overall.  This is what rewards asymmetric datatypes and BitMoD's
   EA variants.

Each weight matrix is normalized to unit expected element variance
before the ``1/sqrt(fan_in)`` init scaling, so forward passes stay
well conditioned regardless of profile.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.models.config import ModelConfig, WeightProfile

__all__ = ["generate_weight_matrix", "generate_model_weights"]


def generate_weight_matrix(
    rng: np.random.Generator,
    out_features: int,
    in_features: int,
    profile: WeightProfile,
    group_size: int = 128,
    scale: float | None = None,
) -> np.ndarray:
    """One ``(out_features, in_features)`` weight matrix.

    ``scale`` defaults to ``1/sqrt(in_features)``.
    """
    if scale is None:
        scale = 1.0 / np.sqrt(in_features)
    df = profile.tail_df
    if df <= 2.0:
        raise ValueError("tail_df must exceed 2 for finite variance")
    body = rng.standard_t(df, size=(out_features, in_features))
    # Empirical normalization: the analytic t std diverges as df -> 2.
    body /= max(body.std(), 1e-12)

    chan = np.exp(rng.normal(0.0, profile.channel_spread, size=(out_features, 1)))
    chan /= np.sqrt(np.mean(chan**2))
    w = body * chan

    # Per-group mean shifts along the input dimension.
    if profile.group_shift > 0.0:
        n_groups = (in_features + group_size - 1) // group_size
        shifts = rng.normal(0.0, profile.group_shift, size=(out_features, n_groups))
        w += np.repeat(shifts, group_size, axis=1)[:, :in_features] * chan

    # Sparse outliers.
    if profile.outlier_rate > 0.0:
        n_out = rng.binomial(out_features * in_features, profile.outlier_rate)
        if n_out > 0:
            rows = rng.integers(0, out_features, size=n_out)
            cols = rng.integers(0, in_features, size=n_out)
            mags = profile.outlier_mag * (1.0 + rng.exponential(0.4, size=n_out))
            signs = rng.choice([-1.0, 1.0], size=n_out)
            w[rows, cols] = signs * mags * chan[rows, 0]

    w /= np.sqrt(np.mean(w**2))
    return (w * scale).astype(np.float64)


def generate_model_weights(config: ModelConfig, seed: int = 0) -> dict:
    """All weights of the sim-scale model as ``{name: array}``.

    Layer weights are keyed ``"layers.<i>.<name>"``; embeddings and
    head are ``"embed"``, ``"lm_head"``, plus ``"final_norm"``.
    """
    # zlib.crc32 is deterministic across processes (str hash() is not).
    rng = np.random.default_rng(seed ^ zlib.crc32(config.name.encode()))
    h = config.sim_hidden
    weights = {}

    embed_profile = WeightProfile(
        tail_df=max(config.profile.tail_df, 5.0),
        channel_spread=0.2,
        outlier_rate=0.0,
        group_shift=0.0,
    )
    weights["embed"] = generate_weight_matrix(
        rng, config.sim_vocab, h, embed_profile, scale=1.0 / np.sqrt(h)
    )
    weights["lm_head"] = (
        weights["embed"]
        if config.tied_embeddings
        else generate_weight_matrix(
            rng, config.sim_vocab, h, embed_profile, scale=1.0 / np.sqrt(h)
        )
    )

    shapes = config.sim_shapes()
    depth_scale = 1.0 / np.sqrt(2.0 * config.sim_layers)
    for layer in range(config.sim_layers):
        for name, (out_f, in_f) in shapes.items():
            base = 1.0 / np.sqrt(in_f)
            # Residual-writing projections are scaled down with depth,
            # the standard GPT-2-style init that keeps the residual
            # stream variance bounded.
            sc = base * depth_scale if name in ("o_proj", "fc2", "down_proj") else base
            weights[f"layers.{layer}.{name}"] = generate_weight_matrix(
                rng, out_f, in_f, config.profile, scale=sc
            )
        weights[f"layers.{layer}.attn_norm"] = _norm_gain(rng, h, config.profile)
        weights[f"layers.{layer}.mlp_norm"] = _norm_gain(rng, h, config.profile)
    weights["final_norm"] = np.ones(h)
    return weights


def _norm_gain(rng: np.random.Generator, h: int, profile: WeightProfile) -> np.ndarray:
    """Norm gain vector with a few outsized channels.

    This plants the activation-outlier channels observed in real LLMs
    (strongest in the OPT family): a handful of hidden channels whose
    activations dwarf the rest, so quantization error on the matching
    weight columns is disproportionately amplified downstream.
    """
    gain = np.ones(h)
    n_out = int(round(profile.act_outlier_rate * h))
    if n_out > 0:
        idx = rng.choice(h, size=n_out, replace=False)
        gain[idx] = profile.act_outlier_mag * (
            1.0 + rng.exponential(0.25, size=n_out)
        )
    return gain
