"""Synthetic evaluation corpora.

Stand-ins for Wikitext-2 and C4: token streams drawn from a seeded
first-order Markov chain with Zipfian marginals, so consecutive tokens
are correlated the way natural text is.  The two datasets differ in
seed, vocabulary concentration, and transition temperature — enough to
give each its own numerical fingerprint while staying deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CorpusSpec", "CORPORA", "sample_tokens", "make_eval_batch"]


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of one synthetic corpus."""

    name: str
    seed: int
    zipf_alpha: float
    branching: int  # plausible next-tokens per state


CORPORA = {
    "wikitext": CorpusSpec(name="wikitext", seed=101, zipf_alpha=1.1, branching=48),
    "c4": CorpusSpec(name="c4", seed=202, zipf_alpha=1.25, branching=64),
}


def _zipf_probs(vocab: int, alpha: float) -> np.ndarray:
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    p = ranks**-alpha
    return p / p.sum()


def sample_tokens(
    dataset: str, vocab: int, batch: int, seq: int, seed_offset: int = 0
) -> np.ndarray:
    """Deterministically sample a ``(batch, seq)`` token array."""
    try:
        spec = CORPORA[dataset]
    except KeyError:
        known = ", ".join(sorted(CORPORA))
        raise KeyError(f"unknown dataset {dataset!r}; known: {known}") from None
    rng = np.random.default_rng(spec.seed + seed_offset)
    marginal = _zipf_probs(vocab, spec.zipf_alpha)

    # Sparse Markov transitions: every token has `branching` successors
    # sampled from the marginal, with Zipf-weighted transition probs.
    successors = rng.choice(vocab, size=(vocab, spec.branching), p=marginal)
    trans_probs = _zipf_probs(spec.branching, 1.0)

    out = np.empty((batch, seq), dtype=np.int64)
    state = rng.choice(vocab, size=batch, p=marginal)
    for t in range(seq):
        out[:, t] = state
        picks = rng.choice(spec.branching, size=batch, p=trans_probs)
        state = successors[state, picks]
    return out


def make_eval_batch(dataset: str, vocab: int, batch: int = 4, seq: int = 128) -> np.ndarray:
    """The canonical evaluation batch used by the perplexity proxy."""
    return sample_tokens(dataset, vocab, batch, seq)
