"""The six benchmark LLMs of the paper (Section V-A).

Full-size architecture parameters follow the public model cards; FP16
perplexity and accuracy anchors are the paper's own Table VI / Table
VII numbers.  Weight profiles encode the per-family distribution
statistics reported across the quantization literature: OPT has the
heaviest outlier structure (its 3-bit collapse in Table VI), Llama-2
the mildest tails, and Llama-3-8B is notoriously quantization
sensitive (largest 3-bit degradation among the Llamas).
"""

from __future__ import annotations

from typing import Dict, List

from repro.models.config import ModelConfig, WeightProfile

__all__ = ["MODEL_ZOO", "get_model_config", "list_models", "FIG1_MODELS", "TABLE1_MODELS"]


def _opt_1_3b() -> ModelConfig:
    return ModelConfig(
        name="opt-1.3b",
        family="opt",
        hidden=2048,
        n_layers=24,
        n_heads=32,
        n_kv_heads=32,
        intermediate=8192,
        vocab=50272,
        gated_mlp=False,
        tied_embeddings=True,
        sim_hidden=256,
        sim_layers=4,
        sim_heads=8,
        sim_kv_heads=8,
        sim_intermediate=1024,
        sim_vocab=2048,
        profile=WeightProfile(
            tail_df=2.5,
            channel_spread=0.5,
            outlier_rate=0.0015,
            outlier_mag=8.0,
            group_shift=0.45,
            act_outlier_rate=0.03,
            act_outlier_mag=5.0,
        ),
        fp16_ppl={"wikitext": 14.62, "c4": 14.72},
        fp16_acc={"hellaswag": 53.72, "winogrande": 59.43, "piqa": 72.41},
    )


def _phi_2b() -> ModelConfig:
    return ModelConfig(
        name="phi-2b",
        family="phi",
        hidden=2560,
        n_layers=32,
        n_heads=32,
        n_kv_heads=32,
        intermediate=10240,
        vocab=51200,
        gated_mlp=False,
        sim_hidden=256,
        sim_layers=4,
        sim_heads=8,
        sim_kv_heads=8,
        sim_intermediate=1024,
        sim_vocab=2048,
        profile=WeightProfile(
            tail_df=4.0,
            channel_spread=0.40,
            outlier_rate=0.001,
            outlier_mag=10.0,
            group_shift=0.25,
            act_outlier_rate=0.02,
            act_outlier_mag=4.0,
        ),
        fp16_ppl={"wikitext": 9.71, "c4": 12.74},
        fp16_acc={"hellaswag": 73.74, "winogrande": 75.77, "piqa": 79.22},
    )


def _yi_6b() -> ModelConfig:
    return ModelConfig(
        name="yi-6b",
        family="yi",
        hidden=4096,
        n_layers=32,
        n_heads=32,
        n_kv_heads=4,
        intermediate=11008,
        vocab=64000,
        gated_mlp=True,
        sim_hidden=256,
        sim_layers=4,
        sim_heads=8,
        sim_kv_heads=2,
        sim_intermediate=768,
        sim_vocab=2048,
        profile=WeightProfile(
            tail_df=4.5,
            channel_spread=0.35,
            outlier_rate=0.0008,
            outlier_mag=9.0,
            group_shift=0.20,
            act_outlier_rate=0.015,
            act_outlier_mag=3.5,
        ),
        fp16_ppl={"wikitext": 5.84, "c4": 8.91},
        fp16_acc={"hellaswag": 74.96, "winogrande": 70.72, "piqa": 78.78},
    )


def _llama2_7b() -> ModelConfig:
    return ModelConfig(
        name="llama-2-7b",
        family="llama2",
        hidden=4096,
        n_layers=32,
        n_heads=32,
        n_kv_heads=32,
        intermediate=11008,
        vocab=32000,
        gated_mlp=True,
        sim_hidden=256,
        sim_layers=4,
        sim_heads=8,
        sim_kv_heads=8,
        sim_intermediate=768,
        sim_vocab=2048,
        profile=WeightProfile(
            tail_df=6.0,
            channel_spread=0.28,
            outlier_rate=0.0004,
            outlier_mag=8.0,
            group_shift=0.18,
            act_outlier_rate=0.01,
            act_outlier_mag=3.0,
        ),
        fp16_ppl={"wikitext": 5.47, "c4": 6.97},
        fp16_acc={"hellaswag": 75.98, "winogrande": 69.06, "piqa": 79.11},
    )


def _llama2_13b() -> ModelConfig:
    return ModelConfig(
        name="llama-2-13b",
        family="llama2",
        hidden=5120,
        n_layers=40,
        n_heads=40,
        n_kv_heads=40,
        intermediate=13824,
        vocab=32000,
        gated_mlp=True,
        sim_hidden=320,
        sim_layers=4,
        sim_heads=8,
        sim_kv_heads=8,
        sim_intermediate=960,
        sim_vocab=2048,
        profile=WeightProfile(
            tail_df=7.5,
            channel_spread=0.22,
            outlier_rate=0.0003,
            outlier_mag=7.0,
            group_shift=0.15,
            act_outlier_rate=0.008,
            act_outlier_mag=2.5,
        ),
        fp16_ppl={"wikitext": 4.88, "c4": 6.47},
        fp16_acc={"hellaswag": 79.39, "winogrande": 72.38, "piqa": 80.5},
    )


def _llama3_8b() -> ModelConfig:
    return ModelConfig(
        name="llama-3-8b",
        family="llama3",
        hidden=4096,
        n_layers=32,
        n_heads=32,
        n_kv_heads=8,
        intermediate=14336,
        vocab=128256,
        gated_mlp=True,
        sim_hidden=256,
        sim_layers=4,
        sim_heads=8,
        sim_kv_heads=2,
        sim_intermediate=1024,
        sim_vocab=2048,
        profile=WeightProfile(
            tail_df=3.8,
            channel_spread=0.38,
            outlier_rate=0.0008,
            outlier_mag=8.0,
            group_shift=0.24,
            act_outlier_rate=0.015,
            act_outlier_mag=3.5,
        ),
        fp16_ppl={"wikitext": 6.13, "c4": 8.88},
        fp16_acc={"hellaswag": 79.18, "winogrande": 72.85, "piqa": 80.74},
    )


MODEL_ZOO: Dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in (
        _opt_1_3b(),
        _phi_2b(),
        _yi_6b(),
        _llama2_7b(),
        _llama2_13b(),
        _llama3_8b(),
    )
}

#: The four models of Fig. 1 / Table I / Table II.
FIG1_MODELS = ["opt-1.3b", "phi-2b", "llama-2-7b", "llama-2-13b"]
TABLE1_MODELS = FIG1_MODELS


def get_model_config(name: str) -> ModelConfig:
    """Look up a model configuration by name."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model {name!r}; known: {known}") from None


def list_models() -> List[str]:
    return sorted(MODEL_ZOO)
