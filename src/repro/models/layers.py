"""Numpy building blocks for the transformer substrate.

Everything operates on float64 internally (the FP16 activation
behaviour relevant to the paper lives in the hardware model, not
here); shapes follow the ``(batch, seq, features)`` convention.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear",
    "rms_norm",
    "layer_norm",
    "softmax",
    "gelu",
    "silu",
    "rope_cache",
    "apply_rope",
    "causal_attention",
]


def linear(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``x @ weight.T`` — weight stored ``(out_features, in_features)``."""
    return x @ weight.T


def rms_norm(x: np.ndarray, gain: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer normalization (Llama-family norm)."""
    rms = np.sqrt(np.mean(x**2, axis=-1, keepdims=True) + eps)
    return x / rms * gain


def layer_norm(x: np.ndarray, gain: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Standard layer norm with unit bias-free affine gain."""
    mu = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * gain


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU (GPT/OPT/Phi activation)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish (Llama activation)."""
    return x / (1.0 + np.exp(-x))


def rope_cache(seq_len: int, head_dim: int, base: float = 10000.0):
    """Precompute RoPE cos/sin tables of shape ``(seq_len, head_dim/2)``."""
    if head_dim % 2:
        raise ValueError("RoPE needs an even head dimension")
    inv_freq = base ** (-np.arange(0, head_dim, 2) / head_dim)
    angles = np.outer(np.arange(seq_len), inv_freq)
    return np.cos(angles), np.sin(angles)


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotary position embedding.

    ``x`` has shape ``(batch, heads, seq, head_dim)``; cos/sin are the
    tables from :func:`rope_cache` for the same sequence length.
    """
    x1 = x[..., 0::2]
    x2 = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out


def causal_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, past_len: int = 0
) -> np.ndarray:
    """Scaled dot-product attention with a causal mask.

    All of ``q, k, v`` have shape ``(batch, heads, seq, head_dim)``
    (key/value heads already broadcast to the query head count).

    With ``past_len > 0`` the keys/values cover ``past_len`` cached
    positions followed by the new ones, while ``q`` covers only the
    new positions: query ``i`` may attend to keys ``<= past_len + i``.
    """
    head_dim = q.shape[-1]
    scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(head_dim)
    q_len, kv_len = q.shape[-2], k.shape[-2]
    mask = np.triu(np.full((q_len, kv_len), -np.inf), k=1 + past_len)
    probs = softmax(scores + mask, axis=-1)
    return probs @ v
