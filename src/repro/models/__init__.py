"""LLM substrate: model zoo, synthetic weights, numpy transformer."""

from repro.models.config import GEMMShape, ModelConfig, WeightProfile
from repro.models.corpus import CORPORA, CorpusSpec, make_eval_batch, sample_tokens
from repro.models.synth import generate_model_weights, generate_weight_matrix
from repro.models.transformer import CausalLM, KVCache
from repro.models.zoo import (
    FIG1_MODELS,
    MODEL_ZOO,
    TABLE1_MODELS,
    get_model_config,
    list_models,
)

__all__ = [
    "ModelConfig",
    "WeightProfile",
    "GEMMShape",
    "CausalLM",
    "KVCache",
    "generate_model_weights",
    "generate_weight_matrix",
    "MODEL_ZOO",
    "FIG1_MODELS",
    "TABLE1_MODELS",
    "get_model_config",
    "list_models",
    "CORPORA",
    "CorpusSpec",
    "sample_tokens",
    "make_eval_batch",
]
