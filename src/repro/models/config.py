"""Model configurations for the LLM substrate.

Each :class:`ModelConfig` carries two sets of dimensions:

* **full** dimensions — the real architecture of the paper's models
  (hidden size, layer count, head counts, FFN size, vocabulary).  The
  hardware simulator and the memory profiler consume these, because
  cycle counts and DRAM traffic must reflect the real model sizes.
* **sim** dimensions — a scaled-down version instantiated as an actual
  numpy transformer for quantization experiments.  Quantization error
  is a property of weight *distributions*, not of parameter count, so
  a faithful distribution at small scale preserves the comparisons.

It also carries :class:`WeightProfile`, the per-family weight
distribution statistics (tail heaviness, per-channel scale spread,
outlier rate, per-group asymmetry) that drive the synthetic weight
generator, and the paper's published FP16 anchors (perplexity and task
accuracy) used to pin the intercepts of the evaluation proxies — see
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["WeightProfile", "ModelConfig", "GEMMShape"]


@dataclass(frozen=True)
class WeightProfile:
    """Distribution statistics of a model family's weight tensors.

    Parameters
    ----------
    tail_df:
        Degrees of freedom of the Student-t body; smaller = heavier
        tails = harder to quantize (OPT ~ heaviest, Llama-2 mildest).
    channel_spread:
        Log-normal sigma of per-output-channel scales.
    outlier_rate:
        Fraction of weights replaced by large outliers.
    outlier_mag:
        Outlier magnitude in units of the channel scale.
    group_shift:
        Magnitude of per-group mean shifts (in sigmas); produces the
        asymmetric groups that reward asymmetric datatypes (paper
        Section II-C).
    act_outlier_rate:
        Fraction of hidden channels carrying outsized activations
        (realized as norm-gain outliers, the mechanism behind OPT's
        famous activation outliers).  Weight error on these input
        columns is amplified, which is what makes some models collapse
        at 3-bit and is the phenomenon AWQ/SmoothQuant exploit.
    act_outlier_mag:
        Gain multiplier of those channels.
    """

    tail_df: float = 6.0
    channel_spread: float = 0.3
    outlier_rate: float = 0.0005
    outlier_mag: float = 8.0
    group_shift: float = 0.15
    act_outlier_rate: float = 0.01
    act_outlier_mag: float = 4.0


@dataclass(frozen=True)
class GEMMShape:
    """One weight-stationary GEMM: ``(M x K) @ (K x N)``.

    ``count`` is how many times the GEMM appears per transformer block
    (e.g. Q/K/V projections) and ``repeat`` how many blocks carry it.
    """

    name: str
    m: int
    k: int
    n: int
    count: int = 1
    repeat: int = 1

    @property
    def weight_elements(self) -> int:
        return self.k * self.n * self.count * self.repeat

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.count * self.repeat


@dataclass(frozen=True)
class ModelConfig:
    """Architecture + distribution profile of one benchmark LLM."""

    name: str
    family: str
    # --- full-size architecture (drives the hardware simulator) ---
    hidden: int = 2048
    n_layers: int = 24
    n_heads: int = 32
    n_kv_heads: int = 32
    intermediate: int = 8192
    vocab: int = 50272
    gated_mlp: bool = False  # Llama/Yi use gated SiLU MLPs (3 matrices)
    tied_embeddings: bool = False
    # --- scaled-down simulation architecture ---
    sim_hidden: int = 256
    sim_layers: int = 4
    sim_heads: int = 8
    sim_kv_heads: int = 8
    sim_intermediate: int = 1024
    sim_vocab: int = 2048
    # --- weight distribution profile ---
    profile: WeightProfile = field(default_factory=WeightProfile)
    # --- published FP16 anchors (paper Tables VI/VII) ---
    fp16_ppl: Dict[str, float] = field(default_factory=dict)
    fp16_acc: Dict[str, float] = field(default_factory=dict)

    def cache_key(self) -> str:
        """Stable content digest over every architecture / profile /
        anchor field — two zoo revisions that change any of them key
        to different pipeline cache entries."""
        from repro.pipeline.keys import stable_digest

        return stable_digest(self)

    @property
    def head_dim(self) -> int:
        return self.hidden // self.n_heads

    @property
    def params_billions(self) -> float:
        return self.num_parameters / 1e9

    @property
    def num_parameters(self) -> int:
        """Approximate full-size parameter count (weights only)."""
        total = self.vocab * self.hidden  # embedding
        if not self.tied_embeddings:
            total += self.vocab * self.hidden  # LM head
        total += sum(g.weight_elements for g in self.block_gemms(m=1))
        return total

    @property
    def streamed_weight_elements(self) -> int:
        """Weights read *in full* every forward pass: the decoder-block
        matrices plus the LM head.  The embedding table is accessed by
        row lookup (``m`` rows per pass) and is excluded here."""
        total = self.vocab * self.hidden  # LM head (tied or not)
        total += sum(g.weight_elements for g in self.block_gemms(m=1))
        return total

    # ------------------------------------------------------------------
    def block_gemms(self, m: int) -> List[GEMMShape]:
        """Weight GEMMs of the transformer blocks at batch-rows ``m``.

        ``m`` is the number of activation rows: the prompt length for
        prefill / discriminative tasks, or 1 for a single decode step.
        """
        h = self.hidden
        kv = self.n_kv_heads * self.head_dim
        gemms = [
            GEMMShape("q_proj", m, h, h, 1, self.n_layers),
            GEMMShape("k_proj", m, h, kv, 1, self.n_layers),
            GEMMShape("v_proj", m, h, kv, 1, self.n_layers),
            GEMMShape("o_proj", m, h, h, 1, self.n_layers),
        ]
        if self.gated_mlp:
            gemms += [
                GEMMShape("gate_proj", m, h, self.intermediate, 1, self.n_layers),
                GEMMShape("up_proj", m, h, self.intermediate, 1, self.n_layers),
                GEMMShape("down_proj", m, self.intermediate, h, 1, self.n_layers),
            ]
        else:
            gemms += [
                GEMMShape("fc1", m, h, self.intermediate, 1, self.n_layers),
                GEMMShape("fc2", m, self.intermediate, h, 1, self.n_layers),
            ]
        return gemms

    def lm_head_gemm(self, m: int) -> GEMMShape:
        return GEMMShape("lm_head", m, self.hidden, self.vocab, 1, 1)

    def attention_gemms(self, m: int, context: int) -> List[GEMMShape]:
        """Activation-activation GEMMs of self-attention (QK^T and PV).

        These do not read weights; the simulator treats them as INT8
        (keys/values quantized, Section IV-B discussion).
        """
        hd = self.head_dim
        return [
            GEMMShape("qk", m, hd, context, self.n_heads, self.n_layers),
            GEMMShape("pv", m, context, hd, self.n_heads, self.n_layers),
        ]

    def weight_bytes(self, bits_per_weight: float = 16.0) -> float:
        """Total weight storage in bytes at the given precision."""
        return self.num_parameters * bits_per_weight / 8.0

    # ------------------------------------------------------------------
    def sim_head_dim(self) -> int:
        return self.sim_hidden // self.sim_heads

    def sim_shapes(self) -> Dict[str, Tuple[int, int]]:
        """Weight matrix shapes ``(out, in)`` of the sim-scale model."""
        h = self.sim_hidden
        kv = self.sim_kv_heads * self.sim_head_dim()
        shapes = {
            "q_proj": (h, h),
            "k_proj": (kv, h),
            "v_proj": (kv, h),
            "o_proj": (h, h),
        }
        if self.gated_mlp:
            shapes["gate_proj"] = (self.sim_intermediate, h)
            shapes["up_proj"] = (self.sim_intermediate, h)
            shapes["down_proj"] = (h, self.sim_intermediate)
        else:
            shapes["fc1"] = (self.sim_intermediate, h)
            shapes["fc2"] = (h, self.sim_intermediate)
        return shapes
