"""The causal-LM transformer substrate.

:class:`CausalLM` instantiates the sim-scale architecture of a
:class:`~repro.models.config.ModelConfig` with synthetic weights and
provides:

* ``logits(tokens)`` — a full forward pass;
* ``prefill(tokens)`` / ``decode_step(tokens, cache)`` — the stateful
  serving path: run the prompt once, then extend one token at a time
  against a :class:`KVCache` (optionally quantized via
  :mod:`repro.quant.kv`) instead of recomputing the whole sequence;
* ``named_linears()`` — the quantizable weight matrices, matching the
  convention of the PTQ literature (decoder-block linears only;
  embeddings and the LM head stay FP16);
* ``apply_quantizer(fn)`` — functional weight replacement, returning a
  quantized *copy* so the FP16 reference model stays intact.

Architecture per family: OPT/Phi use LayerNorm + GELU MLPs and OPT
adds sinusoidal positions at the embedding; Llama/Yi use RMSNorm,
RoPE, gated SiLU MLPs, and (Yi / Llama-3) grouped-query attention.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.models.config import ModelConfig
from repro.models.layers import (
    apply_rope,
    causal_attention,
    gelu,
    layer_norm,
    linear,
    rms_norm,
    rope_cache,
    silu,
)
from repro.models.synth import generate_model_weights
from repro.quant.kv import KVQuantConfig, quantize_kv

__all__ = ["CausalLM", "KVCache"]

_LN_FAMILIES = ("opt", "phi")


class KVCache:
    """Per-layer key/value cache for incremental decode.

    Entries hold the *pre-GQA-broadcast* key/value tensors of shape
    ``(batch, kv_heads, seq, head_dim)``; the attention layer repeats
    them to the query head count on use.  With ``quant`` set, every
    appended segment is quantized (and stored dequantized) the moment
    it enters the cache — matching a deployment where past KV lives in
    low-precision memory and is never re-quantized.
    """

    def __init__(self, n_layers: int, quant: Optional[KVQuantConfig] = None):
        self.quant = quant
        self._keys: List[Optional[np.ndarray]] = [None] * n_layers
        self._values: List[Optional[np.ndarray]] = [None] * n_layers

    @property
    def n_layers(self) -> int:
        return len(self._keys)

    @property
    def seq_len(self) -> int:
        """Number of cached positions (0 for a fresh cache)."""
        first = self._keys[0]
        return 0 if first is None else first.shape[2]

    def append(
        self, layer: int, k: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Add new-position K/V for ``layer``; return the full tensors."""
        if self.quant is not None:
            k = quantize_kv(k, self.quant)
            v = quantize_kv(v, self.quant)
        if self._keys[layer] is None:
            self._keys[layer] = k
            self._values[layer] = v
        else:
            self._keys[layer] = np.concatenate([self._keys[layer], k], axis=2)
            self._values[layer] = np.concatenate([self._values[layer], v], axis=2)
        return self._keys[layer], self._values[layer]

    @property
    def memory_bytes(self) -> int:
        """Cache footprint at the stored (post-quantization) precision."""
        bits = 16 if self.quant is None else self.quant.bits
        elements = sum(
            k.size + v.size
            for k, v in zip(self._keys, self._values)
            if k is not None
        )
        return elements * bits // 8

    # ------------------------------------------------------------------
    # Prefix sharing (repro.serve.prefix).
    # ------------------------------------------------------------------
    def snapshot(self, length: int) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Copied per-layer K/V slices covering the first ``length``
        positions — the storable form of a shareable prompt prefix."""
        if not (0 < length <= self.seq_len):
            raise ValueError(
                f"snapshot length {length} outside cached range "
                f"(1..{self.seq_len})"
            )
        return [
            (k[:, :, :length, :].copy(), v[:, :, :length, :].copy())
            for k, v in zip(self._keys, self._values)
        ]

    @classmethod
    def from_snapshot(
        cls,
        pairs: List[Tuple[np.ndarray, np.ndarray]],
        quant: Optional[KVQuantConfig] = None,
    ) -> "KVCache":
        """A cache pre-seeded with snapshotted prefix K/V.

        The snapshot arrays are adopted by reference, never mutated:
        :meth:`append` always *concatenates into fresh arrays*, so one
        snapshot can seed any number of caches concurrently.
        """
        cache = cls(len(pairs), quant=quant)
        for layer, (k, v) in enumerate(pairs):
            cache._keys[layer] = k
            cache._values[layer] = v
        return cache


class CausalLM:
    """A numpy causal language model at sim scale."""

    def __init__(self, config: ModelConfig, seed: int = 0, weights: Optional[dict] = None):
        self.config = config
        self.seed = seed
        self.weights = weights if weights is not None else generate_model_weights(config, seed)
        self._use_layernorm = config.family in _LN_FAMILIES
        self._use_rope = config.family != "opt"
        self._rope = None
        #: When set (e.g. 8), inputs of every block linear are
        #: dynamically quantized to this many bits, per-tensor
        #: symmetric — the SmoothQuant INT8-activation mode.
        self.act_quant_bits: Optional[int] = None

    def _maybe_quant_act(self, x: np.ndarray) -> np.ndarray:
        if self.act_quant_bits is None:
            return x
        qmax = 2 ** (self.act_quant_bits - 1) - 1
        absmax = float(np.max(np.abs(x)))
        if absmax == 0.0:
            return x
        scale = absmax / qmax
        return np.clip(np.round(x / scale), -qmax, qmax) * scale

    # ------------------------------------------------------------------
    # Weight access for quantizers.
    # ------------------------------------------------------------------
    def named_linears(self) -> Dict[str, np.ndarray]:
        """Quantizable weight matrices: every decoder-block linear."""
        keys = [
            k
            for k in self.weights
            if k.startswith("layers.") and not k.endswith("_norm")
        ]
        return {k: self.weights[k] for k in keys}

    def apply_quantizer(
        self, quantize: Callable[[str, np.ndarray], np.ndarray]
    ) -> "CausalLM":
        """Return a copy whose block linears are ``quantize(name, w)``."""
        new_weights = dict(self.weights)
        for name, w in self.named_linears().items():
            new_weights[name] = quantize(name, w)
        clone = copy.copy(self)
        clone.weights = new_weights
        return clone

    def apply_plan(self, plan) -> "CausalLM":
        """Return a copy quantized per a
        :class:`~repro.policy.plan.QuantPlan` (layers the plan does not
        name keep their FP16 weights)."""
        return self.apply_quantizer(plan.as_quantizer())

    # ------------------------------------------------------------------
    # Forward pass.
    # ------------------------------------------------------------------
    def _positions(self, seq: int, hidden: int) -> np.ndarray:
        """Sinusoidal position embedding (OPT-style learned-pos stand-in)."""
        pos = np.arange(seq)[:, None]
        dim = np.arange(hidden // 2)[None, :]
        angle = pos / 10000 ** (2 * dim / hidden)
        out = np.zeros((seq, hidden))
        out[:, 0::2] = np.sin(angle)
        out[:, 1::2] = np.cos(angle)
        return 0.02 * out

    def _norm(self, x: np.ndarray, gain: np.ndarray) -> np.ndarray:
        if self._use_layernorm:
            return layer_norm(x, gain)
        return rms_norm(x, gain)

    def hidden_states(
        self,
        tokens: np.ndarray,
        collect: bool = False,
        cache: Optional[KVCache] = None,
    ):
        """Run the decoder stack; return final hidden states.

        With ``collect=True`` also returns the *input* activations of
        every block linear (used by AWQ/GPTQ/SmoothQuant calibration).

        With ``cache`` set, ``tokens`` are treated as *new* positions
        following the cached context: attention reads the cached K/V,
        the new K/V are appended, and only the new positions are
        computed — the incremental prefill/decode path.
        """
        if collect and cache is not None:
            raise ValueError("calibration collection needs a full forward pass")
        cfg = self.config
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        batch, seq = tokens.shape
        h = cfg.sim_hidden
        n_heads, n_kv = cfg.sim_heads, cfg.sim_kv_heads
        head_dim = cfg.sim_head_dim()
        past = cache.seq_len if cache is not None else 0
        total = past + seq

        x = self.weights["embed"][tokens] * np.sqrt(h)
        if not self._use_rope:
            x = x + self._positions(total, h)[None, past:]

        if self._use_rope:
            if self._rope is None or self._rope[0].shape[0] < total:
                # Grow with slack so per-token decode doesn't rebuild
                # the table every step (amortized O(1) per position).
                grown = total if self._rope is None else max(total, 2 * self._rope[0].shape[0])
                self._rope = rope_cache(grown, head_dim)
            cos, sin = self._rope[0][past:total], self._rope[1][past:total]

        acts: Dict[str, np.ndarray] = {}

        def record(name: str, inp: np.ndarray) -> None:
            if collect:
                acts[name] = inp.reshape(-1, inp.shape[-1])

        for layer in range(cfg.sim_layers):
            w = lambda s: self.weights[f"layers.{layer}.{s}"]  # noqa: E731
            # --- attention ---
            xn = self._maybe_quant_act(self._norm(x, w("attn_norm")))
            record(f"layers.{layer}.q_proj", xn)
            record(f"layers.{layer}.k_proj", xn)
            record(f"layers.{layer}.v_proj", xn)
            q = linear(xn, w("q_proj")).reshape(batch, seq, n_heads, head_dim)
            k = linear(xn, w("k_proj")).reshape(batch, seq, n_kv, head_dim)
            v = linear(xn, w("v_proj")).reshape(batch, seq, n_kv, head_dim)
            q = q.transpose(0, 2, 1, 3)
            k = k.transpose(0, 2, 1, 3)
            v = v.transpose(0, 2, 1, 3)
            if self._use_rope:
                q = apply_rope(q, cos, sin)
                k = apply_rope(k, cos, sin)
            if cache is not None:
                k, v = cache.append(layer, k, v)
            if n_kv != n_heads:
                rep = n_heads // n_kv
                k = np.repeat(k, rep, axis=1)
                v = np.repeat(v, rep, axis=1)
            attn = causal_attention(q, k, v, past_len=past)
            attn = attn.transpose(0, 2, 1, 3).reshape(batch, seq, h)
            attn = self._maybe_quant_act(attn)
            record(f"layers.{layer}.o_proj", attn)
            x = x + linear(attn, w("o_proj"))

            # --- MLP ---
            xn = self._maybe_quant_act(self._norm(x, w("mlp_norm")))
            if cfg.gated_mlp:
                record(f"layers.{layer}.gate_proj", xn)
                record(f"layers.{layer}.up_proj", xn)
                gate = silu(linear(xn, w("gate_proj")))
                up = linear(xn, w("up_proj"))
                inner = self._maybe_quant_act(gate * up)
                record(f"layers.{layer}.down_proj", inner)
                x = x + linear(inner, w("down_proj"))
            else:
                record(f"layers.{layer}.fc1", xn)
                inner = self._maybe_quant_act(gelu(linear(xn, w("fc1"))))
                record(f"layers.{layer}.fc2", inner)
                x = x + linear(inner, w("fc2"))

        x = self._norm(x, self.weights["final_norm"])
        if collect:
            return x, acts
        return x

    def logits(
        self, tokens: np.ndarray, cache: Optional[KVCache] = None
    ) -> np.ndarray:
        """Vocabulary logits, shape ``(batch, seq, vocab)``.

        With ``cache`` set, ``seq`` covers only the new positions
        (incremental decode); the cache is updated in place.
        """
        x = self.hidden_states(tokens, cache=cache)
        return linear(x, self.weights["lm_head"])

    # ------------------------------------------------------------------
    # Stateful serving path.
    # ------------------------------------------------------------------
    def prefill(
        self,
        tokens: np.ndarray,
        kv_quant: Optional[KVQuantConfig] = None,
    ) -> Tuple[np.ndarray, KVCache]:
        """Run the prompt once, filling a fresh :class:`KVCache`.

        Returns ``(logits, cache)`` where ``logits`` covers every
        prompt position (so the caller can sample the first generated
        token from the last row).
        """
        cache = KVCache(self.config.sim_layers, quant=kv_quant)
        return self.logits(tokens, cache=cache), cache

    def decode_step(self, tokens: np.ndarray, cache: KVCache) -> np.ndarray:
        """Logits for one new token per sequence, shape ``(batch, vocab)``.

        ``tokens`` holds the single newest token of each sequence
        (shape ``(batch,)`` or ``(batch, 1)``); the cache provides all
        earlier context, so the cost per step is O(1) forwards instead
        of re-running the full sequence.
        """
        tokens = np.asarray(tokens)
        if tokens.ndim == 0:
            tokens = tokens[None]
        if tokens.ndim == 1:
            tokens = tokens[:, None]
        if tokens.shape[1] != 1:
            raise ValueError("decode_step consumes exactly one new token per sequence")
        return self.logits(tokens, cache=cache)[:, -1]

    def collect_activations(self, tokens: np.ndarray) -> Dict[str, np.ndarray]:
        """Input activations of every block linear (calibration data)."""
        _, acts = self.hidden_states(tokens, collect=True)
        return acts
