"""The inference engine: incremental decode over a packed model.

The engine owns one dequantized :class:`CausalLM` (usually rebuilt
from a :class:`~repro.serve.artifact.ModelArtifact`) and advances
independent sequences through it.  Each sequence carries its own
:class:`~repro.models.transformer.KVCache`, so a decode step costs a
single-position forward pass — O(1) in the generated length — where
the monolithic ``CausalLM.logits`` path recomputes the whole sequence
every token.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.models.layers import softmax
from repro.models.transformer import CausalLM, KVCache
from repro.quant.kv import KVQuantConfig
from repro.serve.artifact import ModelArtifact, load_artifact
from repro.serve.prefix import PrefixKVCache

__all__ = ["GenerationConfig", "SequenceState", "InferenceEngine"]


@dataclass(frozen=True)
class GenerationConfig:
    """Per-request sampling parameters."""

    max_new_tokens: int = 32
    #: 0 = greedy argmax; > 0 samples from the tempered distribution.
    temperature: float = 0.0


@dataclass
class SequenceState:
    """One in-flight sequence: prompt, cache, generated tokens."""

    prompt: np.ndarray
    generation: GenerationConfig
    cache: Optional[KVCache] = None
    generated: List[int] = field(default_factory=list)
    #: Prompt tokens whose KV came from the engine's prefix cache
    #: instead of being recomputed at prefill (0 = cold prefill).
    prefix_hit_tokens: int = 0

    @property
    def prefilled(self) -> bool:
        return self.cache is not None

    @property
    def done(self) -> bool:
        return len(self.generated) >= self.generation.max_new_tokens

    @property
    def last_token(self) -> int:
        return self.generated[-1] if self.generated else int(self.prompt[-1])

    @property
    def total_len(self) -> int:
        return len(self.prompt) + len(self.generated)


class InferenceEngine:
    """Prefill/decode executor over a (quantized) model."""

    def __init__(
        self,
        model: CausalLM,
        kv_quant: Optional[KVQuantConfig] = None,
        seed: int = 0,
        artifact: Optional[ModelArtifact] = None,
        prefix_cache: Optional[PrefixKVCache] = None,
    ):
        self.model = model
        self.kv_quant = kv_quant
        #: The packed artifact this engine was built from, when known —
        #: keeps the bit-packed weight images around for bit-accurate
        #: hardware replay alongside the dequantized serving weights.
        self.artifact = artifact
        #: Prompt-prefix KV reuse (see :mod:`repro.serve.prefix`).
        #: Only consulted when ``kv_quant`` is None: KV quantization is
        #: per-prefill-segment, so splitting the prompt at a cached
        #: prefix boundary would change the stored values.
        self.prefix_cache = prefix_cache
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Construction from artifacts.
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls,
        artifact: ModelArtifact,
        seed: int = 0,
        prefix_cache: Optional[PrefixKVCache] = None,
        mesh=None,
    ) -> "InferenceEngine":
        """Instantiate the packed model and wrap it in an engine.

        With a :class:`~repro.shard.mesh.DeviceMesh`, the artifact is
        partitioned and a :class:`~repro.shard.engine.ShardedEngine`
        comes back instead (same sequence API; prefix caching is
        rejected there — see ``repro.shard.engine``).
        """
        if mesh is not None and mesh.n_devices > 1:
            from repro.shard.engine import ShardedEngine

            return ShardedEngine.from_artifact(
                artifact, mesh, seed=seed, prefix_cache=prefix_cache
            )
        return cls(
            artifact.instantiate(),
            kv_quant=artifact.kv_quant,
            seed=seed,
            artifact=artifact,
            prefix_cache=prefix_cache,
        )

    @classmethod
    def from_artifact_file(cls, path: Union[str, Path], seed: int = 0) -> "InferenceEngine":
        return cls.from_artifact(load_artifact(path), seed=seed)

    # ------------------------------------------------------------------
    # Bit-accurate hardware replay.
    # ------------------------------------------------------------------
    def functional_replay(
        self,
        batch_size: int,
        layers=None,
        seed: int = 0,
        backend=None,
    ):
        """Push batched activations through the bit-accurate PE datapath
        against this engine's packed weight images (see
        :func:`repro.serve.bridge.functional_replay`).  ``backend``
        pins a kernel backend by name.  Requires the engine to have
        been built from an artifact."""
        if self.artifact is None:
            raise RuntimeError(
                "functional replay needs the packed artifact; build the "
                "engine with from_artifact()/from_artifact_file()"
            )
        from repro.serve.bridge import functional_replay

        return functional_replay(
            self.artifact, batch_size, layers=layers, seed=seed, backend=backend
        )

    # ------------------------------------------------------------------
    # Sequence operations.
    # ------------------------------------------------------------------
    def start_sequence(
        self, prompt: np.ndarray, generation: GenerationConfig = GenerationConfig()
    ) -> SequenceState:
        """Validate the prompt and create an un-prefilled sequence."""
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("empty prompt")
        vocab = self.model.config.sim_vocab
        if prompt.min() < 0 or prompt.max() >= vocab:
            raise ValueError(f"prompt tokens must lie in [0, {vocab})")
        return SequenceState(prompt=prompt, generation=generation)

    def prefill(self, seq: SequenceState) -> int:
        """Run the prompt, producing the cache and the first token.

        With a prefix cache attached (and no KV quantization), the
        longest cached block-aligned prefix seeds the sequence's KV
        and only the uncached tail is computed;
        ``seq.prefix_hit_tokens`` records how much prefill was skipped.
        """
        if seq.prefilled:
            raise RuntimeError("sequence already prefilled")
        share = self.prefix_cache if self.kv_quant is None else None
        hit = share.lookup(seq.prompt) if share is not None else None
        if hit is not None:
            length, snapshot = hit
            cache = KVCache.from_snapshot(snapshot)
            logits = self.model.logits(seq.prompt[length:], cache=cache)
            seq.prefix_hit_tokens = length
        else:
            logits, cache = self.model.prefill(seq.prompt, kv_quant=self.kv_quant)
        seq.cache = cache
        if share is not None:
            share.insert(seq.prompt, cache)
        token = self._sample(logits[0, -1], seq.generation.temperature)
        seq.generated.append(token)
        return token

    def decode(self, seq: SequenceState) -> int:
        """Extend the sequence by one token through the KV cache."""
        if not seq.prefilled:
            raise RuntimeError("prefill before decoding")
        if seq.done:
            raise RuntimeError("sequence already finished")
        row = self.model.decode_step(np.array([seq.last_token]), seq.cache)[0]
        token = self._sample(row, seq.generation.temperature)
        seq.generated.append(token)
        return token

    def generate(
        self, prompt: np.ndarray, generation: GenerationConfig = GenerationConfig()
    ) -> SequenceState:
        """Synchronous convenience: prefill + decode to completion."""
        seq = self.start_sequence(prompt, generation)
        self.prefill(seq)
        while not seq.done:
            self.decode(seq)
        return seq

    def _sample(self, logits_row: np.ndarray, temperature: float) -> int:
        if temperature <= 0.0:
            return int(np.argmax(logits_row))
        probs = softmax(logits_row / temperature)
        return int(self._rng.choice(probs.size, p=probs))
