"""Batched quantized-inference serving for the BitMoD reproduction.

The deployment path the paper motivates, end to end:

``artifact``
    A versioned on-disk container holding every bit-packed
    :class:`~repro.quant.packing.PackedTensor` of a quantized
    :class:`~repro.models.transformer.CausalLM` plus the FP16
    leftovers (embeddings, norms, LM head) and the quantization
    policy.  Round-trips byte-exactly.
``engine``
    Loads an artifact and runs incremental prefill/decode against the
    model's :class:`~repro.models.transformer.KVCache` — O(1) forward
    work per generated token instead of recomputing the sequence.
``batching``
    A continuous-batching scheduler: token-budgeted steps interleaving
    prefills of waiting requests with decodes of running ones, with
    strict-priority SLO tiers (``SLO_TIERS``) and queue-depth-aware
    admission shedding.
``prefix``
    Prefix-sharing KV reuse: a byte-budgeted LRU of block-aligned
    prompt prefixes so shared-prefix traffic skips repeated prefill.
``server``
    The asyncio front-end (``submit()`` / ``generate()``) driving the
    scheduler from a background loop.
``metrics``
    Throughput, time-to-first-token, and latency percentiles.
``errors``
    Structured degradation: :class:`DeadlineExceeded` when a request's
    deadline passes, :class:`Overloaded` when the bounded admission
    queue sheds it or the server is draining.
``bridge``
    Replays served-request traces through the accelerator simulator
    to report modeled cycles and energy per request.
"""

from repro.serve.artifact import (
    ARTIFACT_VERSION,
    ArtifactIntegrityError,
    ModelArtifact,
    load_artifact,
    pack_model,
    pack_tensor_cached,
    save_artifact,
)
from repro.serve.batching import SLO_TIERS, ContinuousBatcher, Request, StepReport
from repro.serve.prefix import PrefixKVCache
from repro.serve.errors import DeadlineExceeded, Overloaded, ServeError
from repro.serve.bridge import (
    FunctionalReplay,
    HardwareReport,
    RequestTrace,
    functional_replay,
    hardware_report,
)
from repro.serve.engine import GenerationConfig, InferenceEngine, SequenceState
from repro.serve.metrics import LatencyStats, ServeMetrics
from repro.serve.server import GenerationResult, ServeServer

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactIntegrityError",
    "ServeError",
    "DeadlineExceeded",
    "Overloaded",
    "ModelArtifact",
    "pack_model",
    "pack_tensor_cached",
    "save_artifact",
    "load_artifact",
    "InferenceEngine",
    "GenerationConfig",
    "SequenceState",
    "ContinuousBatcher",
    "PrefixKVCache",
    "Request",
    "SLO_TIERS",
    "StepReport",
    "ServeServer",
    "GenerationResult",
    "ServeMetrics",
    "LatencyStats",
    "RequestTrace",
    "HardwareReport",
    "hardware_report",
    "FunctionalReplay",
    "functional_replay",
]
