"""Versioned on-disk packed-model artifacts.

An artifact is the deployable form of a quantized model: every
decoder-block linear serialized as the bit-packed DRAM image of
:mod:`repro.quant.packing` (element codes, INT8 scaling-factor codes,
BitMoD special-value selectors, asymmetric zero points), the FP16
leftovers (embedding, norms, LM head) stored raw, and the policy
needed to reproduce the quantization (dtype, granularity, group size,
scale bits, KV-cache precision).

Quantization is described either by one global
:class:`~repro.quant.config.QuantConfig` or by a per-layer
:class:`~repro.policy.plan.QuantPlan` — a mixed-precision artifact
serializes each tensor at its own dtype/granularity and carries the
plan in the header, so heterogeneous deployments reload byte-exactly
just like uniform ones.

File layout (little-endian)::

    bytes 0..7    magic  b"RPROSRV\\x01"
    bytes 8..11   uint32 header length  (JSON, utf-8)
    header        JSON index: model/quant/kv metadata + per-tensor
                  blob directory {offset, nbytes, dtype, shape}
    blob section  raw bytes, offsets relative to section start

Loading is byte-exact: the ``PackedTensor`` objects coming back from
:func:`load_artifact` compare equal, field for field, with what
:func:`save_artifact` wrote, and :func:`ModelArtifact.instantiate`
rebuilds a :class:`~repro.models.transformer.CausalLM` whose weights
equal the quantized originals to the last bit.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.models.transformer import CausalLM
from repro.models.zoo import get_model_config
from repro.pipeline.keys import array_digest, stable_digest
from repro.pipeline.store import CacheStore
from repro.policy.plan import QuantPlan
from repro.quant.config import QuantConfig
from repro.quant.kv import KVQuantConfig
from repro.quant.packing import PackedTensor, pack_tensor, unpack_tensor

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactIntegrityError",
    "ModelArtifact",
    "pack_model",
    "pack_tensor_cached",
    "save_artifact",
    "load_artifact",
]


class ArtifactIntegrityError(ValueError):
    """The artifact container on disk is damaged: truncated blob
    section or a blob digest that no longer matches its header."""

#: Store namespace for cached packed-tensor images.
PACKED_KIND = "packed"

#: Bump when the PackedTensor wire format changes incompatibly.
#: v2: ``group_size`` records the effective scale-row length (channel
#: length at channel granularity), not the config's nominal group size.
PACKED_SCHEMA_VERSION = 2

ARTIFACT_MAGIC = b"RPROSRV\x01"
ARTIFACT_VERSION = 1


@dataclass
class ModelArtifact:
    """A packed model plus everything needed to serve it."""

    model_name: str
    seed: int
    quant_config: QuantConfig
    kv_quant: Optional[KVQuantConfig]
    packed: Dict[str, PackedTensor] = field(default_factory=dict)
    raw_weights: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-layer mixed-precision plan, when the artifact was packed
    #: from one (``None`` = uniform ``quant_config`` artifact).
    plan: Optional[QuantPlan] = None
    #: Set when this artifact is one shard of a mesh-partitioned set
    #: (see :mod:`repro.shard.artifact`): mesh dict, shard coordinates,
    #: covered layer range, and the set's mesh digest.
    shard_header: Optional[Dict] = None

    @property
    def packed_bytes(self) -> int:
        """Bit-packed weight payload (the DRAM-resident image)."""
        return sum(p.total_bytes for p in self.packed.values())

    @property
    def mean_bits_per_weight(self) -> float:
        """Element-weighted average packed precision of the linears."""
        elements = sum(int(np.prod(p.shape)) for p in self.packed.values())
        bits = sum(p.total_bytes * 8 for p in self.packed.values())
        return bits / elements if elements else 16.0

    def tensor_config(self, name: str) -> QuantConfig:
        """The :class:`QuantConfig` that unpacks tensor ``name``.

        Mixed-precision artifacts resolve the layer's own plan entry
        (granularity/scale bits/clipping may differ per layer); the
        packed image's dtype name and group size stay authoritative
        either way.
        """
        p = self.packed[name]
        base = self.quant_config
        if self.plan is not None:
            planned = self.plan.config_for(name)
            if planned is not None:
                base = planned
        return base.with_(dtype=p.dtype_name, group_size=p.group_size)

    def instantiate(self) -> CausalLM:
        """Rebuild the quantized :class:`CausalLM` from the artifact."""
        if self.shard_header is not None:
            raise ValueError(
                f"artifact is shard {self.shard_header['shard_index']} of "
                f"{self.shard_header['n_shards']}, not a full model; load "
                "the set with repro.shard.load_sharded_artifact and build "
                "a ShardedEngine"
            )
        weights = {k: v.copy() for k, v in self.raw_weights.items()}
        for name, p in self.packed.items():
            weights[name] = unpack_tensor(p, self.tensor_config(name))
        return CausalLM(get_model_config(self.model_name), seed=self.seed, weights=weights)


# ----------------------------------------------------------------------
# Content-addressed packed-tensor cache.
# ----------------------------------------------------------------------


def _packed_cache_key(w: np.ndarray, quant_config: QuantConfig) -> str:
    """Content address of the packed image of (``w``, ``quant_config``)."""
    return stable_digest(
        {
            "v": PACKED_SCHEMA_VERSION,
            "weight": array_digest(w),
            "shape": list(w.shape),
            "quant": quant_config.cache_key(),
        }
    )


def _packed_to_arrays(p: PackedTensor) -> Dict[str, np.ndarray]:
    """Flatten a :class:`PackedTensor` into a store-able array bundle."""
    arrays = {
        "element_data": np.frombuffer(p.element_data, dtype=np.uint8),
        "sf_codes": np.asarray(p.sf_codes, dtype=np.uint8),
        "channel_scales": np.asarray(p.channel_scales, dtype=np.float64),
        "meta": np.array(
            json.dumps(
                {
                    "dtype_name": p.dtype_name,
                    "bits": p.bits,
                    "shape": list(p.shape),
                    "group_size": p.group_size,
                    "groups_per_channel": p.groups_per_channel,
                }
            ).encode("utf-8")
        ),
    }
    if p.sv_selectors is not None:
        arrays["sv_selectors"] = np.asarray(p.sv_selectors, dtype=np.uint8)
    if p.zeros is not None:
        arrays["zeros"] = np.asarray(p.zeros, dtype=np.int64)
    return arrays


def _arrays_to_packed(arrays: Dict[str, np.ndarray]) -> PackedTensor:
    """Rebuild a byte-identical :class:`PackedTensor` from a bundle."""
    meta = json.loads(bytes(arrays["meta"].tobytes()).decode("utf-8"))
    return PackedTensor(
        dtype_name=meta["dtype_name"],
        bits=meta["bits"],
        shape=tuple(meta["shape"]),
        group_size=meta["group_size"],
        element_data=arrays["element_data"].tobytes(),
        sf_codes=arrays["sf_codes"],
        channel_scales=arrays["channel_scales"],
        sv_selectors=arrays.get("sv_selectors"),
        zeros=arrays.get("zeros"),
        groups_per_channel=meta["groups_per_channel"],
    )


def pack_tensor_cached(
    w: np.ndarray, quant_config: QuantConfig, store: Optional[CacheStore] = None
) -> PackedTensor:
    """:func:`~repro.quant.packing.pack_tensor` through the pipeline
    cache: keyed by weight content + quant key, byte-identical on
    reload, quantized at most once per content address."""
    if store is None or not store.enabled:
        return pack_tensor(w, quant_config)
    key = _packed_cache_key(w, quant_config)
    cached = store.get_arrays(PACKED_KIND, key)
    if cached is not None:
        try:
            return _arrays_to_packed(cached)
        except (KeyError, ValueError):
            pass  # corrupt/stale entry: fall through and rewrite
    packed = pack_tensor(w, quant_config)
    store.put_arrays(PACKED_KIND, key, _packed_to_arrays(packed))
    return packed


def pack_model(
    model: CausalLM,
    quant: Union[QuantConfig, QuantPlan],
    store: Optional[CacheStore] = None,
) -> Tuple[Dict[str, PackedTensor], Dict[str, np.ndarray]]:
    """Quantize + bit-pack every block linear of ``model``.

    ``quant`` is one global :class:`QuantConfig` or a per-layer
    :class:`~repro.policy.plan.QuantPlan` — plan layers pack at their
    own config, and layers the plan leaves out stay with the raw FP16
    weights.  Returns ``(packed, raw)``: the packed linears and the
    FP16 weights that stay unquantized (embedding, norms, LM head,
    unplanned linears).  With a ``store``, each tensor's packed image
    is served from the content-addressed cache when its (weight bytes,
    quant key) address has been packed before — rebuilding an artifact
    for an already-quantized model touches no quantizer at all.
    """
    linears = model.named_linears()
    packed: Dict[str, PackedTensor] = {}
    for name, w in linears.items():
        config = quant.config_for(name) if isinstance(quant, QuantPlan) else quant
        if config is None:
            continue
        packed[name] = pack_tensor_cached(w, config, store)
    raw = {k: v for k, v in model.weights.items() if k not in packed}
    return packed, raw


def save_artifact(
    path: Union[str, Path],
    model: CausalLM,
    quant_config: Union[QuantConfig, QuantPlan],
    kv_quant: Optional[KVQuantConfig] = None,
    store: Optional[CacheStore] = None,
) -> ModelArtifact:
    """Quantize ``model`` and write the packed artifact to ``path``.

    ``quant_config`` is a global :class:`QuantConfig` or a per-layer
    :class:`~repro.policy.plan.QuantPlan`.  Quantization dtypes must
    be registry names (artifacts store names, not instances) so the
    artifact is loadable anywhere; plans are normalized via
    ``resolve_names()``.  ``store`` routes the per-tensor quantization
    through the pipeline's content-addressed cache (see
    :func:`pack_model`).
    """
    plan = None
    if isinstance(quant_config, QuantPlan):
        plan = quant_config.resolve_names()
        if len(plan) == 0:
            raise ValueError("cannot pack an artifact from an empty plan")
        # The header's global quant block falls back to the first
        # layer's config; every packed tensor resolves through the
        # plan, so the fallback only labels the artifact.
        quant_config = plan.layers[0][1]
        quant = plan
    else:
        if not isinstance(quant_config.dtype, str):
            quant_config = quant_config.with_(dtype=quant_config.resolve_dtype().name)
        quant = quant_config
    packed, raw = pack_model(model, quant, store)
    artifact = ModelArtifact(
        model_name=model.config.name,
        seed=model.seed,
        quant_config=quant_config,
        kv_quant=kv_quant,
        packed=packed,
        raw_weights=raw,
        plan=plan,
    )
    write_artifact(path, artifact)
    return artifact


# ----------------------------------------------------------------------
# Binary container.
# ----------------------------------------------------------------------


class _BlobWriter:
    """Accumulates blobs and hands out directory entries."""

    def __init__(self) -> None:
        self.parts: list = []
        self.cursor = 0

    def add_bytes(self, data: bytes) -> dict:
        entry = {"offset": self.cursor, "nbytes": len(data)}
        self.parts.append(data)
        self.cursor += len(data)
        return entry

    def add_array(self, arr: np.ndarray) -> dict:
        # Force little-endian on disk so artifacts are portable; the
        # dtype string in the directory carries the byte order.
        le = np.ascontiguousarray(arr).astype(arr.dtype.newbyteorder("<"), copy=False)
        entry = self.add_bytes(le.tobytes())
        entry["dtype"] = le.dtype.str
        entry["shape"] = list(arr.shape)
        return entry


def _read_array(blob: bytes, entry: dict) -> np.ndarray:
    raw = blob[entry["offset"] : entry["offset"] + entry["nbytes"]]
    arr = np.frombuffer(raw, dtype=np.dtype(entry["dtype"]))
    # Hand back native byte order regardless of platform.
    return arr.reshape(entry["shape"]).astype(arr.dtype.newbyteorder("="), copy=True)


def write_artifact(path: Union[str, Path], artifact: ModelArtifact) -> None:
    """Serialize ``artifact`` into the binary container at ``path``."""
    writer = _BlobWriter()
    tensors = []
    for name, p in artifact.packed.items():
        blobs = {
            "element_data": writer.add_bytes(p.element_data),
            "sf_codes": writer.add_array(np.asarray(p.sf_codes, dtype=np.uint8)),
            "channel_scales": writer.add_array(
                np.asarray(p.channel_scales, dtype=np.float64)
            ),
        }
        if p.sv_selectors is not None:
            blobs["sv_selectors"] = writer.add_array(
                np.asarray(p.sv_selectors, dtype=np.uint8)
            )
        if p.zeros is not None:
            blobs["zeros"] = writer.add_array(np.asarray(p.zeros, dtype=np.int64))
        tensors.append(
            {
                "name": name,
                "kind": "packed",
                "dtype_name": p.dtype_name,
                "bits": p.bits,
                "shape": list(p.shape),
                "group_size": p.group_size,
                "groups_per_channel": p.groups_per_channel,
                "blobs": blobs,
            }
        )
    for name, w in artifact.raw_weights.items():
        tensors.append(
            {
                "name": name,
                "kind": "raw",
                "blobs": {"data": writer.add_array(np.asarray(w, dtype=np.float64))},
            }
        )

    qc = artifact.quant_config
    header = {
        "format_version": ARTIFACT_VERSION,
        "model": {"name": artifact.model_name, "seed": artifact.seed},
        "quant": {
            "dtype": qc.dtype,
            "granularity": qc.granularity,
            "group_size": qc.group_size,
            "scale_bits": qc.scale_bits,
            "clip_ratio": qc.clip_ratio,
        },
        "kv_quant": (
            None
            if artifact.kv_quant is None
            else {"bits": artifact.kv_quant.bits, "per_head": artifact.kv_quant.per_head}
        ),
        "tensors": tensors,
    }
    if artifact.plan is not None:
        header["plan"] = artifact.plan.to_dict()
    if artifact.shard_header is not None:
        header["shard"] = artifact.shard_header
    # Integrity envelope: total blob-section size catches truncation,
    # the sha256 catches bit rot.  Optional fields — containers written
    # before they existed load fine — so ARTIFACT_VERSION stays 1.
    blob_section = b"".join(writer.parts)
    header["blob_nbytes"] = len(blob_section)
    header["blob_sha256"] = hashlib.sha256(blob_section).hexdigest()
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")

    from repro.resilience.atomic import atomic_write_bytes

    atomic_write_bytes(
        Path(path),
        ARTIFACT_MAGIC
        + struct.pack("<I", len(header_bytes))
        + header_bytes
        + blob_section,
    )


def load_artifact(path: Union[str, Path], verify: bool = True) -> ModelArtifact:
    """Read an artifact container back into a :class:`ModelArtifact`.

    With ``verify`` (the default) the blob section is checked against
    the size and sha256 the writer recorded in the header; a truncated
    or bit-rotted file raises :class:`ArtifactIntegrityError` at load
    time instead of serving garbage weights.  Containers written
    before the checksum fields existed skip verification.
    """
    data = Path(path).read_bytes()
    if data[: len(ARTIFACT_MAGIC)] != ARTIFACT_MAGIC:
        raise ValueError(f"{path}: not a repro.serve artifact (bad magic)")
    pos = len(ARTIFACT_MAGIC)
    header_len = struct.unpack("<I", data[pos : pos + 4])[0]
    pos += 4
    try:
        header = json.loads(data[pos : pos + header_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as e:
        raise ArtifactIntegrityError(f"{path}: unreadable header: {e}") from e
    if header["format_version"] != ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: artifact format v{header['format_version']} "
            f"unsupported (reader is v{ARTIFACT_VERSION})"
        )
    blob = data[pos + header_len :]
    if verify and "blob_nbytes" in header:
        if len(blob) != header["blob_nbytes"]:
            raise ArtifactIntegrityError(
                f"{path}: blob section is {len(blob)} bytes, header "
                f"promises {header['blob_nbytes']} (truncated?)"
            )
        digest = hashlib.sha256(blob).hexdigest()
        if digest != header["blob_sha256"]:
            raise ArtifactIntegrityError(
                f"{path}: blob sha256 mismatch "
                f"({digest[:16]}… != {header['blob_sha256'][:16]}…)"
            )

    packed: Dict[str, PackedTensor] = {}
    raw: Dict[str, np.ndarray] = {}
    for t in header["tensors"]:
        blobs = t["blobs"]
        if t["kind"] == "raw":
            raw[t["name"]] = _read_array(blob, blobs["data"])
            continue
        e = blobs["element_data"]
        packed[t["name"]] = PackedTensor(
            dtype_name=t["dtype_name"],
            bits=t["bits"],
            shape=tuple(t["shape"]),
            group_size=t["group_size"],
            element_data=blob[e["offset"] : e["offset"] + e["nbytes"]],
            sf_codes=_read_array(blob, blobs["sf_codes"]),
            channel_scales=_read_array(blob, blobs["channel_scales"]),
            sv_selectors=(
                _read_array(blob, blobs["sv_selectors"])
                if "sv_selectors" in blobs
                else None
            ),
            zeros=_read_array(blob, blobs["zeros"]) if "zeros" in blobs else None,
            # Containers written before the field existed fall back to
            # size-division inference downstream.
            groups_per_channel=t.get("groups_per_channel"),
        )

    q = header["quant"]
    kv = header["kv_quant"]
    return ModelArtifact(
        model_name=header["model"]["name"],
        seed=header["model"]["seed"],
        quant_config=QuantConfig(
            dtype=q["dtype"],
            granularity=q["granularity"],
            group_size=q["group_size"],
            scale_bits=q["scale_bits"],
            clip_ratio=q["clip_ratio"],
        ),
        kv_quant=None if kv is None else KVQuantConfig(bits=kv["bits"], per_head=kv["per_head"]),
        packed=packed,
        raw_weights=raw,
        # Uniform artifacts (and containers written before plans
        # existed) simply carry no plan block.
        plan=None if "plan" not in header else QuantPlan.from_dict(header["plan"]),
        # Single-device artifacts (all containers before sharding
        # existed) carry no shard block.
        shard_header=header.get("shard"),
    )
