"""Continuous batching: token-budgeted prefill/decode interleaving.

The scheduler follows the vLLM iteration model: every :meth:`step`
spends a ``max_batch_tokens`` budget, decoding each running sequence
(one token apiece) first and admitting waiting prompts into the batch
with whatever budget remains.  Sequences join and leave the batch at
step granularity — a finished request frees its slot immediately, and
a newly admitted one starts decoding on the very next step, so the
batch never drains to refill (the "continuous" part).

Requests carry an SLO *tier* (:data:`SLO_TIERS`: ``interactive`` >
``standard`` > ``batch``).  The scheduler is strict-priority across
tiers and round-robin within one: decode budget goes to the highest
tier first (a scarce budget can therefore never starve latency-critical
decodes behind batch work), and admission prefers the
earliest-submitted request of the highest waiting tier.

Degradation is explicit (see :mod:`repro.serve.errors`):

* ``max_waiting`` bounds the admission queue — an overfull queue sheds
  the new request with :class:`~repro.serve.errors.Overloaded` instead
  of growing without limit; queue-depth-aware shedding rejects
  ``batch``-tier work earlier (at ``soft_admit_ratio`` of the bound)
  so background traffic is the first to back off under pressure;
* a request's ``deadline_s`` is checked every step; an expired request
  is cancelled and evicted from whichever queue holds it, surfacing as
  a structured :class:`~repro.serve.errors.DeadlineExceeded`;
* each request pins the engine it started on, so
  :meth:`ContinuousBatcher.swap_engine` hot-swaps a new artifact into
  the scheduler while in-flight sequences (whose KV caches belong to
  the old weights) finish where they began — zero dropped requests.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.obs.trace import NOOP_SPAN, TRACER
from repro.resilience import faults
from repro.serve.engine import GenerationConfig, InferenceEngine, SequenceState
from repro.serve.errors import Overloaded
from repro.serve.metrics import ServeMetrics

__all__ = ["Request", "RequestState", "StepReport", "ContinuousBatcher", "SLO_TIERS"]

#: Latency tiers, highest priority first.  ``interactive`` is the
#: chat-style low-TTFT class, ``standard`` the default, ``batch`` the
#: throughput class that is shed first and decoded last.
SLO_TIERS = {"interactive": 2, "standard": 1, "batch": 0}


@dataclass
class Request:
    """One generation request as submitted by a client."""

    request_id: int
    prompt: np.ndarray
    generation: GenerationConfig = field(default_factory=GenerationConfig)
    submitted_at: float = 0.0
    #: Seconds (on the scheduler clock, from submission) this request
    #: may take end-to-end; ``None`` = no deadline.
    deadline_s: Optional[float] = None
    #: SLO class (a :data:`SLO_TIERS` key); governs decode priority,
    #: admission order, and how early the request is shed under load.
    tier: str = "standard"

    @property
    def priority(self) -> int:
        return SLO_TIERS[self.tier]


@dataclass
class RequestState:
    """Scheduler-side bookkeeping for one request."""

    request: Request
    seq: SequenceState
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Absolute scheduler-clock instant the request expires at.
    deadline_at: Optional[float] = None
    #: The engine this request prefills/decodes on (pinned at submit
    #: so artifact hot swaps never touch an in-flight KV cache).
    engine: Optional[InferenceEngine] = None
    expired: bool = False

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def priority(self) -> int:
        return self.request.priority


@dataclass
class StepReport:
    """What one scheduler step executed."""

    step: int
    prefilled: List[int] = field(default_factory=list)
    decoded: List[int] = field(default_factory=list)
    finished: List[int] = field(default_factory=list)
    expired: List[int] = field(default_factory=list)
    prefill_tokens: int = 0
    decode_tokens: int = 0
    #: Prompt tokens served from the engine's prefix cache instead of
    #: being recomputed by this step's prefills.
    prefix_reused_tokens: int = 0

    @property
    def batch_tokens(self) -> int:
        """Budget spent this step (prompt tokens + decode passes)."""
        return self.prefill_tokens + self.decode_tokens

    @property
    def generated_tokens(self) -> int:
        """New tokens produced: one per decode pass, plus the first
        token each prefill samples from its own forward pass."""
        return self.decode_tokens + len(self.prefilled)


class ContinuousBatcher:
    """Queue + step executor over an :class:`InferenceEngine`."""

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_tokens: int = 512,
        max_running: int = 64,
        max_waiting: Optional[int] = None,
        soft_admit_ratio: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[ServeMetrics] = None,
    ):
        if max_batch_tokens < 1:
            raise ValueError("max_batch_tokens must be at least 1")
        if max_waiting is not None and max_waiting < 1:
            raise ValueError("max_waiting must be at least 1 (or None)")
        if not (0.0 < soft_admit_ratio <= 1.0):
            raise ValueError("soft_admit_ratio must be in (0, 1]")
        self.engine = engine
        self.max_batch_tokens = max_batch_tokens
        self.max_running = max_running
        self.max_waiting = max_waiting
        #: Fraction of ``max_waiting`` past which the lowest SLO tier
        #: (``batch``) is shed; higher tiers admit up to the full bound.
        self.soft_admit_ratio = soft_admit_ratio
        self.clock = clock
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._waiting: Deque[RequestState] = deque()
        self._running: Deque[RequestState] = deque()
        self._finished: Dict[int, RequestState] = {}
        self._expired: Dict[int, RequestState] = {}
        self._step = 0

    # ------------------------------------------------------------------
    def admit_limit(self, tier: str) -> Optional[int]:
        """Queue depth at which ``tier`` stops being admitted.

        The lowest tier sheds at ``soft_admit_ratio * max_waiting`` so
        background work backs off before the queue saturates; every
        other tier admits up to the full ``max_waiting`` bound.
        """
        if self.max_waiting is None:
            return None
        if SLO_TIERS[tier] <= min(SLO_TIERS.values()):
            return max(1, int(self.max_waiting * self.soft_admit_ratio))
        return self.max_waiting

    def submit(self, request: Request) -> RequestState:
        """Queue a request; it enters the batch on a later step.

        Raises :class:`Overloaded` when the admission queue is full
        for the request's SLO tier — the request is shed, not silently
        queued behind work the server cannot keep up with.
        """
        if request.tier not in SLO_TIERS:
            raise ValueError(
                f"unknown SLO tier {request.tier!r}; "
                f"known: {', '.join(SLO_TIERS)}"
            )
        limit = self.admit_limit(request.tier)
        if limit is not None and len(self._waiting) >= limit:
            self.metrics.rejected += 1
            self.metrics.registry.counter(
                "serve.requests.shed", tier=request.tier
            ).inc()
            raise Overloaded(
                f"admission queue full for tier {request.tier!r} "
                f"({len(self._waiting)} waiting, limit {limit})",
                request_id=request.request_id,
                waiting=len(self._waiting),
                tier=request.tier,
            )
        if not request.submitted_at:
            # Stamp with the scheduler clock so TTFT/latency are sane
            # for callers that leave the dataclass default in place.
            request.submitted_at = self.clock()
        prompt_len = int(np.asarray(request.prompt).size)
        if prompt_len > self.max_batch_tokens:
            raise ValueError(
                f"prompt of {prompt_len} tokens exceeds the per-step "
                f"budget of {self.max_batch_tokens}"
            )
        seq = self.engine.start_sequence(request.prompt, request.generation)
        state = RequestState(request=request, seq=seq, engine=self.engine)
        if request.deadline_s is not None:
            state.deadline_at = request.submitted_at + request.deadline_s
        self._waiting.append(state)
        self.metrics.submitted += 1
        self.metrics.queue_waiting.set(len(self._waiting))
        self.metrics.start(self.clock())
        return state

    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    @property
    def n_running(self) -> int:
        return len(self._running)

    def finished(self, request_id: int) -> RequestState:
        return self._finished[request_id]

    def expired(self, request_id: int) -> RequestState:
        return self._expired[request_id]

    # ------------------------------------------------------------------
    def swap_engine(self, engine: InferenceEngine) -> InferenceEngine:
        """Replace the engine for *future* work; return the old one.

        In-flight requests (waiting or running) pinned the engine they
        started on and finish there — their KV caches belong to the old
        weights — so a hot swap drops nothing.
        """
        old, self.engine = self.engine, engine
        return old

    # ------------------------------------------------------------------
    def step(self) -> StepReport:
        """Run one continuous-batching iteration."""
        traced = TRACER.enabled
        step_span = (
            TRACER.span("serve.step", step=self._step) if traced else NOOP_SPAN
        )
        with step_span as sp:
            report = StepReport(step=self._step)
            budget = self.max_batch_tokens
            self._expire_overdue(report)

            # Decode pass: one token per running sequence, highest SLO
            # tier first so a scarce budget never starves
            # latency-critical decodes behind batch work.  Within one
            # tier the deque rotates so the budget round-robins fairly
            # instead of starving the tail.
            classes: Dict[int, Deque[RequestState]] = {}
            for state in self._running:
                classes.setdefault(state.priority, deque()).append(state)
            self._running = deque()
            for priority in sorted(classes, reverse=True):
                tier_queue = classes[priority]
                still_running: Deque[RequestState] = deque()
                cut = False
                for _ in range(len(tier_queue)):
                    state = tier_queue.popleft()
                    if budget < 1:
                        still_running.append(state)
                        cut = True
                        continue
                    budget -= 1
                    with (
                        TRACER.span("serve.decode", request=state.request_id)
                        if traced
                        else NOOP_SPAN
                    ):
                        if faults.enabled():
                            faults.fire("serve.decode", request=state.request_id)
                        (state.engine or self.engine).decode(state.seq)
                    report.decoded.append(state.request_id)
                    report.decode_tokens += 1
                    if state.seq.done:
                        self._finish(state, report)
                    else:
                        still_running.append(state)
                if cut and still_running:
                    still_running.rotate(-1)
                self._running.extend(still_running)

            # Admission pass: prefill waiting prompts with leftover
            # budget, earliest request of the highest waiting tier
            # first (strict priority: a blocked high-tier head also
            # blocks lower tiers, so they cannot jump the class).
            while self._waiting and len(self._running) < self.max_running:
                state = max(self._waiting, key=lambda s: s.priority)
                if state.seq.prompt.size > budget:
                    break
                self._waiting.remove(state)
                budget -= state.seq.prompt.size
                with (
                    TRACER.span(
                        "serve.prefill",
                        request=state.request_id,
                        prompt_tokens=int(state.seq.prompt.size),
                    )
                    if traced
                    else NOOP_SPAN
                ):
                    (state.engine or self.engine).prefill(state.seq)
                state.first_token_at = self.clock()
                self.metrics.ttft.record(
                    state.first_token_at - state.request.submitted_at
                )
                report.prefilled.append(state.request_id)
                report.prefill_tokens += state.seq.prompt.size
                report.prefix_reused_tokens += state.seq.prefix_hit_tokens
                self.metrics.prefill_reused += state.seq.prefix_hit_tokens
                if state.seq.done:
                    self._finish(state, report)
                else:
                    self._running.append(state)

            self._step += 1
            self.metrics.steps += 1
            self.metrics.prefill_tokens += report.prefill_tokens
            self.metrics.decode_tokens += report.generated_tokens
            self.metrics.queue_waiting.set(len(self._waiting))
            self.metrics.queue_running.set(len(self._running))
            if sp is not None:
                sp.args.update(
                    prefilled=len(report.prefilled),
                    decoded=len(report.decoded),
                    finished=len(report.finished),
                    expired=len(report.expired),
                )
            return report

    def run_until_idle(self, max_steps: int = 100_000) -> List[StepReport]:
        """Drive :meth:`step` until every request completes."""
        reports = []
        while self.has_work:
            if len(reports) >= max_steps:
                raise RuntimeError(f"scheduler did not drain in {max_steps} steps")
            reports.append(self.step())
        self.metrics.stop(self.clock())
        return reports

    # ------------------------------------------------------------------
    def _expire_overdue(self, report: StepReport) -> None:
        """Cancel every queued/running request whose deadline passed.

        Runs at the top of each step so an expired request costs no
        further decode budget; the server maps the eviction onto the
        request's future as :class:`~repro.serve.errors.DeadlineExceeded`.
        """
        now = self.clock()
        for queue in (self._waiting, self._running):
            overdue = [
                s
                for s in queue
                if s.deadline_at is not None and now >= s.deadline_at
            ]
            for state in overdue:
                queue.remove(state)
                state.expired = True
                state.finished_at = now
                self._expired[state.request_id] = state
                report.expired.append(state.request_id)
                self.metrics.expired += 1

    # ------------------------------------------------------------------
    def _finish(self, state: RequestState, report: StepReport) -> None:
        state.finished_at = self.clock()
        self.metrics.completed += 1
        latency = state.finished_at - state.request.submitted_at
        self.metrics.latency.record(latency)
        self._finished[state.request_id] = state
        report.finished.append(state.request_id)
        if TRACER.enabled:
            # The request lifecycle cannot be a lexical block — submit
            # and completion land on different steps — so emit it with
            # explicit timestamps (scheduler clock mapped onto wall).
            dur_ns = int(latency * 1e9)
            TRACER.add_span(
                "serve.request",
                start_wall_ns=time.time_ns() - dur_ns,
                dur_ns=dur_ns,
                request=state.request_id,
                prompt_tokens=int(state.seq.prompt.size),
                generated_tokens=len(state.seq.generated),
                ttft_s=(
                    None
                    if state.first_token_at is None
                    else state.first_token_at - state.request.submitted_at
                ),
            )
