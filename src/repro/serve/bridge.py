"""Bridge from served requests to the accelerator model.

The serving engine runs at sim scale, but the hardware questions —
how many cycles, how much energy would this traffic cost on the
accelerator — are asked at full model scale.  This module replays
request traces (prompt length, generated length) through
:func:`repro.hw.simulator.simulate` at the artifact's packed
precision, yielding modeled latency and an energy breakdown per
request plus fleet-level aggregates.

:func:`functional_replay` goes one level deeper: it pushes real
batched activations through the *bit-accurate* vectorized PE datapath
(:meth:`repro.hw.functional.FunctionalGemm.run_packed`) against the
artifact's packed weight images, yielding measured PE cycles and a
numerical cross-check of the packed tensors — feasible at serving
batch sizes now that the kernel engine is vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.hw.baselines import make_accelerator
from repro.hw.functional import FunctionalGemm
from repro.hw.pe import PEConfig
from repro.hw.simulator import SimResult, simulate
from repro.models.zoo import get_model_config
from repro.serve.artifact import ModelArtifact

__all__ = [
    "RequestTrace",
    "HardwareReport",
    "hardware_report",
    "FunctionalReplay",
    "functional_replay",
]


@dataclass(frozen=True)
class RequestTrace:
    """The shape of one served request."""

    prompt_len: int
    gen_len: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_len + self.gen_len


def _as_trace(obj: Union[RequestTrace, "GenerationResult"]) -> RequestTrace:
    if isinstance(obj, RequestTrace):
        return obj
    # GenerationResult duck-type: prompt_len + n_generated.
    return RequestTrace(prompt_len=obj.prompt_len, gen_len=obj.n_generated)


@dataclass
class HardwareReport:
    """Modeled accelerator cost of a batch of served requests."""

    model: str
    accelerator: str
    weight_bits: float
    per_request: List[SimResult]

    @property
    def n_requests(self) -> int:
        return len(self.per_request)

    @property
    def total_time_ms(self) -> float:
        return sum(r.time_ms for r in self.per_request)

    @property
    def total_energy_uj(self) -> float:
        return sum(r.energy.total_uj for r in self.per_request)

    @property
    def energy_per_request_uj(self) -> float:
        return self.total_energy_uj / self.n_requests if self.n_requests else 0.0

    def to_dict(self) -> Dict:
        return {
            "model": self.model,
            "accelerator": self.accelerator,
            "weight_bits": self.weight_bits,
            "n_requests": self.n_requests,
            "total_time_ms": self.total_time_ms,
            "total_energy_uj": self.total_energy_uj,
            "energy_per_request_uj": self.energy_per_request_uj,
            "per_request": [
                {
                    "time_ms": r.time_ms,
                    "energy_uj": r.energy.total_uj,
                    "dram_uj": r.energy.dram_uj,
                    "onchip_uj": r.energy.onchip_uj,
                }
                for r in self.per_request
            ],
        }


@dataclass
class FunctionalReplay:
    """Bit-accurate replay of one packed linear at a serving batch size."""

    layer: str
    batch: int
    shape: tuple
    pe_cycles: int
    groups_processed: int
    #: Max |PE output - x @ w_deq.T| — the datapath's FP16-accumulation
    #: deviation from the ideal dequantized matmul.
    max_abs_err: float

    @property
    def cycles_per_output(self) -> float:
        k = self.shape[0]
        return self.pe_cycles / (self.batch * k) if self.batch * k else 0.0


def functional_replay(
    artifact: ModelArtifact,
    batch_size: int,
    layers: Optional[Sequence[str]] = None,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[FunctionalReplay]:
    """Replay packed linears through the bit-accurate PE datapath.

    ``batch_size`` is the number of concurrent sequence slots (the
    GEMM M dimension of one continuous-batching decode step).  Each
    selected layer's packed image is decoded once (memoized in the
    bounded kernel decode cache) and multiplied against random FP16
    activations by :class:`~repro.hw.functional.FunctionalGemm`; the
    result is validated against the dequantized-matmul reference.

    ``backend`` pins a kernel backend by name (``None`` lets the
    dispatcher pick — every backend is bit-identical, so this only
    changes replay speed).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    names = list(layers) if layers is not None else sorted(artifact.packed)
    rng = np.random.default_rng(seed)
    out: List[FunctionalReplay] = []
    for name in names:
        packed = artifact.packed[name]
        gemm = FunctionalGemm(
            artifact.tensor_config(name), PEConfig(), backend=backend
        )
        k, d = packed.shape
        x = rng.standard_normal((batch_size, d)).astype(np.float16)
        res = gemm.run_packed(x, packed)
        from repro.quant.packing import unpack_tensor

        w_deq = unpack_tensor(packed, artifact.tensor_config(name))
        ref = x.astype(np.float64) @ w_deq.T
        out.append(
            FunctionalReplay(
                layer=name,
                batch=batch_size,
                shape=tuple(packed.shape),
                pe_cycles=res.pe_cycles,
                groups_processed=res.groups_processed,
                max_abs_err=float(np.max(np.abs(res.output - ref))) if ref.size else 0.0,
            )
        )
    return out


def hardware_report(
    artifact_or_model: Union[ModelArtifact, str],
    traces: Iterable,
    accelerator: str = "bitmod",
    weight_bits: float = None,
) -> HardwareReport:
    """Model the accelerator cost of served-request ``traces``.

    ``artifact_or_model`` is a :class:`ModelArtifact` (precision taken
    from the packed tensors) or a zoo model name (then ``weight_bits``
    must be given).  Traces are :class:`RequestTrace` instances or
    :class:`~repro.serve.server.GenerationResult` objects.
    """
    if isinstance(artifact_or_model, ModelArtifact):
        model_name = artifact_or_model.model_name
        if weight_bits is None:
            weight_bits = artifact_or_model.mean_bits_per_weight
    else:
        model_name = artifact_or_model
        if weight_bits is None:
            raise ValueError("weight_bits is required when passing a model name")

    cfg = get_model_config(model_name)
    accel = make_accelerator(accelerator)
    results = []
    for obj in traces:
        trace = _as_trace(obj)
        if trace.gen_len < 1:
            raise ValueError("traces must include at least one generated token")
        results.append(
            simulate(
                cfg,
                accel,
                "generative",
                weight_bits=weight_bits,
                prompt_len=trace.prompt_len,
                gen_len=trace.gen_len,
            )
        )
    return HardwareReport(
        model=model_name,
        accelerator=accelerator,
        weight_bits=float(weight_bits),
        per_request=results,
    )
