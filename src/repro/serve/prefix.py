"""Prefix-sharing KV reuse: a block-aligned prompt-prefix cache.

Shared-prefix traffic — chat turns over one system prompt, few-shot
templates, retrieval headers — re-prefills the same leading tokens on
every request.  :class:`PrefixKVCache` stores the per-layer K/V
tensors of *block-aligned* prompt prefixes so a later request whose
prompt starts with a cached prefix seeds its
:class:`~repro.models.transformer.KVCache` from the snapshot and runs
prefill only over the uncached tail (radix-style lookup: longest
cached block chain wins).

Correctness contract
    Chunked prefill (cached prefix + tail) reproduces the full-prompt
    forward up to float64 rounding (~1e-15, from BLAS shape-dependent
    accumulation order), which leaves greedy *decode outputs
    byte-identical* to the cache-disabled path — the same tolerance
    class the incremental KV decode path already stands on.  Prefix
    reuse is disabled when the engine quantizes its KV cache: KV
    quantization is per-prefill-segment, so splitting the prompt would
    change the stored values, not just their rounding.

Memory
    Entries hold copied slices and share nothing with live sequences
    (:meth:`KVCache.append` concatenates into fresh arrays, so adopted
    snapshot arrays are never written).  The cache is a byte-budgeted
    LRU like the kernel decode cache: ``$REPRO_PREFIX_CACHE_MB``
    (default 64) bounds it, oversize prefixes pass through uncached,
    and hit/miss/insert/eviction counts mirror into :mod:`repro.obs`
    (``serve.prefix_cache.*`` counters + ``serve.prefix_cache.bytes``).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs

__all__ = ["PrefixKVCache", "DEFAULT_BUDGET_MB", "DEFAULT_BLOCK_TOKENS"]

#: Default byte budget when ``$REPRO_PREFIX_CACHE_MB`` is unset.
DEFAULT_BUDGET_MB = 64.0
#: Prefix lengths are quantized to multiples of this many tokens.
DEFAULT_BLOCK_TOKENS = 16

Snapshot = List[Tuple[np.ndarray, np.ndarray]]


def _env_budget_bytes() -> int:
    raw = os.environ.get("REPRO_PREFIX_CACHE_MB", "")
    try:
        mb = float(raw) if raw else DEFAULT_BUDGET_MB
    except ValueError:
        mb = DEFAULT_BUDGET_MB
    return max(0, int(mb * 1024 * 1024))


def _snapshot_nbytes(snapshot: Snapshot) -> int:
    return sum(int(k.nbytes) + int(v.nbytes) for k, v in snapshot)


class PrefixKVCache:
    """LRU of block-aligned prompt prefixes → per-layer K/V snapshots.

    Keys are the exact token bytes of the prefix, so a hit can only
    ever replay KV that belongs to the same leading tokens; different
    models/engines must not share one instance (token bytes alone
    don't cover the weights).
    """

    def __init__(
        self,
        block_tokens: int = DEFAULT_BLOCK_TOKENS,
        budget_bytes: Optional[int] = None,
    ):
        if block_tokens < 1:
            raise ValueError("block_tokens must be at least 1")
        self.block_tokens = int(block_tokens)
        self.budget_bytes = (
            _env_budget_bytes() if budget_bytes is None else int(budget_bytes)
        )
        # key -> (snapshot, nbytes); insertion order is LRU order.
        self._entries: "OrderedDict[bytes, Tuple[Snapshot, int]]" = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.oversize = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(prompt: np.ndarray, length: int) -> bytes:
        return np.ascontiguousarray(prompt[:length], dtype=np.int64).tobytes()

    def _aligned_lengths(self, max_len: int) -> List[int]:
        """Block-aligned candidate lengths ≤ ``max_len``, longest first."""
        longest = (max_len // self.block_tokens) * self.block_tokens
        return list(range(longest, 0, -self.block_tokens))

    # ------------------------------------------------------------------
    def match_len(self, prompt: np.ndarray) -> int:
        """Longest cached block-aligned strict prefix of ``prompt``
        (0 = none).  A peek: no counters, no LRU reordering."""
        prompt = np.asarray(prompt).reshape(-1)
        for length in self._aligned_lengths(int(prompt.size) - 1):
            if self._key(prompt, length) in self._entries:
                return length
        return 0

    def lookup(self, prompt: np.ndarray) -> Optional[Tuple[int, Snapshot]]:
        """The longest cached prefix of ``prompt`` and its snapshot.

        Matches only *strict* prefixes (at least one prompt token is
        left to prefill, so the caller can still sample a first token
        from its own forward pass).  Counts a hit or miss and
        refreshes the entry's LRU position.
        """
        prompt = np.asarray(prompt).reshape(-1)
        for length in self._aligned_lengths(int(prompt.size) - 1):
            key = self._key(prompt, length)
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                obs.counter("serve.prefix_cache.hits").inc()
                return length, entry[0]
        self.misses += 1
        obs.counter("serve.prefix_cache.misses").inc()
        return None

    def insert(self, prompt: np.ndarray, cache) -> int:
        """Snapshot the longest block-aligned prefix of ``prompt`` out
        of its just-prefilled ``cache``; returns the stored length
        (0 = nothing stored).  Re-inserting an existing prefix only
        refreshes its LRU position."""
        prompt = np.asarray(prompt).reshape(-1)
        length = (int(prompt.size) // self.block_tokens) * self.block_tokens
        if length < self.block_tokens:
            return 0
        key = self._key(prompt, length)
        if key in self._entries:
            self._entries.move_to_end(key)
            return length
        snapshot = cache.snapshot(length)
        nbytes = _snapshot_nbytes(snapshot)
        if nbytes > self.budget_bytes:
            self.oversize += 1
            obs.counter("serve.prefix_cache.oversize").inc()
            return 0
        while self._entries and self.total_bytes + nbytes > self.budget_bytes:
            self._evict_lru()
        self._entries[key] = (snapshot, nbytes)
        self.total_bytes += nbytes
        self.inserts += 1
        obs.counter("serve.prefix_cache.inserts").inc()
        obs.gauge("serve.prefix_cache.bytes").set(self.total_bytes)
        return length

    def clear(self) -> None:
        self._entries.clear()
        self.total_bytes = 0
        obs.gauge("serve.prefix_cache.bytes").set(0)

    # ------------------------------------------------------------------
    def _evict_lru(self) -> None:
        _, (_, nbytes) = self._entries.popitem(last=False)
        self.total_bytes -= nbytes
        self.evictions += 1
        obs.counter("serve.prefix_cache.evictions").inc()
        obs.gauge("serve.prefix_cache.bytes").set(self.total_bytes)

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes,
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "oversize": self.oversize,
        }
