"""Serving metrics: throughput, TTFT, latency percentiles."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["LatencyStats", "ServeMetrics"]


@dataclass
class LatencyStats:
    """Streaming latency samples with percentile summaries."""

    samples: List[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.samples.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[int(rank)]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": max(self.samples) if self.samples else 0.0,
        }


@dataclass
class ServeMetrics:
    """Aggregate counters for one serving run."""

    submitted: int = 0
    completed: int = 0
    prefill_tokens: int = 0
    decode_tokens: int = 0
    steps: int = 0
    ttft: LatencyStats = field(default_factory=LatencyStats)
    latency: LatencyStats = field(default_factory=LatencyStats)
    started_at: Optional[float] = None
    stopped_at: Optional[float] = None

    def start(self, now: Optional[float] = None) -> None:
        if self.started_at is None:
            self.started_at = time.monotonic() if now is None else now

    def stop(self, now: Optional[float] = None) -> None:
        self.stopped_at = time.monotonic() if now is None else now

    @property
    def elapsed_s(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else time.monotonic()
        return max(end - self.started_at, 0.0)

    @property
    def total_tokens(self) -> int:
        return self.prefill_tokens + self.decode_tokens

    @property
    def decode_tokens_per_s(self) -> float:
        e = self.elapsed_s
        return self.decode_tokens / e if e > 0 else 0.0

    @property
    def total_tokens_per_s(self) -> float:
        e = self.elapsed_s
        return self.total_tokens / e if e > 0 else 0.0

    def to_dict(self) -> Dict:
        return {
            "requests": {"submitted": self.submitted, "completed": self.completed},
            "tokens": {
                "prefill": self.prefill_tokens,
                "decode": self.decode_tokens,
                "total": self.total_tokens,
            },
            "steps": self.steps,
            "elapsed_s": self.elapsed_s,
            "decode_tokens_per_s": self.decode_tokens_per_s,
            "total_tokens_per_s": self.total_tokens_per_s,
            "ttft": self.ttft.summary(),
            "latency": self.latency.summary(),
        }
