"""Serving metrics: throughput, TTFT, latency percentiles.

Rebuilt on :mod:`repro.obs.metrics`: every number lives in a
:class:`~repro.obs.metrics.MetricsRegistry` (counters for request and
token totals, gauges for scheduler queue depth, histograms for
TTFT/latency), so a serving run exports the same snapshot/Prometheus
shapes as the pipeline and DSE layers.  The legacy surface is
preserved exactly — ``metrics.submitted += 1``,
``metrics.ttft.percentile(95)``, ``metrics.to_dict()`` — while
:class:`LatencyStats` gains the obs histogram's cached sorted view
(re-sorting only after new samples) and optional reservoir ``cap``
for unbounded streams.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["LatencyStats", "ServeMetrics"]


class LatencyStats(Histogram):
    """Streaming latency samples with percentile summaries.

    A thin veneer over :class:`repro.obs.metrics.Histogram` keeping
    the historical serve API: seconds-suffixed summary keys and a
    ``samples``-list constructor.  ``cap`` bounds the retained sample
    reservoir; ``count``/``mean``/``max`` still cover every recorded
    sample.
    """

    def __init__(
        self,
        samples: Optional[Iterable[float]] = None,
        cap: Optional[int] = None,
        name: str = "serve.latency_s",
        labels: tuple = (),
    ):
        super().__init__(name=name, labels=labels, cap=cap)
        for v in samples or ():
            self.record(v)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self.max,
        }


def _int_counter(name):
    """Property view exposing a named registry counter as a plain int."""

    def get(self) -> int:
        return int(self._counters[name].value)

    def set(self, value: int) -> None:
        self._counters[name].value = float(value)

    return property(get, set)


class ServeMetrics:
    """Aggregate counters for one serving run.

    Each instance owns (or is handed) a registry; passing a shared
    registry — e.g. ``repro.obs.get_registry()`` — publishes the
    run's series alongside the pipeline/DSE metrics.  Counter fields
    stay plain-int attributes (``metrics.submitted += 1`` works), and
    ``ttft``/``latency`` are :class:`LatencyStats` histograms
    registered under ``serve.ttft_s`` / ``serve.latency_s``.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"serve.{series}")
            for name, series in (
                ("submitted", "requests.submitted"),
                ("completed", "requests.completed"),
                ("expired", "requests.expired"),
                ("rejected", "requests.rejected"),
                ("prefill_tokens", "tokens.prefill"),
                ("prefill_reused", "tokens.prefill_reused"),
                ("decode_tokens", "tokens.decode"),
                ("steps", "scheduler.steps"),
            )
        }
        self.ttft = LatencyStats(name="serve.ttft_s")
        self.latency = LatencyStats(name="serve.latency_s")
        self.registry.register(self.ttft)
        self.registry.register(self.latency)
        #: Scheduler queue depth (updated by the batcher each step).
        self.queue_waiting = self.registry.gauge("serve.queue.waiting")
        self.queue_running = self.registry.gauge("serve.queue.running")
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    submitted = _int_counter("submitted")
    completed = _int_counter("completed")
    #: Requests cancelled because their deadline passed.
    expired = _int_counter("expired")
    #: Requests shed at admission (queue full or server draining).
    rejected = _int_counter("rejected")
    prefill_tokens = _int_counter("prefill_tokens")
    #: Prompt tokens whose KV was reused from the prefix cache.
    prefill_reused = _int_counter("prefill_reused")
    decode_tokens = _int_counter("decode_tokens")
    steps = _int_counter("steps")

    # ------------------------------------------------------------------
    def start(self, now: Optional[float] = None) -> None:
        if self.started_at is None:
            self.started_at = time.monotonic() if now is None else now

    def stop(self, now: Optional[float] = None) -> None:
        self.stopped_at = time.monotonic() if now is None else now

    @property
    def elapsed_s(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else time.monotonic()
        return max(end - self.started_at, 0.0)

    @property
    def total_tokens(self) -> int:
        return self.prefill_tokens + self.decode_tokens

    @property
    def decode_tokens_per_s(self) -> float:
        e = self.elapsed_s
        return self.decode_tokens / e if e > 0 else 0.0

    @property
    def total_tokens_per_s(self) -> float:
        e = self.elapsed_s
        return self.total_tokens / e if e > 0 else 0.0

    def snapshot(self) -> Dict:
        """A live, poll-safe view of the run so far.

        Historically TTFT/latency percentiles were only read at drain
        (after :meth:`stop`); ``snapshot()`` is the mid-run view a load
        harness polls every few hundred milliseconds: it reads the
        cached-sort histograms and counter values without resetting or
        mutating anything, so any number of polls leave the final
        :meth:`to_dict` byte-identical.  Adds the live queue gauges,
        in-flight count, and prefix-reuse total on top of the
        :meth:`to_dict` shape.
        """
        d = self.to_dict()
        d["tokens"]["prefill_reused"] = self.prefill_reused
        d["queues"] = {
            "waiting": int(self.queue_waiting.value),
            "running": int(self.queue_running.value),
        }
        d["in_flight"] = self.submitted - self.completed - self.expired
        return d

    def to_dict(self) -> Dict:
        return {
            "requests": {
                "submitted": self.submitted,
                "completed": self.completed,
                "expired": self.expired,
                "rejected": self.rejected,
            },
            "tokens": {
                "prefill": self.prefill_tokens,
                "decode": self.decode_tokens,
                "total": self.total_tokens,
            },
            "steps": self.steps,
            "elapsed_s": self.elapsed_s,
            "decode_tokens_per_s": self.decode_tokens_per_s,
            "total_tokens_per_s": self.total_tokens_per_s,
            "ttft": self.ttft.summary(),
            "latency": self.latency.summary(),
        }
