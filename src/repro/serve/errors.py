"""Structured serve-path errors.

Degradation must be explicit: when the server sheds load or expires a
request it raises a typed :class:`ServeError` whose :meth:`to_dict`
is the wire shape an HTTP front-end would return — a machine-readable
``error`` code plus human-readable ``message`` — never a bare
``RuntimeError`` a client cannot branch on.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["ServeError", "DeadlineExceeded", "Overloaded"]


class ServeError(Exception):
    """Base class: a structured, client-reportable serving failure."""

    code = "serve_error"

    def __init__(self, message: str, request_id: Optional[int] = None, **details):
        super().__init__(message)
        self.request_id = request_id
        self.details = details

    def to_dict(self) -> Dict:
        """The JSON error body a front-end would serialize."""
        out: Dict = {"error": self.code, "message": str(self)}
        if self.request_id is not None:
            out["request_id"] = self.request_id
        out.update(self.details)
        return out


class DeadlineExceeded(ServeError):
    """The request's deadline passed before it finished; it was
    cancelled and evicted from the scheduler."""

    code = "deadline_exceeded"


class Overloaded(ServeError):
    """Admission refused: the bounded queue is full (or the server is
    draining).  Explicit shed beats unbounded queue growth — the
    client can back off and retry."""

    code = "overloaded"
