"""Asyncio serving front-end over the continuous batcher.

:class:`ServeServer` runs the scheduler loop as a background task.
Clients ``await submit()`` to enqueue a prompt and get a request id,
or ``await generate()`` to block until their tokens come back; any
number of callers can be in flight at once, and the batcher packs
their prefills and decodes into shared token-budgeted steps.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.serve.batching import ContinuousBatcher, Request, RequestState
from repro.serve.engine import GenerationConfig, InferenceEngine
from repro.serve.metrics import ServeMetrics

__all__ = ["GenerationResult", "ServeServer"]


@dataclass
class GenerationResult:
    """Completed request: tokens plus per-request timings."""

    request_id: int
    prompt: np.ndarray
    tokens: List[int]
    ttft_s: float
    latency_s: float

    @property
    def prompt_len(self) -> int:
        return int(self.prompt.size)

    @property
    def n_generated(self) -> int:
        return len(self.tokens)


class ServeServer:
    """An in-process async LLM server."""

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_tokens: int = 512,
        max_running: int = 64,
    ):
        self.metrics = ServeMetrics()
        self.batcher = ContinuousBatcher(
            engine,
            max_batch_tokens=max_batch_tokens,
            max_running=max_running,
            metrics=self.metrics,
        )
        self._ids = itertools.count()
        self._futures: Dict[int, asyncio.Future] = {}
        self._results: Dict[int, GenerationResult] = {}
        self._wake: Optional[asyncio.Event] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._stop_requested = False
        self._drain_on_stop = True

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._loop_task is not None:
            raise RuntimeError("server already started")
        self._wake = asyncio.Event()
        self._stop_requested = False
        self._loop_task = asyncio.create_task(self._loop())

    async def stop(self, drain: bool = True) -> None:
        """Shut the scheduler loop down.

        With ``drain=True`` (default) outstanding requests finish
        first; with ``drain=False`` the loop exits immediately and
        every unresolved future fails with :class:`RuntimeError`.
        """
        if self._loop_task is None:
            return
        self._stop_requested = True
        self._drain_on_stop = drain
        self._wake.set()
        task, self._loop_task = self._loop_task, None
        await task
        for future in self._futures.values():
            if not future.done():
                future.set_exception(
                    RuntimeError("server stopped before request completed")
                )
        self.metrics.stop()

    # ------------------------------------------------------------------
    # Client API.
    # ------------------------------------------------------------------
    async def submit(
        self,
        prompt: np.ndarray,
        generation: GenerationConfig = GenerationConfig(),
    ) -> int:
        """Enqueue a prompt; returns the request id immediately."""
        if self._loop_task is None:
            raise RuntimeError("server not started")
        request_id = next(self._ids)
        request = Request(
            request_id=request_id,
            prompt=np.asarray(prompt),
            generation=generation,
            submitted_at=time.monotonic(),
        )
        self.batcher.submit(request)
        self._futures[request_id] = asyncio.get_running_loop().create_future()
        self._wake.set()
        return request_id

    async def result(self, request_id: int) -> GenerationResult:
        """Wait for a previously submitted request to finish."""
        if request_id in self._results:
            return self._results[request_id]
        return await self._futures[request_id]

    async def generate(
        self,
        prompt: np.ndarray,
        generation: GenerationConfig = GenerationConfig(),
    ) -> GenerationResult:
        """Submit and wait: the one-call client path."""
        request_id = await self.submit(prompt, generation)
        return await self.result(request_id)

    def completed(self) -> List[GenerationResult]:
        """Results of every request finished so far."""
        return list(self._results.values())

    # ------------------------------------------------------------------
    # Scheduler loop.
    # ------------------------------------------------------------------
    async def _loop(self) -> None:
        while True:
            if self._stop_requested and not (
                self._drain_on_stop and self.batcher.has_work
            ):
                return
            if not self.batcher.has_work:
                self._wake.clear()
                await self._wake.wait()
                continue
            report = self.batcher.step()
            for request_id in report.finished:
                self._resolve(self.batcher.finished(request_id))
            # Yield so submitters/waiters run between steps.
            await asyncio.sleep(0)

    def _resolve(self, state: RequestState) -> None:
        result = GenerationResult(
            request_id=state.request_id,
            prompt=state.request.prompt,
            tokens=list(state.seq.generated),
            ttft_s=state.first_token_at - state.request.submitted_at,
            latency_s=state.finished_at - state.request.submitted_at,
        )
        self._results[state.request_id] = result
        future = self._futures.pop(state.request_id, None)
        if future is not None and not future.done():
            future.set_result(result)
