"""Asyncio serving front-end over the continuous batcher.

:class:`ServeServer` runs the scheduler loop as a background task.
Clients ``await submit()`` to enqueue a prompt and get a request id,
or ``await generate()`` to block until their tokens come back; any
number of callers can be in flight at once, and the batcher packs
their prefills and decodes into shared token-budgeted steps.

The server degrades gracefully instead of falling over (errors are
the structured kind from :mod:`repro.serve.errors`):

* ``deadline_s`` on a request caps its end-to-end time — an expired
  request's future fails with :class:`DeadlineExceeded`;
* ``max_waiting`` bounds the admission queue, and a draining server
  rejects new work — both surface :class:`Overloaded`;
* :meth:`ServeServer.reload_artifact` hot-swaps new weights under
  live traffic: in-flight requests finish on the engine they started
  on, so the swap drops zero requests.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.serve.batching import ContinuousBatcher, Request, RequestState
from repro.serve.engine import GenerationConfig, InferenceEngine
from repro.serve.errors import DeadlineExceeded, Overloaded
from repro.serve.metrics import ServeMetrics

__all__ = ["GenerationResult", "ServeServer"]


@dataclass
class GenerationResult:
    """Completed request: tokens plus per-request timings."""

    request_id: int
    prompt: np.ndarray
    tokens: List[int]
    ttft_s: float
    latency_s: float

    @property
    def prompt_len(self) -> int:
        return int(self.prompt.size)

    @property
    def n_generated(self) -> int:
        return len(self.tokens)


class ServeServer:
    """An in-process async LLM server."""

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_tokens: int = 512,
        max_running: int = 64,
        max_waiting: Optional[int] = None,
        soft_admit_ratio: float = 0.5,
    ):
        self.metrics = ServeMetrics()
        self._reloads = self.metrics.registry.counter("serve.artifact_reloads")
        self.batcher = ContinuousBatcher(
            engine,
            max_batch_tokens=max_batch_tokens,
            max_running=max_running,
            max_waiting=max_waiting,
            soft_admit_ratio=soft_admit_ratio,
            metrics=self.metrics,
        )
        self._ids = itertools.count()
        self._futures: Dict[int, asyncio.Future] = {}
        self._results: Dict[int, GenerationResult] = {}
        self._wake: Optional[asyncio.Event] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._stop_requested = False
        self._drain_on_stop = True

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._loop_task is not None:
            raise RuntimeError("server already started")
        self._wake = asyncio.Event()
        self._stop_requested = False
        self._loop_task = asyncio.create_task(self._loop())

    async def stop(self, drain: bool = True) -> None:
        """Shut the scheduler loop down.

        With ``drain=True`` (default) outstanding requests finish
        first; with ``drain=False`` the loop exits immediately and
        every unresolved future fails with :class:`RuntimeError`.
        """
        if self._loop_task is None:
            return
        self._stop_requested = True
        self._drain_on_stop = drain
        self._wake.set()
        task, self._loop_task = self._loop_task, None
        await task
        for future in self._futures.values():
            if not future.done():
                future.set_exception(
                    RuntimeError("server stopped before request completed")
                )
        self.metrics.stop()

    # ------------------------------------------------------------------
    # Client API.
    # ------------------------------------------------------------------
    async def submit(
        self,
        prompt: np.ndarray,
        generation: GenerationConfig = GenerationConfig(),
        deadline_s: Optional[float] = None,
        tier: str = "standard",
    ) -> int:
        """Enqueue a prompt; returns the request id immediately.

        ``deadline_s`` caps the request's end-to-end time: once it
        passes, the scheduler cancels the request and its future fails
        with :class:`DeadlineExceeded`.  ``tier`` is the SLO class
        (see :data:`~repro.serve.batching.SLO_TIERS`): it sets decode
        priority and how early the scheduler sheds this request under
        queue pressure.  Raises :class:`Overloaded` when the admission
        queue is full for the tier or the server is draining.
        """
        # Checked before _loop_task: stop() clears the task handle while
        # the drain is still in flight, and a draining server owes the
        # client a structured rejection, not "not started".
        if self._stop_requested:
            self.metrics.rejected += 1
            raise Overloaded("server is draining; not accepting new requests")
        if self._loop_task is None:
            raise RuntimeError("server not started")
        request_id = next(self._ids)
        request = Request(
            request_id=request_id,
            prompt=np.asarray(prompt),
            generation=generation,
            submitted_at=time.monotonic(),
            deadline_s=deadline_s,
            tier=tier,
        )
        self.batcher.submit(request)
        self._futures[request_id] = asyncio.get_running_loop().create_future()
        self._wake.set()
        return request_id

    async def result(self, request_id: int) -> GenerationResult:
        """Wait for a previously submitted request to finish."""
        if request_id in self._results:
            return self._results[request_id]
        return await self._futures[request_id]

    async def generate(
        self,
        prompt: np.ndarray,
        generation: GenerationConfig = GenerationConfig(),
        deadline_s: Optional[float] = None,
        tier: str = "standard",
    ) -> GenerationResult:
        """Submit and wait: the one-call client path."""
        request_id = await self.submit(
            prompt, generation, deadline_s=deadline_s, tier=tier
        )
        return await self.result(request_id)

    def completed(self) -> List[GenerationResult]:
        """Results of every request finished so far."""
        return list(self._results.values())

    def metrics_snapshot(self) -> Dict:
        """Live :meth:`ServeMetrics.snapshot` — poll-safe mid-run."""
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Hot swap.
    # ------------------------------------------------------------------
    def reload_artifact(
        self,
        source: Union[str, Path, InferenceEngine],
        seed: int = 0,
        verify: bool = True,
        mesh=None,
    ) -> InferenceEngine:
        """Swap a new model in under live traffic; returns the old engine.

        ``source`` is an artifact path (loaded with checksum
        verification unless ``verify=False``) or a pre-built
        :class:`InferenceEngine`.  With a
        :class:`~repro.shard.mesh.DeviceMesh` the artifact comes up as
        a :class:`~repro.shard.engine.ShardedEngine` instead.  The
        load happens *before* the swap, so a corrupt artifact raises
        :class:`~repro.serve.artifact.ArtifactIntegrityError` and the
        running engine keeps serving.  In-flight requests finish on
        the engine they started on — zero dropped requests.
        """
        if isinstance(source, InferenceEngine):
            engine = source
        else:
            from repro.serve.artifact import load_artifact

            artifact = load_artifact(source, verify=verify)
            engine = InferenceEngine.from_artifact(artifact, seed=seed, mesh=mesh)
        old = self.batcher.swap_engine(engine)
        self._reloads.inc()
        return old

    # ------------------------------------------------------------------
    # Scheduler loop.
    # ------------------------------------------------------------------
    async def _loop(self) -> None:
        while True:
            if self._stop_requested and not (
                self._drain_on_stop and self.batcher.has_work
            ):
                return
            if not self.batcher.has_work:
                self._wake.clear()
                await self._wake.wait()
                continue
            report = self.batcher.step()
            for request_id in report.finished:
                self._resolve(self.batcher.finished(request_id))
            for request_id in report.expired:
                self._resolve_expired(self.batcher.expired(request_id))
            # Yield so submitters/waiters run between steps.
            await asyncio.sleep(0)

    def _resolve(self, state: RequestState) -> None:
        result = GenerationResult(
            request_id=state.request_id,
            prompt=state.request.prompt,
            tokens=list(state.seq.generated),
            ttft_s=state.first_token_at - state.request.submitted_at,
            latency_s=state.finished_at - state.request.submitted_at,
        )
        self._results[state.request_id] = result
        future = self._futures.pop(state.request_id, None)
        if future is not None and not future.done():
            future.set_result(result)

    def _resolve_expired(self, state: RequestState) -> None:
        future = self._futures.pop(state.request_id, None)
        if future is not None and not future.done():
            future.set_exception(
                DeadlineExceeded(
                    f"request {state.request_id} exceeded its "
                    f"{state.request.deadline_s:.3f}s deadline",
                    request_id=state.request_id,
                    deadline_s=state.request.deadline_s,
                    generated_tokens=len(state.seq.generated),
                )
            )
