"""Weight-statistics profiling (paper Fig. 2).

For every quantization granularity, Fig. 2 reports the maximum
absolute value and the value range of weight vectors, normalized by
the standard deviation at that granularity and averaged over all
vectors of the model.  Smaller normalized max/range means the
quantization grid wastes fewer levels on rare extremes — the paper's
argument for per-group quantization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.models.config import ModelConfig
from repro.models.transformer import CausalLM
from repro.quant.granularity import to_rows

__all__ = ["GranularityStats", "profile_granularity"]


@dataclass(frozen=True)
class GranularityStats:
    """Normalized max magnitude and range at one granularity."""

    model: str
    granularity: str
    norm_max: float
    norm_range: float


def _stats_for(rows: np.ndarray) -> tuple:
    sigma = np.std(rows, axis=1)
    sigma = np.where(sigma == 0.0, 1.0, sigma)
    norm_max = np.max(np.abs(rows), axis=1) / sigma
    norm_range = (np.max(rows, axis=1) - np.min(rows, axis=1)) / sigma
    return float(np.mean(norm_max)), float(np.mean(norm_range))


def profile_granularity(
    config: ModelConfig, group_size: int = 128, seed: int = 0
) -> Dict[str, GranularityStats]:
    """Fig. 2 statistics for one model at all three granularities."""
    model = CausalLM(config, seed=seed)
    out: Dict[str, GranularityStats] = {}
    for gran in ("tensor", "channel", "group"):
        maxes, ranges = [], []
        for w in model.named_linears().values():
            rows, _ = to_rows(w, gran, group_size)
            m, r = _stats_for(rows)
            maxes.append(m)
            ranges.append(r)
        out[gran] = GranularityStats(
            model=config.name,
            granularity=gran,
            norm_max=float(np.mean(maxes)),
            norm_range=float(np.mean(ranges)),
        )
    return out
