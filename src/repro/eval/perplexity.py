"""Perplexity proxy for quantized models.

The paper reports Wikitext-2 / C4 perplexity of quantized LLMs.  We
have no trained checkpoints, so we use the decomposition described in
DESIGN.md: weight-only quantization perturbs the model's output
distribution, and the induced perplexity ratio is (to second order)
an exponential in the average divergence between the original and the
perturbed token distributions::

    PPL_quant ~= PPL_fp16 * exp(k * D)

* ``PPL_fp16`` is pinned to the paper's published FP16 anchor for the
  model/dataset (Table VI), keeping the tables directly comparable.
* ``D`` is **measured**: the mean KL divergence between the FP16 and
  quantized models' next-token distributions over the synthetic
  corpus, from real forward passes through the really-quantized
  weights.
* ``k`` (:data:`SENSITIVITY`) is one global constant, calibrated once
  so that a reference configuration (per-group INT4-Asym, the
  workhorse of the software-PTQ literature) lands at the paper's
  average degradation.  Nothing is fitted per datatype or per model —
  every comparison in the reproduced tables comes out of measured
  divergences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.models.config import ModelConfig
from repro.models.layers import softmax
from repro.models.transformer import CausalLM
from repro.pipeline.context import get_ppl_context
from repro.quant.config import QuantConfig, quantize_tensor

__all__ = ["SENSITIVITY", "PerplexityEvaluator", "kl_divergence_mean"]

#: Global divergence-to-perplexity sensitivity (see module docstring).
SENSITIVITY = 5.0


def kl_divergence_mean(logits_p: np.ndarray, logits_q: np.ndarray) -> float:
    """Mean over positions of ``KL(softmax(p) || softmax(q))``."""
    p = softmax(logits_p, axis=-1)
    log_p = np.log(np.maximum(p, 1e-30))
    shifted = logits_q - np.max(logits_q, axis=-1, keepdims=True)
    log_q = shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))
    kl = np.sum(p * (log_p - log_q), axis=-1)
    return float(np.mean(kl))


QuantizeFn = Callable[[str, np.ndarray], np.ndarray]


@dataclass
class PerplexityResult:
    """One perplexity measurement."""

    model: str
    dataset: str
    ppl: float
    divergence: float
    fp16_ppl: float

    @property
    def delta(self) -> float:
        return self.ppl - self.fp16_ppl


class PerplexityEvaluator:
    """Evaluates quantization schemes on one model/dataset pair.

    A thin view over the shared pipeline context: the FP16 reference
    model and its logits are built once *per process* per
    (model, dataset, seed, batch, seq) and shared by every evaluator —
    and every experiment — that asks for the same pair (mirroring how
    the paper evaluates many datatypes against one checkpoint).
    Cross-run caching of evaluation results lives one layer up, in
    :mod:`repro.pipeline.engine`.
    """

    def __init__(
        self,
        config: ModelConfig,
        dataset: str = "wikitext",
        seed: int = 0,
        batch: int = 4,
        seq: int = 128,
        sensitivity: float = SENSITIVITY,
    ):
        ctx = get_ppl_context(config, dataset, seed=seed, batch=batch, seq=seq)
        self.config = config
        self.dataset = dataset
        self.sensitivity = sensitivity
        self.model = ctx.model
        self.tokens = ctx.tokens
        self.fp16_logits = ctx.fp16_logits
        self.fp16_ppl = ctx.fp16_ppl

    # ------------------------------------------------------------------
    def evaluate_model(self, quantized: CausalLM) -> PerplexityResult:
        """Perplexity of an already-quantized model."""
        q_logits = quantized.logits(self.tokens)
        d = kl_divergence_mean(self.fp16_logits, q_logits)
        ppl = self.fp16_ppl * float(np.exp(self.sensitivity * d))
        return PerplexityResult(
            model=self.config.name,
            dataset=self.dataset,
            ppl=ppl,
            divergence=d,
            fp16_ppl=self.fp16_ppl,
        )

    def evaluate_quantizer(self, quantize: QuantizeFn) -> PerplexityResult:
        """Quantize every block linear with ``quantize`` and evaluate."""
        return self.evaluate_model(self.model.apply_quantizer(quantize))

    def evaluate_config(self, qconfig: Union[QuantConfig, str]) -> PerplexityResult:
        """Evaluate a plain round-to-nearest :class:`QuantConfig`."""
        if isinstance(qconfig, str):
            qconfig = QuantConfig(dtype=qconfig)

        def quantize(_name: str, w: np.ndarray) -> np.ndarray:
            return quantize_tensor(w, qconfig).w_deq

        return self.evaluate_quantizer(quantize)

    def evaluate_plan(self, plan) -> PerplexityResult:
        """Evaluate a per-layer :class:`~repro.policy.plan.QuantPlan`.

        Layers outside the plan stay FP16; a uniform plan scores
        identically to :meth:`evaluate_config` with its shared config.
        """
        return self.evaluate_quantizer(plan.as_quantizer())

    def fp16_result(self) -> PerplexityResult:
        """The (trivially exact) FP16 row of a table."""
        return PerplexityResult(
            model=self.config.name,
            dataset=self.dataset,
            ppl=self.fp16_ppl,
            divergence=0.0,
            fp16_ppl=self.fp16_ppl,
        )
