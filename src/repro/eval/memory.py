"""Memory-access profiling (paper Fig. 1 and the DRAM traffic model).

Analytic model of total off-chip memory traffic for running a model on
one request, split into weight accesses and activation accesses.  The
paper's setting: batch size 1; discriminative tasks consume a
256-token prompt and emit one token; generative tasks emit 256 tokens,
refetching all weights for every generated token.

Activation traffic counts reads+writes of layer inputs/outputs and the
KV-cache, all in FP16 for the Fig. 1 baseline.  The model assumes
weights do not fit on chip (true for multi-GB LLMs vs the 512 KB
buffers of Section V-A) so every use refetches from DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig

__all__ = ["MemoryProfile", "profile_memory"]

_FP16_BYTES = 2.0


@dataclass(frozen=True)
class MemoryProfile:
    """Traffic (bytes) of one request."""

    model: str
    task: str
    weight_bytes: float
    activation_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.activation_bytes

    @property
    def weight_fraction(self) -> float:
        return self.weight_bytes / self.total_bytes


def _activation_bytes_pass(cfg: ModelConfig, m: int, context: int) -> float:
    """Activation reads+writes of one forward pass over ``m`` tokens
    with ``context`` total tokens of KV-cache (FP16)."""
    h = cfg.hidden
    kv_dim = cfg.n_kv_heads * cfg.head_dim
    per_layer = 0.0
    # Block input read + output write.
    per_layer += 2 * m * h
    # Q/K/V produced, attention output, MLP intermediate traffic.
    per_layer += m * (2 * h + 2 * kv_dim)
    if cfg.gated_mlp:
        per_layer += 3 * m * cfg.intermediate
    else:
        per_layer += 2 * m * cfg.intermediate
    # KV-cache: write m new entries, read the whole context.
    per_layer += 2 * kv_dim * (m + context)
    total = cfg.n_layers * per_layer
    # Embedding out + final logits write.
    total += m * h + m * cfg.vocab
    return total * _FP16_BYTES


def profile_memory(
    cfg: ModelConfig,
    task: str = "generative",
    prompt_len: int = 256,
    gen_len: int = 256,
    weight_bits: float = 16.0,
) -> MemoryProfile:
    """Fig. 1 memory model.

    ``task`` is ``"discriminative"`` (prompt -> 1 token) or
    ``"generative"`` (prompt -> ``gen_len`` tokens, one weight refetch
    per generated token).
    """
    if task not in ("discriminative", "generative"):
        raise ValueError("task must be 'discriminative' or 'generative'")
    wbytes_once = cfg.weight_bytes(weight_bits)

    act = _activation_bytes_pass(cfg, prompt_len, prompt_len)
    if task == "discriminative":
        weights = wbytes_once
    else:
        weights = wbytes_once * (1 + gen_len)
        for t in range(gen_len):
            act += _activation_bytes_pass(cfg, 1, prompt_len + t + 1)
    return MemoryProfile(
        model=cfg.name,
        task=task,
        weight_bytes=weights,
        activation_bytes=act,
    )
