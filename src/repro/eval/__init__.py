"""Evaluation harnesses: perplexity proxy, tasks, memory, statistics."""

from repro.eval.memory import MemoryProfile, profile_memory
from repro.eval.perplexity import (
    SENSITIVITY,
    PerplexityEvaluator,
    PerplexityResult,
    kl_divergence_mean,
)
from repro.eval.stats import GranularityStats, profile_granularity
from repro.eval.tasks import TASKS, DiscriminativeEvaluator, TaskSpec

__all__ = [
    "PerplexityEvaluator",
    "PerplexityResult",
    "kl_divergence_mean",
    "SENSITIVITY",
    "DiscriminativeEvaluator",
    "TASKS",
    "TaskSpec",
    "MemoryProfile",
    "profile_memory",
    "GranularityStats",
    "profile_granularity",
]
