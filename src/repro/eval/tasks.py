"""Discriminative (zero-shot) task harness.

Stand-in for LM-Evaluation-Harness on HellaSwag / WinoGrande / Piqa.
A task item is a prompt plus ``n_choices`` candidate continuations;
the model picks the continuation with the highest average token
log-likelihood, exactly the LM-eval scoring rule.

Construction (see DESIGN.md):

* wrong continuations differ from the correct one in a few token
  positions, where the substituted tokens are chosen to be
  *implausible under the FP16 model* (drawn from a low quantile of
  the model's own next-token distribution).  This mirrors real
  benchmarks — HellaSwag's wrong endings are clearly wrong, not
  random — and produces the realistic margin distribution where most
  items are easy and a tail of items sits near the decision boundary;
* gold labels are planted such that the FP16 model scores the paper's
  published accuracy for the model/task: it gets the credit on an
  ``accuracy``-sized random subset of items and is deliberately
  mislabeled elsewhere;
* a quantized model is scored by running its *own* forward passes —
  accuracy drops when quantization flips choices on correctly-labelled
  items (and can occasionally gain on mislabelled ones, just like real
  quantization results sometimes beat FP16, cf. Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.models.config import ModelConfig
from repro.models.corpus import sample_tokens
from repro.models.layers import softmax
from repro.models.transformer import CausalLM

__all__ = ["TaskSpec", "TASKS", "TaskItem", "DiscriminativeEvaluator"]


@dataclass(frozen=True)
class TaskSpec:
    """Shape of one benchmark task."""

    name: str
    n_choices: int
    prompt_len: int
    cont_len: int
    #: tokens substituted between choices
    n_substitutions: int
    #: quantile band of the model's next-token distribution from which
    #: wrong-answer tokens are drawn (lower = more obviously wrong =
    #: wider margins).  The band's upper end supplies the boundary
    #: items that quantization can flip.
    quantile_band: tuple
    seed: int


TASKS = {
    "hellaswag": TaskSpec("hellaswag", 4, 48, 24, 4, (0.02, 0.45), seed=11),
    "winogrande": TaskSpec("winogrande", 2, 32, 8, 2, (0.05, 0.50), seed=22),
    "piqa": TaskSpec("piqa", 2, 40, 16, 3, (0.02, 0.45), seed=33),
}


@dataclass
class TaskItem:
    """One multiple-choice item: ``(n_choices, prompt+cont)`` tokens."""

    tokens: np.ndarray  # (n_choices, prompt_len + cont_len)
    cont_start: int
    label: int


class DiscriminativeEvaluator:
    """Zero-shot accuracy evaluation for one model/task pair."""

    def __init__(
        self,
        config: ModelConfig,
        task: str,
        n_items: int = 128,
        seed: int = 0,
    ):
        if task not in TASKS:
            known = ", ".join(sorted(TASKS))
            raise KeyError(f"unknown task {task!r}; known: {known}")
        self.config = config
        self.spec = TASKS[task]
        self.n_items = n_items
        self.model = CausalLM(config, seed=seed)
        self.items = self._build_items()
        self._plant_labels()

    # ------------------------------------------------------------------
    def _build_items(self) -> List[TaskItem]:
        spec = self.spec
        vocab = self.config.sim_vocab
        rng = np.random.default_rng(spec.seed)
        total_len = spec.prompt_len + spec.cont_len
        base = sample_tokens(
            "wikitext", vocab, self.n_items, total_len, seed_offset=spec.seed
        )
        # FP16 logits on the base sequences drive the implausible-token
        # selection: token ranks are taken at the position *predicting*
        # each substituted slot.
        logits = self.model.logits(base)
        order = np.argsort(logits, axis=-1)  # ascending logit rank

        q_lo, q_hi = spec.quantile_band
        items = []
        for i in range(self.n_items):
            choices = np.tile(base[i], (spec.n_choices, 1))
            for c in range(1, spec.n_choices):
                # Substitutions sit at the tail of the continuation so
                # the shared prefix cancels exactly in score margins.
                pos = rng.choice(
                    np.arange(total_len - spec.cont_len // 2, total_len),
                    size=min(spec.n_substitutions, spec.cont_len // 2),
                    replace=False,
                )
                q = rng.uniform(q_lo, q_hi)
                ranks = int(q * vocab)
                choices[c, pos] = order[i, pos - 1, ranks]
            items.append(
                TaskItem(tokens=choices, cont_start=spec.prompt_len, label=0)
            )
        return items

    def _score_items(self, model: CausalLM) -> np.ndarray:
        """``(n_items,)`` arg-max choice of ``model`` on every item."""
        spec = self.spec
        tokens = np.concatenate([it.tokens for it in self.items], axis=0)
        logits = model.logits(tokens)
        log_probs = np.log(np.maximum(softmax(logits, axis=-1), 1e-30))
        picks = np.empty(self.n_items, dtype=np.int64)
        start = self.items[0].cont_start
        seq = tokens.shape[1]
        pos = np.arange(start, seq)
        for i in range(self.n_items):
            rows = slice(i * spec.n_choices, (i + 1) * spec.n_choices)
            toks = tokens[rows]
            lp = log_probs[rows]
            cont_lp = lp[:, pos - 1, :][
                np.arange(spec.n_choices)[:, None], np.arange(len(pos))[None, :],
                toks[:, pos],
            ]
            picks[i] = int(np.argmax(cont_lp.mean(axis=1)))
        return picks

    def _plant_labels(self) -> None:
        """Assign gold labels so FP16 hits the published accuracy."""
        target = self.config.fp16_acc.get(self.spec.name, 75.0) / 100.0
        fp16_picks = self._score_items(self.model)
        rng = np.random.default_rng(self.spec.seed + 7)
        correct = rng.random(self.n_items) < target
        for i, item in enumerate(self.items):
            if correct[i]:
                item.label = int(fp16_picks[i])
            else:
                others = [
                    c for c in range(self.spec.n_choices) if c != fp16_picks[i]
                ]
                item.label = int(rng.choice(others))
        self.fp16_accuracy = float(np.mean(fp16_picks == self.labels()))

    def labels(self) -> np.ndarray:
        return np.asarray([it.label for it in self.items])

    # ------------------------------------------------------------------
    def evaluate_model(self, model: CausalLM) -> float:
        """Accuracy (%) of ``model`` on the planted-label task."""
        picks = self._score_items(model)
        return 100.0 * float(np.mean(picks == self.labels()))

    def evaluate_quantizer(self, quantize) -> float:
        return self.evaluate_model(self.model.apply_quantizer(quantize))
