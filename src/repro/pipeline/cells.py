"""Declarative evaluation cells.

A *cell* is the atomic unit of the paper's evaluation grid: one
(model × dataset × datatype × method) measurement.  Experiments
declare cells; the :class:`~repro.pipeline.engine.Engine` deduplicates
them, resolves them against the on-disk cache, and computes the
misses (optionally in parallel).

``cell_key`` is the content address: a stable digest over the model
config, dataset, quantization config, PTQ-method hyperparameters, the
evaluator's own parameters (batch/seq/sensitivity or item count) and
the quick flag — everything that determines the cell's value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro import obs
from repro.models.zoo import get_model_config
from repro.pipeline.keys import stable_digest
from repro.quant.config import QuantConfig, quantize_tensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (policy -> cells)
    from repro.policy.plan import QuantPlan

__all__ = ["CellSpec", "cell_key", "compute_cell", "CELL_KIND"]

#: Store namespace for cell results.
CELL_KIND = "cells"

#: Bump when the semantics of a cell computation change incompatibly.
CELL_SCHEMA_VERSION = 1

# Evaluator defaults baked into the key (see PerplexityEvaluator).
_PPL_BATCH = 4
_PPL_SEQ = 128

# Calibration defaults baked into layer_mse keys (see collect_calibration).
_CALIB_BATCH = 2
_CALIB_SEQ = 64


@dataclass(frozen=True)
class CellSpec:
    """One declarative evaluation cell.

    ``kind`` selects the measurement:

    * ``"ppl"`` — perplexity of ``quant`` (RTN when ``method`` is
      ``None``, otherwise quantized by the named PTQ method) on
      (``model``, ``dataset``); ``quant=None`` yields the FP16 anchor.
    * ``"acc"`` — discriminative accuracy (%) on task ``dataset`` with
      ``n_items`` items; ``quant=None`` yields the FP16 accuracy.
    * ``"layer_mse"`` — calibration-activation output MSE of the one
      layer a single-layer ``plan`` quantizes (the cheap sensitivity
      probe of :mod:`repro.policy.sensitivity`).

    ``plan`` is the mixed-precision alternative to the uniform
    ``quant``: a :class:`~repro.policy.plan.QuantPlan` assigning each
    block linear its own config (absent layers stay FP16).  ``plan``
    and ``quant``/``method`` are mutually exclusive.
    """

    model: str
    dataset: str = "wikitext"
    kind: str = "ppl"
    quant: Optional[QuantConfig] = None
    method: Optional[str] = None
    method_params: Tuple[Tuple[str, object], ...] = ()
    n_items: int = 128
    seed: int = 0
    quick: bool = False
    plan: Optional["QuantPlan"] = None


def _build_method(spec: CellSpec):
    """Instantiate the PTQ method a cell names (hyperparams applied)."""
    from repro.methods import get_method

    cls = get_method(spec.method)
    return cls(spec.quant, **dict(spec.method_params))


def _check_plan(spec: CellSpec) -> None:
    """Reject unsupported plan combinations early, at keying time."""
    if spec.plan is None:
        return
    if spec.quant is not None or spec.method is not None:
        raise ValueError(
            "CellSpec.plan is mutually exclusive with quant/method "
            "(a plan already names each layer's config)"
        )
    if spec.kind == "layer_mse" and len(spec.plan) != 1:
        raise ValueError(
            f"layer_mse cells probe exactly one layer; the plan "
            f"quantizes {len(spec.plan)}"
        )


def cell_key(spec: CellSpec) -> str:
    """Content address of ``spec`` (see module docstring)."""
    from repro.eval.perplexity import SENSITIVITY

    _check_plan(spec)
    config = get_model_config(spec.model)
    parts = {
        "v": CELL_SCHEMA_VERSION,
        "kind": spec.kind,
        "model": config.cache_key(),
        "dataset": spec.dataset,
        "quant": None if spec.quant is None else spec.quant.cache_key(),
        "method": None if spec.method is None else _build_method(spec).cache_key(),
        "seed": spec.seed,
        "quick": spec.quick,
    }
    # Plan-less specs keep their historical digests (adding the key
    # only when present leaves every pre-plan cache entry valid).
    if spec.plan is not None:
        parts["plan"] = spec.plan.cache_key()
    if spec.kind == "acc":
        parts["eval"] = {"n_items": spec.n_items}
    elif spec.kind == "layer_mse":
        parts["eval"] = {"calib_batch": _CALIB_BATCH, "calib_seq": _CALIB_SEQ}
    else:
        parts["eval"] = {
            "batch": _PPL_BATCH,
            "seq": _PPL_SEQ,
            "sensitivity": SENSITIVITY,
        }
    return stable_digest(parts)


def compute_cell(spec: CellSpec) -> dict:
    """Evaluate one cell and return its JSON-able result record.

    Instrumented: each evaluation runs inside a ``pipeline.cell`` span
    and records its wall time into the per-kind
    ``pipeline.cell_seconds`` histogram (capped reservoir, so huge
    sweeps stay bounded).  It is also the ``pipeline.cell`` fault
    site: an active :class:`~repro.resilience.faults.FaultPlan` can
    kill the evaluating process here (mid-batch, exactly like a
    segfault), raise, or add latency — the engine's crash recovery and
    the chaos tests depend on this hook.
    """
    from repro.resilience import faults

    if faults.enabled():
        faults.fire(
            "pipeline.cell", kind=spec.kind, model=spec.model, dataset=spec.dataset
        )
    t0 = time.perf_counter()
    with obs.span(
        "pipeline.cell", kind=spec.kind, model=spec.model, dataset=spec.dataset
    ):
        result = _compute_cell(spec)
    obs.histogram("pipeline.cell_seconds", cap=4096, kind=spec.kind).record(
        time.perf_counter() - t0
    )
    return result


def _compute_cell(spec: CellSpec) -> dict:
    """The uninstrumented cell evaluation."""
    from repro.eval.perplexity import PerplexityEvaluator
    from repro.pipeline.context import (
        get_plan_model,
        get_quantized_model,
        get_task_evaluator,
    )

    _check_plan(spec)
    config = get_model_config(spec.model)

    if spec.kind == "acc":
        ev = get_task_evaluator(config, spec.dataset, n_items=spec.n_items, seed=spec.seed)
        if spec.plan is not None:
            return {"accuracy": ev.evaluate_quantizer(spec.plan.as_quantizer())}
        if spec.quant is None:
            return {"accuracy": ev.fp16_accuracy * 100.0}
        qcfg = spec.quant
        acc = ev.evaluate_quantizer(lambda _n, w: quantize_tensor(w, qcfg).w_deq)
        return {"accuracy": acc}

    if spec.kind == "ppl":
        # batch/seq are passed explicitly so the evaluation provably
        # matches what cell_key() digested — the key and the compute
        # must not have two sources of truth.
        ev = PerplexityEvaluator(
            config, spec.dataset, seed=spec.seed, batch=_PPL_BATCH, seq=_PPL_SEQ
        )
        if spec.plan is not None:
            r = ev.evaluate_model(get_plan_model(config, spec.plan, seed=spec.seed))
        elif spec.quant is None:
            r = ev.fp16_result()
        elif spec.method is None:
            r = ev.evaluate_config(spec.quant)
        else:
            qmodel = get_quantized_model(config, _build_method(spec), seed=spec.seed)
            r = ev.evaluate_model(qmodel)
        return {"ppl": r.ppl, "divergence": r.divergence, "fp16_ppl": r.fp16_ppl}

    if spec.kind == "layer_mse":
        from repro.methods.base import layer_output_mse
        from repro.pipeline.context import get_calibration, get_model

        if spec.plan is None:
            raise ValueError("layer_mse cells need a single-layer plan")
        ((layer, qcfg),) = spec.plan.items()
        model = get_model(config, spec.seed)
        linears = model.named_linears()
        if layer not in linears:
            known = ", ".join(sorted(linears))
            raise KeyError(f"unknown layer {layer!r} for {spec.model}; known: {known}")
        calib = get_calibration(
            config, seed=spec.seed, dataset=spec.dataset, batch=_CALIB_BATCH, seq=_CALIB_SEQ
        )
        w = linears[layer]
        w_q = quantize_tensor(w, qcfg).w_deq
        return {"layer_mse": layer_output_mse(calib[layer], w, w_q)}

    raise ValueError(f"unknown cell kind {spec.kind!r} (known: ppl, acc, layer_mse)")
