"""Declarative evaluation cells.

A *cell* is the atomic unit of the paper's evaluation grid: one
(model × dataset × datatype × method) measurement.  Experiments
declare cells; the :class:`~repro.pipeline.engine.Engine` deduplicates
them, resolves them against the on-disk cache, and computes the
misses (optionally in parallel).

``cell_key`` is the content address: a stable digest over the model
config, dataset, quantization config, PTQ-method hyperparameters, the
evaluator's own parameters (batch/seq/sensitivity or item count) and
the quick flag — everything that determines the cell's value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.models.zoo import get_model_config
from repro.pipeline.keys import stable_digest
from repro.quant.config import QuantConfig, quantize_tensor

__all__ = ["CellSpec", "cell_key", "compute_cell", "CELL_KIND"]

#: Store namespace for cell results.
CELL_KIND = "cells"

#: Bump when the semantics of a cell computation change incompatibly.
CELL_SCHEMA_VERSION = 1

# Evaluator defaults baked into the key (see PerplexityEvaluator).
_PPL_BATCH = 4
_PPL_SEQ = 128


@dataclass(frozen=True)
class CellSpec:
    """One declarative evaluation cell.

    ``kind`` selects the measurement:

    * ``"ppl"`` — perplexity of ``quant`` (RTN when ``method`` is
      ``None``, otherwise quantized by the named PTQ method) on
      (``model``, ``dataset``); ``quant=None`` yields the FP16 anchor.
    * ``"acc"`` — discriminative accuracy (%) on task ``dataset`` with
      ``n_items`` items; ``quant=None`` yields the FP16 accuracy.
    """

    model: str
    dataset: str = "wikitext"
    kind: str = "ppl"
    quant: Optional[QuantConfig] = None
    method: Optional[str] = None
    method_params: Tuple[Tuple[str, object], ...] = ()
    n_items: int = 128
    seed: int = 0
    quick: bool = False


def _build_method(spec: CellSpec):
    """Instantiate the PTQ method a cell names (hyperparams applied)."""
    from repro.methods import get_method

    cls = get_method(spec.method)
    return cls(spec.quant, **dict(spec.method_params))


def cell_key(spec: CellSpec) -> str:
    """Content address of ``spec`` (see module docstring)."""
    from repro.eval.perplexity import SENSITIVITY

    config = get_model_config(spec.model)
    parts = {
        "v": CELL_SCHEMA_VERSION,
        "kind": spec.kind,
        "model": config.cache_key(),
        "dataset": spec.dataset,
        "quant": None if spec.quant is None else spec.quant.cache_key(),
        "method": None if spec.method is None else _build_method(spec).cache_key(),
        "seed": spec.seed,
        "quick": spec.quick,
    }
    if spec.kind == "acc":
        parts["eval"] = {"n_items": spec.n_items}
    else:
        parts["eval"] = {
            "batch": _PPL_BATCH,
            "seq": _PPL_SEQ,
            "sensitivity": SENSITIVITY,
        }
    return stable_digest(parts)


def compute_cell(spec: CellSpec) -> dict:
    """Evaluate one cell and return its JSON-able result record."""
    from repro.eval.perplexity import PerplexityEvaluator
    from repro.pipeline.context import get_quantized_model, get_task_evaluator

    config = get_model_config(spec.model)

    if spec.kind == "acc":
        ev = get_task_evaluator(config, spec.dataset, n_items=spec.n_items, seed=spec.seed)
        if spec.quant is None:
            return {"accuracy": ev.fp16_accuracy * 100.0}
        qcfg = spec.quant
        acc = ev.evaluate_quantizer(lambda _n, w: quantize_tensor(w, qcfg).w_deq)
        return {"accuracy": acc}

    if spec.kind == "ppl":
        # batch/seq are passed explicitly so the evaluation provably
        # matches what cell_key() digested — the key and the compute
        # must not have two sources of truth.
        ev = PerplexityEvaluator(
            config, spec.dataset, seed=spec.seed, batch=_PPL_BATCH, seq=_PPL_SEQ
        )
        if spec.quant is None:
            r = ev.fp16_result()
        elif spec.method is None:
            r = ev.evaluate_config(spec.quant)
        else:
            qmodel = get_quantized_model(config, _build_method(spec), seed=spec.seed)
            r = ev.evaluate_model(qmodel)
        return {"ppl": r.ppl, "divergence": r.divergence, "fp16_ppl": r.fp16_ppl}

    raise ValueError(f"unknown cell kind {spec.kind!r} (known: ppl, acc)")
