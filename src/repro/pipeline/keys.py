"""Stable, content-addressed cache keys.

Every object that participates in pipeline caching — quantization
configs, PTQ methods, model configs, evaluation cells — reduces to a
*canonical form*: a nested structure of JSON-able scalars in which
dataclasses become sorted field dicts and numpy arrays become digests
of their bytes.  Hashing the canonical JSON gives a digest that is

* stable across processes and Python versions (no ``hash()``,
  no ``repr`` of floats beyond ``json``'s shortest-round-trip form),
* sensitive to every field that affects the computation (a
  :class:`~repro.dtypes.extended.BitMoDType` with a custom
  special-value set keys differently from the registry default even
  when both carry the same ``name``), and
* insensitive to field ordering.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

__all__ = ["canonical", "stable_digest", "array_digest"]

#: Hex characters kept from the sha256 digest.  64 bits of prefix is
#: plenty for cache addressing (collision odds ~2^-32 at a billion
#: entries) while keeping directory names readable.
DIGEST_LEN = 16


def array_digest(arr: np.ndarray) -> str:
    """Digest of an array's dtype, shape and little-endian bytes."""
    a = np.ascontiguousarray(arr)
    le = a.astype(a.dtype.newbyteorder("<"), copy=False)
    h = hashlib.sha256()
    h.update(str(le.dtype.str).encode())
    h.update(str(a.shape).encode())
    h.update(le.tobytes())
    return h.hexdigest()[:DIGEST_LEN]


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-able canonical form (see module doc)."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": array_digest(obj)}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(v) for v in obj)
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.init  # derived fields (init=False) are determined by the rest
        }
        fields["__class__"] = type(obj).__name__
        return fields
    # Objects that define their own cache identity.
    key_fn = getattr(obj, "cache_key", None)
    if callable(key_fn):
        return {"__cache_key__": key_fn()}
    # No silent repr() fallback: default reprs embed memory addresses,
    # which would give a different digest every process and quietly
    # defeat the cache.  Unsupported objects must fail loudly.
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for cache keying; "
        "use a dataclass, plain containers/scalars, an ndarray, or an "
        "object exposing cache_key()"
    )


def stable_digest(obj: Any, length: int = DIGEST_LEN) -> str:
    """Hex digest of ``obj``'s canonical JSON form."""
    blob = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:length]
