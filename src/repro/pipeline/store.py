"""Content-addressed on-disk cache for pipeline results.

The store memoizes three payload shapes under one root directory::

    <root>/<kind>/<key[:2]>/<key>.json    small JSON records (cell results)
    <root>/<kind>/<key[:2]>/<key>.npz     array bundles (quantized weights,
                                          packed-tensor images)

Keys are the stable digests of :mod:`repro.pipeline.keys`; because a
key fully determines its content, concurrent writers racing on the
same key write identical bytes, and *atomic rename* (tempfile in the
destination directory + ``os.replace``) guarantees readers never see
a torn file.  That property is what makes the store safe under the
``--jobs N`` process pool without any locking.

The default root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``;
``CacheStore(enabled=False)`` turns every lookup into a miss and every
write into a no-op (the ``--no-cache`` path).
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro import obs

__all__ = ["CacheStore", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tempfile + rename (POSIX-atomic)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CacheStore:
    """Content-addressed store with hit/miss accounting."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        enabled: bool = True,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    # Per-instance fields above stay the engine.stats() source of
    # truth; the obs counters mirror them into the process-wide
    # registry (resolved at call time so worker captures redirect).
    def _hit(self) -> None:
        self.hits += 1
        obs.counter("pipeline.cache.hits").inc()

    def _miss(self) -> None:
        self.misses += 1
        obs.counter("pipeline.cache.misses").inc()

    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str, suffix: str) -> Path:
        return self.root / kind / key[:2] / f"{key}{suffix}"

    def stats(self) -> Dict[str, Union[int, float]]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }

    # ------------------------------------------------------------------
    # JSON records.
    # ------------------------------------------------------------------
    def get_json(self, kind: str, key: str) -> Optional[dict]:
        if not self.enabled:
            self._miss()
            return None
        path = self.path_for(kind, key, ".json")
        try:
            obj = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._miss()
            return None
        self._hit()
        return obj

    def put_json(self, kind: str, key: str, obj: dict) -> None:
        if not self.enabled:
            return
        obs.counter("pipeline.cache.puts").inc()
        blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
        _atomic_write(self.path_for(kind, key, ".json"), blob.encode("utf-8"))

    # ------------------------------------------------------------------
    # Array bundles (npz).  ``meta`` rides along as a JSON side-field.
    # ------------------------------------------------------------------
    def get_arrays(self, kind: str, key: str) -> Optional[Dict[str, np.ndarray]]:
        if not self.enabled:
            self._miss()
            return None
        path = self.path_for(kind, key, ".npz")
        try:
            with np.load(path, allow_pickle=False) as z:
                out = {name: z[name] for name in z.files}
        except (OSError, ValueError, KeyError):
            self._miss()
            return None
        self._hit()
        return out

    def put_arrays(self, kind: str, key: str, arrays: Dict[str, np.ndarray]) -> None:
        if not self.enabled:
            return
        obs.counter("pipeline.cache.puts").inc()
        buf = io.BytesIO()
        np.savez(buf, **{k: np.asarray(v) for k, v in arrays.items()})
        _atomic_write(self.path_for(kind, key, ".npz"), buf.getvalue())
