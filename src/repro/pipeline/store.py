"""Content-addressed on-disk cache for pipeline results.

The store memoizes three payload shapes under one root directory::

    <root>/<kind>/<key[:2]>/<key>.json    small JSON records (cell results)
    <root>/<kind>/<key[:2]>/<key>.npz     array bundles (quantized weights,
                                          packed-tensor images)

Keys are the stable digests of :mod:`repro.pipeline.keys`; because a
key fully determines its content, concurrent writers racing on the
same key write identical bytes, and *atomic rename*
(:func:`repro.resilience.atomic.atomic_write_bytes`) guarantees
readers never see a torn file.  That property is what makes the store
safe under the ``--jobs N`` process pool without any locking.

Reads are defensive: JSON records carry an integrity envelope (a
sha256 digest of the payload) verified on every hit, and npz bundles
are protected by the zip CRC.  An entry that fails to parse or to
verify — truncated by a crash, flipped by a bad disk, or injected by a
:class:`~repro.resilience.faults.FaultPlan` — is *quarantined*: moved
to ``<root>/corrupt/`` (for postmortems) and reported as a miss, so
the cell recomputes instead of the whole run crashing or silently
reusing poisoned data.

The default root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``;
``CacheStore(enabled=False)`` turns every lookup into a miss and every
write into a no-op (the ``--no-cache`` path).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro import obs
from repro.resilience import faults
from repro.resilience.atomic import atomic_write_bytes

__all__ = ["CacheStore", "default_cache_dir"]

_log = obs.get_logger(__name__)

#: JSON-record integrity envelope version.
_INTEGRITY_V = 1

#: Everything np.load / zipfile can throw at a damaged npz.
_NPZ_ERRORS = (OSError, ValueError, KeyError, zipfile.BadZipFile, zlib.error)


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _payload_digest(payload_json: str) -> str:
    return hashlib.sha256(payload_json.encode("utf-8")).hexdigest()[:16]


class CacheStore:
    """Content-addressed store with hit/miss/quarantine accounting."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        enabled: bool = True,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # Per-instance fields above stay the engine.stats() source of
    # truth; the obs counters mirror them into the process-wide
    # registry (resolved at call time so worker captures redirect).
    def _hit(self) -> None:
        self.hits += 1
        obs.counter("pipeline.cache.hits").inc()

    def _miss(self) -> None:
        self.misses += 1
        obs.counter("pipeline.cache.misses").inc()

    def _quarantine(self, path: Path, kind: str, reason: str) -> None:
        """Move a damaged entry to ``corrupt/`` instead of crashing.

        The entry keeps its name under ``corrupt/<kind>/`` so a
        postmortem can line it up with the key that produced it; the
        caller then treats the read as a miss and recomputes.
        """
        self.quarantined += 1
        obs.counter("pipeline.cache.quarantined", kind=kind).inc()
        dest = self.root / "corrupt" / kind / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            # Cross-device or permission trouble: removal still
            # unblocks recomputation.
            try:
                os.unlink(path)
            except OSError:
                pass
        _log.warning("quarantined corrupt cache entry %s (%s)", path.name, reason)

    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str, suffix: str) -> Path:
        return self.root / kind / key[:2] / f"{key}{suffix}"

    def stats(self) -> Dict[str, Union[int, float]]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "quarantined": self.quarantined,
        }

    def _faulted_put(self, kind: str, key: str, path: Path) -> None:
        """Apply a planned ``corrupt`` fault to the entry just written."""
        spec = faults.fire("cache.put", kind=kind, key=key)
        if spec is not None and spec.action == "corrupt":
            faults.corrupt_file(path, spec.mode)

    # ------------------------------------------------------------------
    # JSON records.
    # ------------------------------------------------------------------
    def get_json(self, kind: str, key: str) -> Optional[dict]:
        if not self.enabled:
            self._miss()
            return None
        path = self.path_for(kind, key, ".json")
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self._miss()
            return None
        except UnicodeDecodeError:
            # A flipped byte can break UTF-8 before it breaks JSON.
            self._quarantine(path, kind, "undecodable bytes")
            self._miss()
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            self._quarantine(path, kind, "unparseable JSON")
            self._miss()
            return None
        if isinstance(doc, dict) and "__integrity__" in doc:
            payload = doc.get("payload")
            envelope = doc["__integrity__"]
            blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            if envelope.get("sha256") != _payload_digest(blob):
                self._quarantine(path, kind, "digest mismatch")
                self._miss()
                return None
            self._hit()
            return payload
        # Legacy pre-envelope entry: parseable JSON is accepted as-is.
        self._hit()
        return doc

    def put_json(self, kind: str, key: str, obj: dict) -> None:
        if not self.enabled:
            return
        obs.counter("pipeline.cache.puts").inc()
        blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
        doc = (
            '{"__integrity__":{"v":%d,"sha256":"%s"},"payload":%s}'
            % (_INTEGRITY_V, _payload_digest(blob), blob)
        )
        path = self.path_for(kind, key, ".json")
        atomic_write_bytes(path, doc.encode("utf-8"))
        if faults.enabled():
            self._faulted_put(kind, key, path)

    # ------------------------------------------------------------------
    # Array bundles (npz).  ``meta`` rides along as a JSON side-field.
    # ------------------------------------------------------------------
    def get_arrays(self, kind: str, key: str) -> Optional[Dict[str, np.ndarray]]:
        if not self.enabled:
            self._miss()
            return None
        path = self.path_for(kind, key, ".npz")
        if not path.exists():
            self._miss()
            return None
        try:
            # The zip directory CRCs verify every member on read, so a
            # truncated or bit-flipped bundle fails here, not later.
            with np.load(path, allow_pickle=False) as z:
                out = {name: z[name] for name in z.files}
        except _NPZ_ERRORS:
            self._quarantine(path, kind, "unreadable npz")
            self._miss()
            return None
        self._hit()
        return out

    def put_arrays(self, kind: str, key: str, arrays: Dict[str, np.ndarray]) -> None:
        if not self.enabled:
            return
        obs.counter("pipeline.cache.puts").inc()
        buf = io.BytesIO()
        np.savez(buf, **{k: np.asarray(v) for k, v in arrays.items()})
        path = self.path_for(kind, key, ".npz")
        atomic_write_bytes(path, buf.getvalue())
        if faults.enabled():
            self._faulted_put(kind, key, path)
