"""Per-process evaluation context: build-once, share-everywhere.

The historical cost of ``bitmod-repro --all`` was not the quantizers —
it was that every experiment module rebuilt the same synthetic models,
recomputed the same FP16 logits and recollected the same calibration
activations.  This module is the per-process memo under the pipeline:

* :func:`get_model` — one :class:`CausalLM` per (model config, seed),
  shared by every evaluator and experiment (weights are never mutated
  in place; quantizers clone via ``apply_quantizer``).
* :func:`get_ppl_context` — model + eval tokens + FP16 logits + FP16
  anchor per (model, dataset): the expensive half of
  :class:`~repro.eval.perplexity.PerplexityEvaluator`, computed once.
* :func:`get_task_evaluator` — one discriminative-task harness per
  (model, task, n_items).
* :func:`get_calibration` — one AWQ/GPTQ-style calibration set per
  model.
* :func:`get_quantized_model` — one quantized clone per
  (model, PTQ-method key), so evaluating a method on N datasets
  quantizes once.
* :func:`get_plan_model` — one mixed-precision clone per
  (model, :class:`~repro.policy.plan.QuantPlan` key), so a plan's
  perplexity and accuracy cells share the quantization work.

Everything here is *in-process* memoization; the cross-run, on-disk
layer lives in :mod:`repro.pipeline.store` and is keyed compatibly via
``cache_key()`` digests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.models.config import ModelConfig
from repro.models.corpus import make_eval_batch
from repro.models.transformer import CausalLM

__all__ = [
    "PplContext",
    "get_model",
    "get_ppl_context",
    "get_task_evaluator",
    "get_calibration",
    "get_quantized_model",
    "get_plan_model",
    "clear_context",
]

_MODELS: Dict[Tuple, CausalLM] = {}
_PPL: Dict[Tuple, "PplContext"] = {}
_TASKS: Dict[Tuple, object] = {}
_CALIB: Dict[Tuple, Dict[str, np.ndarray]] = {}
_QUANTIZED: Dict[Tuple, CausalLM] = {}
_PLANNED: Dict[Tuple, CausalLM] = {}


def clear_context() -> None:
    """Drop every memoized model/evaluator (tests, memory pressure)."""
    _MODELS.clear()
    _PPL.clear()
    _TASKS.clear()
    _CALIB.clear()
    _QUANTIZED.clear()
    _PLANNED.clear()


def get_model(config: ModelConfig, seed: int = 0) -> CausalLM:
    """The shared :class:`CausalLM` instance for (config, seed)."""
    key = (config.cache_key(), seed)
    model = _MODELS.get(key)
    if model is None:
        model = _MODELS[key] = CausalLM(config, seed=seed)
    return model


@dataclass
class PplContext:
    """Everything shared across perplexity evaluations of one pair."""

    config: ModelConfig
    dataset: str
    model: CausalLM
    tokens: np.ndarray
    fp16_logits: np.ndarray
    fp16_ppl: float


def get_ppl_context(
    config: ModelConfig,
    dataset: str,
    seed: int = 0,
    batch: int = 4,
    seq: int = 128,
) -> PplContext:
    """Model + eval batch + FP16 logits for one model/dataset pair."""
    key = (config.cache_key(), dataset, seed, batch, seq)
    ctx = _PPL.get(key)
    if ctx is None:
        model = get_model(config, seed)
        tokens = make_eval_batch(dataset, config.sim_vocab, batch=batch, seq=seq)
        ctx = _PPL[key] = PplContext(
            config=config,
            dataset=dataset,
            model=model,
            tokens=tokens,
            fp16_logits=model.logits(tokens),
            fp16_ppl=config.fp16_ppl.get(dataset, float("nan")),
        )
    return ctx


def get_task_evaluator(
    config: ModelConfig, task: str, n_items: int = 128, seed: int = 0
):
    """The shared :class:`~repro.eval.tasks.DiscriminativeEvaluator`."""
    from repro.eval.tasks import DiscriminativeEvaluator

    key = (config.cache_key(), task, n_items, seed)
    ev = _TASKS.get(key)
    if ev is None:
        ev = _TASKS[key] = DiscriminativeEvaluator(
            config, task, n_items=n_items, seed=seed
        )
    return ev


def get_calibration(
    config: ModelConfig,
    seed: int = 0,
    dataset: str = "wikitext",
    batch: int = 2,
    seq: int = 64,
) -> Dict[str, np.ndarray]:
    """The shared calibration activation set for one model."""
    from repro.methods.base import collect_calibration

    key = (config.cache_key(), seed, dataset, batch, seq)
    calib = _CALIB.get(key)
    if calib is None:
        calib = _CALIB[key] = collect_calibration(
            get_model(config, seed), dataset=dataset, batch=batch, seq=seq
        )
    return calib


def get_quantized_model(
    config: ModelConfig,
    method,
    seed: int = 0,
    calib: Optional[Dict[str, np.ndarray]] = None,
) -> CausalLM:
    """Quantize (config, seed) with ``method`` exactly once per key.

    ``method`` is a :class:`~repro.methods.base.PTQMethod`; the memo
    key is its ``cache_key()``, so two instances with equal
    hyperparameters share the quantized clone.
    """
    key = (config.cache_key(), seed, method.cache_key())
    qmodel = _QUANTIZED.get(key)
    if qmodel is None:
        if calib is None:
            calib = get_calibration(config, seed)
        qmodel = _QUANTIZED[key] = method.quantize_model(get_model(config, seed), calib)
    return qmodel


def get_plan_model(config: ModelConfig, plan, seed: int = 0) -> CausalLM:
    """Apply a mixed-precision plan to (config, seed) exactly once.

    ``plan`` is a :class:`~repro.policy.plan.QuantPlan`; the memo key
    is its content-addressed ``cache_key()``, so a plan's perplexity
    and accuracy cells (and any repeat evaluations) share one
    quantized clone.
    """
    key = (config.cache_key(), seed, plan.cache_key())
    qmodel = _PLANNED.get(key)
    if qmodel is None:
        model = get_model(config, seed)
        qmodel = _PLANNED[key] = model.apply_quantizer(plan.as_quantizer())
    return qmodel
