"""The parallel, cached cell-evaluation engine.

:class:`Engine` takes declarative :class:`~repro.pipeline.cells.CellSpec`
lists, deduplicates them by content address, resolves hits from the
:class:`~repro.pipeline.store.CacheStore`, and computes the misses —
serially in-process, or fanned out over a ``concurrent.futures``
process pool when ``jobs > 1``.  Workers are grouped by model so each
process builds a model's forward-pass context exactly once; every
worker writes its results straight into the store (atomic rename), so
an interrupted ``--all`` run resumes where it stopped.

The parallel path is *crash-safe*: a worker that dies mid-batch
(segfault, OOM kill, injected fault) breaks the whole
``ProcessPoolExecutor``, so the engine respawns the pool and retries —
paced by a bounded exponential-backoff
:class:`~repro.resilience.retry.RetryPolicy` — re-resolving survivors
from the store first so **only the unfinished cells recompute**.
``Ctrl-C`` shuts the pool down cleanly (futures cancelled, workers
reaped) instead of dumping a pool traceback.

A :class:`CellGrid` is the declarative sugar most experiments use: a
(row-label × model × dataset) lattice that expands to specs and maps
results back to labelled cells.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.models.zoo import get_model_config
from repro.pipeline.cells import CELL_KIND, CellSpec, cell_key, compute_cell
from repro.pipeline.context import clear_context
from repro.pipeline.store import CacheStore
from repro.quant.config import QuantConfig
from repro.resilience.journal import RunJournal
from repro.resilience.retry import RetryBudgetExceeded, RetryPolicy

__all__ = ["Engine", "CellGrid", "get_engine", "configure", "reset"]


_log = obs.get_logger(__name__)


def _compute_batch(
    items: List[Tuple[str, CellSpec]], root: str, enabled: bool, tracing: bool = False
) -> Tuple[List[Tuple[str, dict]], List[dict], List[dict]]:
    """Worker entry point: compute cells, persist, return results.

    Runs under :func:`repro.obs.capture`, so the worker's spans and
    metric emissions (cell timings, cache puts) come back with the
    results for the parent to merge into one process-spanning trace.
    """
    store = CacheStore(root, enabled=enabled)
    out = []
    with obs.capture(tracing=tracing) as captured:
        model, dataset = (items[0][1].model, items[0][1].dataset) if items else ("", "")
        with obs.span(
            "pipeline.worker_batch", model=model, dataset=dataset, cells=len(items)
        ):
            for key, spec in items:
                result = compute_cell(spec)
                store.put_json(CELL_KIND, key, result)
                out.append((key, result))
    return out, captured.spans, captured.metrics


@dataclass(frozen=True)
class CellGrid:
    """A labelled (row × model × dataset) lattice of cells.

    ``rows`` maps a row label to the :class:`QuantConfig` evaluated on
    every (model, dataset) pair (``None`` = the FP16 anchor row).
    """

    rows: Tuple[Tuple[str, Optional[QuantConfig]], ...]
    models: Tuple[str, ...]
    datasets: Tuple[str, ...]
    kind: str = "ppl"
    quick: bool = False
    n_items: int = 128
    seed: int = 0

    def specs(self) -> List[CellSpec]:
        return [
            CellSpec(
                model=m,
                dataset=d,
                kind=self.kind,
                quant=q,
                n_items=self.n_items,
                seed=self.seed,
                quick=self.quick,
            )
            for _label, q in self.rows
            for m in self.models
            for d in self.datasets
        ]


class Engine:
    """Cached, parallel evaluator of cell specs."""

    def __init__(
        self,
        store: Optional[CacheStore] = None,
        jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[RunJournal] = None,
    ):
        self.store = store if store is not None else CacheStore()
        self.jobs = max(1, int(jobs))
        self.computed = 0
        #: Pacing for pool respawns after a worker crash.
        self.retry = retry if retry is not None else RetryPolicy()
        #: Optional per-run journal; computed cell keys are appended.
        self.journal = journal
        self._pool: Optional[ProcessPoolExecutor] = None
        # In-process result memo: repeat evaluations of a key within
        # one engine's lifetime never re-read the store (and are not
        # recomputed even with the store disabled).  Reconfiguring the
        # engine (--cache-dir/--no-cache) builds a fresh instance, so
        # the memo can never outlive the store it was filled from —
        # unlike the module-level lru_cache it replaces.
        self._memo: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    def close(self, cancel: bool = False) -> None:
        """Shut down the worker pool (idempotent).

        ``cancel=True`` abandons queued work (the Ctrl-C path): queued
        futures are cancelled so the pool reaps its workers instead of
        draining the backlog first.
        """
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=cancel)
            self._pool = None

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def fp16_ppl(self, model: str, dataset: str) -> float:
        """The paper's published FP16 anchor for (model, dataset)."""
        return get_model_config(model).fp16_ppl.get(dataset, float("nan"))

    def stats(self) -> Dict[str, Union[int, float]]:
        s = self.store.stats()
        s["computed"] = self.computed
        return s

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[CellSpec]) -> List[dict]:
        """Evaluate ``specs``; results align with the input order.

        Duplicate specs (same content address) are evaluated once.
        """
        with obs.span("pipeline.engine.run", n_specs=len(specs)):
            keys = [cell_key(s) for s in specs]
            unique: Dict[str, CellSpec] = {}
            for k, s in zip(keys, specs):
                unique.setdefault(k, s)

            results: Dict[str, dict] = {}
            missing: List[Tuple[str, CellSpec]] = []
            memo_hits = 0
            for k, s in unique.items():
                cached = self._memo.get(k)
                if cached is not None:
                    memo_hits += 1
                else:
                    cached = self.store.get_json(CELL_KIND, k)
                if cached is not None:
                    results[k] = cached
                else:
                    missing.append((k, s))
            if memo_hits:
                obs.counter("pipeline.memo.hits").inc(memo_hits)

            if missing:
                self.computed += len(missing)
                obs.counter("pipeline.cells.computed").inc(len(missing))
                _log.debug(
                    "computing %d/%d cells (jobs=%d)",
                    len(missing),
                    len(unique),
                    self.jobs,
                )
                if self.jobs > 1 and len(missing) > 1:
                    for k, result in self._run_parallel(missing):
                        results[k] = result
                else:
                    for k, s in missing:
                        result = compute_cell(s)
                        self.store.put_json(CELL_KIND, k, result)
                        results[k] = result
                if self.journal is not None:
                    self.journal.append(
                        {"event": "cells", "keys": [k for k, _ in missing]}
                    )

            self._memo.update(results)
            return [results[k] for k in keys]

    def _run_parallel(
        self, missing: List[Tuple[str, CellSpec]]
    ) -> List[Tuple[str, dict]]:
        """Fan misses out over the persistent process pool.

        One task per (model, dataset) group, so a worker builds a
        group's forward-pass context once per batch of cells.  The
        pool itself outlives individual :meth:`run` calls — across a
        ``--all`` run the workers' per-process memos (models, FP16
        logits, calibration sets) stay warm from experiment to
        experiment instead of being rebuilt per table.

        A dead worker breaks the entire pool (that is how
        ``ProcessPoolExecutor`` reports a crash), so recovery is:
        respawn the pool, re-resolve each pending cell against the
        store (workers persist results cell-by-cell *before* dying —
        survivors come back as cache hits), and resubmit only what is
        genuinely unfinished, backing off per :attr:`retry`.
        """
        groups: Dict[Tuple[str, str], List[Tuple[str, CellSpec]]] = {}
        for k, s in missing:
            groups.setdefault((s.model, s.dataset), []).append((k, s))

        out: List[Tuple[str, dict]] = []
        tracing = obs.tracing_enabled()
        pending = {g: groups[g] for g in sorted(groups)}
        crashes = 0
        while pending:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            futures = [
                (
                    g,
                    self._pool.submit(
                        _compute_batch,
                        items,
                        str(self.store.root),
                        self.store.enabled,
                        tracing,
                    ),
                )
                for g, items in pending.items()
            ]
            crashed = False
            try:
                for g, f in futures:
                    try:
                        pairs, spans, metrics = f.result()
                    except BrokenProcessPool:
                        crashed = True
                        continue
                    obs.absorb_capture(spans, metrics)
                    out.extend(pairs)
                    del pending[g]
            except KeyboardInterrupt:
                # Reap workers without draining the backlog, then let
                # the CLI report the interruption.
                self.close(cancel=True)
                raise
            if not pending:
                break
            if not crashed:  # pragma: no cover - defensive
                raise RuntimeError("parallel batch neither finished nor crashed")
            crashes += 1
            obs.counter("resilience.pool_restarts").inc()
            self.close()  # the broken pool cannot be reused
            pending = self._requeue_survivors(pending, out)
            if not pending:
                break
            n_left = sum(len(v) for v in pending.values())
            if crashes > self.retry.max_attempts:
                raise RetryBudgetExceeded(
                    f"worker pool crashed {crashes} times; giving up with "
                    f"{n_left} cells unfinished (RetryPolicy.max_attempts="
                    f"{self.retry.max_attempts})"
                )
            obs.counter("resilience.cell_retries").inc(n_left)
            delay = self.retry.delay(crashes)
            _log.warning(
                "worker pool crashed; respawning in %.2fs "
                "(attempt %d/%d, %d cells left)",
                delay,
                crashes,
                self.retry.max_attempts,
                n_left,
            )
            time.sleep(delay)
        return out

    def _requeue_survivors(
        self,
        pending: Dict[Tuple[str, str], List[Tuple[str, CellSpec]]],
        out: List[Tuple[str, dict]],
    ) -> Dict[Tuple[str, str], List[Tuple[str, CellSpec]]]:
        """Split crash-interrupted batches into done vs still-to-run.

        Cells the dead worker completed were already persisted to the
        store; resolve those into ``out`` and keep only the rest.
        """
        still: Dict[Tuple[str, str], List[Tuple[str, CellSpec]]] = {}
        for g, items in pending.items():
            remaining = []
            for k, s in items:
                cached = self.store.get_json(CELL_KIND, k)
                if cached is not None:
                    out.append((k, cached))
                else:
                    remaining.append((k, s))
            if remaining:
                still[g] = remaining
        return still

    # ------------------------------------------------------------------
    def run_grid(self, grid: CellGrid) -> Dict[Tuple[str, str, str], dict]:
        """Evaluate a grid; keys are ``(row_label, model, dataset)``."""
        results = self.run(grid.specs())
        out: Dict[Tuple[str, str, str], dict] = {}
        i = 0
        for label, _q in grid.rows:
            for m in grid.models:
                for d in grid.datasets:
                    out[(label, m, d)] = results[i]
                    i += 1
        return out

    def ppl(
        self,
        model: str,
        dataset: str,
        quant: Optional[QuantConfig] = None,
        quick: bool = False,
        seed: int = 0,
    ) -> dict:
        """Single-cell convenience wrapper around :meth:`run`."""
        return self.run(
            [CellSpec(model=model, dataset=dataset, quant=quant, seed=seed, quick=quick)]
        )[0]


# ----------------------------------------------------------------------
# Process-wide engine singleton (configured by the CLI runner).
# ----------------------------------------------------------------------

_ENGINE: Optional[Engine] = None


def configure(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    journal: Optional[RunJournal] = None,
) -> Engine:
    """(Re)build the global engine — the runner's ``--jobs/--cache-dir/
    --no-cache`` (and ``--run-id/--resume`` journal) land here."""
    global _ENGINE
    _ENGINE = Engine(
        store=CacheStore(cache_dir, enabled=not no_cache), jobs=jobs, journal=journal
    )
    return _ENGINE


def get_engine() -> Engine:
    """The global engine (default-configured on first use)."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = Engine()
    return _ENGINE


def reset() -> None:
    """Drop the global engine and every per-process memo (tests)."""
    global _ENGINE
    if _ENGINE is not None:
        _ENGINE.close()
    _ENGINE = None
    clear_context()
