"""repro.pipeline — content-addressed cache + parallel experiment engine.

The shared evaluation substrate under :mod:`repro.experiments`,
:mod:`repro.eval` and :mod:`repro.serve`:

* :mod:`repro.pipeline.keys` — stable ``cache_key()`` digests,
* :mod:`repro.pipeline.store` — atomic, content-addressed on-disk store,
* :mod:`repro.pipeline.context` — per-process build-once memos
  (models, FP16 logits, calibration, quantized clones),
* :mod:`repro.pipeline.cells` — declarative (model × dataset ×
  datatype × method) cell specs,
* :mod:`repro.pipeline.engine` — the cached, ``--jobs N`` parallel
  cell evaluator.

Heavier submodules load lazily (PEP 562) so low-level packages such as
:mod:`repro.quant` can import :mod:`repro.pipeline.keys` without
dragging in the evaluation stack or creating import cycles.
"""

from repro.pipeline.keys import array_digest, canonical, stable_digest
from repro.pipeline.store import CacheStore, default_cache_dir

__all__ = [
    "array_digest",
    "canonical",
    "stable_digest",
    "CacheStore",
    "default_cache_dir",
    "CellSpec",
    "cell_key",
    "compute_cell",
    "CellGrid",
    "Engine",
    "get_engine",
    "configure",
    "reset",
    "clear_context",
    "get_plan_model",
]

_LAZY = {
    "CellSpec": "repro.pipeline.cells",
    "cell_key": "repro.pipeline.cells",
    "compute_cell": "repro.pipeline.cells",
    "CellGrid": "repro.pipeline.engine",
    "Engine": "repro.pipeline.engine",
    "get_engine": "repro.pipeline.engine",
    "configure": "repro.pipeline.engine",
    "reset": "repro.pipeline.engine",
    "clear_context": "repro.pipeline.context",
    "get_plan_model": "repro.pipeline.context",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
