"""SLO verdicts and human-readable load-test reports.

An :class:`SLOTarget` is one checkable promise about a summary metric
("p95 TTFT under 500 ms", "shed rate under 5%"); an :class:`SLOPolicy`
bundles targets and evaluates a :meth:`LoadResult.summary` dict into
pass/fail verdicts.  :func:`format_report` renders the summary plus
verdicts as the fixed-width ASCII block a CI log or terminal shows.

Metric paths are dotted keys into the summary dict
(``"ttft.p95_s"``, ``"shed_rate"``, ``"prefix_cache.hit_rate"``), so
policies work on any BENCH-shaped dict, not just live results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["SLOTarget", "SLOVerdict", "SLOPolicy", "default_policy", "format_report"]


def _resolve(summary: Dict, path: str) -> Optional[float]:
    node = summary
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return None if node is None else float(node)


@dataclass(frozen=True)
class SLOTarget:
    """One promise: ``metric`` must stay on the right side of ``bound``."""

    metric: str  # dotted path into the summary dict
    bound: float
    op: str = "<="  # "<=" or ">="

    def check(self, summary: Dict) -> "SLOVerdict":
        value = _resolve(summary, self.metric)
        if value is None:
            return SLOVerdict(self, None, False, "metric missing")
        if self.op == "<=":
            ok = value <= self.bound
        elif self.op == ">=":
            ok = value >= self.bound
        else:
            raise ValueError(f"unknown op {self.op!r}; use '<=' or '>='")
        return SLOVerdict(self, value, ok, None)


@dataclass(frozen=True)
class SLOVerdict:
    """Outcome of checking one target against one summary."""

    target: SLOTarget
    value: Optional[float]
    ok: bool
    note: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "metric": self.target.metric,
            "op": self.target.op,
            "bound": self.target.bound,
            "value": self.value,
            "ok": self.ok,
            "note": self.note,
        }


@dataclass
class SLOPolicy:
    """A named bundle of targets evaluated together."""

    name: str = "slo"
    targets: List[SLOTarget] = field(default_factory=list)

    def evaluate(self, summary: Dict) -> List[SLOVerdict]:
        return [t.check(summary) for t in self.targets]

    def passed(self, summary: Dict) -> bool:
        return all(v.ok for v in self.evaluate(summary))

    def to_dict(self, summary: Dict) -> Dict:
        verdicts = self.evaluate(summary)
        return {
            "policy": self.name,
            "passed": all(v.ok for v in verdicts),
            "verdicts": [v.to_dict() for v in verdicts],
        }


def default_policy(
    ttft_p95_s: float = 2.0,
    latency_p99_s: float = 10.0,
    max_shed_rate: float = 0.25,
) -> SLOPolicy:
    """A permissive starter policy: loose tail-latency and shed bounds."""
    return SLOPolicy(
        name="default",
        targets=[
            SLOTarget("ttft.p95_s", ttft_p95_s),
            SLOTarget("latency.p99_s", latency_p99_s),
            SLOTarget("shed_rate", max_shed_rate),
            SLOTarget("lost", 0.0),
        ],
    )


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.4g}"


def format_report(
    summary: Dict, verdicts: Optional[Sequence[SLOVerdict]] = None
) -> str:
    """Fixed-width ASCII report of a load run (plus SLO verdicts)."""
    lines = ["== load report " + "=" * 33]
    lines.append(
        f"requests   {summary['n_requests']:>6}   "
        f"completed {summary['completed']:>6}"
    )
    lines.append(
        f"shed       {summary['shed']:>6}   "
        f"expired   {summary['expired']:>6}"
    )
    lines.append(
        f"errors     {summary['errors']:>6}   "
        f"lost      {summary['lost']:>6}"
    )
    lines.append(
        f"wall       {summary['wall_s']:>8.2f}s  "
        f"tokens/s  {summary['tokens_per_s']:>8.1f}"
    )
    for name in ("ttft", "tbt", "latency"):
        s = summary.get(name) or {}
        lines.append(
            f"{name:<8} p50 {_fmt(s.get('p50_s')):>8}  "
            f"p95 {_fmt(s.get('p95_s')):>8}  "
            f"p99 {_fmt(s.get('p99_s')):>8}"
        )
    prefix = summary.get("prefix_cache")
    if prefix:
        lines.append(
            f"prefix   hit_rate {prefix['hit_rate']:.3f}  "
            f"entries {prefix['entries']}  "
            f"bytes {prefix['bytes']}"
        )
    if verdicts is not None:
        lines.append("-- slo " + "-" * 41)
        for v in verdicts:
            mark = "PASS" if v.ok else "FAIL"
            lines.append(
                f"[{mark}] {v.target.metric} {v.target.op} "
                f"{_fmt(v.target.bound)} (got {_fmt(v.value)})"
                + (f"  # {v.note}" if v.note else "")
            )
    lines.append("=" * 48)
    return "\n".join(lines)
