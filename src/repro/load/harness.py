"""Asyncio load driver: fire a scripted trace at a live ServeServer.

:func:`drive` replays a :class:`~repro.load.traffic.Workload` against
a running :class:`~repro.serve.server.ServeServer` — one asyncio task
per scripted request, sleeping until its arrival offset, then calling
``server.generate`` with the scripted prompt/tier/deadline.  Every
outcome is recorded, including the structured failures:

* ``"completed"`` — tokens came back; TTFT, TBT, and end-to-end
  latency are taken from the server's per-request timings;
* ``"shed"`` — admission control raised
  :class:`~repro.serve.errors.Overloaded`;
* ``"expired"`` — the deadline passed mid-flight
  (:class:`~repro.serve.errors.DeadlineExceeded`);
* ``"error"`` — anything else (kept, never swallowed: the summary
  re-raises visibility by counting it, and the record holds the repr).

While the trace plays, the driver polls
:meth:`~repro.serve.server.ServeServer.metrics_snapshot` every
``poll_every_s`` — the live, non-destructive metrics view — so a run
leaves a time series of queue depth and in-flight counts next to the
final numbers.  :meth:`LoadResult.summary` folds everything into the
BENCH-shaped dict the benchmark suite writes out, with a hard
``lost`` accounting check: every submitted request must come back as
completed, shed, expired, or errored.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serve.errors import DeadlineExceeded, Overloaded
from repro.serve.metrics import LatencyStats
from repro.serve.server import ServeServer

from repro.load.traffic import RequestSpec, Workload

__all__ = ["RequestRecord", "LoadResult", "drive", "run_load"]


@dataclass
class RequestRecord:
    """Outcome of one scripted request."""

    index: int
    outcome: str  # completed | shed | expired | error
    tier: str
    prompt_len: int
    arrival_s: float
    ttft_s: Optional[float] = None
    latency_s: Optional[float] = None
    #: Mean time between output tokens after the first.
    tbt_s: Optional[float] = None
    n_generated: int = 0
    tokens: Optional[List[int]] = None
    error: Optional[str] = None


@dataclass
class LoadResult:
    """Everything one load run produced."""

    records: List[RequestRecord]
    metrics: Dict
    snapshots: List[Dict] = field(default_factory=list)
    prefix_stats: Optional[Dict] = None
    wall_s: float = 0.0
    workload: Optional[Dict] = None

    def by_outcome(self, outcome: str) -> List[RequestRecord]:
        return [r for r in self.records if r.outcome == outcome]

    @property
    def completed(self) -> int:
        return len(self.by_outcome("completed"))

    @property
    def shed(self) -> int:
        return len(self.by_outcome("shed"))

    @property
    def expired(self) -> int:
        return len(self.by_outcome("expired"))

    @property
    def errors(self) -> int:
        return len(self.by_outcome("error"))

    @property
    def lost(self) -> int:
        """Requests unaccounted for — the invariant is zero."""
        return len(self.records) - (
            self.completed + self.shed + self.expired + self.errors
        )

    def summary(self) -> Dict:
        """The BENCH-shaped rollup of this run."""
        n = len(self.records)
        done = self.by_outcome("completed")
        ttft = LatencyStats([r.ttft_s for r in done if r.ttft_s is not None])
        tbt = LatencyStats([r.tbt_s for r in done if r.tbt_s is not None])
        latency = LatencyStats(
            [r.latency_s for r in done if r.latency_s is not None]
        )
        decode_tokens = sum(r.n_generated for r in done)
        return {
            "n_requests": n,
            "completed": self.completed,
            "shed": self.shed,
            "expired": self.expired,
            "errors": self.errors,
            "lost": self.lost,
            "shed_rate": self.shed / n if n else 0.0,
            "wall_s": self.wall_s,
            "ttft": ttft.summary(),
            "tbt": tbt.summary(),
            "latency": latency.summary(),
            "decode_tokens": decode_tokens,
            "tokens_per_s": decode_tokens / self.wall_s if self.wall_s > 0 else 0.0,
            "prefix_cache": self.prefix_stats,
            "workload": self.workload,
        }


async def _fire(
    server: ServeServer,
    spec: RequestSpec,
    index: int,
    start: float,
) -> RequestRecord:
    from repro.serve.engine import GenerationConfig

    delay = start + spec.arrival_s - time.monotonic()
    if delay > 0:
        await asyncio.sleep(delay)
    record = RequestRecord(
        index=index,
        outcome="error",
        tier=spec.tier,
        prompt_len=spec.prompt_len,
        arrival_s=spec.arrival_s,
    )
    try:
        result = await server.generate(
            spec.prompt,
            GenerationConfig(max_new_tokens=spec.max_new_tokens),
            deadline_s=spec.deadline_s,
            tier=spec.tier,
        )
    except Overloaded:
        record.outcome = "shed"
    except DeadlineExceeded as exc:
        record.outcome = "expired"
        record.n_generated = exc.to_dict().get("generated_tokens", 0)
    except Exception as exc:  # noqa: BLE001 — recorded, counted, surfaced
        record.outcome = "error"
        record.error = repr(exc)
    else:
        record.outcome = "completed"
        record.ttft_s = result.ttft_s
        record.latency_s = result.latency_s
        record.n_generated = result.n_generated
        record.tokens = list(result.tokens)
        record.tbt_s = (result.latency_s - result.ttft_s) / max(
            result.n_generated - 1, 1
        )
    return record


async def drive(
    server: ServeServer,
    workload: Workload,
    poll_every_s: float = 0.25,
) -> LoadResult:
    """Replay ``workload`` against a started ``server``.

    The server must already be running (``await server.start()``); the
    caller keeps ownership and stops it afterwards.  Returns once
    every scripted request has resolved one way or another.
    """
    trace = workload.build()
    start = time.monotonic()
    tasks = [
        asyncio.create_task(_fire(server, spec, i, start))
        for i, spec in enumerate(trace)
    ]

    snapshots: List[Dict] = []

    async def poll() -> None:
        while True:
            await asyncio.sleep(poll_every_s)
            snap = server.metrics_snapshot()
            snap["t_s"] = time.monotonic() - start
            snapshots.append(snap)

    poller = asyncio.create_task(poll())
    try:
        records = list(await asyncio.gather(*tasks))
    finally:
        poller.cancel()
        try:
            await poller
        except asyncio.CancelledError:
            pass
    wall_s = time.monotonic() - start

    engine = server.batcher.engine
    prefix_stats = (
        engine.prefix_cache.stats() if engine.prefix_cache is not None else None
    )
    return LoadResult(
        records=records,
        metrics=server.metrics_snapshot(),
        snapshots=snapshots,
        prefix_stats=prefix_stats,
        wall_s=wall_s,
        workload=workload.describe(),
    )


def run_load(
    engine,
    workload: Workload,
    poll_every_s: float = 0.25,
    **server_kwargs,
) -> LoadResult:
    """Synchronous one-call path: build a server, drive, tear down.

    ``server_kwargs`` pass through to
    :class:`~repro.serve.server.ServeServer` (``max_batch_tokens``,
    ``max_waiting``, ``soft_admit_ratio``, ...).
    """

    async def main() -> LoadResult:
        server = ServeServer(engine, **server_kwargs)
        await server.start()
        try:
            return await drive(server, workload, poll_every_s=poll_every_s)
        finally:
            await server.stop()

    return asyncio.run(main())
