"""Seeded inter-arrival processes for trace-driven load generation.

Each :class:`ArrivalProcess` turns ``(n, seed)`` into ``n`` ascending
arrival offsets (seconds from the start of the run).  Same process,
same seed → byte-identical offsets, so a load trace is reproducible
end to end and a sweep can replay the exact arrival pattern that
tripped a regression.

Three processes cover the serving-paper workloads:

* :class:`PoissonArrivals` — memoryless open-loop traffic at a fixed
  mean rate (exponential gaps), the standard serving benchmark.
* :class:`BurstyArrivals` — requests land in tight bursts separated by
  Poisson gaps, stressing admission control and queue depth.
* :class:`DiurnalArrivals` — a sinusoidally modulated Poisson rate
  (thinning construction), compressing a day-shaped load curve into a
  short run so schedulers see both the peak and the trough.

Every process round-trips through :meth:`to_spec` / :func:`from_spec`
plain dicts so a workload can be logged into a benchmark artifact and
rebuilt from it.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "from_spec",
]


class ArrivalProcess:
    """Base: a seeded generator of ascending arrival offsets."""

    kind = "base"

    def offsets(self, n: int, seed: int) -> np.ndarray:
        """``n`` ascending arrival times (seconds, float64)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return np.empty(0, dtype=np.float64)
        return self._offsets(n, np.random.default_rng(seed))

    def _offsets(self, n: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def to_spec(self) -> Dict:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson traffic at ``rate_rps`` requests/second."""

    kind = "poisson"

    def __init__(self, rate_rps: float):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        self.rate_rps = float(rate_rps)

    def _offsets(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.cumsum(rng.exponential(1.0 / self.rate_rps, size=n))

    def to_spec(self) -> Dict:
        return {"kind": self.kind, "rate_rps": self.rate_rps}


class BurstyArrivals(ArrivalProcess):
    """Bursts of ``burst_size`` near-simultaneous requests.

    Burst starts follow a Poisson process whose rate is chosen so the
    *long-run request rate* is still ``rate_rps``; requests within a
    burst are ``within_burst_s`` apart.  The result keeps the mean
    load of the Poisson baseline while concentrating it into spikes
    that exercise shedding and queue-depth limits.
    """

    kind = "bursty"

    def __init__(
        self,
        rate_rps: float,
        burst_size: int = 8,
        within_burst_s: float = 0.001,
    ):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if within_burst_s < 0:
            raise ValueError("within_burst_s must be non-negative")
        self.rate_rps = float(rate_rps)
        self.burst_size = int(burst_size)
        self.within_burst_s = float(within_burst_s)

    def _offsets(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n_bursts = math.ceil(n / self.burst_size)
        burst_rate = self.rate_rps / self.burst_size
        starts = np.cumsum(rng.exponential(1.0 / burst_rate, size=n_bursts))
        within = np.arange(self.burst_size) * self.within_burst_s
        grid = (starts[:, None] + within[None, :]).reshape(-1)[:n]
        # Bursts can interleave when a gap is shorter than a burst;
        # arrival order is what the harness replays, so sort.
        return np.sort(grid)

    def to_spec(self) -> Dict:
        return {
            "kind": self.kind,
            "rate_rps": self.rate_rps,
            "burst_size": self.burst_size,
            "within_burst_s": self.within_burst_s,
        }


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson rate (day curve, compressed).

    The instantaneous rate is
    ``rate_rps * (1 + depth * sin(2π t / period_s))`` — ``depth`` in
    [0, 1) sets how deep the trough is relative to the mean.  Sampled
    by thinning: candidate gaps come from the peak rate
    ``rate_rps * (1 + depth)`` and are accepted with probability
    ``rate(t) / peak``.  The acceptance probability is bounded below
    by ``(1 - depth) / (1 + depth) > 0``, so the loop always
    terminates.
    """

    kind = "diurnal"

    def __init__(self, rate_rps: float, period_s: float = 60.0, depth: float = 0.8):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not (0.0 <= depth < 1.0):
            raise ValueError("depth must be in [0, 1)")
        self.rate_rps = float(rate_rps)
        self.period_s = float(period_s)
        self.depth = float(depth)

    def _rate(self, t: float) -> float:
        return self.rate_rps * (
            1.0 + self.depth * math.sin(2.0 * math.pi * t / self.period_s)
        )

    def _offsets(self, n: int, rng: np.random.Generator) -> np.ndarray:
        peak = self.rate_rps * (1.0 + self.depth)
        out = np.empty(n, dtype=np.float64)
        t = 0.0
        i = 0
        while i < n:
            t += rng.exponential(1.0 / peak)
            if rng.random() < self._rate(t) / peak:
                out[i] = t
                i += 1
        return out

    def to_spec(self) -> Dict:
        return {
            "kind": self.kind,
            "rate_rps": self.rate_rps,
            "period_s": self.period_s,
            "depth": self.depth,
        }


_KINDS = {
    cls.kind: cls for cls in (PoissonArrivals, BurstyArrivals, DiurnalArrivals)
}


def from_spec(spec: Dict) -> ArrivalProcess:
    """Rebuild an arrival process from its :meth:`to_spec` dict."""
    spec = dict(spec)
    kind = spec.pop("kind", None)
    if kind not in _KINDS:
        known: List[str] = sorted(_KINDS)
        raise ValueError(f"unknown arrival kind {kind!r}; known: {', '.join(known)}")
    return _KINDS[kind](**spec)
