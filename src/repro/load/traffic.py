"""Seeded request-mix models: what each load-test request looks like.

A :class:`TrafficModel` turns ``(n, seed, vocab)`` into ``n``
:class:`RequestSpec` entries — prompt tokens, decode length, SLO tier,
optional deadline.  Two concrete mixes bracket the serving workloads
the paper's deployment path cares about, plus a weighted mixture:

* :class:`SharedPrefixChat` — many short requests over a small pool of
  long shared system prompts.  This is the prefix-cache workload: the
  first request over each prefix pays full prefill, later ones should
  hit :class:`~repro.serve.prefix.PrefixKVCache`.
* :class:`LongDocSummarization` — few long-prompt, short-decode
  requests in the ``batch`` tier; stresses the per-step token budget
  and admission shedding.
* :class:`MixedTraffic` — a seeded weighted blend of other models.

:class:`Workload` binds a traffic model to an arrival process and a
request count; :meth:`Workload.build` materializes the full trace and
:meth:`Workload.digest` hashes it, so "same seed → same trace" is a
checkable equality, not a hope.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.load.arrivals import ArrivalProcess

__all__ = [
    "RequestSpec",
    "TrafficModel",
    "SharedPrefixChat",
    "LongDocSummarization",
    "MixedTraffic",
    "Workload",
]


@dataclass
class RequestSpec:
    """One scripted request in a load trace."""

    arrival_s: float
    prompt: np.ndarray
    max_new_tokens: int
    tier: str = "standard"
    deadline_s: Optional[float] = None

    @property
    def prompt_len(self) -> int:
        return int(self.prompt.size)


class TrafficModel:
    """Base: a seeded generator of request shapes (no arrival times)."""

    def make(self, n: int, seed: int, vocab: int) -> List[RequestSpec]:
        """``n`` request specs with ``arrival_s=0`` (set by the workload)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if vocab < 2:
            raise ValueError("vocab must be at least 2")
        return self._make(n, np.random.default_rng(seed), vocab)

    def _make(
        self, n: int, rng: np.random.Generator, vocab: int
    ) -> List[RequestSpec]:
        raise NotImplementedError


class SharedPrefixChat(TrafficModel):
    """Chat turns over a small pool of shared system prompts.

    ``n_prefixes`` distinct prefixes of ``prefix_tokens`` tokens each;
    every request picks one uniformly and appends a fresh suffix of
    ``suffix_tokens`` (inclusive range) tokens.  With the default pool
    size the same prefix recurs quickly, so a prefix cache warms
    within the first few requests.
    """

    def __init__(
        self,
        n_prefixes: int = 4,
        prefix_tokens: int = 48,
        suffix_tokens: Tuple[int, int] = (4, 12),
        max_new_tokens: Tuple[int, int] = (4, 16),
        tier: str = "interactive",
        deadline_s: Optional[float] = None,
    ):
        if n_prefixes < 1:
            raise ValueError("n_prefixes must be at least 1")
        if prefix_tokens < 1:
            raise ValueError("prefix_tokens must be at least 1")
        if suffix_tokens[0] < 1 or suffix_tokens[0] > suffix_tokens[1]:
            raise ValueError("suffix_tokens must be a (lo, hi) range with lo >= 1")
        if max_new_tokens[0] < 1 or max_new_tokens[0] > max_new_tokens[1]:
            raise ValueError("max_new_tokens must be a (lo, hi) range with lo >= 1")
        self.n_prefixes = int(n_prefixes)
        self.prefix_tokens = int(prefix_tokens)
        self.suffix_tokens = (int(suffix_tokens[0]), int(suffix_tokens[1]))
        self.max_new_tokens = (int(max_new_tokens[0]), int(max_new_tokens[1]))
        self.tier = tier
        self.deadline_s = deadline_s

    def _make(
        self, n: int, rng: np.random.Generator, vocab: int
    ) -> List[RequestSpec]:
        prefixes = [
            rng.integers(0, vocab, size=self.prefix_tokens, dtype=np.int64)
            for _ in range(self.n_prefixes)
        ]
        specs = []
        for _ in range(n):
            prefix = prefixes[int(rng.integers(0, self.n_prefixes))]
            suffix_len = int(
                rng.integers(self.suffix_tokens[0], self.suffix_tokens[1] + 1)
            )
            suffix = rng.integers(0, vocab, size=suffix_len, dtype=np.int64)
            specs.append(
                RequestSpec(
                    arrival_s=0.0,
                    prompt=np.concatenate([prefix, suffix]),
                    max_new_tokens=int(
                        rng.integers(
                            self.max_new_tokens[0], self.max_new_tokens[1] + 1
                        )
                    ),
                    tier=self.tier,
                    deadline_s=self.deadline_s,
                )
            )
        return specs


class LongDocSummarization(TrafficModel):
    """Long unique prompts, short decodes, batch tier."""

    def __init__(
        self,
        doc_tokens: Tuple[int, int] = (64, 128),
        max_new_tokens: Tuple[int, int] = (4, 8),
        tier: str = "batch",
        deadline_s: Optional[float] = None,
    ):
        if doc_tokens[0] < 1 or doc_tokens[0] > doc_tokens[1]:
            raise ValueError("doc_tokens must be a (lo, hi) range with lo >= 1")
        if max_new_tokens[0] < 1 or max_new_tokens[0] > max_new_tokens[1]:
            raise ValueError("max_new_tokens must be a (lo, hi) range with lo >= 1")
        self.doc_tokens = (int(doc_tokens[0]), int(doc_tokens[1]))
        self.max_new_tokens = (int(max_new_tokens[0]), int(max_new_tokens[1]))
        self.tier = tier
        self.deadline_s = deadline_s

    def _make(
        self, n: int, rng: np.random.Generator, vocab: int
    ) -> List[RequestSpec]:
        specs = []
        for _ in range(n):
            doc_len = int(rng.integers(self.doc_tokens[0], self.doc_tokens[1] + 1))
            specs.append(
                RequestSpec(
                    arrival_s=0.0,
                    prompt=rng.integers(0, vocab, size=doc_len, dtype=np.int64),
                    max_new_tokens=int(
                        rng.integers(
                            self.max_new_tokens[0], self.max_new_tokens[1] + 1
                        )
                    ),
                    tier=self.tier,
                    deadline_s=self.deadline_s,
                )
            )
        return specs


class MixedTraffic(TrafficModel):
    """A seeded weighted mixture of other traffic models.

    Each request draws its model from ``components`` with the given
    weights; the per-model request shapes come from independent
    deterministic sub-seeds, so the mixture is as reproducible as its
    parts.
    """

    def __init__(self, components: Sequence[Tuple[float, TrafficModel]]):
        if not components:
            raise ValueError("components must be non-empty")
        weights = np.array([w for w, _ in components], dtype=np.float64)
        if np.any(weights <= 0):
            raise ValueError("weights must be positive")
        self.models = [m for _, m in components]
        self.weights = weights / weights.sum()

    def _make(
        self, n: int, rng: np.random.Generator, vocab: int
    ) -> List[RequestSpec]:
        choices = rng.choice(len(self.models), size=n, p=self.weights)
        # Each component generates its own requests from a derived
        # seed, then the mixture interleaves them in choice order.
        pools = []
        for i, model in enumerate(self.models):
            count = int(np.sum(choices == i))
            sub_seed = int(rng.integers(0, 2**31 - 1))
            pools.append(iter(model.make(count, sub_seed, vocab)))
        return [next(pools[int(c)]) for c in choices]


@dataclass
class Workload:
    """An arrival process × traffic model × request count: one trace.

    :meth:`build` materializes the scripted requests (arrival offsets
    merged into the specs, scaled by ``time_scale`` so a long diurnal
    curve can be compressed into a short test run) and
    :meth:`digest` fingerprints the whole trace — prompts, arrival
    times, decode lengths, tiers — as a sha256 hex string.  Two
    workloads with equal digests will drive a server identically.
    """

    arrivals: ArrivalProcess
    traffic: TrafficModel
    n_requests: int
    seed: int = 0
    vocab: int = 2048
    time_scale: float = 1.0
    _trace: Optional[List[RequestSpec]] = field(
        default=None, repr=False, compare=False
    )

    def build(self) -> List[RequestSpec]:
        """The scripted trace (cached; same object on repeat calls)."""
        if self._trace is None:
            offsets = self.arrivals.offsets(self.n_requests, self.seed)
            specs = self.traffic.make(self.n_requests, self.seed + 1, self.vocab)
            for offset, spec in zip(offsets, specs):
                spec.arrival_s = float(offset) * self.time_scale
            self._trace = specs
        return self._trace

    def digest(self) -> str:
        """sha256 over the full trace; equal digests → identical runs."""
        h = hashlib.sha256()
        for spec in self.build():
            h.update(np.float64(spec.arrival_s).tobytes())
            h.update(np.ascontiguousarray(spec.prompt, dtype=np.int64).tobytes())
            h.update(np.int64(spec.max_new_tokens).tobytes())
            h.update(spec.tier.encode())
            h.update(
                b"none"
                if spec.deadline_s is None
                else np.float64(spec.deadline_s).tobytes()
            )
        return h.hexdigest()

    def describe(self) -> Dict:
        """A loggable summary of the workload configuration."""
        trace = self.build()
        return {
            "arrivals": self.arrivals.to_spec(),
            "n_requests": self.n_requests,
            "seed": self.seed,
            "vocab": self.vocab,
            "time_scale": self.time_scale,
            "prompt_tokens_total": int(sum(s.prompt_len for s in trace)),
            "max_new_tokens_total": int(sum(s.max_new_tokens for s in trace)),
            "tiers": {
                tier: sum(1 for s in trace if s.tier == tier)
                for tier in sorted({s.tier for s in trace})
            },
            "digest": self.digest(),
        }
