"""Trace-driven load generation and SLO evaluation for the serve path.

The serving claims in the reproduction — continuous batching keeps
tail latency bounded, admission control sheds instead of collapsing,
prefix-sharing KV reuse pays off on shared-prefix traffic — are only
claims until a load test exercises them.  This package is that test
harness, layered the way the serving papers slice it:

``arrivals``
    Seeded inter-arrival processes: Poisson, bursty, diurnal.  Same
    seed → byte-identical offsets.
``traffic``
    Seeded request mixes (shared-prefix chat, long-doc summarization,
    weighted blends) and :class:`Workload`, which binds a mix to an
    arrival process and fingerprints the whole trace (sha256).
``harness``
    The asyncio driver: replays a workload against a live
    :class:`~repro.serve.server.ServeServer`, records every outcome
    (completed/shed/expired/error), polls live metrics snapshots, and
    rolls everything into a BENCH-shaped summary with a zero-lost
    accounting invariant.
``report``
    SLO targets/policies evaluated against summaries, plus the ASCII
    report block for CI logs.
"""

from repro.load.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    from_spec,
)
from repro.load.harness import LoadResult, RequestRecord, drive, run_load
from repro.load.report import (
    SLOPolicy,
    SLOTarget,
    SLOVerdict,
    default_policy,
    format_report,
)
from repro.load.traffic import (
    LongDocSummarization,
    MixedTraffic,
    RequestSpec,
    SharedPrefixChat,
    TrafficModel,
    Workload,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "from_spec",
    "TrafficModel",
    "SharedPrefixChat",
    "LongDocSummarization",
    "MixedTraffic",
    "RequestSpec",
    "Workload",
    "drive",
    "run_load",
    "LoadResult",
    "RequestRecord",
    "SLOTarget",
    "SLOVerdict",
    "SLOPolicy",
    "default_policy",
    "format_report",
]
