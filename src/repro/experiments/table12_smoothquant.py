"""Table XII — BitMoD weights on SmoothQuant INT8-activation models."""

from __future__ import annotations

from repro.eval.perplexity import PerplexityEvaluator
from repro.experiments.common import LLAMA_MODELS, ExperimentResult
from repro.methods import SmoothQuant, collect_calibration
from repro.models.zoo import get_model_config
from repro.quant.config import QuantConfig, quantize_tensor

__all__ = ["run", "main", "WEIGHT_ROWS"]

WEIGHT_ROWS = [
    (8, "int8_sym"),
    (4, "int4_asym"),
    (4, "bitmod_fp4"),
    (3, "int3_asym"),
    (3, "bitmod_fp3"),
]


def run(quick: bool = False) -> ExperimentResult:
    models = LLAMA_MODELS[:1] if quick else LLAMA_MODELS
    cols = ["bits", "weight_dtype"] + [
        f"{m}/{a}" for m in models for a in ("fp16", "sq8")
    ]
    result = ExperimentResult(
        experiment="table12",
        title="Table XII: Wikitext PPL with FP16 vs SmoothQuant-INT8 activations",
        columns=cols,
        notes="BitMoD's advantage over INT-Asym persists under INT8 "
        "activations (Section V-E, 'orthogonal to activation quant').",
    )
    for bits, dtype in WEIGHT_ROWS:
        row = [bits, dtype]
        for m in models:
            ev = PerplexityEvaluator(get_model_config(m), "wikitext")
            calib = collect_calibration(ev.model)
            qcfg = QuantConfig(dtype=dtype)
            # FP16 activations: plain RTN weight quantization.
            fp16_m = ev.model.apply_quantizer(
                lambda n, w: quantize_tensor(w, qcfg).w_deq
            )
            row.append(ev.evaluate_model(fp16_m).ppl)
            # SQ8: smoothing + INT8 dynamic activations + same weights.
            sq = SmoothQuant(qcfg, act_bits=8)
            row.append(ev.evaluate_model(sq.quantize_model(ev.model, calib)).ppl)
        result.add_row(*row)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
