"""Table XII — BitMoD weights on SmoothQuant INT8-activation models."""

from __future__ import annotations

from repro.experiments.common import LLAMA_MODELS, ExperimentResult
from repro.pipeline import CellSpec, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "WEIGHT_ROWS"]

WEIGHT_ROWS = [
    (8, "int8_sym"),
    (4, "int4_asym"),
    (4, "bitmod_fp4"),
    (3, "int3_asym"),
    (3, "bitmod_fp3"),
]


def run(quick: bool = False) -> ExperimentResult:
    models = LLAMA_MODELS[:1] if quick else LLAMA_MODELS
    cols = ["bits", "weight_dtype"] + [
        f"{m}/{a}" for m in models for a in ("fp16", "sq8")
    ]
    result = ExperimentResult(
        experiment="table12",
        title="Table XII: Wikitext PPL with FP16 vs SmoothQuant-INT8 activations",
        columns=cols,
        notes="BitMoD's advantage over INT-Asym persists under INT8 "
        "activations (Section V-E, 'orthogonal to activation quant').",
    )
    engine = get_engine()
    items = []
    for _bits, dtype in WEIGHT_ROWS:
        qcfg = QuantConfig(dtype=dtype)
        for m in models:
            # FP16 activations: plain RTN weight quantization.
            items.append(((dtype, m, "fp16"), CellSpec(model=m, quant=qcfg, quick=quick)))
            # SQ8: smoothing + INT8 dynamic activations + same weights.
            items.append(
                (
                    (dtype, m, "sq8"),
                    CellSpec(
                        model=m,
                        quant=qcfg,
                        method="smoothquant",
                        method_params=(("act_bits", 8),),
                        quick=quick,
                    ),
                )
            )
    cells = dict(zip([k for k, _ in items], engine.run([s for _, s in items])))
    for bits, dtype in WEIGHT_ROWS:
        row = [bits, dtype]
        for m in models:
            row.append(cells[(dtype, m, "fp16")]["ppl"])
            row.append(cells[(dtype, m, "sq8")]["ppl"])
        result.add_row(*row)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
