"""Fig. 3 — per-group quantization error of FP3 + one special value.

For each candidate special value the normalized quantization error
(MSE of the extended grid / MSE of basic FP3) is averaged over all
weight groups of the model — the experiment behind Table IV's choice
of {+-3, +-6}.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.extended import make_extended_float
from repro.dtypes.registry import get_dtype
from repro.experiments.common import ALL_MODELS, ExperimentResult
from repro.models.zoo import get_model_config
from repro.pipeline.context import get_model
from repro.quant.granularity import to_rows
from repro.quant.quantizer import quantize_rows_grid

__all__ = ["run", "main", "SPECIAL_VALUES"]

SPECIAL_VALUES = [3.0, 5.0, 6.0, 8.0]


def _model_error(model_name: str, dtypes) -> list:
    model = get_model(get_model_config(model_name), seed=0)
    totals = np.zeros(len(dtypes))
    base_total = 0.0
    base = get_dtype("fp3")
    for w in model.named_linears().values():
        rows, _ = to_rows(w, "group", 128)
        base_total += float(np.sum(quantize_rows_grid(rows, base).sq_error))
        for i, dt in enumerate(dtypes):
            # Best of the +v / -v pair per group, as in Algo. 1.
            neg = quantize_rows_grid(rows, dt[0]).sq_error
            pos = quantize_rows_grid(rows, dt[1]).sq_error
            totals[i] += float(np.sum(np.minimum(neg, pos)))
    return list(totals / base_total)


def run(quick: bool = False) -> ExperimentResult:
    models = ALL_MODELS[:2] if quick else ALL_MODELS
    dtypes = [
        (make_extended_float(3, -sv), make_extended_float(3, sv))
        for sv in SPECIAL_VALUES
    ]
    result = ExperimentResult(
        experiment="fig03",
        title="Fig. 3: normalized FP3 quantization error per special value",
        columns=["model"] + [f"SV +-{int(sv)}" for sv in SPECIAL_VALUES],
        notes="Error normalized to basic FP3.  +-6 is lowest overall, "
        "hence FP3-EA = +-6 (Table IV).",
    )
    for name in models:
        result.add_row(name, *_model_error(name, dtypes))
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
