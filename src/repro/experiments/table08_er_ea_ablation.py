"""Table VIII — ER/EA datatype ablation on the Llama models.

The paper's crossover: at 4-bit, extra resolution (ER) beats extra
asymmetry (EA); at 3-bit, EA beats ER; full BitMoD beats both.
"""

from __future__ import annotations

from repro.experiments.common import LLAMA_MODELS, ExperimentResult
from repro.pipeline import CellGrid, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "DTYPES"]

DTYPES = {
    4: ["fp4", "fp4_er", "fp4_ea", "bitmod_fp4"],
    3: ["fp3", "fp3_er", "fp3_ea", "bitmod_fp3"],
}


def run(quick: bool = False) -> ExperimentResult:
    models = LLAMA_MODELS[:1] if quick else LLAMA_MODELS
    datasets = ["wikitext"] if quick else ["wikitext", "c4"]
    cols = ["dtype"] + [f"{m}/{d}" for m in models for d in datasets]
    result = ExperimentResult(
        experiment="table08",
        title="Table VIII: extended-datatype ablation (Llama models)",
        columns=cols,
        notes="ER wins at 4-bit, EA wins at 3-bit, BitMoD (adaptive over "
        "both) wins everywhere.",
    )
    engine = get_engine()
    cells = engine.run_grid(
        CellGrid(
            rows=tuple(
                (dt, QuantConfig(dtype=dt)) for bits in (4, 3) for dt in DTYPES[bits]
            ),
            models=tuple(models),
            datasets=tuple(datasets),
            quick=quick,
        )
    )
    for bits in (4, 3):
        for dt in DTYPES[bits]:
            result.add_row(
                dt, *[cells[(dt, m, d)]["ppl"] for m in models for d in datasets]
            )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
