"""Table V — perplexity vs per-group scaling-factor precision."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.models.zoo import TABLE1_MODELS
from repro.pipeline import CellGrid, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "SF_BITS"]

SF_BITS = [None, 8, 6, 4, 2]  # None = FP16 scales


def _label(sf) -> str:
    return "fp16" if sf is None else f"int{sf}"


def run(quick: bool = False) -> ExperimentResult:
    models = TABLE1_MODELS[:2] if quick else TABLE1_MODELS
    datasets = ["wikitext"] if quick else ["wikitext", "c4"]
    cols = ["sf_bits"] + [f"{m}/{d}" for m in models for d in datasets]
    result = ExperimentResult(
        experiment="table05",
        title="Table V: PPL vs scaling-factor precision (INT4-grid weights)",
        columns=cols,
        notes="INT8 scaling factors are lossless vs FP16; INT2 is not. "
        "BitMoD therefore uses INT8 (Section III-C).",
    )
    # A symmetric-grid 4-bit datatype exercises the second-level scale
    # quantization path end to end.
    engine = get_engine()
    cells = engine.run_grid(
        CellGrid(
            rows=tuple(
                (_label(sf), QuantConfig(dtype="fp4", scale_bits=sf)) for sf in SF_BITS
            ),
            models=tuple(models),
            datasets=tuple(datasets),
            quick=quick,
        )
    )
    for sf in SF_BITS:
        label = _label(sf)
        result.add_row(
            label, *[cells[(label, m, d)]["ppl"] for m in models for d in datasets]
        )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
