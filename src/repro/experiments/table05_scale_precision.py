"""Table V — perplexity vs per-group scaling-factor precision."""

from __future__ import annotations

from repro.eval.perplexity import PerplexityEvaluator
from repro.experiments.common import ExperimentResult
from repro.models.zoo import TABLE1_MODELS, get_model_config
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "SF_BITS"]

SF_BITS = [None, 8, 6, 4, 2]  # None = FP16 scales


def run(quick: bool = False) -> ExperimentResult:
    models = TABLE1_MODELS[:2] if quick else TABLE1_MODELS
    datasets = ["wikitext"] if quick else ["wikitext", "c4"]
    cols = ["sf_bits"] + [f"{m}/{d}" for m in models for d in datasets]
    result = ExperimentResult(
        experiment="table05",
        title="Table V: PPL vs scaling-factor precision (INT4-grid weights)",
        columns=cols,
        notes="INT8 scaling factors are lossless vs FP16; INT2 is not. "
        "BitMoD therefore uses INT8 (Section III-C).",
    )
    evals = {
        (m, d): PerplexityEvaluator(get_model_config(m), d)
        for m in models
        for d in datasets
    }
    for sf in SF_BITS:
        label = "fp16" if sf is None else f"int{sf}"
        row = [label]
        for m in models:
            for d in datasets:
                # A symmetric-grid 4-bit datatype exercises the
                # second-level scale quantization path end to end.
                cfg = QuantConfig(dtype="fp4", scale_bits=sf)
                row.append(evals[(m, d)].evaluate_config(cfg).ppl)
        result.add_row(*row)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
