"""Table VII — zero-shot accuracy: INT-Asym vs BitMoD at 4/3 bits."""

from __future__ import annotations

from repro.experiments.common import ALL_MODELS, ExperimentResult
from repro.pipeline import CellGrid, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "TASK_NAMES"]

TASK_NAMES = ["hellaswag", "winogrande", "piqa"]

_DTYPES = ["int4_asym", "bitmod_fp4", "int3_asym", "bitmod_fp3"]


def run(quick: bool = False) -> ExperimentResult:
    models = ["opt-1.3b", "llama-2-7b"] if quick else ALL_MODELS
    tasks = TASK_NAMES[:1] if quick else TASK_NAMES
    n_items = 64 if quick else 128
    cols = ["dtype"] + [f"{m}/{t[:5]}" for m in models for t in tasks] + ["mean_dacc"]
    result = ExperimentResult(
        experiment="table07",
        title="Table VII: discriminative accuracy (%), per-group weights",
        columns=cols,
        notes="mean_dacc = mean accuracy change vs FP16 (percentage points).",
    )
    engine = get_engine()
    cells = engine.run_grid(
        CellGrid(
            rows=(("fp16", None),)
            + tuple((dt, QuantConfig(dtype=dt)) for dt in _DTYPES),
            models=tuple(models),
            datasets=tuple(tasks),
            kind="acc",
            n_items=n_items,
            quick=quick,
        )
    )
    fp16 = [cells[("fp16", m, t)]["accuracy"] for m in models for t in tasks]
    result.add_row("fp16", *fp16, 0.0)
    for dt in _DTYPES:
        vals = [cells[(dt, m, t)]["accuracy"] for m in models for t in tasks]
        result.add_row(dt, *vals, sum(v - f for v, f in zip(vals, fp16)) / len(vals))
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
