"""Table VII — zero-shot accuracy: INT-Asym vs BitMoD at 4/3 bits."""

from __future__ import annotations

from repro.eval.tasks import DiscriminativeEvaluator
from repro.experiments.common import ALL_MODELS, ExperimentResult
from repro.models.zoo import get_model_config
from repro.quant.config import QuantConfig, quantize_tensor

__all__ = ["run", "main", "TASK_NAMES"]

TASK_NAMES = ["hellaswag", "winogrande", "piqa"]


def _acc(ev: DiscriminativeEvaluator, dtype: str) -> float:
    cfg = QuantConfig(dtype=dtype)

    def quantize(_name, w):
        return quantize_tensor(w, cfg).w_deq

    return ev.evaluate_quantizer(quantize)


def run(quick: bool = False) -> ExperimentResult:
    models = ["opt-1.3b", "llama-2-7b"] if quick else ALL_MODELS
    tasks = TASK_NAMES[:1] if quick else TASK_NAMES
    n_items = 64 if quick else 128
    cols = ["dtype"] + [f"{m}/{t[:5]}" for m in models for t in tasks] + ["mean_dacc"]
    result = ExperimentResult(
        experiment="table07",
        title="Table VII: discriminative accuracy (%), per-group weights",
        columns=cols,
        notes="mean_dacc = mean accuracy change vs FP16 (percentage points).",
    )
    evals = {
        (m, t): DiscriminativeEvaluator(get_model_config(m), t, n_items=n_items)
        for m in models
        for t in tasks
    }
    fp16 = [evals[(m, t)].fp16_accuracy * 100 for m in models for t in tasks]
    result.add_row("fp16", *fp16, 0.0)
    for dt in ("int4_asym", "bitmod_fp4", "int3_asym", "bitmod_fp3"):
        vals = [_acc(evals[(m, t)], dt) for m in models for t in tasks]
        result.add_row(dt, *vals, sum(v - f for v, f in zip(vals, fp16)) / len(vals))
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
