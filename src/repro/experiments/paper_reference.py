"""The paper's published numbers, transcribed for comparison.

Everything here is copied from the tables of the HPCA 2025 paper
(arXiv:2411.11745v2) so the reproduction can report paper-vs-measured
side by side and the test suite can assert that the *orderings* the
paper claims also hold in the reproduction.

Keys use this package's registry names.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "TABLE_VI_WIKITEXT",
    "TABLE_VI_C4",
    "TABLE_VI_MEAN_DPPL",
    "TABLE_VII_MEAN_DACC",
    "TABLE_VIII_WIKITEXT",
    "TABLE_IX_WIKITEXT",
    "TABLE_X",
    "TABLE_XI_MEAN_DPPL",
    "SPEEDUP_CLAIMS",
    "fp16_anchor",
]

_MODELS = ("opt-1.3b", "phi-2b", "yi-6b", "llama-2-7b", "llama-2-13b", "llama-3-8b")

#: Table VI, Wikitext-2 column per model.  Rows: dtype -> tuple in
#: _MODELS order.  "fp16" is the anchor row.
TABLE_VI_WIKITEXT: Dict[str, Tuple[float, ...]] = {
    "fp16": (14.62, 9.71, 5.84, 5.47, 4.88, 6.13),
    "ant4": (16.23, 11.23, 6.87, 6.09, 5.31, 7.58),
    "olive4": (15.38, 10.49, 6.55, 5.91, 5.13, 6.89),
    "mx_fp4": (15.39, 10.72, 6.62, 5.82, 5.11, 7.04),
    "int4_asym": (15.41, 10.67, 6.32, 5.77, 5.01, 6.84),
    "bitmod_fp4": (14.89, 10.48, 6.23, 5.72, 5.01, 6.73),
    "ant3": (340.6, 15.57, 9.01, 8.51, 6.40, 15.22),
    "olive3": (76.79, 14.93, 32.42, 9.13, 8.69, 26.76),
    "mx_fp3": (1000.0, 17.89, 15.41, 8.86, 7.19, 23.82),
    "int3_asym": (139.4, 13.92, 8.66, 7.08, 5.64, 13.26),
    "bitmod_fp3": (22.67, 12.91, 7.66, 6.55, 5.50, 8.96),
}

TABLE_VI_C4: Dict[str, Tuple[float, ...]] = {
    "fp16": (14.72, 12.74, 8.91, 6.97, 6.47, 8.88),
    "int4_asym": (15.74, 13.65, 9.69, 7.31, 6.62, 9.79),
    "bitmod_fp4": (15.29, 13.53, 9.58, 7.26, 6.61, 9.66),
    "int3_asym": (144.9, 16.79, 13.33, 9.29, 7.35, 17.80),
    "bitmod_fp3": (20.47, 15.69, 11.98, 8.36, 7.18, 12.82),
}

#: Table VI "Mean dPPL" column (average over models and both datasets).
TABLE_VI_MEAN_DPPL: Dict[str, float] = {
    "ant4": 1.23,
    "olive4": 0.68,
    "mx_fp4": 0.79,
    "int4_asym": 0.62,
    "bitmod_fp4": 0.48,
    "ant3": 57.61,
    "olive3": 23.14,
    "mx_fp3": 152.8,
    "int3_asym": 24.34,
    "bitmod_fp3": 2.94,
}

#: Table VII "Mean dAcc" column (percentage points vs FP16).
TABLE_VII_MEAN_DACC: Dict[str, float] = {
    "int4_asym": -0.71,
    "bitmod_fp4": -0.42,
    "int3_asym": -4.84,
    "bitmod_fp3": -2.61,
}

#: Table VIII, Wikitext-2: dtype -> (llama-2-7b, llama-2-13b, llama-3-8b).
TABLE_VIII_WIKITEXT: Dict[str, Tuple[float, ...]] = {
    "fp4": (5.77, 5.05, 6.86),
    "fp4_er": (5.74, 5.03, 6.76),
    "fp4_ea": (5.81, 5.08, 6.83),
    "bitmod_fp4": (5.72, 5.01, 6.73),
    "fp3": (7.51, 5.90, 15.22),
    "fp3_er": (7.18, 5.66, 13.43),
    "fp3_ea": (6.61, 5.54, 9.06),
    "bitmod_fp3": (6.55, 5.50, 8.96),
}

#: Table IX, Wikitext-2: SV set -> (opt-1.3b, phi-2b, llama-2-7b, llama-3-8b).
TABLE_IX_WIKITEXT: Dict[str, Tuple[float, ...]] = {
    "{+-5, +-6}": (23.39, 13.02, 6.61, 9.09),
    "{+-3, +-5}": (35.54, 13.41, 6.68, 10.32),
    "{+-3, +-6}": (22.67, 12.91, 6.55, 8.96),
}

#: Table X: design -> (n_pes, total_area_um2, total_power_mw).
TABLE_X: Dict[str, Tuple[float, ...]] = {
    "fp16": (48, 95498.0, 36.96),
    "bitmod": (64, 99509.0, 39.36),
}

#: Table XI "Mean dPPL" (Llama models, wiki+c4): method -> (4-bit, 3-bit).
TABLE_XI_MEAN_DPPL: Dict[str, Tuple[float, float]] = {
    "QuaRot": (0.48, 1.88),
    "GPTQ": (0.24, 1.51),
    "AWQ": (0.23, 1.22),
    "OmniQ": (0.25, 1.28),
    "BitMoD+AWQ": (0.20, 0.98),
    "BitMoD+OmniQ": (0.18, 0.89),
}

#: Headline hardware claims (abstract + Section V-C).
SPEEDUP_CLAIMS = {
    # (speedup over FP16, energy efficiency over FP16), averaged
    "bitmod-lossless": {"disc_speedup": 1.99, "gen_speedup": 2.41, "energy": 2.31},
    # lossy speedups over rivals: disc / gen
    "lossy_vs_ant": {"disc": 1.72, "gen": 1.66, "energy": 1.48},
    "lossy_vs_olive": {"disc": 1.56, "gen": 1.39, "energy": 1.31},
    # PE-level claims
    "pe_area_saving": 0.24,  # BitMoD PE 24% smaller than FP16 PE
    "throughput_int6": 4 / 3,
    "throughput_fp4": 2.0,
}


def fp16_anchor(model: str, dataset: str = "wikitext") -> float:
    """Published FP16 perplexity anchor (the Table VI first row)."""
    idx = _MODELS.index(model)
    table = TABLE_VI_WIKITEXT if dataset == "wikitext" else TABLE_VI_C4
    return table["fp16"][idx]
