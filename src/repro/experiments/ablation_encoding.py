"""Extension ablation — Booth vs naive bit-serial encoding (not in
the paper).

Booth encoding fixes the term count at ``ceil(b/2)``; a naive
bit-per-bit serializer emits one term per set bit (data dependent).
This ablation measures the *effective* term counts on real quantized
weight distributions, quantifying what Booth buys the statically
scheduled BitMoD pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hw.bitserial import booth_encode
from repro.models.zoo import get_model_config
from repro.pipeline.context import get_model
from repro.quant.config import QuantConfig, quantize_tensor

__all__ = ["run", "main"]


def _naive_terms(code: int, bits: int) -> int:
    """Sign-magnitude bit-per-bit serialization: one term per set bit."""
    return bin(abs(int(code))).count("1")


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation_encoding",
        title="Ablation: Booth vs naive bit-serial term counts",
        columns=["bits", "booth_terms", "naive_mean", "naive_p99",
                 "booth_nonzero_mean"],
        notes="Booth gives a *fixed* schedule (statically provisioned "
        "cycles); naive encoding has a long data-dependent tail.",
    )
    model = get_model(get_model_config("llama-2-7b"), seed=0)
    w = model.weights["layers.0.q_proj"]
    for bits in (6, 8):
        qr = quantize_tensor(w, QuantConfig(dtype=f"int{bits}_sym", scale_bits=None))
        codes = np.round(
            qr.w_deq.reshape(qr.layout.n_rows, -1) / qr.scales
        ).astype(int)
        sample = codes.reshape(-1)
        if quick:
            sample = sample[:4096]
        naive = np.array([_naive_terms(c, bits) for c in sample])
        booth_nonzero = np.array(
            [sum(1 for t in booth_encode(int(c), bits) if t.man) for c in sample[:2048]]
        )
        result.add_row(
            bits,
            (bits + 1) // 2,
            float(naive.mean()),
            float(np.percentile(naive, 99)),
            float(booth_nonzero.mean()),
        )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
