"""Table XI — software-method comparison and BitMoD combinations.

QuaRot / GPTQ / AWQ / OmniQuant with asymmetric-integer weights,
versus AWQ / OmniQuant with the BitMoD datatypes swapped in.

Each (method, model, dataset) point is one pipeline cell; the engine's
quantized-model memo ensures a method quantizes a model once even
though the wikitext and c4 cells are declared independently.
"""

from __future__ import annotations

from repro.experiments.common import LLAMA_MODELS, ExperimentResult
from repro.pipeline import CellSpec, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main"]


def _method_rows(bits: int):
    int_dt = f"int{bits}_asym"
    bm_dt = f"bitmod_fp{bits}"
    return [
        ("QuaRot", "quarot", int_dt),
        ("GPTQ", "gptq", int_dt),
        ("AWQ", "awq", int_dt),
        ("OmniQ", "omniquant", int_dt),
        ("BitMoD+AWQ", "awq", bm_dt),
        ("BitMoD+OmniQ", "omniquant", bm_dt),
    ]


def run(quick: bool = False) -> ExperimentResult:
    models = LLAMA_MODELS[:1] if quick else LLAMA_MODELS
    datasets = ["wikitext"] if quick else ["wikitext", "c4"]
    bit_list = [3] if quick else [4, 3]
    cols = (
        ["bits", "method"]
        + [f"{m}/{d}" for m in models for d in datasets]
        + ["mean_dppl"]
    )
    result = ExperimentResult(
        experiment="table11",
        title="Table XI: quantization strategies on the Llama models",
        columns=cols,
        notes="BitMoD composed with AWQ/OmniQuant pushes the frontier "
        "(Section V-E, 'orthogonal to quantization optimization').",
    )
    engine = get_engine()
    items = [
        (
            (bits, label, m, d),
            CellSpec(
                model=m,
                dataset=d,
                quant=QuantConfig(dtype=dtype),
                method=method,
                quick=quick,
            ),
        )
        for bits in bit_list
        for label, method, dtype in _method_rows(bits)
        for m in models
        for d in datasets
    ]
    cells = dict(zip([k for k, _ in items], engine.run([s for _, s in items])))

    fp16 = [engine.fp16_ppl(m, d) for m in models for d in datasets]
    result.add_row(16, "fp16", *fp16, 0.0)
    for bits in bit_list:
        for label, _method, _dtype in _method_rows(bits):
            vals = [cells[(bits, label, m, d)]["ppl"] for m in models for d in datasets]
            mean_delta = sum(v - f for v, f in zip(vals, fp16)) / len(vals)
            result.add_row(bits, label, *vals, mean_delta)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
