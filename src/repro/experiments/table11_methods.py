"""Table XI — software-method comparison and BitMoD combinations.

QuaRot / GPTQ / AWQ / OmniQuant with asymmetric-integer weights,
versus AWQ / OmniQuant with the BitMoD datatypes swapped in.
"""

from __future__ import annotations

from repro.eval.perplexity import PerplexityEvaluator
from repro.experiments.common import LLAMA_MODELS, ExperimentResult
from repro.methods import AWQ, GPTQ, OmniQuant, QuaRot, collect_calibration
from repro.models.zoo import get_model_config
from repro.quant.config import QuantConfig

__all__ = ["run", "main"]


def _method_rows(bits: int):
    int_dt = f"int{bits}_asym"
    bm_dt = f"bitmod_fp{bits}"
    return [
        ("QuaRot", QuaRot, int_dt),
        ("GPTQ", GPTQ, int_dt),
        ("AWQ", AWQ, int_dt),
        ("OmniQ", OmniQuant, int_dt),
        ("BitMoD+AWQ", AWQ, bm_dt),
        ("BitMoD+OmniQ", OmniQuant, bm_dt),
    ]


def run(quick: bool = False) -> ExperimentResult:
    models = LLAMA_MODELS[:1] if quick else LLAMA_MODELS
    datasets = ["wikitext"] if quick else ["wikitext", "c4"]
    bit_list = [3] if quick else [4, 3]
    cols = (
        ["bits", "method"]
        + [f"{m}/{d}" for m in models for d in datasets]
        + ["mean_dppl"]
    )
    result = ExperimentResult(
        experiment="table11",
        title="Table XI: quantization strategies on the Llama models",
        columns=cols,
        notes="BitMoD composed with AWQ/OmniQuant pushes the frontier "
        "(Section V-E, 'orthogonal to quantization optimization').",
    )
    evals = {}
    calibs = {}
    for m in models:
        for d in datasets:
            evals[(m, d)] = PerplexityEvaluator(get_model_config(m), d)
        calibs[m] = collect_calibration(evals[(m, datasets[0])].model)

    fp16 = [evals[(m, d)].fp16_ppl for m in models for d in datasets]
    result.add_row(16, "fp16", *fp16, 0.0)
    for bits in bit_list:
        for label, factory, dtype in _method_rows(bits):
            vals = []
            for m in models:
                method = factory(QuantConfig(dtype=dtype))
                qmodel = method.quantize_model(
                    evals[(m, datasets[0])].model, calibs[m]
                )
                for d in datasets:
                    vals.append(evals[(m, d)].evaluate_model(qmodel).ppl)
            mean_delta = sum(v - f for v, f in zip(vals, fp16)) / len(vals)
            result.add_row(bits, label, *vals, mean_delta)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
