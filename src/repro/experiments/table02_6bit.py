"""Table II — Wikitext-2 and C4 perplexity for 6-bit datatypes."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.models.zoo import TABLE1_MODELS
from repro.pipeline import CellGrid, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "DTYPES"]

DTYPES = ["int6_sym", "int6_asym", "fp6_e2m3", "fp6_e3m2"]


def run(quick: bool = False) -> ExperimentResult:
    models = TABLE1_MODELS[:2] if quick else TABLE1_MODELS
    datasets = ["wikitext"] if quick else ["wikitext", "c4"]
    cols = ["dtype"] + [f"{m}/{d}" for m in models for d in datasets]
    result = ExperimentResult(
        experiment="table02",
        title="Table II: 6-bit datatype PPL (per-group, group 128)",
        columns=cols,
        notes="All 6-bit datatypes are near-lossless, motivating INT6 "
        "as BitMoD's lossless configuration.",
    )
    engine = get_engine()
    cells = engine.run_grid(
        CellGrid(
            rows=tuple((dt, QuantConfig(dtype=dt)) for dt in DTYPES),
            models=tuple(models),
            datasets=tuple(datasets),
            quick=quick,
        )
    )
    result.add_row("fp16", *[engine.fp16_ppl(m, d) for m in models for d in datasets])
    for dt in DTYPES:
        result.add_row(
            dt, *[cells[(dt, m, d)]["ppl"] for m in models for d in datasets]
        )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
