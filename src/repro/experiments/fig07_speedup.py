"""Fig. 7 — speedup of ANT / OliVe / BitMoD over the FP16 baseline."""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ALL_MODELS, ExperimentResult
from repro.experiments.policy import choose_weight_bits
from repro.hw.baselines import make_accelerator
from repro.hw.simulator import simulate
from repro.models.zoo import get_model_config

__all__ = ["run", "main"]

_CONFIGS = [
    ("ant", False),
    ("olive", False),
    ("bitmod-lossless", True),
    ("bitmod-lossy", False),
]


def run(quick: bool = False) -> ExperimentResult:
    models = ["opt-1.3b", "llama-2-7b"] if quick else ALL_MODELS
    result = ExperimentResult(
        experiment="fig07",
        title="Fig. 7: speedup over the FP16 baseline (iso-compute area)",
        columns=["config", "task"] + models + ["geomean"],
        notes="Weight precision per accelerator/model follows the "
        "measured quality policy (see experiments.policy).",
    )
    accels = {n: make_accelerator(n) for n in ("fp16", "ant", "olive", "bitmod")}
    for label, lossless in _CONFIGS:
        accel_name = label.split("-")[0]
        accel = accels[accel_name]
        for task in ("discriminative", "generative"):
            speedups = []
            for m in models:
                cfg = get_model_config(m)
                base = simulate(cfg, accels["fp16"], task, 16)
                bits = choose_weight_bits(accel_name, m, task, lossless=lossless)
                r = simulate(cfg, accel, task, bits)
                speedups.append(base.cycles / r.cycles)
            geo = float(np.exp(np.mean(np.log(speedups))))
            result.add_row(label, task, *speedups, geo)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
