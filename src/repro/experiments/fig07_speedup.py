"""Fig. 7 — speedup of ANT / OliVe / BitMoD over the FP16 baseline.

A thin view over the DSE engine: each (accelerator, model, task) pair
is a fixed, simulation-only :class:`~repro.dse.space.DesignPoint`
evaluated (and content-address-cached) by
:func:`repro.dse.sweep.run_points`; this module only arranges the
resulting cycle counts into the paper's rows.
"""

from __future__ import annotations

import numpy as np

from repro.dse.space import DesignPoint
from repro.dse.sweep import run_points
from repro.experiments.common import ALL_MODELS, ExperimentResult
from repro.experiments.policy import choose_weight_bits
from repro.hw.baselines import AcceleratorSpec, make_accelerator

__all__ = ["run", "main", "paper_point"]

_CONFIGS = [
    ("ant", False),
    ("olive", False),
    ("bitmod-lossless", True),
    ("bitmod-lossy", False),
]


def paper_point(
    spec: AcceleratorSpec, model: str, task: str, bits: int
) -> DesignPoint:
    """Sim-only design point pinning one paper accelerator on a workload.

    Shared by the Fig. 7 and Fig. 8 views (space name ``paper-accels``),
    so the two experiments resolve to the same cached records.
    """
    return DesignPoint(
        space="paper-accels",
        arch=spec.arch,
        model=model,
        task=task,
        weight_bits=bits,
        dtype=None,
        kv_bits=spec.kv_bits,
        macs_per_cycle=spec.macs_per_cycle,
    )


def run(quick: bool = False) -> ExperimentResult:
    models = ["opt-1.3b", "llama-2-7b"] if quick else ALL_MODELS
    result = ExperimentResult(
        experiment="fig07",
        title="Fig. 7: speedup over the FP16 baseline (iso-compute area)",
        columns=["config", "task"] + models + ["geomean"],
        notes="Weight precision per accelerator/model follows the "
        "measured quality policy (see experiments.policy).",
    )
    accels = {n: make_accelerator(n) for n in ("fp16", "ant", "olive", "bitmod")}

    points, slots = [], []
    for label, lossless in _CONFIGS:
        accel_name = label.split("-")[0]
        for task in ("discriminative", "generative"):
            for m in models:
                bits = choose_weight_bits(accel_name, m, task, lossless=lossless)
                points.append(paper_point(accels["fp16"], m, task, 16))
                points.append(paper_point(accels[accel_name], m, task, bits))
                slots.append((label, task))
    records, _ = run_points(points)

    it = iter(records)
    rows = {}
    for label, task in slots:
        base, r = next(it), next(it)
        rows.setdefault((label, task), []).append(base["cycles"] / r["cycles"])
    for label, _lossless in _CONFIGS:
        for task in ("discriminative", "generative"):
            speedups = rows[(label, task)]
            geo = float(np.exp(np.mean(np.log(speedups))))
            result.add_row(label, task, *speedups, geo)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
