"""Fig. 2 — normalized max value / range per quantization granularity."""

from __future__ import annotations

from repro.eval.stats import profile_granularity
from repro.experiments.common import ExperimentResult
from repro.models.zoo import FIG1_MODELS, get_model_config

__all__ = ["run", "main"]


def run(quick: bool = False) -> ExperimentResult:
    models = FIG1_MODELS[:2] if quick else FIG1_MODELS
    result = ExperimentResult(
        experiment="fig02",
        title="Fig. 2: max value and range normalized to sigma (group=128)",
        columns=["model", "granularity", "norm_max", "norm_range"],
        notes="Per-group granularity has the lowest normalized extremes.",
    )
    for name in models:
        cfg = get_model_config(name)
        for gran, stats in profile_granularity(cfg).items():
            result.add_row(name, gran, stats.norm_max, stats.norm_range)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
