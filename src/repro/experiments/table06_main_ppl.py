"""Table VI — the headline comparison: 4-bit and 3-bit PPL across
ANT, OliVe, MX, INT-Asym, and BitMoD on six LLMs."""

from __future__ import annotations

from repro.experiments.common import ALL_MODELS, ExperimentResult
from repro.pipeline import CellGrid, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "DTYPES_4BIT", "DTYPES_3BIT"]

DTYPES_4BIT = ["ant4", "olive4", "mx_fp4", "int4_asym", "bitmod_fp4"]
DTYPES_3BIT = ["ant3", "olive3", "mx_fp3", "int3_asym", "bitmod_fp3"]


def run(quick: bool = False) -> ExperimentResult:
    models = ["opt-1.3b", "llama-2-7b"] if quick else ALL_MODELS
    datasets = ["wikitext"] if quick else ["wikitext", "c4"]
    cols = ["dtype"] + [f"{m}/{d}" for m in models for d in datasets] + ["mean_dppl"]
    result = ExperimentResult(
        experiment="table06",
        title="Table VI: per-group weight quantization PPL (4-bit / 3-bit)",
        columns=cols,
        notes="MX uses its native 32-element blocks; everything else "
        "group size 128.  mean_dppl = mean perplexity increase over FP16.",
    )
    engine = get_engine()
    cells = engine.run_grid(
        CellGrid(
            rows=tuple(
                (dt, QuantConfig(dtype=dt)) for dt in DTYPES_4BIT + DTYPES_3BIT
            ),
            models=tuple(models),
            datasets=tuple(datasets),
            quick=quick,
        )
    )
    fp16 = [engine.fp16_ppl(m, d) for m in models for d in datasets]
    result.add_row("fp16", *fp16, 0.0)
    for dtypes in (DTYPES_4BIT, DTYPES_3BIT):
        for dt in dtypes:
            vals = [cells[(dt, m, d)]["ppl"] for m in models for d in datasets]
            mean_delta = sum(v - f for v, f in zip(vals, fp16)) / len(vals)
            result.add_row(dt, *vals, mean_delta)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
