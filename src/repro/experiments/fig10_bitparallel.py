"""Fig. 10 — mixed-precision bit-parallel PEs vs the BitMoD PE.

A FIGNA-style FP16xINT8 PE is small, but making it *decomposable*
(two FP16xINT4 ops per cycle) duplicates the accumulator and output
register, ending up larger than the plain FP16 PE — while the
bit-serial BitMoD PE supports every precision with one accumulator.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw.energy import (
    bit_parallel_pe_cost,
    bitmod_pe_tile_cost,
    fp16_fp16_pe_cost,
)

__all__ = ["run", "main"]


def run(quick: bool = False) -> ExperimentResult:
    fp_fp = fp16_fp16_pe_cost()
    result = ExperimentResult(
        experiment="fig10",
        title="Fig. 10: PE area/power normalized to the FP16-FP16 PE",
        columns=["pe", "area_norm", "power_norm", "weight_precisions"],
        notes="The decomposable bit-parallel PE pays two accumulators "
        "and output registers; BitMoD needs one for any precision.",
    )
    result.add_row("fp16-fp16", 1.0, 1.0, "fp16")
    fp_int8 = bit_parallel_pe_cost(8)
    result.add_row(
        "fp16-int8",
        fp_int8["area_um2"] / fp_fp["area_um2"],
        fp_int8["power_mw"] / fp_fp["power_mw"],
        "int8",
    )
    dual = bit_parallel_pe_cost(8, dual_issue=True)
    result.add_row(
        "fp16-int8/dual-int4",
        dual["area_um2"] / fp_fp["area_um2"],
        dual["power_mw"] / fp_fp["power_mw"],
        "int8, 2x int4",
    )
    bitmod = bitmod_pe_tile_cost()
    result.add_row(
        "bitmod (bit-serial)",
        bitmod.area_per_pe / fp_fp["area_um2"],
        (bitmod.total_power / bitmod.n_pes) / fp_fp["power_mw"],
        "int8/6/5, fp4/3 + SVs",
    )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
