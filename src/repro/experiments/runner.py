"""CLI for regenerating any paper table or figure.

Usage::

    bitmod-repro table06            # one experiment
    bitmod-repro --all              # everything
    bitmod-repro --all --quick      # trimmed versions (CI-friendly)
    bitmod-repro --list
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Dict

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: Dict[str, str] = {
    "fig01": "repro.experiments.fig01_memory",
    "fig02": "repro.experiments.fig02_granularity",
    "table01": "repro.experiments.table01_granularity_ppl",
    "table02": "repro.experiments.table02_6bit",
    "fig03": "repro.experiments.fig03_special_values",
    "table05": "repro.experiments.table05_scale_precision",
    "table06": "repro.experiments.table06_main_ppl",
    "table07": "repro.experiments.table07_discriminative",
    "table08": "repro.experiments.table08_er_ea_ablation",
    "table09": "repro.experiments.table09_sv_ablation",
    "table10": "repro.experiments.table10_tile_area",
    "fig07": "repro.experiments.fig07_speedup",
    "fig08": "repro.experiments.fig08_energy",
    "fig09": "repro.experiments.fig09_pareto",
    "fig10": "repro.experiments.fig10_bitparallel",
    "table11": "repro.experiments.table11_methods",
    "table12": "repro.experiments.table12_smoothquant",
    # Extensions beyond the paper's own evaluation (DESIGN.md §6).
    "ablation_group_size": "repro.experiments.ablation_group_size",
    "ablation_encoding": "repro.experiments.ablation_encoding",
}


def run_experiment(name: str, quick: bool = False):
    """Run one experiment by name and return its ExperimentResult."""
    try:
        module_name = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    module = importlib.import_module(module_name)
    return module.run(quick=quick)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bitmod-repro",
        description="Regenerate tables/figures of the BitMoD paper.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. table06)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--quick", action="store_true", help="trimmed versions")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--compare",
        action="store_true",
        help="after table06, print the paper-vs-measured comparison",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = list(EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 1
    for name in names:
        result = run_experiment(name, quick=args.quick)
        print(result)
        print()
        if args.compare and name == "table06":
            from repro.experiments.compare import compare_table06

            print(compare_table06(result))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
