"""CLI for regenerating any paper table or figure.

Usage::

    bitmod-repro table06                      # one experiment
    bitmod-repro --all                        # everything
    bitmod-repro --all --quick                # trimmed versions (CI-friendly)
    bitmod-repro --all --quick --jobs 4       # parallel cell evaluation
    bitmod-repro --all --json out/            # persist results as JSON
    bitmod-repro --cache-dir /tmp/c table06   # explicit pipeline cache
    bitmod-repro --no-cache table06           # bypass the cache entirely
    bitmod-repro --list
    bitmod-repro dse --preset paper-pareto    # design-space exploration
    bitmod-repro --all --quick --trace out/trace.json --metrics out/metrics.json
    bitmod-repro obs summarize out/trace.json # trace/metrics tooling
    bitmod-repro --all --quick --run-id night1 --json out/   # journaled run
    bitmod-repro --all --quick --resume night1 --json out/   # pick it back up

Every experiment draws its evaluation cells from the shared
:mod:`repro.pipeline` engine: unique (model × dataset × datatype ×
method) cells are computed exactly once per run — across experiments —
memoized on disk (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), and
fanned out over a process pool with ``--jobs N``.  A warm rerun of
``--all`` only replays cache hits.

``--run-id ID`` journals every completed experiment (and its computed
cell keys) to an append-only per-run log; after a crash — even a
SIGKILL mid-write — ``--resume ID`` replays the journaled experiments
byte-identically and recomputes only the unfinished tail, whose cells
the content-addressed store mostly already holds.  ``Ctrl-C`` shuts
the worker pool down cleanly, journals the interruption, flushes any
``--trace``/``--metrics`` output, and exits 130.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path
from typing import Dict

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: Dict[str, str] = {
    "fig01": "repro.experiments.fig01_memory",
    "fig02": "repro.experiments.fig02_granularity",
    "table01": "repro.experiments.table01_granularity_ppl",
    "table02": "repro.experiments.table02_6bit",
    "fig03": "repro.experiments.fig03_special_values",
    "table05": "repro.experiments.table05_scale_precision",
    "table06": "repro.experiments.table06_main_ppl",
    "table07": "repro.experiments.table07_discriminative",
    "table08": "repro.experiments.table08_er_ea_ablation",
    "table09": "repro.experiments.table09_sv_ablation",
    "table10": "repro.experiments.table10_tile_area",
    "fig07": "repro.experiments.fig07_speedup",
    "fig08": "repro.experiments.fig08_energy",
    "fig09": "repro.experiments.fig09_pareto",
    "fig10": "repro.experiments.fig10_bitparallel",
    "table11": "repro.experiments.table11_methods",
    "table12": "repro.experiments.table12_smoothquant",
    # Extensions beyond the paper's own evaluation (DESIGN.md §6).
    "ablation_group_size": "repro.experiments.ablation_group_size",
    "ablation_encoding": "repro.experiments.ablation_encoding",
}


def run_experiment(name: str, quick: bool = False):
    """Run one experiment by name and return its ExperimentResult."""
    try:
        module_name = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    module = importlib.import_module(module_name)
    return module.run(quick=quick)


#: Runner options that consume the following token (a literal "dse"
#: or "obs" after one of these is an option value, not a subcommand).
_VALUE_OPTIONS = {
    "--jobs",
    "--cache-dir",
    "--json",
    "--trace",
    "--metrics",
    "--log-level",
    "--run-id",
    "--resume",
}


def _subcommand_index(argv, name: str) -> int:
    """Position of the ``name`` subcommand token, or -1."""
    for i, token in enumerate(argv):
        if token == name and (i == 0 or argv[i - 1] not in _VALUE_OPTIONS):
            return i
    return -1


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    obs_at = _subcommand_index(argv, "obs")
    if obs_at >= 0:
        # Trace/metrics tooling has its own argparse surface.
        from repro.obs.cli import main as obs_main

        return obs_main(argv[:obs_at] + argv[obs_at + 1 :])
    dse_at = _subcommand_index(argv, "dse")
    if dse_at >= 0:
        # Design-space exploration has its own surface; delegate,
        # keeping flags on either side of the subcommand token
        # (the dse parser understands --jobs/--cache-dir/--no-cache).
        from repro.dse.cli import main as dse_main

        return dse_main(argv[:dse_at] + argv[dse_at + 1 :])
    parser = argparse.ArgumentParser(
        prog="bitmod-repro",
        description="Regenerate tables/figures of the BitMoD paper.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. table06)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--quick", action="store_true", help="trimmed versions")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate cells on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="pipeline cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the pipeline cache",
    )
    parser.add_argument(
        "--json",
        metavar="OUT_DIR",
        default=None,
        help="write each result as OUT_DIR/<experiment>.json plus a "
        "_run_meta.json with wall time and cache statistics",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="after table06, print the paper-vs-measured comparison",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT",
        default=None,
        help="enable span tracing and write the run's trace to OUT "
        "(.json = chrome trace_event for Perfetto, otherwise JSONL)",
    )
    parser.add_argument(
        "--metrics",
        metavar="OUT",
        default=None,
        help="write the run's metrics-registry snapshot as JSON",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        help="logging level for the repro.* loggers "
        "(debug/info/warning/error; default: $REPRO_LOG or warning)",
    )
    parser.add_argument(
        "--run-id",
        metavar="ID",
        default=None,
        help="journal completed experiments under this run id "
        "($REPRO_RUN_DIR or <cache>/runs/ID) so the run is resumable",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_ID",
        default=None,
        help="resume a journaled run: replay finished experiments from "
        "the journal, recompute only the rest",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = list(EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 1

    from repro import obs
    from repro.experiments.common import ExperimentResult
    from repro.pipeline import configure
    from repro.resilience import RunJournal, atomic_write_json

    try:
        log = obs.setup_logging(args.log_level)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    # A fresh registry + tracer per run, so the snapshot written next
    # to the results covers exactly this invocation.
    obs.reset()
    if args.trace is not None:
        obs.set_tracing(True)

    if args.run_id is not None and args.resume is not None:
        print("error: --run-id and --resume are mutually exclusive", file=sys.stderr)
        return 2
    run_id = args.resume or args.run_id
    journal = None
    replayable: Dict[str, dict] = {}
    if run_id is not None:
        try:
            journal = RunJournal.for_run(run_id)
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        if args.resume is not None:
            # Only same-mode results replay: a --quick journal must
            # never satisfy a full run (or vice versa).
            replayable = {
                name: rec
                for name, rec in journal.completed("experiment").items()
                if rec.get("quick") == args.quick
            }
        journal.append(
            {
                "event": "run_start",
                "experiments": names,
                "quick": args.quick,
                "resumed": args.resume is not None,
            }
        )

    engine = configure(
        jobs=args.jobs, cache_dir=args.cache_dir, no_cache=args.no_cache,
        journal=journal,
    )

    out_dir = None
    if args.json is not None:
        out_dir = Path(args.json)
        out_dir.mkdir(parents=True, exist_ok=True)

    def emit(name: str, result) -> None:
        print(result)
        print()
        if out_dir is not None:
            atomic_write_json(out_dir / f"{name}.json", result.to_dict(), indent=2)
        if args.compare and name == "table06":
            from repro.experiments.compare import compare_table06

            print(compare_table06(result))
            print()

    t0 = time.perf_counter()
    replayed = []
    try:
        for name in names:
            if name in replayable:
                # Finished before the crash: replay the journaled
                # payload instead of recomputing, emitting the exact
                # output an uninterrupted run would have produced.
                replayed.append(name)
                log.info("experiment %s replayed from journal %s", name, run_id)
                emit(name, ExperimentResult.from_dict(replayable[name]["result"]))
                continue
            t_exp = time.perf_counter()
            with obs.span("experiment", name=name, quick=args.quick):
                result = run_experiment(name, quick=args.quick)
            obs.histogram("runner.experiment_seconds").record(
                time.perf_counter() - t_exp
            )
            log.info("experiment %s done in %.2fs", name, time.perf_counter() - t_exp)
            if journal is not None:
                journal.append(
                    {
                        "event": "experiment",
                        "name": name,
                        "quick": args.quick,
                        "result": result.to_dict(),
                    }
                )
            emit(name, result)
    except KeyboardInterrupt:
        # Clean crash-only exit: reap the pool, journal the cut, flush
        # whatever observability output was requested, exit nonzero.
        print("\ninterrupted — shutting down worker pool", file=sys.stderr)
        engine.close(cancel=True)
        if journal is not None:
            journal.append({"event": "interrupted", "quick": args.quick})
            journal.close()
            print(f"journal saved; resume with --resume {run_id}", file=sys.stderr)
        _flush_obs(args, obs)
        return 130
    finally:
        engine.close()

    if journal is not None:
        journal.append({"event": "run_end", "replayed": replayed})
        journal.close()
    if out_dir is not None:
        # The historical keys stay put; "metrics" carries the full
        # registry snapshot (cache hit/miss counters, per-cell-kind
        # wall-time histograms, ...) for `bitmod-repro obs diff`.
        meta = {
            "experiments": names,
            "quick": args.quick,
            "jobs": args.jobs,
            "wall_seconds": time.perf_counter() - t0,
            "cache": engine.stats(),
            "cache_dir": None if args.no_cache else str(engine.store.root),
            "metrics": obs.snapshot(),
        }
        if run_id is not None:
            meta["run_id"] = run_id
            meta["replayed"] = replayed
        atomic_write_json(out_dir / "_run_meta.json", meta, indent=2)
    _flush_obs(args, obs)
    return 0


def _flush_obs(args, obs) -> None:
    """Write --metrics/--trace output (normal exit and Ctrl-C alike)."""
    if args.metrics is not None:
        from repro.resilience import atomic_write_json

        atomic_write_json(Path(args.metrics), obs.snapshot(), indent=2)
        print(f"wrote metrics snapshot {args.metrics}")
    if args.trace is not None:
        spans = obs.get_tracer().drain()
        obs.write_trace(args.trace, spans)
        print(f"wrote trace {args.trace} ({len(spans)} spans)")


if __name__ == "__main__":
    sys.exit(main())
