"""Fig. 8 — normalized energy breakdown (on-chip compute vs DRAM).

A thin view over the DSE engine: the same fixed ``paper-accels``
design points as Fig. 7 (shared cache records via
:func:`repro.experiments.fig07_speedup.paper_point`), read for their
energy components instead of cycles.
"""

from __future__ import annotations

from repro.dse.sweep import run_points
from repro.experiments.common import ALL_MODELS, ExperimentResult
from repro.experiments.fig07_speedup import paper_point
from repro.experiments.policy import choose_weight_bits
from repro.hw.baselines import make_accelerator

__all__ = ["run", "main"]

_CONFIGS = [
    ("fp16", False),
    ("ant", False),
    ("olive", False),
    ("bitmod-lossless", True),
    ("bitmod-lossy", False),
]


def run(quick: bool = False) -> ExperimentResult:
    models = ["opt-1.3b", "llama-2-7b"] if quick else ALL_MODELS
    result = ExperimentResult(
        experiment="fig08",
        title="Fig. 8: energy, normalized to the FP16 baseline",
        columns=["model", "task", "config", "onchip_norm", "dram_norm", "total_norm"],
        notes="'LL' = lossless (INT6), 'LY' = lossy (4/3-bit) BitMoD. "
        "DRAM dominates generative energy; weight precision drives it.",
    )
    accels = {n: make_accelerator(n) for n in ("fp16", "ant", "olive", "bitmod")}

    points = []
    for m in models:
        for task in ("discriminative", "generative"):
            points.append(paper_point(accels["fp16"], m, task, 16))
            for label, lossless in _CONFIGS:
                accel_name = label.split("-")[0]
                bits = choose_weight_bits(accel_name, m, task, lossless=lossless)
                points.append(paper_point(accels[accel_name], m, task, bits))
    records, _ = run_points(points)

    it = iter(records)
    for m in models:
        for task in ("discriminative", "generative"):
            base = next(it)
            for label, _lossless in _CONFIGS:
                r = next(it)
                result.add_row(
                    m,
                    task,
                    label,
                    (r["buffer_uj"] + r["core_uj"]) / base["total_uj"],
                    r["dram_uj"] / base["total_uj"],
                    r["total_uj"] / base["total_uj"],
                )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
