"""Fig. 8 — normalized energy breakdown (on-chip compute vs DRAM)."""

from __future__ import annotations

from repro.experiments.common import ALL_MODELS, ExperimentResult
from repro.experiments.policy import choose_weight_bits
from repro.hw.baselines import make_accelerator
from repro.hw.simulator import simulate
from repro.models.zoo import get_model_config

__all__ = ["run", "main"]

_CONFIGS = [
    ("fp16", False),
    ("ant", False),
    ("olive", False),
    ("bitmod-lossless", True),
    ("bitmod-lossy", False),
]


def run(quick: bool = False) -> ExperimentResult:
    models = ["opt-1.3b", "llama-2-7b"] if quick else ALL_MODELS
    result = ExperimentResult(
        experiment="fig08",
        title="Fig. 8: energy, normalized to the FP16 baseline",
        columns=["model", "task", "config", "onchip_norm", "dram_norm", "total_norm"],
        notes="'LL' = lossless (INT6), 'LY' = lossy (4/3-bit) BitMoD. "
        "DRAM dominates generative energy; weight precision drives it.",
    )
    accels = {n: make_accelerator(n) for n in ("fp16", "ant", "olive", "bitmod")}
    for m in models:
        cfg = get_model_config(m)
        for task in ("discriminative", "generative"):
            base = simulate(cfg, accels["fp16"], task, 16)
            for label, lossless in _CONFIGS:
                accel_name = label.split("-")[0]
                bits = choose_weight_bits(accel_name, m, task, lossless=lossless)
                r = simulate(cfg, accels[accel_name], task, bits)
                result.add_row(
                    m,
                    task,
                    label,
                    r.energy.onchip_uj / base.energy.total_uj,
                    r.energy.dram_uj / base.energy.total_uj,
                    r.energy.total_uj / base.energy.total_uj,
                )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
