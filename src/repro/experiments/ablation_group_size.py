"""Extension ablation — group-size sweep for BitMoD (not in the paper).

The paper fixes G = 128 "to balance accuracy and memory overhead"
(Section II-C).  This ablation quantifies that balance: perplexity and
effective bits/weight across group sizes, for BitMoD-FP3 and INT3-Asym.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.models.zoo import get_model_config
from repro.pipeline import CellSpec, get_engine
from repro.pipeline.context import get_model
from repro.quant.config import QuantConfig, quantize_tensor

__all__ = ["run", "main", "GROUP_SIZES"]

GROUP_SIZES = [32, 64, 128, 256]


def run(quick: bool = False) -> ExperimentResult:
    models = ["llama-2-7b"] if quick else ["opt-1.3b", "llama-2-7b"]
    sizes = GROUP_SIZES[1:3] if quick else GROUP_SIZES
    result = ExperimentResult(
        experiment="ablation_group_size",
        title="Ablation: group size vs PPL and memory (BitMoD-FP3 / INT3-Asym)",
        columns=["model", "group_size", "bitmod_ppl", "bitmod_bits",
                 "int3_asym_ppl", "int3_asym_bits"],
        notes="Smaller groups buy accuracy with metadata bits; G=128 is "
        "the paper's sweet spot.",
    )
    engine = get_engine()
    items = [
        (
            (m, g, dt),
            CellSpec(
                model=m,
                dataset="wikitext",
                quant=QuantConfig(dtype=dt, group_size=g),
                quick=quick,
            ),
        )
        for m in models
        for g in sizes
        for dt in ("bitmod_fp3", "int3_asym")
    ]
    cells = dict(zip([k for k, _ in items], engine.run([s for _, s in items])))
    for m in models:
        some_w = next(iter(get_model(get_model_config(m)).named_linears().values()))
        for g in sizes:
            row = [m, g]
            for dt in ("bitmod_fp3", "int3_asym"):
                cfg = QuantConfig(dtype=dt, group_size=g)
                row.append(cells[(m, g, dt)]["ppl"])
                row.append(quantize_tensor(some_w, cfg).bits_per_weight)
            result.add_row(*row)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
