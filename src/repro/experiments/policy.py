"""Weight-precision policy for the accelerator comparison (Fig. 7/8).

A thin view over :mod:`repro.policy`: the measured quality policy —
an accelerator may use its lowest supported precision only if its own
datatype, at its native granularity, keeps the Wikitext perplexity
increase under a quality threshold on that model — lives in
:func:`repro.policy.solvers.accelerator_weight_bits`.  This module
only re-exports it under the historical name the Fig. 7/8 views use.

The measured delta-perplexity is an engine-backed pipeline cell
(content-addressed store + per-engine memo), replacing the old
module-level ``lru_cache`` that went stale when ``--cache-dir`` or
``--no-cache`` reconfigured the engine within a process.
"""

from __future__ import annotations

from repro.policy.solvers import QUALITY_THRESHOLD_DPPL, accelerator_weight_bits

__all__ = ["choose_weight_bits", "QUALITY_THRESHOLD_DPPL"]

#: Historical name of :func:`repro.policy.solvers.accelerator_weight_bits`.
choose_weight_bits = accelerator_weight_bits
