"""Weight-precision policy for the accelerator comparison (Fig. 7/8).

The paper's framing: ANT and OliVe "must adopt a higher weight
precision to compensate for the significant degradation in perplexity"
because their datatypes cannot hold per-group quality at low
precision, while BitMoD runs lossless at INT6 or lossy at 4/3 bits.

We make that policy *measured*: an accelerator may use its lowest
supported precision only if its own datatype, at its native
granularity, keeps the Wikitext perplexity increase under a quality
threshold on that model; otherwise it falls back to the next supported
precision.  ANT and OliVe natively support per-channel quantization
only (no dequantization hardware for per-group scales — Table III).
"""

from __future__ import annotations

from functools import lru_cache

from repro.pipeline import get_engine
from repro.quant.config import QuantConfig

__all__ = ["choose_weight_bits", "QUALITY_THRESHOLD_DPPL"]

#: Acceptable perplexity increase over FP16 for a "lossy" deployment.
QUALITY_THRESHOLD_DPPL = 1.0


@lru_cache(maxsize=None)
def _delta_ppl(model: str, dtype: str, granularity: str) -> float:
    engine = get_engine()
    cell = engine.ppl(model, "wikitext", QuantConfig(dtype=dtype, granularity=granularity))
    return cell["ppl"] - engine.fp16_ppl(model, "wikitext")


def choose_weight_bits(
    accel: str,
    model: str,
    task: str,
    lossless: bool = False,
    threshold: float = QUALITY_THRESHOLD_DPPL,
) -> int:
    """Weight precision an accelerator uses on a model/task.

    * ``fp16`` — always 16.
    * ``bitmod`` lossless — INT6 (near-zero loss per Table II).
    * ``bitmod`` lossy — 4-bit (discriminative) / 3-bit (generative),
      the paper's Section V-C configuration.
    * ``ant`` / ``olive`` — 4-bit when their own per-channel datatype
      stays within ``threshold`` perplexity increase, else 8-bit.
    """
    if accel == "fp16":
        return 16
    if accel == "bitmod":
        if lossless:
            return 6
        return 4 if task == "discriminative" else 3
    if accel in ("ant", "olive"):
        dtype = f"{accel}4"
        if _delta_ppl(model, dtype, "channel") <= threshold:
            return 4
        return 8
    raise KeyError(f"unknown accelerator {accel!r}")
