"""Fig. 1 — weight vs activation memory access, four LLMs, two tasks."""

from __future__ import annotations

from repro.eval.memory import profile_memory
from repro.experiments.common import ExperimentResult
from repro.models.zoo import FIG1_MODELS, get_model_config

__all__ = ["run", "main"]


def run(quick: bool = False) -> ExperimentResult:
    models = FIG1_MODELS[:2] if quick else FIG1_MODELS
    result = ExperimentResult(
        experiment="fig01",
        title="Fig. 1: total memory access (GB), batch 1",
        columns=["model", "task", "weights_gb", "activations_gb", "ratio"],
        notes=(
            "Discriminative = 256:1 tokens, generative = 256:256. "
            "Weight access dominates by 1-2 orders of magnitude, more so "
            "for generative tasks (weights refetched per output token)."
        ),
    )
    for name in models:
        cfg = get_model_config(name)
        for task in ("discriminative", "generative"):
            p = profile_memory(cfg, task)
            result.add_row(
                name,
                task,
                p.weight_bytes / 1e9,
                p.activation_bytes / 1e9,
                p.weight_bytes / p.activation_bytes,
            )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
