"""Table IX — FP3 special-value-set ablation.

The BitMoD decoder's special-value register file can hold arbitrary
values; this experiment compares three candidate sets and confirms
{+-3, +-6} (ER + EA) is the best default.

The three ablation datatypes share one registry ``name``
(``fp3_ablation``) but carry different special-value sets — their
pipeline cache keys differ because :meth:`QuantConfig.cache_key`
digests the full datatype contents, not the name.
"""

from __future__ import annotations

from repro.dtypes.extended import BitMoDType
from repro.experiments.common import ExperimentResult
from repro.pipeline import CellGrid, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "SV_SETS"]

SV_SETS = {
    "{+-5, +-6}": (-5.0, 5.0, -6.0, 6.0),
    "{+-3, +-5}": (-3.0, 3.0, -5.0, 5.0),
    "{+-3, +-6}": (-3.0, 3.0, -6.0, 6.0),
}

_MODELS = ["opt-1.3b", "phi-2b", "llama-2-7b", "llama-3-8b"]


def run(quick: bool = False) -> ExperimentResult:
    models = _MODELS[:2] if quick else _MODELS
    datasets = ["wikitext"] if quick else ["wikitext", "c4"]
    cols = ["sv_set"] + [f"{m}/{d}" for m in models for d in datasets]
    result = ExperimentResult(
        experiment="table09",
        title="Table IX: FP3 special-value set ablation",
        columns=cols,
        notes="The adopted {+-3, +-6} combines symmetric extra resolution "
        "with the best asymmetric range extension.",
    )
    engine = get_engine()
    cells = engine.run_grid(
        CellGrid(
            rows=tuple(
                (
                    label,
                    QuantConfig(
                        dtype=BitMoDType(
                            bits=3, special_values=svs, name="fp3_ablation"
                        )
                    ),
                )
                for label, svs in SV_SETS.items()
            ),
            models=tuple(models),
            datasets=tuple(datasets),
            quick=quick,
        )
    )
    for label in SV_SETS:
        result.add_row(
            label, *[cells[(label, m, d)]["ppl"] for m in models for d in datasets]
        )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
