"""Table IX — FP3 special-value-set ablation.

The BitMoD decoder's special-value register file can hold arbitrary
values; this experiment compares three candidate sets and confirms
{+-3, +-6} (ER + EA) is the best default.
"""

from __future__ import annotations

from repro.dtypes.extended import BitMoDType
from repro.eval.perplexity import PerplexityEvaluator
from repro.experiments.common import ExperimentResult
from repro.models.zoo import get_model_config
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "SV_SETS"]

SV_SETS = {
    "{+-5, +-6}": (-5.0, 5.0, -6.0, 6.0),
    "{+-3, +-5}": (-3.0, 3.0, -5.0, 5.0),
    "{+-3, +-6}": (-3.0, 3.0, -6.0, 6.0),
}

_MODELS = ["opt-1.3b", "phi-2b", "llama-2-7b", "llama-3-8b"]


def run(quick: bool = False) -> ExperimentResult:
    models = _MODELS[:2] if quick else _MODELS
    datasets = ["wikitext"] if quick else ["wikitext", "c4"]
    cols = ["sv_set"] + [f"{m}/{d}" for m in models for d in datasets]
    result = ExperimentResult(
        experiment="table09",
        title="Table IX: FP3 special-value set ablation",
        columns=cols,
        notes="The adopted {+-3, +-6} combines symmetric extra resolution "
        "with the best asymmetric range extension.",
    )
    evals = {
        (m, d): PerplexityEvaluator(get_model_config(m), d)
        for m in models
        for d in datasets
    }
    for label, svs in SV_SETS.items():
        dtype = BitMoDType(bits=3, special_values=svs, name="fp3_ablation")
        row = [label]
        for m in models:
            for d in datasets:
                row.append(
                    evals[(m, d)].evaluate_config(QuantConfig(dtype=dtype)).ppl
                )
        result.add_row(*row)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
