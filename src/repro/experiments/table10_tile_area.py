"""Table X — PE tile area and power: FP16 baseline vs BitMoD."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw.energy import bitmod_pe_tile_cost, fp16_pe_tile_cost

__all__ = ["run", "main"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table10",
        title="Table X: PE tile area (um^2) and power (mW), 28 nm @ 1 GHz",
        columns=[
            "design",
            "pes",
            "pe_array_area",
            "encoder_area",
            "total_area",
            "pe_array_power",
            "encoder_power",
            "total_power",
            "area_per_pe",
        ],
        notes="The BitMoD PE is ~24% smaller than the FP16 PE; the "
        "bit-serial encoder costs ~2.5% of the array area.",
    )
    for cost in (fp16_pe_tile_cost(), bitmod_pe_tile_cost()):
        result.add_row(
            cost.name,
            cost.n_pes,
            cost.pe_array_area,
            cost.encoder_area,
            cost.total_area,
            cost.pe_array_power,
            cost.encoder_power,
            cost.total_power,
            cost.area_per_pe,
        )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
