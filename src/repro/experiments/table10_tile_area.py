"""Table X — PE tile area and power: FP16 baseline vs BitMoD.

A thin view over the DSE area model: the two published tile records
returned by :func:`repro.dse.space.paper_tile_costs` are exactly what
the iso-area normalization of every design-space sweep is anchored on
— this table prints them verbatim.
"""

from __future__ import annotations

from repro.dse.space import paper_tile_costs
from repro.experiments.common import ExperimentResult

__all__ = ["run", "main"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table10",
        title="Table X: PE tile area (um^2) and power (mW), 28 nm @ 1 GHz",
        columns=[
            "design",
            "pes",
            "pe_array_area",
            "encoder_area",
            "total_area",
            "pe_array_power",
            "encoder_power",
            "total_power",
            "area_per_pe",
        ],
        notes="The BitMoD PE is ~24% smaller than the FP16 PE; the "
        "bit-serial encoder costs ~2.5% of the array area.",
    )
    for cost in paper_tile_costs():
        result.add_row(
            cost.name,
            cost.n_pes,
            cost.pe_array_area,
            cost.encoder_area,
            cost.total_area,
            cost.pe_array_power,
            cost.encoder_power,
            cost.total_power,
            cost.area_per_pe,
        )
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
