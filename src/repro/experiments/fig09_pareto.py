"""Fig. 9 — perplexity vs energy-delay-product Pareto plot.

For Phi-2B and Llama-2-7B, every accelerator is swept across its
weight precisions; each point pairs the measured Wikitext perplexity
of the accelerator's datatype (at its native granularity) with the
simulated EDP of the generative workload.  BitMoD's points sit on the
Pareto frontier.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw.baselines import make_accelerator
from repro.hw.simulator import simulate
from repro.models.zoo import get_model_config
from repro.pipeline import CellSpec, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "SWEEPS"]

#: accelerator -> [(bits, dtype, granularity)]
SWEEPS = {
    "ant": [
        (3, "ant3", "channel"),
        (4, "ant4", "channel"),
        (5, "flint5", "channel"),
        (6, "flint6", "channel"),
        (8, "int8_sym", "channel"),
    ],
    "olive": [
        (3, "olive3", "channel"),
        (4, "olive4", "channel"),
        (5, "olive5", "channel"),
        (6, "olive6", "channel"),
        (8, "int8_sym", "channel"),
    ],
    "bitmod": [
        (3, "bitmod_fp3", "group"),
        (4, "bitmod_fp4", "group"),
        (5, "int5_asym", "group"),
        (6, "int6_sym", "group"),
        (8, "int8_sym", "group"),
    ],
}

_MODELS = ["phi-2b", "llama-2-7b"]


def run(quick: bool = False) -> ExperimentResult:
    models = _MODELS[:1] if quick else _MODELS
    result = ExperimentResult(
        experiment="fig09",
        title="Fig. 9: Wikitext PPL vs EDP (normalized to FP16 baseline)",
        columns=["model", "accelerator", "bits", "ppl", "edp_norm"],
        notes="Lower-left is better; BitMoD sits on the Pareto frontier.",
    )
    engine = get_engine()
    points = {
        name: (sweep if not quick else sweep[:3]) for name, sweep in SWEEPS.items()
    }
    items = [
        (
            (m, accel_name, bits),
            CellSpec(
                model=m,
                dataset="wikitext",
                quant=QuantConfig(dtype=dtype, granularity=gran),
                quick=quick,
            ),
        )
        for m in models
        for accel_name, sweep in points.items()
        for bits, dtype, gran in sweep
    ]
    cells = dict(zip([k for k, _ in items], engine.run([s for _, s in items])))

    fp16 = make_accelerator("fp16")
    for m in models:
        cfg = get_model_config(m)
        base = simulate(cfg, fp16, "generative", 16)
        for accel_name, sweep in points.items():
            accel = make_accelerator(accel_name)
            for bits, _dtype, _gran in sweep:
                ppl = cells[(m, accel_name, bits)]["ppl"]
                r = simulate(cfg, accel, "generative", bits)
                result.add_row(m, accel_name, bits, ppl, r.edp / base.edp)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
