"""Shared infrastructure for the experiment harness.

Every experiment module exposes ``run(quick=False) -> ExperimentResult``
and ``main()`` which prints the paper-style table.  ``quick=True``
trims the model list / item counts so the pytest-benchmark harness can
regenerate every table in reasonable time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["ExperimentResult", "format_table", "ALL_MODELS", "LLAMA_MODELS"]

ALL_MODELS = [
    "opt-1.3b",
    "phi-2b",
    "yi-6b",
    "llama-2-7b",
    "llama-2-13b",
    "llama-3-8b",
]

LLAMA_MODELS = ["llama-2-7b", "llama-2-13b", "llama-3-8b"]


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[list] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def to_dict(self) -> Dict:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (journal replay)."""
        return cls(
            experiment=d["experiment"],
            title=d["title"],
            columns=list(d["columns"]),
            rows=[list(r) for r in d["rows"]],
            notes=d.get("notes", ""),
        )

    def cell(self, row_label, column: str):
        """Look up a value by first-column label and column name.

        Misses raise a :class:`KeyError` listing what *is* there, so a
        typo'd lookup is diagnosable from the message alone.
        """
        if column not in self.columns:
            raise KeyError(
                f"unknown column {column!r} in experiment "
                f"{self.experiment!r}; known columns: {', '.join(map(repr, self.columns))}"
            )
        cidx = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_label:
                return row[cidx]
        labels = ", ".join(repr(row[0]) for row in self.rows)
        raise KeyError(
            f"no row labelled {row_label!r} in experiment "
            f"{self.experiment!r}; known row labels: {labels}"
        )

    def __str__(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.notes)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v != v:  # NaN
            return "-"
        if abs(v) >= 1000:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


def format_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence], notes: str = ""
) -> str:
    """Render an ASCII table in the paper's row/column layout."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
        for i, col in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines = [title, "=" * len(title), header, sep]
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    if notes:
        lines += ["", notes]
    return "\n".join(lines)
