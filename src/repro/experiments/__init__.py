"""Experiment harness: one module per paper table/figure.

See ``repro.experiments.runner.EXPERIMENTS`` for the index, or run
``bitmod-repro --list``.
"""

from repro.experiments.common import ExperimentResult, format_table
from repro.experiments.compare import ComparisonReport, compare_table06
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentResult",
    "format_table",
    "EXPERIMENTS",
    "run_experiment",
    "ComparisonReport",
    "compare_table06",
]
