"""Paper-vs-measured comparison engine.

Runs a reproduced experiment and lines its numbers up against the
paper's published values (:mod:`repro.experiments.paper_reference`),
reporting both the cell-level deltas and whether the paper's *claimed
orderings* (who beats whom) hold in the reproduction — the honest
yardstick for a synthetic-substrate reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments import paper_reference as ref
from repro.experiments.common import ExperimentResult, format_table
from repro.experiments.runner import run_experiment

__all__ = ["OrderingCheck", "ComparisonReport", "compare_table06", "ordering_holds"]


@dataclass
class OrderingCheck:
    """Did one paper-claimed ordering hold in the reproduction?"""

    claim: str
    paper: Tuple[float, float]
    measured: Tuple[float, float]
    holds: bool


@dataclass
class ComparisonReport:
    """Paper-vs-measured summary for one experiment."""

    experiment: str
    rows: List[list] = field(default_factory=list)
    orderings: List[OrderingCheck] = field(default_factory=list)

    @property
    def orderings_held(self) -> int:
        return sum(1 for o in self.orderings if o.holds)

    def __str__(self) -> str:
        table = format_table(
            f"Paper vs measured: {self.experiment}",
            ["quantity", "paper", "measured"],
            self.rows,
        )
        lines = [table, "", "Ordering checks:"]
        for o in self.orderings:
            mark = "OK " if o.holds else "DEV"
            lines.append(f"  [{mark}] {o.claim}")
        lines.append(
            f"  {self.orderings_held}/{len(self.orderings)} paper orderings hold"
        )
        return "\n".join(lines)


def ordering_holds(
    claim: str, paper_pair: Tuple[float, float], measured_pair: Tuple[float, float]
) -> OrderingCheck:
    """Check that measured values preserve the paper pair's order."""
    paper_lt = paper_pair[0] < paper_pair[1]
    measured_lt = measured_pair[0] < measured_pair[1]
    return OrderingCheck(
        claim=claim,
        paper=paper_pair,
        measured=measured_pair,
        holds=paper_lt == measured_lt,
    )


def compare_table06(result: ExperimentResult = None, quick: bool = False) -> ComparisonReport:
    """Compare the reproduced Table VI against the paper."""
    if result is None:
        result = run_experiment("table06", quick=quick)
    report = ComparisonReport(experiment="table06")

    measured_mean: Dict[str, float] = {row[0]: row[-1] for row in result.rows}
    for dtype, paper_mean in ref.TABLE_VI_MEAN_DPPL.items():
        if dtype not in measured_mean:
            continue
        report.rows.append([f"mean dPPL {dtype}", paper_mean, measured_mean[dtype]])

    claims = [
        ("BitMoD-4b beats INT4-Asym", "bitmod_fp4", "int4_asym"),
        ("BitMoD-4b beats OliVe-4b", "bitmod_fp4", "olive4"),
        ("BitMoD-4b beats ANT-4b", "bitmod_fp4", "ant4"),
        ("BitMoD-4b beats MX-FP4", "bitmod_fp4", "mx_fp4"),
        ("BitMoD-3b beats INT3-Asym", "bitmod_fp3", "int3_asym"),
        ("BitMoD-3b beats ANT-3b", "bitmod_fp3", "ant3"),
        ("BitMoD-3b beats MX-FP3", "bitmod_fp3", "mx_fp3"),
        ("BitMoD-3b beats OliVe-3b", "bitmod_fp3", "olive3"),
        ("INT4-Asym beats ANT-4b", "int4_asym", "ant4"),
    ]
    for claim, a, b in claims:
        if a in measured_mean and b in measured_mean:
            report.orderings.append(
                ordering_holds(
                    claim,
                    (ref.TABLE_VI_MEAN_DPPL[a], ref.TABLE_VI_MEAN_DPPL[b]),
                    (measured_mean[a], measured_mean[b]),
                )
            )
    return report
