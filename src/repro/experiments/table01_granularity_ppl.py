"""Table I — Wikitext-2 perplexity, per-channel vs per-group, 4-bit."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.models.zoo import TABLE1_MODELS
from repro.pipeline import CellGrid, get_engine
from repro.quant.config import QuantConfig

__all__ = ["run", "main", "DTYPES"]

DTYPES = ["int4_sym", "int4_asym", "fp4", "flint4"]


def run(quick: bool = False) -> ExperimentResult:
    models = TABLE1_MODELS[:2] if quick else TABLE1_MODELS
    cols = ["dtype"]
    for m in models:
        cols += [f"{m}/PC", f"{m}/PG"]
    result = ExperimentResult(
        experiment="table01",
        title="Table I: Wikitext-2 PPL by granularity and 4-bit datatype",
        columns=cols,
        notes="PC = per-channel, PG = per-group (group size 128).",
    )
    engine = get_engine()
    cells = engine.run_grid(
        CellGrid(
            rows=tuple(
                (f"{dt}/{gran}", QuantConfig(dtype=dt, granularity=gran))
                for dt in DTYPES
                for gran in ("channel", "group")
            ),
            models=tuple(models),
            datasets=("wikitext",),
            quick=quick,
        )
    )
    result.add_row(
        "fp16", *[v for m in models for v in (engine.fp16_ppl(m, "wikitext"),) * 2]
    )
    for dt in DTYPES:
        row = [dt]
        for m in models:
            row.append(cells[(f"{dt}/channel", m, "wikitext")]["ppl"])
            row.append(cells[(f"{dt}/group", m, "wikitext")]["ppl"])
        result.add_row(*row)
    return result


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
