"""Tests for the precision policy, the CLI runner, and the ablations."""

import json

import pytest

from repro.experiments.policy import choose_weight_bits
from repro.experiments.runner import main, run_experiment


class TestPolicy:
    def test_fp16_always_16(self):
        assert choose_weight_bits("fp16", "opt-1.3b", "generative") == 16

    def test_bitmod_configs(self):
        assert choose_weight_bits("bitmod", "yi-6b", "discriminative") == 4
        assert choose_weight_bits("bitmod", "yi-6b", "generative") == 3
        assert choose_weight_bits("bitmod", "yi-6b", "generative", lossless=True) == 6

    def test_ant_olive_fall_back_within_supported(self):
        for accel in ("ant", "olive"):
            bits = choose_weight_bits(accel, "llama-2-7b", "generative")
            assert bits in (4, 8)

    def test_strict_threshold_forces_8bit(self):
        assert choose_weight_bits("ant", "opt-1.3b", "generative", threshold=0.0) == 8

    def test_loose_threshold_allows_4bit(self):
        assert choose_weight_bits("ant", "llama-2-13b", "generative", threshold=1e9) == 4

    def test_unknown_accel(self):
        with pytest.raises(KeyError):
            choose_weight_bits("gpu", "opt-1.3b", "generative")


@pytest.fixture(autouse=True)
def _fresh_engine_singleton():
    """main() reconfigures the global engine; reset afterwards (closes
    any worker pool, drops memos) so other tests fall back to the
    env-default (session tmp) cache."""
    yield
    from repro import pipeline

    pipeline.reset()


class TestRunnerCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table06" in out and "fig07" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 1

    def test_runs_experiment(self, capsys):
        assert main(["table10"]) == 0
        assert "Table X" in capsys.readouterr().out

    def test_unknown_experiment_lists_known(self):
        with pytest.raises(KeyError, match="unknown experiment 'table99'"):
            main(["table99"])

    def test_json_output(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["table10", "--json", str(out_dir), "--cache-dir", str(tmp_path / "c")]) == 0
        payload = json.loads((out_dir / "table10.json").read_text())
        assert payload["experiment"] == "table10"
        assert payload["columns"][0] == "design"
        assert payload["rows"]
        meta = json.loads((out_dir / "_run_meta.json").read_text())
        assert meta["experiments"] == ["table10"]
        assert meta["wall_seconds"] > 0
        assert {"hits", "misses", "hit_rate", "computed"} <= set(meta["cache"])

    def test_no_cache_flag(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["table10", "--no-cache", "--cache-dir", str(cache)]) == 0
        assert not cache.exists() or list(cache.rglob("*.json")) == []

    def test_jobs_flag_accepted(self, tmp_path, capsys):
        assert main(["fig01", "--quick", "--jobs", "2", "--cache-dir", str(tmp_path)]) == 0
        assert "Fig. 1" in capsys.readouterr().out

    def test_dse_subcommand_delegates(self, capsys):
        assert main(["dse", "--list-presets"]) == 0
        assert "paper-pareto" in capsys.readouterr().out

    def test_dse_subcommand_after_flags(self, capsys):
        """Flag-first ordering must still reach the dse surface."""
        assert main(["--no-cache", "dse", "--list-presets"]) == 0
        assert "paper-pareto" in capsys.readouterr().out

    def test_dse_as_option_value_is_not_the_subcommand(
        self, tmp_path, capsys, monkeypatch
    ):
        """A literal `--json dse` names an output dir, not the subcommand."""
        monkeypatch.chdir(tmp_path)
        assert (
            main(["table10", "--json", "dse", "--cache-dir", str(tmp_path / "c")])
            == 0
        )
        assert (tmp_path / "dse" / "table10.json").exists()


class TestAblations:
    def test_group_size_tradeoff(self):
        r = run_experiment("ablation_group_size", quick=True)
        rows = {row[1]: row for row in r.rows}
        # Smaller groups: better (or equal) PPL, more metadata bits.
        assert rows[64][2] <= rows[128][2] + 0.05
        assert rows[64][3] > rows[128][3]

    def test_encoding_booth_fixed_vs_naive_tail(self):
        r = run_experiment("ablation_encoding", quick=True)
        for row in r.rows:
            bits, booth_terms, naive_mean, naive_p99, _ = row
            assert booth_terms == (bits + 1) // 2
            # Naive has a data-dependent tail reaching past Booth's
            # fixed schedule.
            assert naive_p99 > booth_terms
