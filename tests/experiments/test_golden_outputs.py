"""Regression: the DSE-ported experiments must reproduce their
pre-port output row for row.

The golden files under ``tests/experiments/golden/`` were generated
by the pre-port implementations of fig07/fig08/table10 (direct
``simulate()`` calls); the ported versions are thin views over
:mod:`repro.dse.sweep` and must produce byte-identical tables, both
on a cold cache (records computed) and on a warm one (records
replayed through the JSON store).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import run_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = [("fig07", True), ("fig08", True), ("table10", False)]


def _golden(name: str) -> dict:
    d = json.loads((GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8"))
    d.pop("_quick")
    return d


@pytest.mark.parametrize("name,quick", CASES)
def test_ported_experiment_matches_seed_output(name, quick):
    golden = _golden(name)
    got = run_experiment(name, quick=quick).to_dict()
    assert got == golden, f"{name} no longer matches its pre-port output"


def test_warm_rerun_still_matches():
    """Second run replays cached DSE records — still byte-identical."""
    for name, quick in CASES:
        golden = _golden(name)
        got = run_experiment(name, quick=quick).to_dict()
        assert got == golden, f"{name} warm rerun diverged from seed output"
        # The JSON wire format must also be stable (exact float repr).
        assert json.dumps(got, sort_keys=True) == json.dumps(
            golden, sort_keys=True
        )
