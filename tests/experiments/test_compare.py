"""Tests for the paper-reference data and the comparison engine."""

import pytest

from repro.experiments import paper_reference as ref
from repro.experiments.common import ExperimentResult
from repro.experiments.compare import (
    ComparisonReport,
    compare_table06,
    ordering_holds,
)


class TestReferenceData:
    def test_table_vi_consistent_width(self):
        for dtype, vals in ref.TABLE_VI_WIKITEXT.items():
            assert len(vals) == 6, dtype

    def test_anchor_lookup(self):
        assert ref.fp16_anchor("llama-2-7b") == 5.47
        assert ref.fp16_anchor("llama-2-7b", "c4") == 6.97

    def test_anchors_match_zoo(self):
        """The model zoo's anchors must be the paper's Table VI row."""
        from repro.models.zoo import MODEL_ZOO

        for model, cfg in MODEL_ZOO.items():
            assert cfg.fp16_ppl["wikitext"] == ref.fp16_anchor(model, "wikitext")
            assert cfg.fp16_ppl["c4"] == ref.fp16_anchor(model, "c4")

    def test_paper_bitmod_always_best_at_mean(self):
        m = ref.TABLE_VI_MEAN_DPPL
        assert m["bitmod_fp4"] == min(
            m[d] for d in ("ant4", "olive4", "mx_fp4", "int4_asym", "bitmod_fp4")
        )
        assert m["bitmod_fp3"] == min(
            m[d] for d in ("ant3", "olive3", "mx_fp3", "int3_asym", "bitmod_fp3")
        )

    def test_table_x_matches_energy_model(self):
        from repro.hw.energy import bitmod_pe_tile_cost, fp16_pe_tile_cost

        assert ref.TABLE_X["fp16"][1] == fp16_pe_tile_cost().total_area
        assert ref.TABLE_X["bitmod"][1] == bitmod_pe_tile_cost().total_area


class TestOrderingChecks:
    def test_holds_when_same_direction(self):
        o = ordering_holds("x < y", (1.0, 2.0), (0.5, 0.7))
        assert o.holds

    def test_fails_when_flipped(self):
        o = ordering_holds("x < y", (1.0, 2.0), (0.9, 0.5))
        assert not o.holds

    def test_report_rendering(self):
        r = ComparisonReport(experiment="t")
        r.rows.append(["q", 1.0, 1.1])
        r.orderings.append(ordering_holds("a < b", (1, 2), (1, 2)))
        text = str(r)
        assert "Paper vs measured" in text
        assert "1/1 paper orderings hold" in text


class TestCompareTable06:
    def test_quick_comparison_orderings(self):
        report = compare_table06(quick=True)
        # The headline claims must survive the reproduction.
        assert report.orderings_held >= len(report.orderings) - 1
        labels = {o.claim for o in report.orderings}
        assert "BitMoD-4b beats INT4-Asym" in labels

    def test_accepts_precomputed_result(self):
        fake = ExperimentResult("table06", "t", ["dtype", "mean_dppl"])
        fake.add_row("bitmod_fp4", 0.4)
        fake.add_row("int4_asym", 0.6)
        report = compare_table06(fake)
        assert any(o.claim == "BitMoD-4b beats INT4-Asym" for o in report.orderings)
