"""Tests for the experiment harness (quick modes + key qualitative
claims of each reproduced table/figure)."""

import pytest

from repro.experiments.common import ExperimentResult, format_table
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestInfrastructure:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig01", "fig02", "fig03", "fig07", "fig08", "fig09", "fig10",
            "table01", "table02", "table05", "table06", "table07",
            "table08", "table09", "table10", "table11", "table12",
        }
        assert expected <= set(EXPERIMENTS)

    def test_extension_ablations_registered(self):
        assert "ablation_group_size" in EXPERIMENTS
        assert "ablation_encoding" in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_format_table_renders(self):
        r = ExperimentResult("x", "Title", ["a", "b"])
        r.add_row("r1", 1.2345)
        text = str(r)
        assert "Title" in text and "1.23" in text

    def test_cell_lookup(self):
        r = ExperimentResult("x", "T", ["name", "v"])
        r.add_row("k", 7.0)
        assert r.cell("k", "v") == 7.0
        with pytest.raises(KeyError):
            r.cell("missing", "v")


class TestCheapExperiments:
    def test_fig01_weights_dominate(self):
        r = run_experiment("fig01", quick=True)
        for row in r.rows:
            assert row[r.columns.index("ratio")] > 1.0

    def test_fig02_group_smallest(self):
        r = run_experiment("fig02", quick=True)
        by_model = {}
        for row in r.rows:
            by_model.setdefault(row[0], {})[row[1]] = row[2]
        for stats in by_model.values():
            assert stats["group"] < stats["channel"] < stats["tensor"]

    def test_table10_matches_published(self):
        r = run_experiment("table10")
        assert r.cell("fp16", "total_area") == pytest.approx(95498.0)
        assert r.cell("bitmod", "total_area") == pytest.approx(99509.0)
        assert r.cell("bitmod", "area_per_pe") < r.cell("fp16", "area_per_pe")

    def test_fig10_dual_issue_largest(self):
        r = run_experiment("fig10")
        areas = {row[0]: row[1] for row in r.rows}
        assert areas["fp16-int8/dual-int4"] > areas["fp16-fp16"]
        assert areas["bitmod (bit-serial)"] < areas["fp16-fp16"]


class TestHardwareExperiments:
    def test_fig07_bitmod_wins(self):
        r = run_experiment("fig07", quick=True)
        geo = {(row[0], row[1]): row[-1] for row in r.rows}
        for task in ("discriminative", "generative"):
            assert geo[("bitmod-lossy", task)] > geo[("ant", task)]
            assert geo[("bitmod-lossy", task)] > geo[("olive", task)]
            assert geo[("bitmod-lossless", task)] > 1.0

    def test_fig08_lossy_lowest_generative_energy(self):
        r = run_experiment("fig08", quick=True)
        idx = r.columns.index("total_norm")
        for model in {row[0] for row in r.rows}:
            rows = {
                row[2]: row[idx]
                for row in r.rows
                if row[0] == model and row[1] == "generative"
            }
            assert rows["bitmod-lossy"] < rows["ant"]
            assert rows["bitmod-lossy"] < rows["fp16"]
            assert rows["fp16"] == pytest.approx(1.0)

    def test_fig09_bitmod_on_pareto(self):
        r = run_experiment("fig09", quick=True)
        points = {}
        for row in r.rows:
            points.setdefault(row[1], []).append((row[4], row[3]))  # (edp, ppl)
        # No rival point should dominate every BitMoD point.
        for edp_b, ppl_b in points["bitmod"]:
            dominated = False
            for rival in ("ant", "olive"):
                for edp_r, ppl_r in points.get(rival, []):
                    if edp_r <= edp_b and ppl_r <= ppl_b and (
                        edp_r < edp_b or ppl_r < ppl_b
                    ):
                        dominated = True
            # At least the lowest-EDP bitmod point must be undominated.
        best_bitmod = min(points["bitmod"])
        for rival in ("ant", "olive"):
            for edp_r, ppl_r in points.get(rival, []):
                assert not (edp_r <= best_bitmod[0] and ppl_r < best_bitmod[1])


class TestAccuracyExperiments:
    """Slower: these instantiate models and run forward passes."""

    def test_table06_bitmod_beats_int_asym(self):
        r = run_experiment("table06", quick=True)
        mean = {row[0]: row[-1] for row in r.rows}
        assert mean["bitmod_fp4"] < mean["int4_asym"]
        assert mean["bitmod_fp3"] < mean["int3_asym"]
        assert mean["bitmod_fp3"] < mean["mx_fp3"]
        assert mean["bitmod_fp3"] < mean["ant3"]

    def test_table08_crossover(self):
        r = run_experiment("table08", quick=True)
        col = r.columns[1]
        # The strong 3-bit effect: extra asymmetry beats extra
        # resolution decisively (paper: 6.61 vs 7.18 on Llama-2-7B).
        assert r.cell("fp3_ea", col) < r.cell("fp3_er", col) - 0.1
        # At 4-bit the paper has ER narrowly ahead of EA (5.74 vs
        # 5.81); on the synthetic substrate the pair is a near-tie
        # with EA sometimes ahead (documented in EXPERIMENTS.md) —
        # assert the near-tie, and that both beat basic FP4.
        assert abs(r.cell("fp4_er", col) - r.cell("fp4_ea", col)) < 0.1
        assert r.cell("fp4_er", col) < r.cell("fp4", col)
        assert r.cell("fp4_ea", col) < r.cell("fp4", col)
        # BitMoD (adaptive over ER and EA) never loses to either.
        assert r.cell("bitmod_fp4", col) <= min(
            r.cell("fp4_er", col), r.cell("fp4_ea", col)
        ) + 0.02
        assert r.cell("bitmod_fp3", col) <= r.cell("fp3_ea", col) + 0.02

    def test_table05_int8_scales_lossless(self):
        r = run_experiment("table05", quick=True)
        col = r.columns[1]
        assert r.cell("int8", col) == pytest.approx(r.cell("fp16", col), rel=0.01)
        assert r.cell("int2", col) > r.cell("int8", col)
