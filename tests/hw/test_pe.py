"""Tests for the bit-accurate BitMoD PE (Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.floating import FP4_VALUES
from repro.hw.bitserial import booth_encode, fixed_point_decompose
from repro.hw.pe import BitMoDPE, PEConfig, _rshift_rne


class TestRoundToNearestEven:
    def test_exact_shift(self):
        assert _rshift_rne(8, 2) == 2

    def test_round_up(self):
        assert _rshift_rne(7, 2) == 2  # 1.75 -> 2

    def test_ties_to_even(self):
        assert _rshift_rne(6, 2) == 2  # 1.5 -> 2 (even)
        assert _rshift_rne(10, 2) == 2  # 2.5 -> 2 (even)

    def test_negative_values(self):
        assert _rshift_rne(-7, 2) == -2

    def test_left_shift_passthrough(self):
        assert _rshift_rne(3, -2) == 12


def _reference(codes, acts):
    return float(np.dot(codes, np.asarray(acts, dtype=np.float64)))


class TestGroupDot:
    @pytest.mark.parametrize("bits", [5, 6, 8])
    def test_int_weights_match_reference(self, bits, rng):
        pe = BitMoDPE()
        codes = rng.integers(-(2 ** (bits - 1) - 1), 2 ** (bits - 1), size=64)
        acts = rng.standard_normal(64).astype(np.float16)
        terms = [booth_encode(int(c), bits) for c in codes]
        res = pe.group_dot(terms, acts)
        ref = _reference(codes, acts)
        assert res.value == pytest.approx(ref, rel=1e-3, abs=1e-3)

    def test_fp4_weights_match_reference(self, rng):
        pe = BitMoDPE()
        grid = np.concatenate([FP4_VALUES, [8.0, -8.0, 5.0, -5.0]])
        codes = rng.choice(grid, size=128)
        acts = rng.standard_normal(128).astype(np.float16)
        terms = [fixed_point_decompose(float(c)) for c in codes]
        res = pe.group_dot(terms, acts)
        assert res.value == pytest.approx(_reference(codes, acts), rel=1e-3, abs=1e-3)

    def test_cycle_counts(self, rng):
        """Group of 128: (128/4) * terms cycles — Section IV-B."""
        pe = BitMoDPE()
        acts = rng.standard_normal(128).astype(np.float16)
        fp_terms = [fixed_point_decompose(1.0)] * 128
        assert pe.group_dot(fp_terms, acts).cycles == 64
        int8_terms = [booth_encode(3, 8)] * 128
        assert pe.group_dot(int8_terms, acts).cycles == 128

    def test_zero_weights_give_zero(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(8).astype(np.float16)
        terms = [fixed_point_decompose(0.0)] * 8
        assert pe.group_dot(terms, acts).value == 0.0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_randomized_int6_accuracy(self, seed):
        rng = np.random.default_rng(seed)
        pe = BitMoDPE()
        codes = rng.integers(-31, 32, size=16)
        acts = (rng.standard_normal(16) * 4).astype(np.float16)
        terms = [booth_encode(int(c), 6) for c in codes]
        res = pe.group_dot(terms, acts)
        ref = _reference(codes, acts)
        assert res.value == pytest.approx(ref, rel=1e-2, abs=1e-2)

    def test_group_not_multiple_of_lanes_rejected(self, rng):
        pe = BitMoDPE()
        with pytest.raises(ValueError):
            pe.group_dot([booth_encode(1, 6)] * 6, np.ones(6))

    def test_wrong_lane_count_rejected(self):
        pe = BitMoDPE()
        with pytest.raises(ValueError):
            pe.dot4([booth_encode(1, 6)[0]] * 3, np.ones(3))


class TestBatchedDatapath:
    """group_dot_batch / dequantize_batch vs the scalar methods."""

    @staticmethod
    def _term_arrays(term_lists):
        """Stack scalar decompositions into (1, g, n_terms) arrays."""
        sign = np.array([[t.sign for t in ts] for ts in term_lists])[None]
        exp = np.array([[t.exp for t in ts] for ts in term_lists])[None]
        man = np.array([[t.man for t in ts] for ts in term_lists])[None]
        bsig = np.array([[t.bsig for t in ts] for ts in term_lists])[None]
        return sign, exp, man, bsig

    @pytest.mark.parametrize("bits", [5, 6, 8])
    def test_group_dot_batch_bit_identical(self, bits, rng):
        pe = BitMoDPE()
        codes = rng.integers(-(2 ** (bits - 1) - 1), 2 ** (bits - 1), size=64)
        acts = rng.standard_normal(64).astype(np.float16)
        terms = [booth_encode(int(c), bits) for c in codes]
        scalar = pe.group_dot(terms, acts)
        batch = pe.group_dot_batch(*self._term_arrays(terms), acts[None, :])
        assert int(batch.mantissa[0, 0]) == scalar.mantissa
        assert int(batch.exponent[0, 0]) == scalar.exponent
        assert batch.cycles == scalar.cycles

    def test_group_dot_batch_fp_weights(self, rng):
        pe = BitMoDPE()
        grid = np.concatenate([FP4_VALUES, [8.0, -8.0]])
        codes = rng.choice(grid, size=32)
        acts = rng.standard_normal(32).astype(np.float16)
        terms = [fixed_point_decompose(float(c)) for c in codes]
        scalar = pe.group_dot(terms, acts)
        batch = pe.group_dot_batch(*self._term_arrays(terms), acts[None, :])
        assert int(batch.mantissa[0, 0]) == scalar.mantissa
        assert int(batch.exponent[0, 0]) == scalar.exponent

    def test_dequantize_batch_bit_identical(self, rng):
        from repro.hw.pe import BatchPEResult

        pe = BitMoDPE()
        acts = rng.standard_normal(32).astype(np.float16)
        terms = [booth_encode(int(c), 6) for c in rng.integers(-31, 32, size=32)]
        partial = pe.group_dot(terms, acts)
        sf_codes = np.array([0, 1, 17, 128, 255])
        batch_partial = BatchPEResult(
            mantissa=np.full(sf_codes.shape, partial.mantissa, dtype=np.int64),
            exponent=np.full(sf_codes.shape, partial.exponent, dtype=np.int64),
            cycles=partial.cycles,
        )
        deq = pe.dequantize_batch(batch_partial, sf_codes)
        assert deq.cycles == pe.config.sf_bits
        for i, sf in enumerate(sf_codes):
            ref = pe.dequantize(partial, int(sf))
            assert int(deq.mantissa[i]) == ref.mantissa
            assert int(deq.exponent[i]) == ref.exponent

    def test_group_not_multiple_of_lanes_rejected(self, rng):
        pe = BitMoDPE()
        terms = [booth_encode(1, 6)] * 6
        with pytest.raises(ValueError):
            pe.group_dot_batch(*self._term_arrays(terms), np.ones((1, 6)))

    def test_sf_out_of_range_rejected(self, rng):
        from repro.hw.pe import BatchPEResult

        pe = BitMoDPE()
        partial = BatchPEResult(
            mantissa=np.ones((1, 1), dtype=np.int64),
            exponent=np.zeros((1, 1), dtype=np.int64),
            cycles=1,
        )
        with pytest.raises(ValueError):
            pe.dequantize_batch(partial, np.array([256]))


class TestDequantize:
    def test_matches_integer_multiply(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(32).astype(np.float16)
        codes = rng.integers(-31, 32, size=32)
        terms = [booth_encode(int(c), 6) for c in codes]
        partial = pe.group_dot(terms, acts)
        for sf in (1, 17, 128, 255):
            dq = pe.dequantize(partial, sf)
            assert dq.value == pytest.approx(partial.value * sf, rel=1e-3)

    def test_takes_sf_bits_cycles(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(8).astype(np.float16)
        terms = [booth_encode(3, 6)] * 8
        partial = pe.group_dot(terms, acts)
        assert pe.dequantize(partial, 200).cycles == 8

    def test_zero_sf(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(8).astype(np.float16)
        partial = pe.group_dot([booth_encode(5, 6)] * 8, acts)
        assert pe.dequantize(partial, 0).value == 0.0

    def test_sf_out_of_range(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(8).astype(np.float16)
        partial = pe.group_dot([booth_encode(1, 6)] * 8, acts)
        with pytest.raises(ValueError):
            pe.dequantize(partial, 256)

    def test_accumulate_batch_exact_fallback_matches_scalar(self):
        """Alignment shifts past 62 bits must fall back to exact
        Python-int arithmetic and still match ``_accumulate``."""
        pe = BitMoDPE(PEConfig(acc_mantissa_bits=58))
        acc_man = np.array([[(1 << 57) + 12345, 3]], dtype=np.int64)
        acc_exp = np.array([[20, 0]], dtype=np.int64)
        man = np.array([[-7, 5]], dtype=np.int64)
        exp = np.array([[-20, -1]], dtype=np.int64)
        got_man, got_exp = pe._accumulate_batch(acc_man, acc_exp, man, exp)
        assert got_man.dtype == np.int64
        for i in range(2):
            ref = pe._accumulate(
                (int(acc_man[0, i]), int(acc_exp[0, i])),
                int(man[0, i]),
                int(exp[0, i]),
            )
            assert (int(got_man[0, i]), int(got_exp[0, i])) == ref

    def test_narrow_accumulator_still_close(self, rng):
        """A 16-bit accumulator loses precision but stays in the
        ballpark — the width trade-off Fig. 5 resolves at 24 bits."""
        pe = BitMoDPE(PEConfig(acc_mantissa_bits=16))
        codes = rng.integers(-31, 32, size=64)
        acts = rng.standard_normal(64).astype(np.float16)
        terms = [booth_encode(int(c), 6) for c in codes]
        res = pe.group_dot(terms, acts)
        ref = _reference(codes, acts)
        assert res.value == pytest.approx(ref, rel=0.05, abs=0.5)
