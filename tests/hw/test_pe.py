"""Tests for the bit-accurate BitMoD PE (Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.floating import FP4_VALUES
from repro.hw.bitserial import booth_encode, fixed_point_decompose
from repro.hw.pe import BitMoDPE, PEConfig, _rshift_rne


class TestRoundToNearestEven:
    def test_exact_shift(self):
        assert _rshift_rne(8, 2) == 2

    def test_round_up(self):
        assert _rshift_rne(7, 2) == 2  # 1.75 -> 2

    def test_ties_to_even(self):
        assert _rshift_rne(6, 2) == 2  # 1.5 -> 2 (even)
        assert _rshift_rne(10, 2) == 2  # 2.5 -> 2 (even)

    def test_negative_values(self):
        assert _rshift_rne(-7, 2) == -2

    def test_left_shift_passthrough(self):
        assert _rshift_rne(3, -2) == 12


def _reference(codes, acts):
    return float(np.dot(codes, np.asarray(acts, dtype=np.float64)))


class TestGroupDot:
    @pytest.mark.parametrize("bits", [5, 6, 8])
    def test_int_weights_match_reference(self, bits, rng):
        pe = BitMoDPE()
        codes = rng.integers(-(2 ** (bits - 1) - 1), 2 ** (bits - 1), size=64)
        acts = rng.standard_normal(64).astype(np.float16)
        terms = [booth_encode(int(c), bits) for c in codes]
        res = pe.group_dot(terms, acts)
        ref = _reference(codes, acts)
        assert res.value == pytest.approx(ref, rel=1e-3, abs=1e-3)

    def test_fp4_weights_match_reference(self, rng):
        pe = BitMoDPE()
        grid = np.concatenate([FP4_VALUES, [8.0, -8.0, 5.0, -5.0]])
        codes = rng.choice(grid, size=128)
        acts = rng.standard_normal(128).astype(np.float16)
        terms = [fixed_point_decompose(float(c)) for c in codes]
        res = pe.group_dot(terms, acts)
        assert res.value == pytest.approx(_reference(codes, acts), rel=1e-3, abs=1e-3)

    def test_cycle_counts(self, rng):
        """Group of 128: (128/4) * terms cycles — Section IV-B."""
        pe = BitMoDPE()
        acts = rng.standard_normal(128).astype(np.float16)
        fp_terms = [fixed_point_decompose(1.0)] * 128
        assert pe.group_dot(fp_terms, acts).cycles == 64
        int8_terms = [booth_encode(3, 8)] * 128
        assert pe.group_dot(int8_terms, acts).cycles == 128

    def test_zero_weights_give_zero(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(8).astype(np.float16)
        terms = [fixed_point_decompose(0.0)] * 8
        assert pe.group_dot(terms, acts).value == 0.0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_randomized_int6_accuracy(self, seed):
        rng = np.random.default_rng(seed)
        pe = BitMoDPE()
        codes = rng.integers(-31, 32, size=16)
        acts = (rng.standard_normal(16) * 4).astype(np.float16)
        terms = [booth_encode(int(c), 6) for c in codes]
        res = pe.group_dot(terms, acts)
        ref = _reference(codes, acts)
        assert res.value == pytest.approx(ref, rel=1e-2, abs=1e-2)

    def test_group_not_multiple_of_lanes_rejected(self, rng):
        pe = BitMoDPE()
        with pytest.raises(ValueError):
            pe.group_dot([booth_encode(1, 6)] * 6, np.ones(6))

    def test_wrong_lane_count_rejected(self):
        pe = BitMoDPE()
        with pytest.raises(ValueError):
            pe.dot4([booth_encode(1, 6)[0]] * 3, np.ones(3))


class TestDequantize:
    def test_matches_integer_multiply(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(32).astype(np.float16)
        codes = rng.integers(-31, 32, size=32)
        terms = [booth_encode(int(c), 6) for c in codes]
        partial = pe.group_dot(terms, acts)
        for sf in (1, 17, 128, 255):
            dq = pe.dequantize(partial, sf)
            assert dq.value == pytest.approx(partial.value * sf, rel=1e-3)

    def test_takes_sf_bits_cycles(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(8).astype(np.float16)
        terms = [booth_encode(3, 6)] * 8
        partial = pe.group_dot(terms, acts)
        assert pe.dequantize(partial, 200).cycles == 8

    def test_zero_sf(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(8).astype(np.float16)
        partial = pe.group_dot([booth_encode(5, 6)] * 8, acts)
        assert pe.dequantize(partial, 0).value == 0.0

    def test_sf_out_of_range(self, rng):
        pe = BitMoDPE()
        acts = rng.standard_normal(8).astype(np.float16)
        partial = pe.group_dot([booth_encode(1, 6)] * 8, acts)
        with pytest.raises(ValueError):
            pe.dequantize(partial, 256)

    def test_narrow_accumulator_still_close(self, rng):
        """A 16-bit accumulator loses precision but stays in the
        ballpark — the width trade-off Fig. 5 resolves at 24 bits."""
        pe = BitMoDPE(PEConfig(acc_mantissa_bits=16))
        codes = rng.integers(-31, 32, size=64)
        acts = rng.standard_normal(64).astype(np.float16)
        terms = [booth_encode(int(c), 6) for c in codes]
        res = pe.group_dot(terms, acts)
        ref = _reference(codes, acts)
        assert res.value == pytest.approx(ref, rel=0.05, abs=0.5)
