"""ArchConfig invariant validation (clear errors over silent nonsense)."""

import pytest

from repro.hw.arch import BASELINE_FP16_ARCH, BITMOD_ARCH, ArchConfig


def _cfg(**kw):
    defaults = dict(name="t", pe_rows=32, pe_cols=32)
    defaults.update(kw)
    return ArchConfig(**defaults)


class TestValidation:
    def test_paper_archs_valid(self):
        assert BITMOD_ARCH.n_pes % BITMOD_ARCH.pes_per_tile == 0
        assert BASELINE_FP16_ARCH.n_pes % BASELINE_FP16_ARCH.pes_per_tile == 0

    def test_grid_not_tile_integral(self):
        with pytest.raises(ValueError, match="divisible by pes_per_tile"):
            _cfg(pe_rows=33, pe_cols=32, pes_per_tile=64)

    def test_pes_per_tile_larger_than_array(self):
        with pytest.raises(ValueError, match="divisible by pes_per_tile"):
            _cfg(pe_rows=4, pe_cols=4, pes_per_tile=64)

    @pytest.mark.parametrize("freq", [0.0, -1.0])
    def test_non_positive_frequency(self, freq):
        with pytest.raises(ValueError, match="frequency_ghz must be positive"):
            _cfg(frequency_ghz=freq)

    @pytest.mark.parametrize("bw", [0.0, -25.6])
    def test_non_positive_bandwidth(self, bw):
        with pytest.raises(ValueError, match="dram_gbps must be positive"):
            _cfg(dram_gbps=bw)

    @pytest.mark.parametrize("field", ["weight_buffer_kb", "input_buffer_kb"])
    def test_zero_sized_buffers(self, field):
        with pytest.raises(ValueError, match=f"{field} must be positive"):
            _cfg(**{field: 0})

    @pytest.mark.parametrize(
        "field", ["pe_rows", "pe_cols", "pe_lanes", "pes_per_tile"]
    )
    def test_non_positive_grid_fields(self, field):
        with pytest.raises(ValueError, match=f"{field} must be a positive"):
            _cfg(**{field: 0})

    def test_error_names_the_config(self):
        with pytest.raises(ValueError, match="'broken'"):
            _cfg(name="broken", frequency_ghz=0.0)

    def test_valid_config_untouched(self):
        cfg = _cfg(pe_rows=36, pe_cols=32, pes_per_tile=64)
        assert cfg.n_pes == 1152
