"""Tests for the end-to-end accelerator simulator."""

import pytest

from repro.hw.baselines import make_accelerator
from repro.hw.simulator import simulate
from repro.models.zoo import get_model_config


@pytest.fixture(scope="module")
def accels():
    return {n: make_accelerator(n) for n in ("fp16", "ant", "olive", "bitmod")}


@pytest.fixture(scope="module")
def llama():
    return get_model_config("llama-2-7b")


class TestRegimes:
    def test_generative_memory_bound_fp16(self, accels, llama):
        """FP16 generative latency ~ weight bytes / DRAM bandwidth."""
        r = simulate(llama, accels["fp16"], "generative", 16)
        weight_gb = llama.streamed_weight_elements * 2 / 1e9
        floor_ms = weight_gb * 257 / 25.6 * 1e3
        assert r.time_ms == pytest.approx(floor_ms, rel=0.25)

    def test_discriminative_compute_bound(self, accels, llama):
        """Halving precision must NOT halve discriminative latency."""
        r16 = simulate(llama, accels["fp16"], "discriminative", 16)
        # Hypothetical 8-bit on the same fp16 array: memory halves but
        # compute stays, so cycles barely move.
        r8 = simulate(llama, accels["fp16"], "discriminative", 8)
        assert r8.cycles > 0.9 * r16.cycles

    def test_generative_scales_with_bits(self, accels, llama):
        bm = accels["bitmod"]
        c3 = simulate(llama, bm, "generative", 3).cycles
        c6 = simulate(llama, bm, "generative", 6).cycles
        assert 1.5 < c6 / c3 < 2.2  # near the 6/3 traffic ratio

    def test_bad_task(self, accels, llama):
        with pytest.raises(ValueError):
            simulate(llama, accels["fp16"], "training", 16)


class TestPaperShapes:
    def test_lossless_speedups(self, accels, llama):
        """Paper: lossless BitMoD ~1.99x disc / ~2.41x gen vs FP16."""
        for task, lo, hi in (("discriminative", 1.4, 2.6), ("generative", 1.8, 3.2)):
            base = simulate(llama, accels["fp16"], task, 16)
            r = simulate(llama, accels["bitmod"], task, 6)
            assert lo < base.cycles / r.cycles < hi

    def test_lossy_beats_ant_and_olive(self, accels, llama):
        for task, bm_bits in (("discriminative", 4), ("generative", 3)):
            bm = simulate(llama, accels["bitmod"], task, bm_bits)
            for rival in ("ant", "olive"):
                rv = simulate(llama, accels[rival], task, 4)
                assert bm.cycles < rv.cycles

    def test_energy_efficiency_lossless(self, accels, llama):
        """Paper: ~2.31x better energy vs FP16 baseline on average."""
        ratios = []
        for task in ("discriminative", "generative"):
            base = simulate(llama, accels["fp16"], task, 16)
            r = simulate(llama, accels["bitmod"], task, 6)
            ratios.append(base.energy.total_uj / r.energy.total_uj)
        avg = sum(ratios) / 2
        assert 1.8 < avg < 3.0

    def test_dram_dominates_generative_energy(self, accels, llama):
        r = simulate(llama, accels["fp16"], "generative", 16)
        assert r.energy.dram_uj > r.energy.onchip_uj

    def test_energy_components_positive(self, accels, llama):
        r = simulate(llama, accels["bitmod"], "discriminative", 4)
        assert r.energy.dram_uj > 0
        assert r.energy.buffer_uj > 0
        assert r.energy.core_uj > 0

    def test_edp(self, accels, llama):
        r = simulate(llama, accels["bitmod"], "generative", 3)
        assert r.edp == pytest.approx(r.energy.total_uj * r.time_ms)

    def test_bigger_model_slower(self, accels):
        small = simulate(get_model_config("opt-1.3b"), accels["fp16"], "generative", 16)
        big = simulate(get_model_config("llama-2-13b"), accels["fp16"], "generative", 16)
        assert big.cycles > 4 * small.cycles
