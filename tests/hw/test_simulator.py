"""Tests for the end-to-end accelerator simulator."""

import pytest

from repro.hw.baselines import make_accelerator
from repro.hw.simulator import simulate
from repro.models.zoo import get_model_config


@pytest.fixture(scope="module")
def accels():
    return {n: make_accelerator(n) for n in ("fp16", "ant", "olive", "bitmod")}


@pytest.fixture(scope="module")
def llama():
    return get_model_config("llama-2-7b")


class TestRegimes:
    def test_generative_memory_bound_fp16(self, accels, llama):
        """FP16 generative latency ~ weight bytes / DRAM bandwidth."""
        r = simulate(llama, accels["fp16"], "generative", 16)
        weight_gb = llama.streamed_weight_elements * 2 / 1e9
        floor_ms = weight_gb * 257 / 25.6 * 1e3
        assert r.time_ms == pytest.approx(floor_ms, rel=0.25)

    def test_discriminative_compute_bound(self, accels, llama):
        """Halving precision must NOT halve discriminative latency."""
        r16 = simulate(llama, accels["fp16"], "discriminative", 16)
        # Hypothetical 8-bit on the same fp16 array: memory halves but
        # compute stays, so cycles barely move.
        r8 = simulate(llama, accels["fp16"], "discriminative", 8)
        assert r8.cycles > 0.9 * r16.cycles

    def test_generative_scales_with_bits(self, accels, llama):
        bm = accels["bitmod"]
        c3 = simulate(llama, bm, "generative", 3).cycles
        c6 = simulate(llama, bm, "generative", 6).cycles
        assert 1.5 < c6 / c3 < 2.2  # near the 6/3 traffic ratio

    def test_bad_task(self, accels, llama):
        with pytest.raises(ValueError):
            simulate(llama, accels["fp16"], "training", 16)


class TestPaperShapes:
    def test_lossless_speedups(self, accels, llama):
        """Paper: lossless BitMoD ~1.99x disc / ~2.41x gen vs FP16."""
        for task, lo, hi in (("discriminative", 1.4, 2.6), ("generative", 1.8, 3.2)):
            base = simulate(llama, accels["fp16"], task, 16)
            r = simulate(llama, accels["bitmod"], task, 6)
            assert lo < base.cycles / r.cycles < hi

    def test_lossy_beats_ant_and_olive(self, accels, llama):
        for task, bm_bits in (("discriminative", 4), ("generative", 3)):
            bm = simulate(llama, accels["bitmod"], task, bm_bits)
            for rival in ("ant", "olive"):
                rv = simulate(llama, accels[rival], task, 4)
                assert bm.cycles < rv.cycles

    def test_energy_efficiency_lossless(self, accels, llama):
        """Paper: ~2.31x better energy vs FP16 baseline on average."""
        ratios = []
        for task in ("discriminative", "generative"):
            base = simulate(llama, accels["fp16"], task, 16)
            r = simulate(llama, accels["bitmod"], task, 6)
            ratios.append(base.energy.total_uj / r.energy.total_uj)
        avg = sum(ratios) / 2
        assert 1.8 < avg < 3.0

    def test_dram_dominates_generative_energy(self, accels, llama):
        r = simulate(llama, accels["fp16"], "generative", 16)
        assert r.energy.dram_uj > r.energy.onchip_uj

    def test_energy_components_positive(self, accels, llama):
        r = simulate(llama, accels["bitmod"], "discriminative", 4)
        assert r.energy.dram_uj > 0
        assert r.energy.buffer_uj > 0
        assert r.energy.core_uj > 0

    def test_edp(self, accels, llama):
        r = simulate(llama, accels["bitmod"], "generative", 3)
        assert r.edp == pytest.approx(r.energy.total_uj * r.time_ms)

    def test_bigger_model_slower(self, accels):
        small = simulate(get_model_config("opt-1.3b"), accels["fp16"], "generative", 16)
        big = simulate(get_model_config("llama-2-13b"), accels["fp16"], "generative", 16)
        assert big.cycles > 4 * small.cycles


class TestSimulatePlan:
    """Per-layer precision aggregation (repro.policy bridge)."""

    def _names(self, cfg):
        return [g.name for g in cfg.block_gemms(1)] + ["lm_head"]

    def test_uniform_assignment_reproduces_simulate(self, accels, llama):
        from repro.hw.simulator import simulate_plan

        for task in ("discriminative", "generative"):
            for bits in (3, 4, 6, 8):
                ref = simulate(llama, accels["bitmod"], task, bits)
                uni = simulate_plan(
                    llama,
                    accels["bitmod"],
                    task,
                    {n: float(bits) for n in self._names(llama)},
                )
                assert uni.cycles == ref.cycles
                assert uni.energy == ref.energy
                assert uni.weight_bits == bits

    def test_mixed_assignment_between_extremes(self, accels, llama):
        from repro.hw.simulator import simulate_plan

        bits = {n: 3.0 for n in self._names(llama)}
        bits["down_proj"] = 8.0
        bits["lm_head"] = 8.0
        lo = simulate(llama, accels["bitmod"], "generative", 3)
        hi = simulate(llama, accels["bitmod"], "generative", 8)
        mid = simulate_plan(llama, accels["bitmod"], "generative", bits)
        assert lo.cycles < mid.cycles < hi.cycles
        assert lo.energy.total_uj < mid.energy.total_uj < hi.energy.total_uj
        assert 3.0 < mid.weight_bits < 8.0

    def test_unnamed_gemms_default_to_fp16(self, accels, llama):
        from repro.hw.simulator import simulate_plan

        empty = simulate_plan(llama, accels["bitmod"], "generative", {})
        ref = simulate(llama, accels["bitmod"], "generative", 16)
        assert empty.cycles == ref.cycles
        assert empty.weight_bits == 16.0

    def test_unknown_task_rejected(self, accels, llama):
        from repro.hw.simulator import simulate_plan

        with pytest.raises(ValueError, match="task must be"):
            simulate_plan(llama, accels["bitmod"], "translation", {})


class TestTrafficBitsMap:
    def test_uniform_map_matches_scalar_bits(self, llama):
        from repro.hw.dram import TrafficModel

        names = [g.name for g in llama.block_gemms(1)] + ["lm_head"]
        scalar = TrafficModel(llama, weight_bits=4.0, kv_bits=8.0)
        mapped = TrafficModel(
            llama,
            weight_bits=4.0,
            kv_bits=8.0,
            weight_bits_map=tuple((n, 4.0) for n in names),
        )
        assert scalar.pass_traffic(1, 256) == mapped.pass_traffic(1, 256)

    def test_partial_map_falls_back(self, llama):
        from repro.hw.dram import TrafficModel

        lean = TrafficModel(
            llama,
            weight_bits=16.0,
            kv_bits=8.0,
            weight_bits_map=(("lm_head", 4.0),),
        )
        full = TrafficModel(llama, weight_bits=16.0, kv_bits=8.0)
        saved = full.pass_traffic(1, 256).weight_bytes - lean.pass_traffic(1, 256).weight_bytes
        assert saved == pytest.approx(llama.vocab * llama.hidden * 12.0 / 8.0)
