"""Tests for the unified bit-serial representation (Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.extended import FP3_SPECIAL_VALUES, FP4_SPECIAL_VALUES
from repro.dtypes.floating import FP3_VALUES, FP4_VALUES
from repro.hw.bitserial import (
    TERMS_PER_WEIGHT,
    booth_encode,
    fixed_point_decompose,
    terms_for_dtype,
)


class TestBooth:
    @pytest.mark.parametrize("bits", [4, 5, 6, 8])
    def test_exhaustive_reconstruction(self, bits):
        for v in range(-(2 ** (bits - 1)), 2 ** (bits - 1)):
            terms = booth_encode(v, bits)
            assert sum(t.value for t in terms) == v

    @pytest.mark.parametrize("bits,n", [(8, 4), (6, 3), (5, 3), (4, 2)])
    def test_term_counts_match_paper(self, bits, n):
        assert len(booth_encode(0, bits)) == n

    def test_bsig_spacing_is_two(self):
        terms = booth_encode(77, 8)
        assert [t.bsig for t in terms] == [0, 2, 4, 6]

    def test_digits_within_booth_range(self):
        for v in range(-128, 128):
            for t in booth_encode(v, 8):
                # digit magnitude: man * 2**exp in {0, 1, 2}
                assert t.man * 2**t.exp <= 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            booth_encode(128, 8)

    @given(st.integers(-128, 127))
    @settings(max_examples=100, deadline=None)
    def test_term_fields_are_bits(self, v):
        for t in booth_encode(v, 8):
            assert t.sign in (0, 1)
            assert t.exp in (0, 1)
            assert t.man in (0, 1)


class TestLOD:
    @pytest.mark.parametrize(
        "value", sorted(set(FP4_VALUES) | set(FP3_VALUES)
                        | set(FP3_SPECIAL_VALUES) | set(FP4_SPECIAL_VALUES))
    )
    def test_every_extended_fp_value_decomposes_exactly(self, value):
        terms = fixed_point_decompose(value)
        assert len(terms) == 2  # statically scheduled: always two slots
        assert sum(t.value for t in terms) == value

    def test_at_most_two_active_terms(self):
        for v in FP4_VALUES:
            active = [t for t in fixed_point_decompose(v) if t.man]
            assert len(active) <= 2

    def test_zero_is_two_null_terms(self):
        terms = fixed_point_decompose(0.0)
        assert all(t.man == 0 for t in terms)

    def test_sign_carried(self):
        terms = fixed_point_decompose(-6.0)
        assert all(t.sign == 1 for t in terms if t.man)

    def test_special_value_7_uses_signed_digits(self):
        """Section IV-A: SV 7 decodes as 2^3 - 2^0, still two terms."""
        terms = fixed_point_decompose(7.0)
        assert sum(t.value for t in terms) == 7.0
        assert len(terms) == 2
        signs = sorted(t.sign for t in terms)
        assert signs == [0, 1]  # one positive, one negative term

    def test_truly_three_term_values_rejected(self):
        with pytest.raises(ValueError):
            fixed_point_decompose(5.5)  # 11 = 0b1011: needs 3 terms

    def test_unrepresentable_fraction_rejected(self):
        with pytest.raises(ValueError):
            fixed_point_decompose(0.25)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            fixed_point_decompose(32.0)


class TestTermsForDtype:
    @pytest.mark.parametrize(
        "name,n",
        [
            ("int8_sym", 4), ("int6_sym", 3), ("int6_asym", 3),
            ("int5_asym", 3), ("bitmod_fp4", 2), ("bitmod_fp3", 2),
            ("fp4_er", 2), ("fp3_ea", 2),
        ],
    )
    def test_counts(self, name, n):
        assert terms_for_dtype(name) == n

    def test_throughput_claim(self):
        """Paper: 1.33x (INT6) and 2x (FP4/FP3) vs 1 MAC/cycle FP16."""
        assert 4 / TERMS_PER_WEIGHT["int6"] == pytest.approx(4 / 3)
        assert 4 / TERMS_PER_WEIGHT["fp4"] == 2.0

    def test_unknown(self):
        with pytest.raises(KeyError):
            terms_for_dtype("fp16")
