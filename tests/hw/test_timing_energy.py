"""Tests for the timing, energy, DRAM, and accelerator models."""

import math

import numpy as np
import pytest

from repro.hw.arch import ArchConfig
from repro.hw.baselines import AREA_BUDGET_UM2, make_accelerator
from repro.hw.dram import TrafficModel
from repro.hw.energy import (
    DRAM_ENERGY_PJ_PER_BYTE,
    EnergyBreakdown,
    bit_parallel_pe_cost,
    bitmod_pe_tile_cost,
    fp16_fp16_pe_cost,
    fp16_pe_tile_cost,
    sram_energy_pj_per_byte,
)
from repro.hw.timing import dequant_stalls, gemm_compute_cycles
from repro.models.config import GEMMShape
from repro.models.zoo import get_model_config


class TestTiming:
    def _arch(self, bit_serial=True):
        return ArchConfig(name="t", pe_rows=32, pe_cols=32, bit_serial=bit_serial)

    def test_bit_serial_cycles(self):
        g = GEMMShape("g", m=32, k=128, n=32)
        t = gemm_compute_cycles(g, self._arch(), terms_per_weight=2)
        assert t.compute_cycles == (128 // 4) * 2  # one output tile

    def test_bit_parallel_cycles(self):
        g = GEMMShape("g", m=32, k=128, n=32)
        t = gemm_compute_cycles(g, self._arch(False), macs_per_cycle=1.0)
        assert t.compute_cycles == 128

    def test_terms_scale_cycles(self):
        g = GEMMShape("g", m=64, k=256, n=64)
        c2 = gemm_compute_cycles(g, self._arch(), terms_per_weight=2).compute_cycles
        c4 = gemm_compute_cycles(g, self._arch(), terms_per_weight=4).compute_cycles
        assert c4 == 2 * c2

    def test_tiling_ceil(self):
        g = GEMMShape("g", m=33, k=4, n=32)
        t = gemm_compute_cycles(g, self._arch(), terms_per_weight=2)
        assert t.compute_cycles == 2 * 2  # two M tiles

    def test_count_repeat_multiply(self):
        g1 = GEMMShape("g", m=32, k=128, n=32, count=2, repeat=3)
        g2 = GEMMShape("g", m=32, k=128, n=32)
        a = gemm_compute_cycles(g1, self._arch(), 2).compute_cycles
        b = gemm_compute_cycles(g2, self._arch(), 2).compute_cycles
        assert a == 6 * b

    def test_dequant_never_stalls_paper_config(self):
        """Section IV-B: 8-bit SF, group 128, 4 lanes, >= 2 terms."""
        for terms in (2, 3, 4):
            assert dequant_stalls(128, 4, terms) == 0

    def test_dequant_stalls_tiny_groups(self):
        # A pathological 8-weight group at 2 terms would stall.
        assert dequant_stalls(8, 4, 2) == 4


class TestEnergy:
    def test_table_x_fp16(self):
        c = fp16_pe_tile_cost()
        assert c.total_area == pytest.approx(95498.0)
        assert c.total_power == pytest.approx(36.96)

    def test_table_x_bitmod(self):
        c = bitmod_pe_tile_cost()
        assert c.total_area == pytest.approx(99509.0)
        assert c.total_power == pytest.approx(39.36)

    def test_bitmod_pe_24pct_smaller(self):
        fp16 = fp16_pe_tile_cost()
        bm = bitmod_pe_tile_cost()
        ratio = bm.area_per_pe / fp16.area_per_pe
        assert ratio == pytest.approx(0.78, abs=0.03)  # "24% less area"

    def test_encoder_small_fraction(self):
        bm = bitmod_pe_tile_cost()
        assert bm.encoder_area / bm.total_area == pytest.approx(0.025, abs=0.005)

    def test_sram_energy_monotone(self):
        assert sram_energy_pj_per_byte(512) > sram_energy_pj_per_byte(64)

    def test_sram_invalid(self):
        with pytest.raises(ValueError):
            sram_energy_pj_per_byte(0)

    def test_fig10_shape(self):
        """FP-INT8 < FP-FP < dual-issue; BitMoD smallest-ish."""
        fp_fp = fp16_fp16_pe_cost()["area_um2"]
        fp_i8 = bit_parallel_pe_cost(8)["area_um2"]
        dual = bit_parallel_pe_cost(8, dual_issue=True)["area_um2"]
        bm = bitmod_pe_tile_cost().area_per_pe
        assert fp_i8 < fp_fp < dual
        assert bm < fp_fp

    def test_breakdown_addition(self):
        a = EnergyBreakdown(1.0, 2.0, 3.0)
        b = EnergyBreakdown(0.5, 0.5, 0.5)
        c = a + b
        assert c.total_uj == 7.5 and c.onchip_uj == 6.0


class TestDram:
    def test_weight_traffic_scales_with_bits(self):
        cfg = get_model_config("llama-2-7b")
        t16 = TrafficModel(cfg, 16).pass_traffic(1, 256)
        t4 = TrafficModel(cfg, 4).pass_traffic(1, 256)
        ratio = t16.weight_bytes / t4.weight_bytes
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_kv_traffic_grows_with_context(self):
        cfg = get_model_config("llama-2-7b")
        tm = TrafficModel(cfg, 4)
        assert tm.pass_traffic(1, 512).kv_bytes > tm.pass_traffic(1, 256).kv_bytes

    def test_generative_dominated_by_weight_refetch(self):
        cfg = get_model_config("llama-2-7b")
        tm = TrafficModel(cfg, 16)
        gen = tm.workload_traffic("generative")
        disc = tm.workload_traffic("discriminative")
        assert gen.weight_bytes > 200 * disc.weight_bytes
        assert gen.weight_bytes > gen.kv_bytes

    def test_bad_task(self):
        tm = TrafficModel(get_model_config("opt-1.3b"))
        with pytest.raises(ValueError):
            tm.workload_traffic("training")


class TestAccelerators:
    @pytest.mark.parametrize("name", ["fp16", "ant", "olive", "bitmod"])
    def test_iso_area(self, name):
        accel = make_accelerator(name)
        assert accel.arch.compute_area_um2() <= 1.06 * AREA_BUDGET_UM2

    def test_bitmod_fits_more_pes_than_baseline(self):
        assert make_accelerator("bitmod").arch.n_pes > make_accelerator("fp16").arch.n_pes

    def test_olive_fewer_pes_than_ant(self):
        """OliVe's outlier-pair PE is bigger (Section V-C)."""
        assert make_accelerator("olive").arch.n_pes <= make_accelerator("ant").arch.n_pes

    def test_terms_per_weight(self):
        bm = make_accelerator("bitmod")
        assert bm.terms_per_weight(8) == 4
        assert bm.terms_per_weight(6) == 3
        assert bm.terms_per_weight(4) == 2
        assert bm.terms_per_weight(3) == 2

    def test_throughput_improvement_claims(self):
        """4-lane PE: 2x at FP4/FP3 and 1.33x at INT6 vs 1 MAC/cycle."""
        bm = make_accelerator("bitmod")
        per_pe_fp4 = bm.effective_macs_per_cycle(4) / bm.arch.n_pes
        per_pe_int6 = bm.effective_macs_per_cycle(6) / bm.arch.n_pes
        assert per_pe_fp4 == 2.0
        assert per_pe_int6 == pytest.approx(4 / 3)

    def test_unknown_accelerator(self):
        with pytest.raises(KeyError):
            make_accelerator("tpu")
