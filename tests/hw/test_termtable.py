"""Tests for the precomputed bit-serial term tables."""

import numpy as np
import pytest

from repro.dtypes.extended import make_extended_float
from repro.dtypes.registry import get_dtype
from repro.hw.bitserial import booth_encode, fixed_point_decompose
from repro.hw.termtable import (
    decode_packed_terms,
    grid_term_table,
    integer_term_table,
    term_tables_for_dtype,
)
from repro.quant.config import QuantConfig
from repro.quant.packing import pack_tensor, unpack_bits


class TestIntegerTable:
    @pytest.mark.parametrize("bits", [4, 5, 6, 8])
    def test_matches_scalar_booth(self, bits):
        table = integer_term_table(bits)
        qmax = 2 ** (bits - 1) - 1
        assert table.n_codes == 2 * qmax + 1
        for code in range(table.n_codes):
            terms = booth_encode(code - qmax, bits)
            assert len(terms) == table.n_terms
            for t_idx, t in enumerate(terms):
                assert table.sign[code, t_idx] == t.sign
                assert table.exp[code, t_idx] == t.exp
                assert table.man[code, t_idx] == t.man
                assert table.bsig[code, t_idx] == t.bsig

    def test_rows_reconstruct_values(self):
        table = integer_term_table(6)
        np.testing.assert_array_equal(
            table.term_values().sum(axis=1), table.values
        )

    def test_tables_are_memoized(self):
        assert integer_term_table(8) is integer_term_table(8)

    def test_arrays_read_only(self):
        table = integer_term_table(4)
        with pytest.raises(ValueError):
            table.sign[0, 0] = 1


class TestGridTable:
    @pytest.mark.parametrize("sv", [-8.0, -5.0, 3.0, 6.0, 7.0])
    def test_matches_scalar_lod(self, sv):
        grid = make_extended_float(4, sv).grid
        table = grid_term_table(grid)
        for code, value in enumerate(grid):
            terms = fixed_point_decompose(float(value))
            for t_idx, t in enumerate(terms):
                assert table.sign[code, t_idx] == t.sign
                assert table.man[code, t_idx] == t.man
                assert table.bsig[code, t_idx] == t.bsig

    def test_rows_reconstruct_values(self):
        grid = make_extended_float(3, 6.0).grid
        table = grid_term_table(grid)
        np.testing.assert_array_equal(table.term_values().sum(axis=1), grid)

    def test_undecomposable_grid_rejected(self):
        # 5.5 needs three power-of-two terms: same error as the scalar codec.
        with pytest.raises(ValueError):
            grid_term_table(np.array([0.0, 5.5]))

    def test_lookup_shape(self):
        table = grid_term_table(make_extended_float(4, 5.0).grid)
        sign, exp, man, bsig = table.lookup(np.zeros((3, 8), dtype=np.int64))
        assert sign.shape == (3, 8, table.n_terms)


class TestTablesForDtype:
    def test_bitmod_has_one_table_per_sv(self):
        dtype = get_dtype("bitmod_fp4")
        tables = term_tables_for_dtype(dtype)
        assert len(tables) == len(dtype.special_values)

    def test_asymmetric_integer_rejected(self):
        with pytest.raises(TypeError, match="zero-point"):
            term_tables_for_dtype(get_dtype("int4_asym"))

    def test_symmetric_integer_single_table(self):
        (table,) = term_tables_for_dtype(get_dtype("int6_sym"))
        assert table.n_terms == 3


class TestDecodePackedTerms:
    def test_reconstructs_code_values(self, rng):
        """Term arrays must sum back to the decoded code-space values."""
        w = rng.standard_normal((4, 256))
        cfg = QuantConfig(dtype="bitmod_fp4")
        packed = pack_tensor(w, cfg)
        sign, exp, man, bsig = decode_packed_terms(packed, cfg.resolve_dtype())
        values = ((-1.0) ** sign) * (2.0 ** exp) * man * (2.0 ** bsig)
        recon = values.sum(axis=-1)

        dtype = cfg.resolve_dtype()
        n_groups = packed.sf_codes.size
        codes = unpack_bits(
            packed.element_data, packed.bits, n_groups * packed.group_size
        ).reshape(n_groups, packed.group_size)
        for gi in range(n_groups):
            grid = make_extended_float(
                dtype.bits, dtype.special_values[int(packed.sv_selectors[gi])]
            ).grid
            np.testing.assert_array_equal(recon[gi], grid[codes[gi].astype(int)])

    def test_cached_on_packed_tensor(self, rng):
        w = rng.standard_normal((2, 128))
        cfg = QuantConfig(dtype="int6_sym")
        packed = pack_tensor(w, cfg)
        first = decode_packed_terms(packed, cfg.resolve_dtype())
        second = decode_packed_terms(packed, cfg.resolve_dtype())
        assert all(a is b for a, b in zip(first, second))

    def test_cache_not_aliased_across_same_named_dtypes(self, rng):
        """Two dtypes sharing a name but differing in special values
        must not serve each other's cached decode."""
        from repro.dtypes.extended import BitMoDType

        w = rng.standard_normal((2, 128))
        dt_a = BitMoDType(bits=4, special_values=(-5.0, 5.0), name="same")
        dt_b = BitMoDType(bits=4, special_values=(-8.0, 8.0), name="same")
        packed = pack_tensor(w, QuantConfig(dtype=dt_a))
        terms_a = decode_packed_terms(packed, dt_a)
        terms_b = decode_packed_terms(packed, dt_b)
        assert not any(a is b for a, b in zip(terms_a, terms_b))
