"""Tests for the functional (bit-accurate) GEMM executor."""

import numpy as np
import pytest

from repro.hw.functional import FunctionalGemm
from repro.hw.timing import gemm_compute_cycles
from repro.quant.config import QuantConfig, quantize_tensor


@pytest.fixture
def small_gemm(rng):
    w = rng.standard_normal((4, 256))
    x = rng.standard_normal((2, 256)).astype(np.float16)
    return x, w


class TestFunctionalGemm:
    @pytest.mark.parametrize(
        "dtype", ["int6_sym", "int8_sym", "fp4", "fp3", "bitmod_fp4", "bitmod_fp3"]
    )
    def test_matches_dequantized_matmul(self, small_gemm, dtype):
        x, w = small_gemm
        cfg = QuantConfig(dtype=dtype)
        res = FunctionalGemm(cfg).run(x, w)
        ref = x.astype(np.float64) @ quantize_tensor(w, cfg).w_deq.T
        np.testing.assert_allclose(res.output, ref, rtol=1e-3, atol=1e-3)

    def test_cycles_track_term_counts(self, small_gemm):
        """INT6 (3 terms) takes 1.5x the cycles of FP4 (2 terms)."""
        x, w = small_gemm
        c6 = FunctionalGemm(QuantConfig(dtype="int6_sym")).run(x, w).pe_cycles
        c4 = FunctionalGemm(QuantConfig(dtype="bitmod_fp4")).run(x, w).pe_cycles
        assert c6 / c4 == pytest.approx(1.5)

    def test_cycles_match_analytic_model(self, small_gemm):
        """Per-PE cycles equal the timing model's K-loop cycles."""
        from repro.hw.arch import ArchConfig
        from repro.models.config import GEMMShape

        x, w = small_gemm
        res = FunctionalGemm(QuantConfig(dtype="bitmod_fp3")).run(x, w)
        # Functional executor: one PE per (m, k-row) pair sequentially.
        m, d = x.shape
        k = w.shape[0]
        per_output = (d // 4) * 2  # K/4 lanes * 2 terms
        assert res.pe_cycles == m * k * per_output

        arch = ArchConfig(name="t", pe_rows=m, pe_cols=k, bit_serial=True)
        t = gemm_compute_cycles(
            GEMMShape("g", m=m, k=d, n=k), arch, terms_per_weight=2
        )
        assert t.compute_cycles == per_output  # all outputs in parallel

    def test_group_count(self, small_gemm):
        x, w = small_gemm
        res = FunctionalGemm(QuantConfig(dtype="fp3")).run(x, w)
        assert res.groups_processed == x.shape[0] * w.shape[0] * (256 // 128)

    def test_non_multiple_dims_padded(self, rng):
        w = rng.standard_normal((2, 200))
        x = rng.standard_normal((1, 200)).astype(np.float16)
        cfg = QuantConfig(dtype="fp4")
        res = FunctionalGemm(cfg).run(x, w)
        ref = x.astype(np.float64) @ quantize_tensor(w, cfg).w_deq.T
        np.testing.assert_allclose(res.output, ref, rtol=1e-3, atol=1e-3)

    def test_asymmetric_integer_rejected(self, small_gemm):
        x, w = small_gemm
        with pytest.raises(TypeError, match="zero-point"):
            FunctionalGemm(QuantConfig(dtype="int4_asym")).run(x, w)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            FunctionalGemm(QuantConfig(dtype="fp4")).run(
                rng.standard_normal((2, 128)).astype(np.float16),
                rng.standard_normal((2, 256)),
            )
