"""Tests for the functional (bit-accurate) GEMM executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.registry import list_dtypes
from repro.hw.functional import FunctionalGemm
from repro.hw.timing import gemm_compute_cycles
from repro.kernels import list_backends
from repro.kernels.base import GemmTask
from repro.kernels.cache import decode_cache
from repro.kernels.numba_backend import NumbaBackend
from repro.quant.config import QuantConfig, quantize_tensor
from repro.quant.packing import pack_tensor

#: Every registered backend, whether or not it is available here: the
#: dispatcher must run each one bit-identically (unavailable choices —
#: e.g. "numba" without numba installed — exercise the fallback path,
#: which must also be bit-identical).
ALL_BACKENDS = list_backends()


@pytest.fixture
def small_gemm(rng):
    w = rng.standard_normal((4, 256))
    x = rng.standard_normal((2, 256)).astype(np.float16)
    return x, w


class TestFunctionalGemm:
    @pytest.mark.parametrize(
        "dtype", ["int6_sym", "int8_sym", "fp4", "fp3", "bitmod_fp4", "bitmod_fp3"]
    )
    def test_matches_dequantized_matmul(self, small_gemm, dtype):
        x, w = small_gemm
        cfg = QuantConfig(dtype=dtype)
        res = FunctionalGemm(cfg).run(x, w)
        ref = x.astype(np.float64) @ quantize_tensor(w, cfg).w_deq.T
        np.testing.assert_allclose(res.output, ref, rtol=1e-3, atol=1e-3)

    def test_cycles_track_term_counts(self, small_gemm):
        """INT6 (3 terms) takes 1.5x the cycles of FP4 (2 terms)."""
        x, w = small_gemm
        c6 = FunctionalGemm(QuantConfig(dtype="int6_sym")).run(x, w).pe_cycles
        c4 = FunctionalGemm(QuantConfig(dtype="bitmod_fp4")).run(x, w).pe_cycles
        assert c6 / c4 == pytest.approx(1.5)

    def test_cycles_match_analytic_model(self, small_gemm):
        """Per-PE cycles equal the timing model's K-loop cycles."""
        from repro.hw.arch import ArchConfig
        from repro.models.config import GEMMShape

        x, w = small_gemm
        res = FunctionalGemm(QuantConfig(dtype="bitmod_fp3")).run(x, w)
        # Functional executor: one PE per (m, k-row) pair sequentially.
        m, d = x.shape
        k = w.shape[0]
        per_output = (d // 4) * 2  # K/4 lanes * 2 terms
        assert res.pe_cycles == m * k * per_output

        arch = ArchConfig(name="t", pe_rows=m, pe_cols=k, bit_serial=True, pes_per_tile=m * k)
        t = gemm_compute_cycles(
            GEMMShape("g", m=m, k=d, n=k), arch, terms_per_weight=2
        )
        assert t.compute_cycles == per_output  # all outputs in parallel

    def test_group_count(self, small_gemm):
        x, w = small_gemm
        res = FunctionalGemm(QuantConfig(dtype="fp3")).run(x, w)
        assert res.groups_processed == x.shape[0] * w.shape[0] * (256 // 128)

    def test_non_multiple_dims_padded(self, rng):
        w = rng.standard_normal((2, 200))
        x = rng.standard_normal((1, 200)).astype(np.float16)
        cfg = QuantConfig(dtype="fp4")
        res = FunctionalGemm(cfg).run(x, w)
        ref = x.astype(np.float64) @ quantize_tensor(w, cfg).w_deq.T
        np.testing.assert_allclose(res.output, ref, rtol=1e-3, atol=1e-3)

    def test_asymmetric_integer_rejected(self, small_gemm):
        x, w = small_gemm
        with pytest.raises(TypeError, match="zero-point"):
            FunctionalGemm(QuantConfig(dtype="int4_asym")).run(x, w)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            FunctionalGemm(QuantConfig(dtype="fp4")).run(
                rng.standard_normal((2, 128)).astype(np.float16),
                rng.standard_normal((2, 256)),
            )

    def test_non_2d_activations_rejected(self, rng):
        gemm = FunctionalGemm(QuantConfig(dtype="fp4"))
        w = rng.standard_normal((2, 128))
        with pytest.raises(ValueError, match="2-D"):
            gemm.run(rng.standard_normal(128).astype(np.float16), w)
        with pytest.raises(ValueError, match="2-D"):
            gemm.run(rng.standard_normal((2, 128, 2)).astype(np.float16), w)


def _assert_same_execution(a, b):
    np.testing.assert_array_equal(a.output, b.output)
    assert a.pe_cycles == b.pe_cycles
    assert a.groups_processed == b.groups_processed


class TestVectorizedEquivalence:
    """Every kernel backend must be bit-identical to the scalar
    reference — values, cycle counts and group counts — for every
    registry datatype, including matching rejection behaviour.

    Backends are selected through the dispatcher (``backend=`` pin),
    so pinning an unavailable backend (e.g. "numba" here without
    numba) also proves the fallback path preserves bit identity.
    """

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("dtype", list_dtypes())
    def test_registry_dtype_bit_identical_or_same_rejection(
        self, rng, dtype, backend
    ):
        w = rng.standard_normal((3, 64))
        x = rng.standard_normal((2, 64)).astype(np.float16)
        gemm = FunctionalGemm(
            QuantConfig(dtype=dtype, group_size=32), backend=backend
        )
        try:
            scalar = gemm.run_scalar(x, w)
        except (TypeError, ValueError) as exc:
            with pytest.raises(type(exc)):
                gemm.run(x, w)
            return
        _assert_same_execution(scalar, gemm.run(x, w))

    @given(
        seed=st.integers(0, 2**32 - 1),
        dtype=st.sampled_from(
            ["bitmod_fp4", "bitmod_fp3", "int6_sym", "int8_sym", "fp4", "ant4"]
        ),
        backend=st.sampled_from(ALL_BACKENDS),
        m=st.integers(1, 4),
        k=st.integers(1, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_shapes_bit_identical(self, seed, dtype, backend, m, k):
        rng = np.random.default_rng(seed)
        # Mix magnitudes so exponent alignment and accumulator
        # renormalization paths are exercised.
        d = int(rng.choice([32, 64, 96]))
        w = rng.standard_normal((k, d)) * rng.uniform(0.05, 20.0)
        x = (rng.standard_normal((m, d)) * rng.uniform(0.1, 8.0)).astype(np.float16)
        gemm = FunctionalGemm(
            QuantConfig(dtype=dtype, group_size=32), backend=backend
        )
        _assert_same_execution(gemm.run_scalar(x, w), gemm.run(x, w))

    @pytest.mark.parametrize("dtype", ["bitmod_fp4", "int6_sym", "ant4"])
    def test_numba_kernel_python_path_bit_identical(self, rng, dtype):
        """The numba kernel's plain-Python twin (what JIT compiles) is
        bit-identical even when numba itself is not installed."""
        cfg = QuantConfig(dtype=dtype, group_size=32)
        w = rng.standard_normal((2, 64))
        x = rng.standard_normal((2, 64)).astype(np.float16)
        gemm = FunctionalGemm(cfg)
        task = GemmTask(
            x=gemm._validated_shapes(x, w.shape),
            packed=pack_tensor(w, cfg),
            dtype=cfg.resolve_dtype(),
            pe_config=gemm.pe.config,
        )
        _assert_same_execution(gemm.run_scalar(x, w), NumbaBackend().run(task))

    def test_asymmetric_rejection_matches(self, rng):
        w = rng.standard_normal((2, 64))
        x = rng.standard_normal((1, 64)).astype(np.float16)
        gemm = FunctionalGemm(QuantConfig(dtype="int5_asym", group_size=32))
        with pytest.raises(TypeError, match="zero-point"):
            gemm.run_scalar(x, w)
        with pytest.raises(TypeError, match="zero-point"):
            gemm.run(x, w)

    def test_ragged_channel_bit_identical(self, rng):
        """Padded/ragged D exercises the explicit groups-per-channel."""
        w = rng.standard_normal((3, 200))
        x = rng.standard_normal((2, 200)).astype(np.float16)
        gemm = FunctionalGemm(QuantConfig(dtype="bitmod_fp4"))
        _assert_same_execution(gemm.run_scalar(x, w), gemm.run(x, w))

    def test_run_packed_reuses_decode_cache(self, rng):
        w = rng.standard_normal((2, 128))
        x = rng.standard_normal((2, 128)).astype(np.float16)
        cfg = QuantConfig(dtype="bitmod_fp4")
        gemm = FunctionalGemm(cfg)
        packed = pack_tensor(w, cfg)
        cache = decode_cache()
        first = gemm.run_packed(x, packed)
        assert cache.contains(packed, "terms")
        hits_before = cache.hits
        second = gemm.run_packed(x, packed)
        assert cache.hits > hits_before
        _assert_same_execution(first, second)

    def test_subnormal_activations_bit_identical(self, rng):
        """Tiny activations hit the FP16 subnormal decompose path."""
        w = rng.standard_normal((2, 32))
        x = (rng.standard_normal((2, 32)) * 1e-7).astype(np.float16)
        gemm = FunctionalGemm(QuantConfig(dtype="int6_sym", group_size=32))
        _assert_same_execution(gemm.run_scalar(x, w), gemm.run(x, w))

    def test_extreme_magnitude_mix_bit_identical(self, rng):
        """Max-magnitude and subnormal activations in one group force
        the widest exponent alignments (exact-arithmetic fallback)."""
        w = rng.standard_normal((2, 32)) * 100
        x = rng.standard_normal((2, 32)).astype(np.float16)
        x[0, ::2] = np.float16(60000.0)
        x[0, 1::2] = np.float16(6e-8)
        x[1, :16] = np.float16(-60000.0)
        gemm = FunctionalGemm(QuantConfig(dtype="int8_sym", group_size=32))
        _assert_same_execution(gemm.run_scalar(x, w), gemm.run(x, w))
