"""Tests for the BitMoD extended datatypes (Table IV)."""

import numpy as np
import pytest

from repro.dtypes.extended import (
    FP3_SPECIAL_VALUES,
    FP4_SPECIAL_VALUES,
    BitMoDType,
    make_extended_float,
)
from repro.dtypes.floating import FP3_VALUES, FP4_VALUES


class TestTableIV:
    """The extended datatype definitions are exactly the paper's."""

    def test_fp3_special_values(self):
        assert set(FP3_SPECIAL_VALUES) == {-3.0, 3.0, -6.0, 6.0}

    def test_fp4_special_values(self):
        assert set(FP4_SPECIAL_VALUES) == {-5.0, 5.0, -8.0, 8.0}

    @pytest.mark.parametrize("sv", [-3.0, 3.0])
    def test_fp3_er_grid(self, sv):
        dt = make_extended_float(3, sv)
        assert set(dt.grid) == set(FP3_VALUES) | {sv}
        # ER keeps the absolute maximum at 4.
        assert dt.absmax == 4.0 if abs(sv) < 4 else 6.0

    @pytest.mark.parametrize("sv", [-6.0, 6.0])
    def test_fp3_ea_extends_range(self, sv):
        dt = make_extended_float(3, sv)
        assert dt.absmax == 6.0
        assert not dt.is_symmetric_grid()

    @pytest.mark.parametrize("sv", [-5.0, 5.0, -8.0, 8.0])
    def test_fp4_extensions(self, sv):
        dt = make_extended_float(4, sv)
        assert set(dt.grid) == set(FP4_VALUES) | {sv}

    def test_extended_grid_has_full_level_budget(self):
        # Repurposing negative zero: 2**b distinct values.
        assert make_extended_float(3, 6.0).num_levels == 8
        assert make_extended_float(4, -8.0).num_levels == 16

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            make_extended_float(5, 6.0)

    def test_memoized_instance_is_shared_and_frozen(self):
        a = make_extended_float(4, 5.0)
        assert make_extended_float(4, 5.0) is a
        with pytest.raises(ValueError):
            a.values[0] = 99.0  # shared grid must be immutable


class TestBitMoDType:
    def test_default_families(self):
        bm3 = BitMoDType(bits=3)
        bm4 = BitMoDType(bits=4)
        assert bm3.special_values == FP3_SPECIAL_VALUES
        assert bm4.special_values == FP4_SPECIAL_VALUES
        assert len(bm3.candidates) == 4

    def test_selector_bits(self):
        assert BitMoDType(bits=3).selector_bits == 2.0
        assert BitMoDType(bits=3, special_values=(-6.0, 6.0)).selector_bits == 1.0

    def test_memory_overhead_is_ten_bits_per_group(self):
        # Section III-C: 8-bit SF + 2-bit selector per 128-group.
        bm = BitMoDType(bits=4)
        assert bm.memory_bits_per_weight(128) == pytest.approx(4 + 10 / 128)

    def test_candidates_share_basic_values(self):
        bm = BitMoDType(bits=3)
        for cand in bm.candidates:
            assert set(FP3_VALUES) <= set(cand.grid)

    def test_basic_values_property(self):
        np.testing.assert_array_equal(BitMoDType(bits=4).basic_values, FP4_VALUES)

    def test_arbitrary_special_values_supported(self):
        # Section IV-A: the SV register file is programmable.
        bm = BitMoDType(bits=3, special_values=(-7.0, 7.0))
        assert any(7.0 in c.grid for c in bm.candidates)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            BitMoDType(bits=6)
