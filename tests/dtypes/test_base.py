"""Tests for the grid-quantization primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.base import (
    GridDataType,
    grid_absmax,
    quantize_to_grid,
    snap_indices,
)


class TestSnapIndices:
    def test_exact_levels_map_to_themselves(self):
        grid = np.array([-4.0, -2.0, -1.0, 0.0, 1.0, 2.0, 4.0])
        idx = snap_indices(grid, grid)
        assert np.array_equal(idx, np.arange(len(grid)))

    def test_midpoint_partition(self):
        grid = np.array([0.0, 1.0, 2.0])
        assert snap_indices(np.array([0.49]), grid)[0] == 0
        assert snap_indices(np.array([0.51]), grid)[0] == 1

    def test_out_of_range_clamps_to_extremes(self):
        grid = np.array([-1.0, 0.0, 1.0])
        assert snap_indices(np.array([-100.0]), grid)[0] == 0
        assert snap_indices(np.array([100.0]), grid)[0] == 2

    def test_fast_path_matches_searchsorted(self, rng):
        """The compare-accumulate fast path (x.size >= 4096) must be
        bit-identical to the searchsorted reference, NaN included."""
        grid = np.array([-8.0, -4.0, -2.0, -1.0, 0.0, 1.0, 2.0, 4.0, 8.0])
        x = rng.standard_normal(8192) * 5
        x[::1000] = np.nan
        x[1::1000] = 100.0
        mid = (grid[1:] + grid[:-1]) / 2.0
        np.testing.assert_array_equal(
            snap_indices(x, grid), np.searchsorted(mid, x, side="left")
        )

    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_snap_is_nearest(self, xs):
        grid = np.array([-8.0, -4.0, -2.0, -1.0, 0.0, 1.0, 2.0, 4.0, 8.0])
        x = np.array(xs)
        snapped = quantize_to_grid(x, grid)
        for xi, si in zip(x, snapped):
            best = grid[np.argmin(np.abs(grid - xi))]
            assert abs(si - xi) <= abs(best - xi) + 1e-12

    def test_preserves_shape(self):
        grid = np.array([-1.0, 0.0, 1.0])
        x = np.zeros((3, 4, 5))
        assert quantize_to_grid(x, grid).shape == (3, 4, 5)


class TestGridDataType:
    def test_grid_sorted_and_unique(self):
        dt = GridDataType(name="t", bits=3, values=[1, -1, 0, 1, 2, -2])
        assert np.array_equal(dt.grid, [-2, -1, 0, 1, 2])
        assert dt.num_levels == 5

    def test_absmax(self):
        dt = GridDataType(name="t", bits=3, values=[-6, -1, 0, 1, 4])
        assert dt.absmax == 6.0
        assert grid_absmax(dt.grid) == 6.0

    def test_symmetry_detection(self):
        sym = GridDataType(name="s", bits=3, values=[-2, -1, 0, 1, 2])
        asym = GridDataType(name="a", bits=3, values=[-2, -1, 0, 1, 2, 6])
        assert sym.is_symmetric_grid()
        assert not asym.is_symmetric_grid()

    def test_encode_decode_roundtrip(self, rng):
        dt = GridDataType(name="t", bits=4, values=np.arange(-7, 8.0))
        x = rng.uniform(-7, 7, size=100)
        codes = dt.encode(x)
        assert np.array_equal(dt.decode(codes), dt.quantize(x))

    def test_single_level_grid_rejected(self):
        with pytest.raises(ValueError):
            GridDataType(name="bad", bits=1, values=[1.0])

    def test_memory_bits_include_scale(self):
        dt = GridDataType(name="t", bits=4, values=np.arange(-7, 8.0))
        assert dt.memory_bits_per_weight(128) == pytest.approx(4 + 8 / 128)
