"""Tests for the Microscaling (MX) baseline datatype."""

import numpy as np
import pytest

from repro.dtypes.mx import MXType


class TestMX:
    def test_scales_are_powers_of_two(self, rng):
        dt = MXType(bits=4)
        w = rng.standard_normal((16, 32))
        _, scales = dt.quantize_rows(w)
        log2 = np.log2(scales)
        np.testing.assert_allclose(log2, np.round(log2))

    def test_block_size_default_is_spec(self):
        assert MXType(bits=4).block_size == 32

    def test_memory_includes_shared_exponent(self):
        dt = MXType(bits=4)
        # 8-bit exponent per 32-block regardless of quantizer group.
        assert dt.memory_bits_per_weight(128) == pytest.approx(4 + 8 / 32)

    def test_zero_block_stable(self):
        dt = MXType(bits=4)
        w_deq, scales = dt.quantize_rows(np.zeros((2, 32)))
        assert np.all(w_deq == 0) and np.all(scales == 1.0)

    def test_worse_than_exact_scale_on_average(self, rng):
        """The PoT scale restriction must cost accuracy vs FP4 with an
        exact per-block scale (the paper's MX critique)."""
        from repro.dtypes.registry import get_dtype
        from repro.quant.quantizer import quantize_rows_grid

        w = rng.standard_normal((256, 32))
        mx_deq, _ = MXType(bits=4).quantize_rows(w)
        exact = quantize_rows_grid(w, get_dtype("fp4"))
        assert np.mean((mx_deq - w) ** 2) > np.mean((exact.w_deq - w) ** 2)

    def test_elements_snap_to_fp_grid(self, rng):
        dt = MXType(bits=3)
        w = rng.standard_normal((4, 32))
        w_deq, scales = dt.quantize_rows(w)
        codes = w_deq / scales
        for c in np.unique(codes):
            assert any(abs(c - g) < 1e-12 for g in dt.element_grid)

    def test_unsupported_bits(self):
        with pytest.raises(ValueError):
            MXType(bits=7)
