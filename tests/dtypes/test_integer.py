"""Tests for symmetric/asymmetric integer quantization (Eq. 1 / Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.integer import IntegerType, int_symmetric_levels


class TestLevels:
    @pytest.mark.parametrize("bits,expect", [(3, 7), (4, 15), (6, 63), (8, 255)])
    def test_symmetric_level_count(self, bits, expect):
        assert len(int_symmetric_levels(bits)) == expect

    def test_symmetric_levels_drop_most_negative(self):
        levels = int_symmetric_levels(4)
        assert levels.min() == -7 and levels.max() == 7


class TestSymmetric:
    def test_name(self):
        assert IntegerType(bits=4).name == "int4_sym"

    def test_exact_representable(self):
        dt = IntegerType(bits=4)
        w = np.array([[-7.0, -3.0, 0.0, 3.0, 7.0, 1.0, 2.0, 5.0]])
        w_deq, codes, scales, zeros = dt.quantize_rows(w)
        assert zeros is None
        assert scales[0, 0] == pytest.approx(1.0)
        np.testing.assert_allclose(w_deq, w)

    def test_scale_from_absmax(self, rng):
        dt = IntegerType(bits=4)
        w = rng.standard_normal((8, 64))
        _, _, scales, _ = dt.quantize_rows(w)
        np.testing.assert_allclose(
            scales[:, 0], np.max(np.abs(w), axis=1) / 7.0
        )

    def test_zero_row_is_stable(self):
        dt = IntegerType(bits=4)
        w_deq, _, scales, _ = dt.quantize_rows(np.zeros((2, 8)))
        assert np.all(w_deq == 0.0)
        assert np.all(scales == 1.0)

    @given(st.integers(min_value=3, max_value=8))
    @settings(max_examples=6, deadline=None)
    def test_error_bounded_by_half_step(self, bits):
        rng = np.random.default_rng(bits)
        dt = IntegerType(bits=bits)
        w = rng.standard_normal((4, 128))
        w_deq, _, scales, _ = dt.quantize_rows(w)
        assert np.all(np.abs(w_deq - w) <= scales / 2 + 1e-12)


class TestAsymmetric:
    def test_name(self):
        assert IntegerType(bits=4, asymmetric=True).name == "int4_asym"

    def test_handles_one_sided_rows_better_than_symmetric(self, rng):
        w = np.abs(rng.standard_normal((8, 128))) + 0.5  # all positive
        sym = IntegerType(bits=3)
        asym = IntegerType(bits=3, asymmetric=True)
        e_sym = np.mean((sym.quantize_rows(w)[0] - w) ** 2)
        e_asym = np.mean((asym.quantize_rows(w)[0] - w) ** 2)
        assert e_asym < e_sym

    def test_codes_in_unsigned_range(self, rng):
        dt = IntegerType(bits=4, asymmetric=True)
        w = rng.standard_normal((8, 64)) + 0.3
        _, codes, _, zeros = dt.quantize_rows(w)
        assert codes.min() >= 0 and codes.max() <= 15
        assert zeros is not None

    def test_range_endpoints_exact(self):
        dt = IntegerType(bits=4, asymmetric=True)
        w = np.linspace(-3.0, 12.0, 16)[None, :]
        w_deq, _, _, _ = dt.quantize_rows(w)
        assert w_deq[0, 0] == pytest.approx(-3.0)
        assert w_deq[0, -1] == pytest.approx(12.0)

    def test_memory_overhead_higher_than_symmetric(self):
        sym = IntegerType(bits=4)
        asym = IntegerType(bits=4, asymmetric=True)
        assert asym.memory_bits_per_weight(128) > sym.memory_bits_per_weight(128)

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            IntegerType(bits=1)
