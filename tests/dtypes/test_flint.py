"""Tests for the ANT Flint baseline datatype."""

import numpy as np
import pytest

from repro.dtypes.flint import AntAdaptiveType, flint_values, make_flint_type


class TestFlintValues:
    def test_flint4_grid(self):
        expect = [0, 1, 1.5, 2, 3, 4, 6, 8]
        expect = sorted(set([-v for v in expect] + expect))
        np.testing.assert_array_equal(flint_values(4), expect)

    def test_flint3_grid_is_all_range(self):
        np.testing.assert_array_equal(flint_values(3), [-8, -2, -1, 0, 1, 2, 8])

    @pytest.mark.parametrize("bits", [3, 4, 5, 6])
    def test_level_budget_respected(self, bits):
        vals = flint_values(bits)
        n_magnitudes = (len(vals) - 1) // 2
        assert n_magnitudes <= 2 ** (bits - 1) - 1

    @pytest.mark.parametrize("bits", [4, 5, 6])
    def test_wider_dynamic_range_than_float(self, bits):
        from repro.dtypes.floating import float_grid

        fp = float_grid(2, bits - 3, bias=1)
        assert flint_values(bits).max() > fp.max()

    def test_symmetric(self):
        for bits in (3, 4, 5, 6):
            v = flint_values(bits)
            np.testing.assert_allclose(np.sort(-v), v)

    def test_too_few_bits(self):
        with pytest.raises(ValueError):
            flint_values(2)


class TestAntAdaptive:
    def test_candidate_count_grows_with_bits(self):
        assert len(AntAdaptiveType(bits=3).candidates) == 1
        assert len(AntAdaptiveType(bits=4).candidates) == 3
        assert len(AntAdaptiveType(bits=5).candidates) == 4

    def test_all_candidates_symmetric(self):
        for cand in AntAdaptiveType(bits=4).candidates:
            assert cand.is_symmetric_grid()

    def test_make_flint_type(self):
        dt = make_flint_type(4)
        assert dt.bits == 4
        assert dt.name == "flint4"
