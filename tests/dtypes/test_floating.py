"""Tests for minifloat grids and FP16 helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.floating import (
    FP3_VALUES,
    FP4_VALUES,
    FP6_E2M3_VALUES,
    FP6_E3M2_VALUES,
    float_grid,
    fp16_compose,
    fp16_decompose,
    make_float_type,
)


class TestGrids:
    def test_fp3_matches_paper(self):
        # Section III-A: FP3 = {0, +-1, +-2, +-4}.
        np.testing.assert_array_equal(FP3_VALUES, [-4, -2, -1, 0, 1, 2, 4])

    def test_fp4_matches_paper(self):
        # Table IV basic FP4 values.
        expect = [0, 0.5, 1, 1.5, 2, 3, 4, 6]
        expect = sorted(set([-v for v in expect] + expect))
        np.testing.assert_array_equal(FP4_VALUES, expect)

    def test_fp6_e2m3_range(self):
        assert FP6_E2M3_VALUES.max() == pytest.approx(7.5)
        # 1 + (2**2 - 1) * 2**3 magnitudes on each side plus zero.
        assert len(FP6_E2M3_VALUES) == 2 * 31 + 1

    def test_fp6_e3m2_wider_range_than_e2m3(self):
        assert FP6_E3M2_VALUES.max() > FP6_E2M3_VALUES.max()

    def test_grids_are_symmetric(self):
        for grid in (FP3_VALUES, FP4_VALUES, FP6_E2M3_VALUES, FP6_E3M2_VALUES):
            np.testing.assert_allclose(np.sort(-grid), grid)

    def test_subnormals_present(self):
        # FP4's 0.5 is a subnormal (exp field 0, man 1).
        assert 0.5 in FP4_VALUES

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            float_grid(0, 2)

    def test_make_float_type_bits(self):
        dt = make_float_type("fp5_test", 2, 2, bias=1)
        assert dt.bits == 5
        assert dt.num_levels == len(float_grid(2, 2, bias=1))


class TestFP16Helpers:
    @given(
        st.floats(
            min_value=-60000,
            max_value=60000,
            allow_nan=False,
            width=16,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_decompose_compose_roundtrip(self, x):
        sign, exp, man = fp16_decompose(np.array([x], dtype=np.float16))
        back = fp16_compose(sign, exp, man)[0]
        assert back == pytest.approx(float(np.float16(x)), rel=0, abs=0)

    def test_hidden_bit_for_normals(self):
        _, _, man = fp16_decompose(np.array([1.0]))
        assert man[0] == 1 << 10

    def test_subnormal_no_hidden_bit(self):
        tiny = np.float16(2**-24)
        _, exp, man = fp16_decompose(np.array([tiny]))
        assert exp[0] == 1
        assert man[0] == 1

    def test_sign_extraction(self):
        sign, _, _ = fp16_decompose(np.array([-1.5, 1.5]))
        assert list(sign) == [1, 0]
