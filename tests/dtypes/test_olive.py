"""Tests for the OliVe outlier-victim baseline datatype."""

import numpy as np
import pytest

from repro.dtypes.olive import OliveType, abfloat_values


class TestAbfloat:
    def test_bias4_reaches_192(self):
        vals = abfloat_values(4, bias=4)
        assert vals.min() == 16.0 and vals.max() == 192.0

    def test_default_grid_size(self):
        assert len(abfloat_values(4)) == 2 ** (4 - 2) * 2

    def test_bias_shifts_range(self):
        np.testing.assert_allclose(abfloat_values(3, 1), 2 * abfloat_values(3, 0))

    def test_too_few_bits(self):
        with pytest.raises(ValueError):
            abfloat_values(2)


class TestOliveQuantization:
    def test_outliers_protected(self, rng):
        dt = OliveType(bits=4)
        w = rng.standard_normal((8, 128)) * 0.1
        w[:, 0] = 3.0  # large outlier in every group
        w_deq, scales = dt.quantize_rows(w)
        # Without outlier handling the int4 grid tops out at
        # 7 * (second_max / 7) ~ second max << 3.0.
        assert np.all(w_deq[:, 0] > 1.0)

    def test_victims_pruned(self, rng):
        dt = OliveType(bits=4, outlier_counts=(1,))
        w = np.abs(rng.standard_normal((4, 64))) + 0.5
        w[:, 10] = 50.0  # outlier at even index -> victim at 11
        w_deq, _ = dt.quantize_rows(w)
        np.testing.assert_array_equal(w_deq[:, 11], 0.0)

    def test_scale_excludes_outliers(self, rng):
        dt = OliveType(bits=4, outlier_counts=(1,))
        w = rng.uniform(-1, 1, size=(4, 64))
        w[:, 5] = 100.0
        _, scales = dt.quantize_rows(w)
        # Scale reflects the non-outlier absmax (< 1), not 100.
        assert np.all(scales < 1.0)

    def test_zero_outlier_candidate_matches_int_sym(self, rng):
        from repro.dtypes.integer import IntegerType

        dt = OliveType(bits=4, outlier_counts=(0,))
        w = rng.standard_normal((4, 64))
        w_deq, _ = dt.quantize_rows(w)
        ref, _, _, _ = IntegerType(bits=4).quantize_rows(w)
        np.testing.assert_allclose(w_deq, ref)

    def test_forced_pairing_costs_on_gaussian(self, rng):
        """The paper's per-group OliVe pays for victims on outlier-free
        groups — fixed counts must not beat the opt-out variant."""
        w = rng.standard_normal((32, 128))
        fixed = OliveType(bits=3, outlier_counts=(2,))
        free = OliveType(bits=3, outlier_counts=(0, 2))
        e_fixed = np.mean((fixed.quantize_rows(w)[0] - w) ** 2)
        e_free = np.mean((free.quantize_rows(w)[0] - w) ** 2)
        assert e_free <= e_fixed

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            OliveType(bits=4).quantize_rows(np.zeros(8))
