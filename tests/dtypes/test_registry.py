"""Tests for the datatype registry."""

import pytest

from repro.dtypes.registry import get_dtype, list_dtypes, register_dtype


class TestRegistry:
    def test_paper_dtypes_all_registered(self):
        needed = [
            "int4_sym", "int4_asym", "int3_asym", "int6_sym", "int6_asym",
            "int8_sym", "fp3", "fp4", "fp6_e2m3", "fp6_e3m2",
            "fp3_er", "fp3_ea", "fp4_er", "fp4_ea",
            "bitmod_fp3", "bitmod_fp4",
            "flint3", "flint4", "ant3", "ant4", "ant_adaptive4",
            "olive3", "olive4", "mx_fp3", "mx_fp4",
        ]
        names = list_dtypes()
        for n in needed:
            assert n in names, n

    def test_every_registered_name_instantiates(self):
        for name in list_dtypes():
            dt = get_dtype(name)
            assert dt.bits >= 2
            assert dt.memory_bits_per_weight(128) >= dt.bits

    def test_instances_are_fresh(self):
        assert get_dtype("bitmod_fp4") is not get_dtype("bitmod_fp4")

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="did you mean"):
            get_dtype("bitmod_pf4")

    def test_unknown_name_without_close_match(self):
        with pytest.raises(KeyError, match="list_dtypes"):
            get_dtype("zzzzzz")

    def test_lookup_is_case_insensitive(self):
        assert get_dtype("BitMoD_FP4").name == get_dtype("bitmod_fp4").name
        assert get_dtype("INT4_SYM").bits == 4

    def test_suggestions_are_close(self):
        with pytest.raises(KeyError) as err:
            get_dtype("bitmod_fp5")
        assert "bitmod_fp4" in str(err.value) or "bitmod_fp3" in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_dtype("fp4", lambda: None)

    def test_ant_is_flint_grid(self):
        import numpy as np

        ant = get_dtype("ant4")
        flint = get_dtype("flint4")
        np.testing.assert_array_equal(ant.grid, flint.grid)

    @pytest.mark.parametrize(
        "name,bits",
        [("int4_sym", 4), ("fp3", 3), ("bitmod_fp4", 4), ("mx_fp6", 6)],
    )
    def test_bits_field(self, name, bits):
        assert get_dtype(name).bits == bits
