"""Cross-module integration tests: the full pipelines a user runs."""

import numpy as np
import pytest

from repro.dtypes.registry import get_dtype
from repro.eval.perplexity import PerplexityEvaluator
from repro.hw.baselines import make_accelerator
from repro.hw.bitserial import booth_encode, fixed_point_decompose
from repro.hw.pe import BitMoDPE
from repro.hw.simulator import simulate
from repro.methods import AWQ, collect_calibration
from repro.models.transformer import CausalLM
from repro.models.zoo import get_model_config
from repro.quant.config import QuantConfig, quantize_tensor
from repro.quant.granularity import to_rows
from repro.quant.scale import quantize_scales


class TestQuantizeToHardware:
    """Weights quantized by the algorithm execute exactly on the PE."""

    def test_bitmod_codes_run_on_pe(self, rng):
        w = rng.standard_normal((1, 128))
        result = quantize_tensor(w, QuantConfig(dtype="bitmod_fp4", scale_bits=8))
        codes = (result.w_deq / result.scales[0, 0]).reshape(-1)

        pe = BitMoDPE()
        acts = rng.standard_normal(128).astype(np.float16)
        terms = [fixed_point_decompose(float(c)) for c in codes]
        res = pe.group_dot(terms, acts)
        ref = float(codes @ acts.astype(np.float64))
        assert res.value == pytest.approx(ref, rel=1e-3, abs=1e-3)

    def test_int6_pipeline_with_dequant(self, rng):
        """Quantize -> decompose -> PE dot -> bit-serial dequant equals
        the dequantized-weight matmul."""
        w = rng.standard_normal((1, 128))
        result = quantize_tensor(w, QuantConfig(dtype="int6_sym", scale_bits=8))
        scale = result.scales[0, 0]
        codes = np.round(result.w_deq / scale).astype(int).reshape(-1)

        # Second-level factors: scale = sf_code * channel_scale.
        rows, layout = to_rows(w, "group", 128)
        raw = np.max(np.abs(rows), axis=1, keepdims=True) / 31.0
        sq = quantize_scales(raw, bits=8, rows_per_channel=1)
        sf_code = int(sq.codes[0, 0])

        pe = BitMoDPE()
        acts = rng.standard_normal(128).astype(np.float16)
        partial = pe.group_dot([booth_encode(int(c), 6) for c in codes], acts)
        deq = pe.dequantize(partial, sf_code)
        final = deq.value * float(sq.channel_scales[0, 0])
        ref = float(result.w_deq.reshape(-1) @ acts.astype(np.float64))
        assert final == pytest.approx(ref, rel=1e-3, abs=1e-3)


class TestMethodToEvaluation:
    def test_awq_improves_model_ppl(self):
        cfg = get_model_config("llama-2-7b")
        ev = PerplexityEvaluator(cfg, "wikitext")
        calib = collect_calibration(ev.model)
        rtn_ppl = ev.evaluate_config("int3_asym").ppl
        awq = AWQ(QuantConfig(dtype="int3_asym"))
        awq_ppl = ev.evaluate_model(awq.quantize_model(ev.model, calib)).ppl
        assert awq_ppl < rtn_ppl

    def test_quantized_model_memory_budget(self):
        """The memory accounting matches the quantized tensor sizes."""
        cfg = get_model_config("opt-1.3b")
        model = CausalLM(cfg, seed=0)
        dt = get_dtype("bitmod_fp3")
        total_weights = sum(w.size for w in model.named_linears().values())
        bits = dt.memory_bits_per_weight(128) * total_weights
        assert bits / total_weights == pytest.approx(3 + 10 / 128)


class TestAlgoHardwareCoDesign:
    def test_quality_policy_feeds_simulator(self):
        """The full co-design loop: measured per-channel quality picks
        precision, which drives simulated latency."""
        from repro.experiments.policy import choose_weight_bits

        model = "llama-2-7b"
        cfg = get_model_config(model)
        ant = make_accelerator("ant")
        bits = choose_weight_bits("ant", model, "generative")
        assert bits in (4, 8)
        r = simulate(cfg, ant, "generative", bits)
        assert r.cycles > 0

    def test_bitmod_lossy_always_3bit_generative(self):
        from repro.experiments.policy import choose_weight_bits

        assert choose_weight_bits("bitmod", "opt-1.3b", "generative") == 3
        assert choose_weight_bits("bitmod", "opt-1.3b", "discriminative") == 4
        assert choose_weight_bits("bitmod", "opt-1.3b", "generative", lossless=True) == 6
