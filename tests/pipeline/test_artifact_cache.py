"""Tests for building serve artifacts from the quantized-weight cache."""

import numpy as np
import pytest

from repro.models.transformer import CausalLM
from repro.models.zoo import get_model_config
from repro.pipeline.store import CacheStore
from repro.quant.config import QuantConfig
from repro.serve.artifact import (
    load_artifact,
    pack_model,
    pack_tensor_cached,
    save_artifact,
)


@pytest.fixture(scope="module")
def model():
    return CausalLM(get_model_config("opt-1.3b"), seed=0)


def _assert_packed_equal(a, b):
    assert a.dtype_name == b.dtype_name
    assert a.bits == b.bits
    assert a.shape == b.shape
    assert a.group_size == b.group_size
    assert a.groups_per_channel == b.groups_per_channel
    assert a.element_data == b.element_data
    np.testing.assert_array_equal(a.sf_codes, b.sf_codes)
    np.testing.assert_array_equal(a.channel_scales, b.channel_scales)
    if a.sv_selectors is None:
        assert b.sv_selectors is None
    else:
        np.testing.assert_array_equal(a.sv_selectors, b.sv_selectors)
    if a.zeros is None:
        assert b.zeros is None
    else:
        np.testing.assert_array_equal(a.zeros, b.zeros)


@pytest.mark.parametrize("dtype", ["bitmod_fp4", "int4_asym", "fp4"])
def test_cached_pack_round_trip_byte_identical(tmp_path, model, dtype):
    """Cache miss then hit: the reloaded image equals the direct pack."""
    store = CacheStore(tmp_path)
    cfg = QuantConfig(dtype=dtype)
    w = next(iter(model.named_linears().values()))
    direct = pack_tensor_cached(w, cfg, store=None)
    miss = pack_tensor_cached(w, cfg, store=store)  # computes + writes
    hit = pack_tensor_cached(w, cfg, store=store)  # pure reload
    assert store.hits == 1
    _assert_packed_equal(direct, miss)
    _assert_packed_equal(direct, hit)


def test_pack_model_second_build_all_hits(tmp_path, model):
    store = CacheStore(tmp_path)
    cfg = QuantConfig(dtype="bitmod_fp3")
    packed1, raw1 = pack_model(model, cfg, store=store)
    assert store.hits == 0
    packed2, _raw2 = pack_model(model, cfg, store=store)
    assert store.hits == len(packed1)
    for name in packed1:
        _assert_packed_equal(packed1[name], packed2[name])
    assert set(raw1) == set(model.weights) - set(packed1)


def test_save_artifact_from_cache_loads_identically(tmp_path, model):
    store = CacheStore(tmp_path / "cache")
    cfg = QuantConfig(dtype="bitmod_fp4")
    cold = save_artifact(tmp_path / "cold.rsrv", model, cfg, store=store)
    warm = save_artifact(tmp_path / "warm.rsrv", model, cfg, store=store)
    assert (tmp_path / "cold.rsrv").read_bytes() == (tmp_path / "warm.rsrv").read_bytes()
    loaded = load_artifact(tmp_path / "warm.rsrv")
    for name in cold.packed:
        _assert_packed_equal(cold.packed[name], warm.packed[name])
        _assert_packed_equal(cold.packed[name], loaded.packed[name])
    ref = cold.instantiate()
    out = loaded.instantiate()
    for name, w in ref.weights.items():
        np.testing.assert_array_equal(out.weights[name], w)


def test_weight_content_addresses_cache(tmp_path, model):
    """Different weights or configs never alias a cache entry."""
    store = CacheStore(tmp_path)
    cfg = QuantConfig(dtype="int4_asym")
    linears = model.named_linears()
    names = list(linears)
    a = pack_tensor_cached(linears[names[0]], cfg, store=store)
    b = pack_tensor_cached(linears[names[1]], cfg, store=store)
    assert store.hits == 0  # two distinct tensors, two distinct addresses
    c = pack_tensor_cached(linears[names[0]], cfg.with_(group_size=64), store=store)
    assert store.hits == 0
    assert a.element_data != b.element_data or a.channel_scales.tobytes() != b.channel_scales.tobytes()
    assert c.group_size == 64
