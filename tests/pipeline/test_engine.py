"""Tests for the cell engine: dedup, caching, parallel equivalence."""

import pytest

from repro.pipeline import CellGrid, CellSpec, Engine, cell_key
from repro.pipeline.store import CacheStore
from repro.quant.config import QuantConfig

_SPEC = CellSpec(model="opt-1.3b", dataset="wikitext", quant=QuantConfig(dtype="int4_asym"))


class TestCellKeys:
    def test_key_distinguishes_cells(self):
        base = _SPEC
        assert cell_key(base) != cell_key(
            CellSpec(model="phi-2b", quant=base.quant)
        )
        assert cell_key(base) != cell_key(
            CellSpec(model=base.model, dataset="c4", quant=base.quant)
        )
        assert cell_key(base) != cell_key(
            CellSpec(model=base.model, quant=QuantConfig(dtype="int3_asym"))
        )
        assert cell_key(base) != cell_key(
            CellSpec(model=base.model, quant=base.quant, method="awq")
        )
        assert cell_key(base) != cell_key(
            CellSpec(model=base.model, quant=base.quant, quick=True)
        )

    def test_unknown_kind_rejected(self):
        from repro.pipeline.cells import compute_cell

        with pytest.raises(ValueError, match="unknown cell kind"):
            compute_cell(CellSpec(model="opt-1.3b", kind="bogus"))


class TestEngineCaching:
    def test_duplicates_computed_once(self, tmp_path):
        engine = Engine(store=CacheStore(tmp_path))
        out = engine.run([_SPEC, _SPEC, _SPEC])
        assert len(out) == 3
        assert out[0] == out[1] == out[2]
        assert engine.computed == 1

    def test_warm_run_hits_disk(self, tmp_path):
        cold = Engine(store=CacheStore(tmp_path))
        first = cold.run([_SPEC])
        warm = Engine(store=CacheStore(tmp_path))
        second = warm.run([_SPEC])
        assert second == first
        assert warm.computed == 0
        assert warm.store.hits == 1

    def test_no_cache_recomputes(self, tmp_path):
        a = Engine(store=CacheStore(tmp_path, enabled=False))
        b = Engine(store=CacheStore(tmp_path, enabled=False))
        assert a.run([_SPEC]) == b.run([_SPEC])
        assert a.computed == b.computed == 1
        assert list(tmp_path.rglob("*.json")) == []

    def test_fp16_anchor(self):
        engine = Engine(store=CacheStore(enabled=False))
        assert engine.fp16_ppl("llama-2-7b", "wikitext") == pytest.approx(5.47)

    def test_fp16_cell_matches_anchor(self, tmp_path):
        engine = Engine(store=CacheStore(tmp_path))
        (res,) = engine.run([CellSpec(model="llama-2-7b", dataset="wikitext")])
        assert res["ppl"] == pytest.approx(5.47)
        assert res["divergence"] == 0.0


class TestParallelEquivalence:
    def test_parallel_matches_serial(self, tmp_path):
        grid = CellGrid(
            rows=tuple(
                (dt, QuantConfig(dtype=dt)) for dt in ("int4_asym", "bitmod_fp4")
            ),
            models=("opt-1.3b", "phi-2b"),
            datasets=("wikitext",),
        )
        serial = Engine(store=CacheStore(tmp_path / "serial"), jobs=1)
        with Engine(store=CacheStore(tmp_path / "parallel"), jobs=2) as parallel:
            rs = serial.run_grid(grid)
            rp = parallel.run_grid(grid)
        assert rs == rp
        assert parallel.computed == len(grid.specs())

    def test_parallel_results_persisted_by_workers(self, tmp_path):
        grid = CellGrid(
            rows=(("int4_asym", QuantConfig(dtype="int4_asym")),),
            models=("opt-1.3b", "phi-2b"),
            datasets=("wikitext",),
        )
        with Engine(store=CacheStore(tmp_path), jobs=2) as cold:
            first = cold.run_grid(grid)
        with Engine(store=CacheStore(tmp_path), jobs=2) as warm:
            second = warm.run_grid(grid)
        assert second == first
        assert warm.computed == 0


class TestExperimentEquivalence:
    """Satellite requirement: parallel vs serial ExperimentResult rows."""

    def test_table02_quick_rows_identical(self, tmp_path, monkeypatch):
        from repro.experiments.runner import run_experiment
        from repro.pipeline import engine as engine_mod

        monkeypatch.setattr(
            engine_mod, "_ENGINE", Engine(store=CacheStore(tmp_path / "s"), jobs=1)
        )
        serial = run_experiment("table02", quick=True)
        with Engine(store=CacheStore(tmp_path / "p"), jobs=2) as par_engine:
            monkeypatch.setattr(engine_mod, "_ENGINE", par_engine)
            parallel = run_experiment("table02", quick=True)
        assert serial.columns == parallel.columns
        assert serial.rows == parallel.rows
