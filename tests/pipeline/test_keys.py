"""Tests for the stable cache-key digests."""

import numpy as np
import pytest

from repro.dtypes.extended import BitMoDType
from repro.dtypes.registry import get_dtype
from repro.methods import AWQ, GPTQ, SmoothQuant
from repro.models.zoo import get_model_config
from repro.pipeline.keys import array_digest, canonical, stable_digest
from repro.quant.config import QuantConfig


class TestStableDigest:
    def test_deterministic(self):
        cfg = QuantConfig(dtype="bitmod_fp4")
        assert cfg.cache_key() == cfg.cache_key()
        assert cfg.cache_key() == QuantConfig(dtype="bitmod_fp4").cache_key()

    def test_field_sensitivity(self):
        base = QuantConfig(dtype="bitmod_fp4")
        assert base.cache_key() != base.with_(group_size=64).cache_key()
        assert base.cache_key() != base.with_(granularity="channel").cache_key()
        assert base.cache_key() != base.with_(scale_bits=None).cache_key()
        assert base.cache_key() != base.with_(clip_ratio=0.9).cache_key()
        assert base.cache_key() != QuantConfig(dtype="int4_asym").cache_key()

    def test_dtype_name_and_instance_key_identically(self):
        by_name = QuantConfig(dtype="bitmod_fp4")
        by_instance = QuantConfig(dtype=get_dtype("bitmod_fp4"))
        assert by_name.cache_key() == by_instance.cache_key()

    def test_same_name_different_contents_key_differently(self):
        """The table09 ablation: three datatypes share one name."""
        a = BitMoDType(bits=3, special_values=(-3.0, 3.0, -6.0, 6.0), name="fp3_ablation")
        b = BitMoDType(bits=3, special_values=(-3.0, 3.0, -5.0, 5.0), name="fp3_ablation")
        assert QuantConfig(dtype=a).cache_key() != QuantConfig(dtype=b).cache_key()

    def test_dict_order_insensitive(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_ndarray_content_addressing(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert array_digest(a) == array_digest(a.copy())
        b = a.copy()
        b[0, 0] += 1
        assert array_digest(a) != array_digest(b)
        # Shape participates: same bytes, different layout.
        assert array_digest(a) != array_digest(a.reshape(4, 3))

    def test_canonical_handles_nested_structures(self):
        c = canonical({"xs": (1, 2.5, None), "arr": np.zeros(3)})
        assert c["xs"] == [1, 2.5, None]
        assert "__ndarray__" in c["arr"]

    def test_unsupported_object_fails_loudly(self):
        """No repr() fallback: default reprs embed memory addresses,
        which would silently defeat the cache with per-process keys."""

        class Opaque:
            pass

        with pytest.raises(TypeError, match="canonicalize"):
            stable_digest({"x": Opaque()})


class TestModelConfigKey:
    def test_distinct_models_distinct_keys(self):
        keys = {get_model_config(m).cache_key() for m in ("opt-1.3b", "llama-2-7b", "phi-2b")}
        assert len(keys) == 3

    def test_stable_across_lookups(self):
        assert (
            get_model_config("llama-2-7b").cache_key()
            == get_model_config("llama-2-7b").cache_key()
        )


class TestMethodKey:
    def test_method_name_in_key(self):
        q = QuantConfig(dtype="int4_asym")
        assert AWQ(q).cache_key() != GPTQ(q).cache_key()

    def test_hyperparams_in_key(self):
        q = QuantConfig(dtype="int4_asym")
        assert AWQ(q).cache_key() != AWQ(q, alpha_grid=[0.25, 0.75]).cache_key()
        assert GPTQ(q).cache_key() != GPTQ(q, percdamp=0.1).cache_key()
        assert (
            SmoothQuant(q).cache_key() != SmoothQuant(q, act_bits=8).cache_key()
        )

    def test_qconfig_in_key(self):
        assert (
            AWQ(QuantConfig(dtype="int4_asym")).cache_key()
            != AWQ(QuantConfig(dtype="bitmod_fp4")).cache_key()
        )

    def test_equal_instances_share_key(self):
        q = QuantConfig(dtype="int3_asym")
        assert AWQ(q).cache_key() == AWQ(q).cache_key()
